/// Reproduces Figure 6 ("Raytracing: Median performance in individual
/// iterations of all strategies"): combined tuning — the nominal strategy
/// picks the construction algorithm each frame, Nelder-Mead tunes the chosen
/// algorithm's parameters.

#include "raytrace_experiment.hpp"

using namespace atk;

int main(int argc, char** argv) {
    Cli cli("bench_fig6_raytrace_median",
            "Figure 6: median per-iteration performance, combined tuning");
    bench::add_raytrace_options(cli);
    if (!cli.parse(argc, argv)) return 1;

    bench::print_header("Figure 6 — Raytracing: median per-iteration performance",
                        "algorithmic choice over 4 builders + Nelder-Mead per builder");

    bench::RaytraceContext context = bench::make_raytrace_context(cli);
    const std::size_t reps = bench::raytrace_reps(cli);
    const std::size_t frames = bench::raytrace_frames(cli);
    std::printf("%zu reps x %zu frames\n", reps, frames);

    const auto series = bench::run_all_strategies(
        [&](const bench::StrategySpec& strategy, std::uint64_t seed) {
            return bench::run_raytrace_tuning(context, strategy, frames, seed);
        },
        reps);

    bench::print_series_table(
        "Median frame time per iteration [ms]", series,
        [](const bench::StrategySeries& s) { return s.median_per_iteration(); }, frames);
    bench::write_series_csv("fig6_raytrace_median.csv", series,
                            [](const bench::StrategySeries& s) {
                                return s.median_per_iteration();
                            });

    std::printf(
        "\nExpected shape (paper): all strategies start from the same algorithm;\n"
        "the e-Greedy variants quickly identify the fastest builder and\n"
        "converge on it; the weighted strategies switch back and forth and make\n"
        "tuning progress on all builders more or less simultaneously.\n");
    return 0;
}

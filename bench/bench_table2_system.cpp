/// Reproduces Table II ("Specifications of the benchmark system") for the
/// machine this reproduction actually runs on, next to the paper's values.

#include "harness.hpp"
#include "support/sysinfo.hpp"

using namespace atk;

int main() {
    bench::print_header("Table II — Specifications of the benchmark system",
                        "this host vs. the paper's machine");

    const SystemInfo info = query_system_info();
    Table table({"", "paper", "this reproduction"});
    table.row().text("Processor").text("Intel Xeon E5-1620v2").text(
        info.cpu_model.empty() ? "(unknown)" : info.cpu_model);
    table.row().text("Speed").text("3.70GHz").text(
        info.cpu_mhz > 0 ? format_num(info.cpu_mhz / 1000.0, 2) + "GHz" : "(unknown)");
    table.row().text("Threads").text("8").integer(info.threads);
    table.row().text("RAM").text("64GB").text(format_bytes(info.ram_bytes));
    table.row().text("OS").text("(not reported)").text(info.os);
    table.print();
    return 0;
}

/// Ablation (DESIGN.md): the paper fixes Nelder-Mead as the phase-one
/// searcher "because it often shows very quick convergence".  This harness
/// swaps in every other applicable searcher under the same ε-Greedy phase
/// two and measures convergence on the raytracing case study (small scene).

#include "raytrace_experiment.hpp"

using namespace atk;

namespace {

struct SearcherSpec {
    std::string name;
    std::function<std::unique_ptr<Searcher>()> make;
};

std::vector<SearcherSpec> phase_one_searchers() {
    return {
        {"NelderMead", [] { return std::make_unique<NelderMeadSearcher>(); }},
        {"HillClimbing", [] { return std::make_unique<HillClimbingSearcher>(); }},
        {"SimulatedAnnealing",
         [] { return std::make_unique<SimulatedAnnealingSearcher>(); }},
        {"ParticleSwarm", [] { return std::make_unique<ParticleSwarmSearcher>(); }},
        {"Genetic", [] { return std::make_unique<GeneticSearcher>(); }},
        {"DifferentialEvolution",
         [] { return std::make_unique<DifferentialEvolutionSearcher>(); }},
        {"Random", [] { return std::make_unique<RandomSearcher>(); }},
    };
}

} // namespace

int main(int argc, char** argv) {
    Cli cli("bench_ablation_searchers",
            "Ablation: phase-one searcher swap on the raytracing case study");
    bench::add_raytrace_options(cli);
    if (!cli.parse(argc, argv)) return 1;

    bench::print_header("Ablation — phase-one searcher choice",
                        "e-Greedy(10%) phase two, searcher swapped per run");

    bench::RaytraceContext context = bench::make_raytrace_context(cli);
    const std::size_t reps = bench::raytrace_reps(cli);
    const std::size_t frames = bench::raytrace_frames(cli);
    std::printf("%zu reps x %zu frames\n\n", reps, frames);

    Table table({"searcher", "best frame [ms]", "mean late frame [ms]",
                 "first frame [ms]"});
    for (const auto& spec : phase_one_searchers()) {
        double best_total = 0.0;
        double late_total = 0.0;
        double first_total = 0.0;
        for (std::size_t rep = 0; rep < reps; ++rep) {
            std::vector<TunableAlgorithm> algorithms;
            for (const auto& builder : context.builders) {
                TunableAlgorithm a;
                a.name = builder->name();
                a.space = builder->tuning_space();
                a.initial = builder->default_config();
                a.searcher = spec.make();
                algorithms.push_back(std::move(a));
            }
            TwoPhaseTuner tuner(std::make_unique<EpsilonGreedy>(0.10),
                                std::move(algorithms), rep + 1);
            const TuningTrace trace = tuner.run(
                [&](const Trial& trial) {
                    const auto& builder = *context.builders[trial.algorithm];
                    return std::max(1e-6,
                                    context.pipeline->render_frame(
                                        builder, builder.decode(trial.config)));
                },
                frames);
            best_total += tuner.best_cost();
            first_total += trace[0].cost;
            double late = 0.0;
            const std::size_t from = frames * 2 / 3;
            for (std::size_t i = from; i < frames; ++i) late += trace[i].cost;
            late_total += late / static_cast<double>(frames - from);
        }
        table.row()
            .text(spec.name)
            .num(best_total / static_cast<double>(reps), 3)
            .num(late_total / static_cast<double>(reps), 3)
            .num(first_total / static_cast<double>(reps), 3);
        std::printf("  [done] %s\n", spec.name.c_str());
    }
    std::printf("\n");
    table.print();

    std::printf(
        "\nExpected shape: Nelder-Mead reaches a low late-frame cost within the\n"
        "frame budget (the paper's rationale); population methods (PSO, GA, DE)\n"
        "pay for their exploration under the short online horizon; Random\n"
        "establishes the no-search baseline.\n");
    return 0;
}

/// Reproduces Figure 2 ("String Matching: Median performance in individual
/// iterations of all strategies"): the median (over repetitions) of the time
/// consumed in every tuning iteration, for all six strategies.  The paper
/// caps the plot at 25 iterations because all curves have converged by then.

#include "stringmatch_experiment.hpp"

using namespace atk;

int main(int argc, char** argv) {
    Cli cli("bench_fig2_string_median",
            "Figure 2: median per-iteration tuning performance (string matching)");
    bench::add_stringmatch_options(cli);
    cli.add_int("show-iters", 25, "iterations to print (paper plot cap)");
    if (!cli.parse(argc, argv)) return 1;

    bench::print_header(
        "Figure 2 — String Matching: median per-iteration performance",
        "algorithmic choice over 8 matchers, no phase-one parameters");

    bench::StringMatchContext context = bench::make_stringmatch_context(cli);
    const std::size_t reps = bench::stringmatch_reps(cli);
    const std::size_t iters = bench::stringmatch_iters(cli);
    std::printf("corpus: %zu bytes, %zu reps x %zu iterations\n", context.corpus.size(),
                reps, iters);

    const auto series = bench::run_all_strategies(
        [&](const bench::StrategySpec& strategy, std::uint64_t seed) {
            return bench::run_stringmatch_tuning(context, strategy, iters, seed);
        },
        reps);

    bench::print_series_table(
        "Median time per iteration [ms]", series,
        [](const bench::StrategySeries& s) { return s.median_per_iteration(); },
        static_cast<std::size_t>(cli.get_int("show-iters")));
    bench::write_series_csv("fig2_string_median.csv", series,
                            [](const bench::StrategySeries& s) {
                                return s.median_per_iteration();
                            });

    std::printf(
        "\nExpected shape (paper): the e-Greedy variants show the deterministic\n"
        "initialization staircase over the first 8 iterations, then settle on\n"
        "the fastest matcher; the weighted strategies converge more slowly and\n"
        "keep a higher median.\n");
    return 0;
}

/// Measures the ingestion throughput of the runtime layer: how many
/// measurements per second TuningService absorbs as client threads scale
/// 1 → 2 → 4 → 8, under both full-queue policies.  This is the hot path a
/// production service pays on every operation (begin + report), so it has
/// to stay far cheaper than any realistic workload iteration.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/autotune.hpp"
#include "harness.hpp"
#include "runtime/runtime.hpp"
#include "support/clock.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/table.hpp"

using namespace atk;
using namespace atk::runtime;

namespace {

std::vector<TunableAlgorithm> two_algorithms() {
    std::vector<TunableAlgorithm> algorithms;
    algorithms.push_back(TunableAlgorithm::untunable("A"));

    TunableAlgorithm b;
    b.name = "B";
    b.space.add(Parameter::ratio("x", 0, 50));
    b.initial = Configuration{{0}};
    b.searcher = std::make_unique<NelderMeadSearcher>();
    algorithms.push_back(std::move(b));
    return algorithms;
}

TunerFactory factory() {
    return [](const std::string& session) {
        return std::make_unique<TwoPhaseTuner>(std::make_unique<EpsilonGreedy>(0.10),
                                               two_algorithms(),
                                               std::hash<std::string>{}(session));
    };
}

struct Result {
    double wall_ms = 0.0;
    std::uint64_t accepted = 0;
    std::uint64_t dropped = 0;
    double attempts_per_second = 0.0;  // hot-path rate: begin + report calls
    double accepted_per_second = 0.0;  // sustained ingestion rate
};

Result run_once(std::size_t threads, std::size_t reports_per_thread,
                std::size_t sessions, std::size_t queue_capacity, bool block) {
    ServiceOptions options;
    options.queue_capacity = queue_capacity;
    options.block_when_full = block;
    TuningService service(factory(), options);

    std::vector<std::string> names;
    for (std::size_t s = 0; s < sessions; ++s) {
        // prefix via insert, not const char* + string: GCC 12 -Wrestrict
        // false positive (PR 105651) fires on the inlined concatenation.
        std::string name = std::to_string(s);
        name.insert(name.begin(), 'w');
        names.push_back(std::move(name));
    }
    for (const auto& name : names) (void)service.begin(name);  // warm the map

    Stopwatch watch;
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < threads; ++t) {
        clients.emplace_back([&service, &names, reports_per_thread, t] {
            for (std::size_t i = 0; i < reports_per_thread; ++i) {
                const auto& name = names[(t + i) % names.size()];
                const Ticket ticket = service.begin(name);
                (void)service.report(name, ticket, 1.0 + static_cast<double>(i % 7));
            }
        });
    }
    for (auto& client : clients) client.join();
    const double produce_ms = watch.elapsed_ms();
    service.flush();
    service.stop();

    Result result;
    result.wall_ms = produce_ms;
    result.accepted = service.metrics().counter("reports_enqueued").value();
    result.dropped = service.metrics().counter("reports_dropped").value();
    const double seconds = produce_ms / 1000.0;
    result.attempts_per_second =
        static_cast<double>(result.accepted + result.dropped) / seconds;
    result.accepted_per_second = static_cast<double>(result.accepted) / seconds;
    return result;
}

} // namespace

int main(int argc, char** argv) {
    Cli cli("bench_runtime_throughput",
            "Runtime layer: measurement ingestion throughput vs client threads");
    cli.add_int("reports", 200000, "reports per client thread");
    cli.add_int("sessions", 4, "number of concurrent tuning sessions");
    cli.add_int("capacity", 1024, "bounded queue capacity");
    if (!cli.parse(argc, argv)) return 1;

    const auto reports = static_cast<std::size_t>(cli.get_int("reports"));
    const auto sessions = static_cast<std::size_t>(cli.get_int("sessions"));
    const auto capacity = static_cast<std::size_t>(cli.get_int("capacity"));

    bench::init_trace_from_env();
    std::printf("bench_runtime_throughput: %zu reports/thread, %zu sessions, "
                "queue capacity %zu\n\n",
                reports, sessions, capacity);

    Table table({"threads", "policy", "wall [ms]", "accepted", "dropped",
                 "Mattempts/s", "Maccepted/s"});
    CsvWriter csv({"threads", "policy", "wall_ms", "accepted", "dropped",
                   "attempts_per_second", "accepted_per_second"});
    for (const bool block : {false, true}) {
        const char* policy = block ? "block" : "drop";
        for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
            const Result r = run_once(threads, reports, sessions, capacity, block);
            table.row()
                .integer(static_cast<long long>(threads))
                .text(policy)
                .num(r.wall_ms, 1)
                .integer(static_cast<long long>(r.accepted))
                .integer(static_cast<long long>(r.dropped))
                .num(r.attempts_per_second / 1e6, 3)
                .num(r.accepted_per_second / 1e6, 3);
            csv.add_row({std::to_string(threads), policy, format_num(r.wall_ms, 3),
                         std::to_string(r.accepted), std::to_string(r.dropped),
                         format_num(r.attempts_per_second, 0),
                         format_num(r.accepted_per_second, 0)});
        }
    }
    std::printf("%s\n", table.to_string().c_str());
    const std::string out = "results/runtime_throughput.csv";
    if (csv.write_file(out)) std::printf("wrote %s\n", out.c_str());

    std::printf(
        "\nReading the numbers: under the drop policy, Mattempts/s is the raw\n"
        "hot-path rate (begin + try_push; drops rise because the single\n"
        "aggregator saturates).  Under the block policy nothing is dropped,\n"
        "so Maccepted/s is the end-to-end capacity of one aggregator thread.\n");
    return 0;
}

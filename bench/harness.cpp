#include "harness.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>

#include "obs/span.hpp"
#include "support/sparkline.hpp"

namespace atk::bench {

std::vector<StrategySpec> paper_strategies() {
    return {
        {"e-Greedy (5%)", [] { return std::make_unique<EpsilonGreedy>(0.05); }},
        {"e-Greedy (10%)", [] { return std::make_unique<EpsilonGreedy>(0.10); }},
        {"e-Greedy (20%)", [] { return std::make_unique<EpsilonGreedy>(0.20); }},
        {"Gradient Weighted", [] { return std::make_unique<GradientWeighted>(16); }},
        {"Optimum Weighted", [] { return std::make_unique<OptimumWeighted>(); }},
        {"Sliding-Window AUC", [] { return std::make_unique<SlidingWindowAuc>(16); }},
    };
}

std::vector<double> StrategySeries::median_per_iteration() const {
    return columnwise_median(cost_rows);
}

std::vector<double> StrategySeries::mean_per_iteration() const {
    return columnwise_mean(cost_rows);
}

BoxStats StrategySeries::count_stats(std::size_t algorithm) const {
    std::vector<double> counts;
    counts.reserve(count_rows.size());
    for (const auto& row : count_rows)
        counts.push_back(static_cast<double>(row.at(algorithm)));
    return summarize(counts);
}

std::vector<StrategySeries> run_all_strategies(
    const std::function<RunResult(const StrategySpec&, std::uint64_t seed)>& run,
    std::size_t reps) {
    std::vector<StrategySeries> all;
    for (const auto& spec : paper_strategies()) {
        StrategySeries series;
        series.strategy = spec.name;
        for (std::size_t rep = 0; rep < reps; ++rep) {
            RunResult result = run(spec, rep + 1);
            series.cost_rows.push_back(std::move(result.costs));
            series.count_rows.push_back(std::move(result.counts));
        }
        all.push_back(std::move(series));
        std::printf("  [done] %s (%zu repetitions)\n", spec.name.c_str(), reps);
    }
    return all;
}

void print_series_table(const std::string& title,
                        const std::vector<StrategySeries>& series,
                        const std::function<std::vector<double>(const StrategySeries&)>&
                            reduce,
                        std::size_t max_iterations) {
    std::printf("\n%s\n", title.c_str());
    std::vector<std::string> headers{"iter"};
    std::vector<std::vector<double>> columns;
    for (const auto& s : series) {
        headers.push_back(s.strategy);
        columns.push_back(reduce(s));
    }
    Table table(headers);
    const std::size_t iterations =
        columns.empty() ? 0 : std::min(max_iterations, columns.front().size());
    for (std::size_t i = 0; i < iterations; ++i) {
        auto row = table.row();
        row.integer(static_cast<long long>(i));
        for (const auto& column : columns) row.num(column[i], 3);
    }
    table.print();

    // Terminal rendering of the figure's curves (shared scale).
    std::vector<LabeledSeries> chart;
    for (std::size_t s = 0; s < series.size(); ++s) {
        LabeledSeries entry;
        entry.label = series[s].strategy;
        entry.values.assign(columns[s].begin(),
                            columns[s].begin() +
                                static_cast<std::ptrdiff_t>(iterations));
        chart.push_back(std::move(entry));
    }
    std::printf("\n%s", sparkline_chart(chart, "ms").c_str());
}

void print_histogram_table(const std::string& title,
                           const std::vector<StrategySeries>& series,
                           const std::vector<std::string>& algorithm_names) {
    std::printf("\n%s\n(median selections per repetition [q1..q3])\n", title.c_str());
    std::vector<std::string> headers{"algorithm"};
    for (const auto& s : series) headers.push_back(s.strategy);
    Table table(headers);
    for (std::size_t a = 0; a < algorithm_names.size(); ++a) {
        auto row = table.row();
        row.text(algorithm_names[a]);
        for (const auto& s : series) {
            const BoxStats stats = s.count_stats(a);
            row.text(format_num(stats.median, 0) + " [" + format_num(stats.q1, 0) +
                     ".." + format_num(stats.q3, 0) + "]");
        }
    }
    table.print();
}

std::string results_path(const std::string& filename) {
    ::mkdir("results", 0755);  // EEXIST is fine
    return "results/" + filename;
}

std::string write_series_csv(const std::string& filename,
                             const std::vector<StrategySeries>& series,
                             const std::function<std::vector<double>(
                                 const StrategySeries&)>& reduce) {
    std::vector<std::string> headers{"iteration"};
    std::vector<std::vector<double>> columns;
    for (const auto& s : series) {
        headers.push_back(s.strategy);
        columns.push_back(reduce(s));
    }
    CsvWriter csv(headers);
    const std::size_t iterations = columns.empty() ? 0 : columns.front().size();
    for (std::size_t i = 0; i < iterations; ++i) {
        std::vector<std::string> row{std::to_string(i)};
        for (const auto& column : columns) row.push_back(format_num(column[i], 4));
        csv.add_row(std::move(row));
    }
    const std::string path = results_path(filename);
    if (!csv.write_file(path)) {
        std::fprintf(stderr, "warning: could not write %s\n", path.c_str());
        return {};
    }
    std::printf("\n[csv] %s\n", path.c_str());
    return path;
}

void init_trace_from_env() {
    // ATK_TRACE=<path> turns on span tracing for any harness run and dumps
    // a Chrome trace-event file at exit — every tuner the bench drives is
    // already instrumented, so no per-harness wiring is needed.
    static bool trace_hooked = false;
    if (const char* trace_path = std::getenv("ATK_TRACE");
        trace_path != nullptr && *trace_path != '\0' && !trace_hooked) {
        trace_hooked = true;
        obs::Tracer::enable();
        static std::string path = trace_path;
        std::atexit([] {
            if (obs::write_chrome_trace(path, obs::Tracer::snapshot()))
                std::printf("[trace] %s\n", path.c_str());
        });
    }
}

void print_header(const std::string& experiment, const std::string& description) {
    std::printf("==============================================================\n");
    std::printf("%s\n%s\n", experiment.c_str(), description.c_str());
    std::printf("==============================================================\n");
    init_trace_from_env();
}

} // namespace atk::bench

#include "stringmatch_experiment.hpp"

#include "core/tuner.hpp"
#include "stringmatch/corpus.hpp"
#include "stringmatch/parallel.hpp"
#include "support/clock.hpp"

namespace atk::bench {

std::vector<std::string> StringMatchContext::algorithm_names() const {
    std::vector<std::string> names;
    for (const auto& matcher : matchers) names.push_back(matcher->name());
    return names;
}

void add_stringmatch_options(Cli& cli) {
    cli.add_int("reps", 10, "experiment repetitions (paper: 100)")
        .add_int("iters", 50, "tuning iterations per repetition (paper: 200)")
        .add_int("corpus-bytes", 2 * 1024 * 1024, "synthetic corpus size")
        .add_int("threads", 0, "worker threads (0 = hardware)")
        .add_int("seed", 2016, "corpus generator seed")
        .add_string("corpus", "bible",
                    "corpus kind: bible (Revelation phrase) | dna (32-char motif)")
        .add_flag("paper", "use the paper-scale parameters (100 reps x 200 iters, 4 MB)");
}

StringMatchContext make_stringmatch_context(const Cli& cli) {
    StringMatchContext context;
    const bool paper = cli.get_flag("paper");
    const std::size_t bytes =
        paper ? 4 * 1024 * 1024 : static_cast<std::size_t>(cli.get_int("corpus-bytes"));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    if (cli.get_string("corpus") == "dna") {
        // The paper's second corpus (human genome): 4-letter alphabet.
        context.pattern = "GATTACAGATTACAGATTACAGATTACAGATT";
        context.corpus = sm::dna_corpus(bytes, context.pattern, seed, 1);
    } else {
        context.pattern = std::string(sm::query_phrase());
        context.corpus = sm::bible_like_corpus(bytes, seed, 1);
    }
    context.matchers = sm::make_all_matchers_with_hybrid();
    context.pool = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(cli.get_int("threads")));
    return context;
}

std::size_t stringmatch_reps(const Cli& cli) {
    return cli.get_flag("paper") ? 100 : static_cast<std::size_t>(cli.get_int("reps"));
}

std::size_t stringmatch_iters(const Cli& cli) {
    return cli.get_flag("paper") ? 200 : static_cast<std::size_t>(cli.get_int("iters"));
}

RunResult run_stringmatch_tuning(StringMatchContext& context,
                                 const StrategySpec& strategy, std::size_t iterations,
                                 std::uint64_t seed) {
    std::vector<TunableAlgorithm> algorithms;
    for (const auto& matcher : context.matchers)
        algorithms.push_back(TunableAlgorithm::untunable(matcher->name()));

    TwoPhaseTuner tuner(strategy.make(), std::move(algorithms), seed);
    const TuningTrace trace = tuner.run(
        [&](const Trial& trial) {
            Stopwatch watch;
            (void)sm::parallel_count(*context.matchers[trial.algorithm], context.corpus,
                                     context.pattern, *context.pool,
                                     context.partitions);
            return std::max(1e-6, watch.elapsed_ms());
        },
        iterations);

    RunResult result;
    result.costs = trace.costs();
    result.counts = trace.choice_counts(context.matchers.size());
    return result;
}

} // namespace atk::bench

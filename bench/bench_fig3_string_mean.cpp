/// Reproduces Figure 3 ("String Matching: Mean performance in individual
/// iterations of all strategies"): like Figure 2, but the mean over
/// repetitions (the paper shows 50 iterations), which exposes the
/// randomness of the ε-exploration and the Gradient-Weighted drift.

#include "stringmatch_experiment.hpp"

using namespace atk;

int main(int argc, char** argv) {
    Cli cli("bench_fig3_string_mean",
            "Figure 3: mean per-iteration tuning performance (string matching)");
    bench::add_stringmatch_options(cli);
    cli.add_int("show-iters", 50, "iterations to print (paper plot cap)");
    if (!cli.parse(argc, argv)) return 1;

    bench::print_header("Figure 3 — String Matching: mean per-iteration performance",
                        "algorithmic choice over 8 matchers, mean over repetitions");

    bench::StringMatchContext context = bench::make_stringmatch_context(cli);
    const std::size_t reps = bench::stringmatch_reps(cli);
    const std::size_t iters = bench::stringmatch_iters(cli);
    std::printf("corpus: %zu bytes, %zu reps x %zu iterations\n", context.corpus.size(),
                reps, iters);

    const auto series = bench::run_all_strategies(
        [&](const bench::StrategySpec& strategy, std::uint64_t seed) {
            return bench::run_stringmatch_tuning(context, strategy, iters, seed);
        },
        reps);

    bench::print_series_table(
        "Mean time per iteration [ms]", series,
        [](const bench::StrategySeries& s) { return s.mean_per_iteration(); },
        static_cast<std::size_t>(cli.get_int("show-iters")));
    bench::write_series_csv("fig3_string_mean.csv", series,
                            [](const bench::StrategySeries& s) {
                                return s.mean_per_iteration();
                            });

    std::printf(
        "\nExpected shape (paper): e-Greedy means stay low but noisier than the\n"
        "medians (exploration spikes); the weighted strategies hover around the\n"
        "average of all matchers; Gradient Weighted drifts with measurement\n"
        "noise instead of settling (Section IV-A's discussion).\n");
    return 0;
}

#pragma once

/// Case study 2 experiment runner (paper Section IV-B): a two-stage
/// raytracing pipeline renders a static cathedral scene (the Sibenik
/// stand-in, see DESIGN.md) for N frames; per frame the online tuner picks a
/// kD-tree construction algorithm (phase two) and its parameter
/// configuration (phase one, Nelder-Mead).

#include <memory>

#include "harness.hpp"
#include "raytrace/pipeline.hpp"

namespace atk::bench {

struct RaytraceContext {
    std::unique_ptr<rt::RaytracePipeline> pipeline;
    std::vector<std::unique_ptr<rt::KdBuilder>> builders;

    [[nodiscard]] std::vector<std::string> algorithm_names() const;
};

/// Standard CLI options shared by the Figure 5-8 harnesses.
void add_raytrace_options(Cli& cli);

/// Builds scene/pipeline/builders from parsed options (honoring --paper).
[[nodiscard]] RaytraceContext make_raytrace_context(const Cli& cli);

/// One combined-tuning run (Figures 6-8): per frame, phase two selects the
/// builder and phase one (Nelder-Mead) its configuration.
[[nodiscard]] RunResult run_raytrace_tuning(RaytraceContext& context,
                                            const StrategySpec& strategy,
                                            std::size_t frames, std::uint64_t seed);

/// Per-builder Nelder-Mead-only timeline (Figure 5): tunes one builder in
/// isolation for `frames` frames starting at the hand-crafted default.
[[nodiscard]] std::vector<double> run_single_builder_timeline(RaytraceContext& context,
                                                              std::size_t builder,
                                                              std::size_t frames,
                                                              std::uint64_t seed);

[[nodiscard]] std::size_t raytrace_reps(const Cli& cli);
[[nodiscard]] std::size_t raytrace_frames(const Cli& cli);

} // namespace atk::bench

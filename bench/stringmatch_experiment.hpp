#pragma once

/// Case study 1 experiment runner (paper Section IV-A): online tuning of the
/// algorithmic choice across the eight parallel string matchers, searching
/// the Revelation phrase in a Bible-like corpus.  The matchers expose no
/// tunable parameters, so phase one is trivial and the strategies are
/// observed in isolation.

#include <memory>
#include <string>
#include <vector>

#include "harness.hpp"
#include "stringmatch/matcher.hpp"
#include "support/thread_pool.hpp"

namespace atk::bench {

struct StringMatchContext {
    std::string corpus;
    std::string pattern;
    std::vector<std::unique_ptr<sm::Matcher>> matchers;
    std::unique_ptr<ThreadPool> pool;
    std::size_t partitions = 0;

    [[nodiscard]] std::vector<std::string> algorithm_names() const;
};

/// Standard CLI options shared by the Figure 1-4 harnesses.
void add_stringmatch_options(Cli& cli);

/// Builds corpus/matchers/pool from parsed options (honoring --paper).
[[nodiscard]] StringMatchContext make_stringmatch_context(const Cli& cli);

/// One complete tuning run (Figure 2/3/4 inner loop): `iters` iterations of
/// select-algorithm → search corpus → report time.
[[nodiscard]] RunResult run_stringmatch_tuning(StringMatchContext& context,
                                               const StrategySpec& strategy,
                                               std::size_t iterations,
                                               std::uint64_t seed);

/// Effective iteration/repetition counts for a parsed CLI (--paper selects
/// the full 100 x 200 of the paper).
[[nodiscard]] std::size_t stringmatch_reps(const Cli& cli);
[[nodiscard]] std::size_t stringmatch_iters(const Cli& cli);

} // namespace atk::bench

/// Overhead of the observability layer (obs/):
///
///   1. a Span while tracing is disabled — the cost every instrumented hot
///      path pays in production when nobody is tracing (the acceptance bar:
///      one relaxed atomic load + branch, low single-digit ns),
///   2. a Span while tracing is enabled (ring-buffer push + two clock reads),
///   3. the distributed-tracing additions: reading the current trace context
///      (what the client does per request to fill the wire extension) and
///      installing a remote parent context around a span (what a server
///      worker does per traced frame),
///   4. one TuningHealthMonitor::observe() — the per-measurement price of
///      the online health detector stack,
///   5. a full TwoPhaseTuner next()/report() iteration untraced, traced and
///      traced+audited, showing the end-to-end tax on the tuning loop.
///
/// Numbers land in EXPERIMENTS.md ("Observability overhead").

#include <cstdio>
#include <memory>
#include <vector>

#include "core/autotune.hpp"
#include "harness.hpp"
#include "obs/obs.hpp"
#include "support/clock.hpp"

using namespace atk;

namespace {

template <typename F>
double ns_per_op(std::size_t iterations, F&& op) {
    Stopwatch watch;
    for (std::size_t i = 0; i < iterations; ++i) op();
    return watch.elapsed_ms() * 1.0e6 / static_cast<double>(iterations);
}

std::unique_ptr<TwoPhaseTuner> make_tuner() {
    std::vector<TunableAlgorithm> algorithms;
    algorithms.push_back(TunableAlgorithm::untunable("A"));
    TunableAlgorithm b;
    b.name = "B";
    b.space.add(Parameter::ratio("block", 0, 80));
    b.initial = Configuration{{0}};
    b.searcher = std::make_unique<NelderMeadSearcher>();
    algorithms.push_back(std::move(b));
    return std::make_unique<TwoPhaseTuner>(std::make_unique<EpsilonGreedy>(0.10),
                                           std::move(algorithms), 42);
}

double tuner_iteration_ns(TwoPhaseTuner& tuner, std::size_t iterations) {
    return ns_per_op(iterations, [&] {
        const Trial trial = tuner.next();
        tuner.report(trial, 1.0 + static_cast<double>(trial.algorithm));
    });
}

} // namespace

int main(int argc, char** argv) {
    Cli cli("bench_obs_overhead", "span tracing / audit trail overhead");
    cli.add_int("iterations", 2000000, "operations per measurement")
        .add_int("tuner_iterations", 200000, "tuner next/report pairs");
    if (!cli.parse(argc, argv)) return 1;
    const auto iterations = static_cast<std::size_t>(cli.get_int("iterations"));
    const auto tuner_iterations =
        static_cast<std::size_t>(cli.get_int("tuner_iterations"));

    bench::print_header("obs-overhead",
                        "cost of spans (disabled/enabled) and of instrumenting "
                        "the tuner iteration path");

    const double baseline = ns_per_op(iterations, [] {});

    obs::Tracer::enable(false);
    const double span_disabled =
        ns_per_op(iterations, [] { obs::Span span("bench.span"); });

    obs::Tracer::enable(true);
    const double span_enabled =
        ns_per_op(iterations, [] { obs::Span span("bench.span"); });

    // The wire-extension hot paths.  Disabled first: recommend()/report()
    // read the context once per request even when nobody traces.
    obs::Tracer::enable(false);
    const double context_read_disabled = ns_per_op(
        iterations, [] { (void)obs::current_trace_context(); });
    obs::Tracer::enable(true);
    const double context_read = ns_per_op(
        iterations, [] { (void)obs::current_trace_context(); });
    const obs::TraceContext remote{0x1234567890ABCDEFull, 0x42ull};
    const double remote_span = ns_per_op(iterations, [&] {
        obs::ScopedTraceContext scope(remote);
        obs::Span span("bench.span");
    });
    obs::Tracer::enable(false);
    obs::Tracer::clear();

    obs::TuningHealthMonitor monitor(2);
    std::size_t tick = 0;
    const double health_observe = ns_per_op(iterations, [&] {
        monitor.observe(tick & 1, 1.0 + 0.001 * static_cast<double>(tick & 7), 1);
        ++tick;
    });

    auto plain = make_tuner();
    const double tuner_plain = tuner_iteration_ns(*plain, tuner_iterations);

    obs::Tracer::enable(true);
    auto traced = make_tuner();
    const double tuner_traced = tuner_iteration_ns(*traced, tuner_iterations);

    obs::DecisionAuditTrail trail(1024);
    auto audited = make_tuner();
    audited->set_decision_hook([&](const DecisionEvent& event) {
        obs::Decision decision;
        decision.iteration = event.iteration;
        decision.algorithm = event.algorithm;
        decision.algorithm_name = event.algorithm_name;
        decision.explored = event.explored;
        decision.step_kind = event.step_kind;
        decision.weights = event.weights;
        trail.record(std::move(decision));
    });
    const double tuner_audited = tuner_iteration_ns(*audited, tuner_iterations);
    obs::Tracer::enable(false);
    obs::Tracer::clear();

    Table table({"measurement", "ns/op", "delta vs baseline"});
    const auto row = [&](const char* name, double ns, double reference) {
        table.row().text(name).num(ns, 2).num(ns - reference, 2);
    };
    row("empty loop", baseline, baseline);
    row("span, tracing disabled", span_disabled, baseline);
    row("span, tracing enabled", span_enabled, baseline);
    row("trace-context read, disabled", context_read_disabled, baseline);
    row("trace-context read, enabled", context_read, baseline);
    row("remote context + span, enabled", remote_span, baseline);
    row("health monitor observe()", health_observe, baseline);
    row("tuner iteration, untraced", tuner_plain, tuner_plain);
    row("tuner iteration, traced", tuner_traced, tuner_plain);
    row("tuner iteration, traced+audited", tuner_audited, tuner_plain);
    std::printf("%s\n", table.to_string().c_str());
    std::printf("audit window now holds %zu decisions (capacity 1024)\n",
                trail.size());
    return 0;
}

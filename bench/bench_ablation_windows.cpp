/// Ablation (DESIGN.md): sensitivity of the windowed strategies to their
/// window size, and of ε-Greedy to ε.  The paper fixes window = 16 and
/// ε ∈ {5,10,20}% without justification; this harness sweeps both on a
/// deterministic synthetic workload where algorithm 1 tunes from 23 ms down
/// to 8 ms and three competitors stay at 40/26/120 ms.

#include "harness.hpp"

using namespace atk;

namespace {

struct Synthetic {
    double base;
    double opt;
    double slope;
};

const std::vector<Synthetic> kAlgos{
    {40.0, 50.0, 0.00}, {8.0, 80.0, 0.50}, {20.0, 20.0, 0.20}, {120.0, 50.0, 1.00}};

std::vector<TunableAlgorithm> make_algorithms() {
    std::vector<TunableAlgorithm> algorithms;
    for (std::size_t i = 0; i < kAlgos.size(); ++i) {
        TunableAlgorithm a;
        a.name = "algo" + std::to_string(i);
        a.space.add(Parameter::ratio("x", 0, 100));
        a.initial = Configuration{{50}};
        a.searcher = std::make_unique<NelderMeadSearcher>();
        algorithms.push_back(std::move(a));
    }
    return algorithms;
}

/// Mean cost of the final third of a tuning run (regret proxy).
double late_cost(std::unique_ptr<NominalStrategy> strategy, std::size_t iterations,
                 std::uint64_t seed) {
    TwoPhaseTuner tuner(std::move(strategy), make_algorithms(), seed);
    const TuningTrace trace = tuner.run(
        [&](const Trial& trial) {
            const auto& algo = kAlgos[trial.algorithm];
            const double x = static_cast<double>(trial.config[0]);
            return algo.base + algo.slope * std::abs(x - algo.opt);
        },
        iterations);
    double total = 0.0;
    const std::size_t from = iterations * 2 / 3;
    for (std::size_t i = from; i < iterations; ++i) total += trace[i].cost;
    return total / static_cast<double>(iterations - from);
}

double averaged_late_cost(const std::function<std::unique_ptr<NominalStrategy>()>& make,
                          std::size_t iterations, std::size_t reps) {
    double total = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep)
        total += late_cost(make(), iterations, rep + 1);
    return total / static_cast<double>(reps);
}

} // namespace

int main(int argc, char** argv) {
    Cli cli("bench_ablation_windows",
            "Ablation: window-size and epsilon sensitivity of the strategies");
    cli.add_int("reps", 20, "repetitions per configuration")
        .add_int("iters", 300, "tuning iterations per run");
    if (!cli.parse(argc, argv)) return 1;
    const auto reps = static_cast<std::size_t>(cli.get_int("reps"));
    const auto iters = static_cast<std::size_t>(cli.get_int("iters"));

    bench::print_header("Ablation — strategy hyper-parameters",
                        "synthetic 4-algorithm workload, optimum 8 ms after tuning");
    std::printf("%zu reps x %zu iterations; value = mean cost of final third [ms]\n\n",
                reps, iters);

    {
        Table table({"window", "Gradient Weighted", "Sliding-Window AUC"});
        for (const std::size_t window : {2u, 4u, 8u, 16u, 32u, 64u}) {
            table.row()
                .integer(static_cast<long long>(window))
                .num(averaged_late_cost(
                         [&] { return std::make_unique<GradientWeighted>(window); },
                         iters, reps),
                     2)
                .num(averaged_late_cost(
                         [&] { return std::make_unique<SlidingWindowAuc>(window); },
                         iters, reps),
                     2);
        }
        std::printf("Window-size sweep (paper fixes 16):\n");
        table.print();
    }

    {
        Table table({"epsilon", "e-Greedy late cost"});
        for (const double epsilon : {0.01, 0.05, 0.10, 0.20, 0.35, 0.50}) {
            table.row()
                .num(epsilon, 2)
                .num(averaged_late_cost(
                         [&] { return std::make_unique<EpsilonGreedy>(epsilon); },
                         iters, reps),
                     2);
        }
        std::printf("\nEpsilon sweep (paper uses 0.05/0.10/0.20):\n");
        table.print();
    }

    {
        Table table({"temperature", "Softmax late cost"});
        for (const double t : {0.02, 0.05, 0.1, 0.2, 0.5, 1.0}) {
            table.row()
                .num(t, 2)
                .num(averaged_late_cost([&] { return std::make_unique<Softmax>(t); },
                                        iters, reps),
                     2);
        }
        std::printf("\nSoftmax temperature sweep (the paper's discussed alternative):\n");
        table.print();
    }

    std::printf(
        "\nExpected shape: e-Greedy's late cost grows roughly linearly with\n"
        "epsilon (exploration tax); the windowed strategies are fairly\n"
        "insensitive to the window size on this workload, supporting the\n"
        "paper's unexplained choice of 16.\n");
    return 0;
}

/// Reproduces Table I ("Parameter Classes"): Stevens' typology as realized
/// by the live atk::Parameter type system, including the subsumption of
/// properties across classes.

#include "core/parameter.hpp"
#include "harness.hpp"

using namespace atk;

int main() {
    bench::print_header("Table I — Parameter Classes",
                        "Stevens' typology as realized by atk::Parameter");

    // The paper's four example parameters, built with the real API.
    struct RowSpec {
        Parameter param;
        const char* property;
        const char* example;
    };
    const RowSpec rows[] = {
        {Parameter::nominal("algorithm", {"Boyer-Moore", "EBOM", "SSEF"}), "Labels",
         "Choice of algorithm"},
        {Parameter::ordinal("buffer", {"small", "medium", "large"}), "Order",
         "Choice of buffer sizes from a set {small, medium, large}"},
        {Parameter::interval("buffer_pct", 0, 100), "Distance",
         "Percentage of a maximum buffer size"},
        {Parameter::ratio("threads", 1, 16), "Natural Zero, Equality of Ratios",
         "Number of threads"},
    };

    Table table({"Class", "Distinguishing Property", "Example", "order?", "distance?",
                 "zero?"});
    for (const auto& row : rows) {
        table.row()
            .text(to_string(row.param.cls()))
            .text(row.property)
            .text(row.example)
            .text(row.param.has_order() ? "yes" : "no")
            .text(row.param.has_distance() ? "yes" : "no")
            .text(row.param.has_natural_zero() ? "yes" : "no");
    }
    table.print();

    std::printf(
        "\nEach class subsumes the properties of all previous classes, which is\n"
        "what the search strategies check: distance-based searchers reject the\n"
        "Nominal 'algorithm' parameter above — the paper's core observation.\n");
    return 0;
}

/// Baseline comparison (paper Sections II-B and V): PetaBricks/Nitro solve
/// algorithmic choice by *converting* the nominal parameter into an
/// input-feature model trained offline, instead of tuning it online.  This
/// harness implements that baseline (k-NN over pattern features, trained by
/// exhaustive offline measurement) and races four selectors on an
/// input-varying string-matching workload:
///
///   oracle         — per-query exhaustive best (lower bound, not a policy)
///   feature model  — offline-trained on other patterns (Nitro-style)
///   online tuner   — ε-Greedy, pays exploration at runtime (this paper)
///   Hybrid         — the hand-crafted pattern-length heuristic
///   fixed best     — the single algorithm that is best on average

#include "core/feature_model.hpp"
#include "stringmatch/corpus.hpp"
#include "stringmatch/parallel.hpp"
#include "stringmatch_experiment.hpp"
#include "support/clock.hpp"

using namespace atk;

namespace {

/// Features the Nitro paper would call user-defined: pattern length and its
/// distinct-character count.
FeatureVector features_of(const std::string& pattern) {
    std::vector<bool> seen(256, false);
    double distinct = 0.0;
    for (const char c : pattern)
        if (!seen[static_cast<unsigned char>(c)]) {
            seen[static_cast<unsigned char>(c)] = true;
            distinct += 1.0;
        }
    return {static_cast<double>(pattern.size()), distinct};
}

std::vector<std::string> sample_patterns(const std::string& corpus, Rng& rng,
                                         std::size_t count) {
    // Real substrings of the corpus, lengths spanning every matcher regime.
    std::vector<std::string> patterns;
    const std::size_t lengths[] = {2, 3, 5, 8, 12, 16, 24, 32, 48, 64};
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t len = lengths[i % std::size(lengths)];
        const std::size_t pos = rng.index(corpus.size() - len);
        patterns.push_back(corpus.substr(pos, len));
    }
    return patterns;
}

} // namespace

int main(int argc, char** argv) {
    Cli cli("bench_baseline_feature_model",
            "Baseline: offline feature model (PetaBricks/Nitro style) vs online tuning");
    cli.add_int("corpus-bytes", 2 * 1024 * 1024, "corpus size")
        .add_int("train-patterns", 40, "offline training workloads")
        .add_int("test-patterns", 20, "unseen evaluation workloads")
        .add_int("queries-per-pattern", 30, "repeated queries per test pattern")
        .add_int("threads", 0, "worker threads (0 = hardware)")
        .add_int("seed", 99, "pattern sampling seed");
    if (!cli.parse(argc, argv)) return 1;

    bench::print_header("Baseline — input-feature model vs online tuning",
                        "workload: repeated queries with per-pattern contexts");

    const std::string corpus = sm::bible_like_corpus(
        static_cast<std::size_t>(cli.get_int("corpus-bytes")), 2016, 2);
    auto matchers = sm::make_all_matchers_with_hybrid();
    const std::size_t hybrid_index = matchers.size() - 1;
    ThreadPool pool(static_cast<std::size_t>(cli.get_int("threads")));
    Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")));

    auto time_query = [&](std::size_t algorithm, const std::string& pattern) {
        Stopwatch watch;
        (void)sm::parallel_count(*matchers[algorithm], corpus, pattern, pool);
        return std::max(1e-6, watch.elapsed_ms());
    };

    // --- Offline training phase (the baseline's cost, reported below).
    Stopwatch training_watch;
    std::vector<TrainingWorkload> training;
    for (auto& pattern : sample_patterns(
             corpus, rng, static_cast<std::size_t>(cli.get_int("train-patterns")))) {
        TrainingWorkload workload;
        workload.features = features_of(pattern);
        workload.measure = [&, pattern](std::size_t a) { return time_query(a, pattern); };
        training.push_back(std::move(workload));
    }
    const FeatureModel model =
        train_feature_model(training, matchers.size(), 3, /*repetitions=*/3);
    const double training_ms = training_watch.elapsed_ms();

    // --- Evaluation on unseen patterns.
    const auto queries =
        static_cast<std::size_t>(cli.get_int("queries-per-pattern"));
    double total_oracle = 0.0;
    double total_model = 0.0;
    double total_online = 0.0;
    double total_hybrid = 0.0;
    std::vector<double> per_algorithm_total(matchers.size(), 0.0);

    const auto test_patterns = sample_patterns(
        corpus, rng, static_cast<std::size_t>(cli.get_int("test-patterns")));
    for (const auto& pattern : test_patterns) {
        // Oracle & fixed-algorithm reference costs for this pattern.
        std::vector<double> direct(matchers.size());
        for (std::size_t a = 0; a < matchers.size(); ++a) {
            direct[a] = std::min(time_query(a, pattern), time_query(a, pattern));
            per_algorithm_total[a] += direct[a] * static_cast<double>(queries);
        }
        total_oracle +=
            *std::min_element(direct.begin(), direct.end()) * static_cast<double>(queries);

        // Feature model: one prediction, then exploit for all queries.
        const std::size_t predicted = model.predict(features_of(pattern));
        for (std::size_t q = 0; q < queries; ++q)
            total_model += time_query(predicted, pattern);

        // Online tuner: fresh tuning run per pattern context.
        std::vector<TunableAlgorithm> algorithms;
        for (const auto& matcher : matchers)
            algorithms.push_back(TunableAlgorithm::untunable(matcher->name()));
        TwoPhaseTuner tuner(std::make_unique<EpsilonGreedy>(0.10), std::move(algorithms),
                            rng());
        for (std::size_t q = 0; q < queries; ++q) {
            const Trial trial = tuner.next();
            const Millis elapsed = time_query(trial.algorithm, pattern);
            tuner.report(trial, elapsed);
            total_online += elapsed;
        }

        // Hand-crafted heuristic.
        for (std::size_t q = 0; q < queries; ++q)
            total_hybrid += time_query(hybrid_index, pattern);
    }

    const double total_queries =
        static_cast<double>(test_patterns.size()) * static_cast<double>(queries);
    const double best_fixed =
        *std::min_element(per_algorithm_total.begin(), per_algorithm_total.end());

    Table table({"selector", "mean query [ms]", "vs oracle", "offline cost [ms]"});
    auto add = [&](const std::string& name, double total, double offline) {
        table.row()
            .text(name)
            .num(total / total_queries, 4)
            .num(total / total_oracle, 2)
            .num(offline, 1);
    };
    add("oracle (per-query best)", total_oracle, 0.0);
    add("feature model (Nitro-style)", total_model, training_ms);
    add("online e-Greedy (this paper)", total_online, 0.0);
    add("Hybrid heuristic", total_hybrid, 0.0);
    add("best fixed algorithm", best_fixed, 0.0);
    std::printf("\n%zu test patterns x %zu queries, %zu training patterns\n\n",
                test_patterns.size(), queries, training.size());
    table.print();

    std::printf(
        "\nExpected shape: the feature model lands near the oracle but paid an\n"
        "offline training phase and needed feature engineering; the online\n"
        "tuner gets close while paying only in-run exploration (its gap shrinks\n"
        "with more queries per context); any single fixed algorithm is worse\n"
        "than either — the reason algorithmic choice needs tuning at all.\n");
    return 0;
}

/// Measures what fleet operation costs: routed throughput over a three-node
/// loopback ring, the latency blip a client sees when a node dies mid-stream
/// (connection-failure detection + failover to the ring successor), and the
/// bandwidth the warm-start replication cadence consumes.
///
///   steady        recommend+report round trips routed by the consistent-
///                 hash ring, all three nodes up
///   kill          the same stream with the busiest node killed halfway:
///                 p50/p99 before vs after, plus the worst single op (the
///                 blip — every op still succeeds)
///   replication   explicit replicate_now() rounds over the warm fleet:
///                 wall time per round and replica bytes/s shipped
///
/// The numbers quantify the paper's warm-start story at fleet scale: what a
/// worker pays in the steady state, what a node loss costs the tail, and
/// what keeping successors warm costs the network.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/autotune.hpp"
#include "fleet/fleet.hpp"
#include "harness.hpp"
#include "net/net.hpp"
#include "runtime/runtime.hpp"
#include "support/cli.hpp"
#include "support/clock.hpp"
#include "support/csv.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

using namespace atk;
using namespace atk::runtime;

namespace {

std::vector<TunableAlgorithm> two_algorithms() {
    std::vector<TunableAlgorithm> algorithms;
    algorithms.push_back(TunableAlgorithm::untunable("A"));

    TunableAlgorithm b;
    b.name = "B";
    b.space.add(Parameter::ratio("x", 0, 50));
    b.initial = Configuration{{0}};
    b.searcher = std::make_unique<NelderMeadSearcher>();
    algorithms.push_back(std::move(b));
    return algorithms;
}

TunerFactory factory() {
    return [](const std::string& session) {
        return std::make_unique<TwoPhaseTuner>(std::make_unique<EpsilonGreedy>(0.10),
                                               two_algorithms(),
                                               std::hash<std::string>{}(session));
    };
}

/// One in-process fleet member; declaration order is the construction
/// contract (store → hydrating service → node → server with peer ops).
struct Member {
    fleet::ReplicaStore store;
    TuningService service;
    fleet::FleetNode node;
    std::unique_ptr<net::TuningServer> server;

    Member(const std::string& name, std::vector<fleet::PeerSpec> peers)
        : service(factory(), service_options(store)),
          node(service, store, node_options(name, std::move(peers))) {
        net::ServerOptions options;
        options.port = 0;
        options.worker_threads = 2;
        options.peer_ops = node.peer_ops();
        server = std::make_unique<net::TuningServer>(service, options);
        server->start();
    }
    ~Member() {
        kill();
        service.stop();
    }

    void kill() {
        if (server) {
            server->stop();
            server.reset();
        }
    }
    [[nodiscard]] bool alive() const { return server != nullptr; }

    static ServiceOptions service_options(fleet::ReplicaStore& store) {
        ServiceOptions options;
        options.queue_capacity = 65536;
        options.hydrator = fleet::replica_hydrator(store);
        return options;
    }
    static fleet::FleetNodeOptions node_options(const std::string& name,
                                                std::vector<fleet::PeerSpec> peers) {
        fleet::FleetNodeOptions options;
        options.node_name = name;
        options.peers = std::move(peers);
        options.peer_client.request_timeout = std::chrono::milliseconds(2000);
        options.peer_client.max_attempts = 1;
        options.peer_client.backoff_base = std::chrono::milliseconds(1);
        options.peer_client.backoff_cap = std::chrono::milliseconds(5);
        return options;
    }
};

/// A three-member loopback fleet: built with port-0 placeholder peers, real
/// ports late-bound once every server knows its ephemeral port.
struct Fleet {
    std::vector<std::string> names{"node-a", "node-b", "node-c"};
    std::vector<std::unique_ptr<Member>> members;

    Fleet() {
        std::vector<std::uint16_t> ports(3, 0);
        for (std::size_t i = 0; i < 3; ++i) {
            std::vector<fleet::PeerSpec> peers;
            for (std::size_t j = 0; j < 3; ++j)
                if (j != i) peers.push_back({names[j], "127.0.0.1", 0});
            members.push_back(std::make_unique<Member>(names[i], peers));
            ports[i] = members[i]->server->port();
        }
        for (std::size_t i = 0; i < 3; ++i)
            for (std::size_t j = 0; j < 3; ++j)
                if (j != i) members[i]->node.set_peer_port(names[j], ports[j]);
    }

    [[nodiscard]] fleet::FleetClientOptions client_options() const {
        fleet::FleetClientOptions options;
        for (std::size_t i = 0; i < 3; ++i)
            options.nodes.push_back(
                {names[i], "127.0.0.1", members[i]->server->port()});
        options.client.request_timeout = std::chrono::milliseconds(2000);
        options.client.max_attempts = 2;
        options.client.backoff_base = std::chrono::milliseconds(1);
        options.client.backoff_cap = std::chrono::milliseconds(5);
        options.retry_down_after = std::chrono::hours(1);
        return options;
    }
};

struct Window {
    double ops_per_second = 0.0;
    double p50_us = 0.0;
    double p99_us = 0.0;
    double max_us = 0.0;
};

Window summarize(const std::vector<double>& latencies_us, double wall_ms) {
    Window window;
    if (latencies_us.empty()) return window;
    window.ops_per_second =
        static_cast<double>(latencies_us.size()) / (wall_ms / 1000.0);
    window.p50_us = quantile(latencies_us, 0.50);
    window.p99_us = quantile(latencies_us, 0.99);
    for (const double v : latencies_us) window.max_us = std::max(window.max_us, v);
    return window;
}

/// One operation: a routed recommend + acked report round trip.
double timed_op(fleet::FleetClient& client, const std::string& session) {
    Stopwatch op;
    const Ticket ticket = client.recommend(session);
    (void)client.report(session, ticket, 1.0 + static_cast<double>(ticket.trial.algorithm));
    return op.elapsed_ms() * 1000.0;
}

} // namespace

int main(int argc, char** argv) {
    Cli cli("bench_fleet_failover",
            "Fleet layer: routed throughput, the node-kill latency blip, and "
            "replication bandwidth over a three-node loopback ring");
    cli.add_int("ops", 2000, "operations per measured window");
    cli.add_int("sessions", 32, "distinct sessions driven round-robin");
    cli.add_int("rounds", 20, "replication rounds measured");
    if (!cli.parse(argc, argv)) return 1;

    const auto ops = static_cast<std::size_t>(cli.get_int("ops"));
    const auto session_count = static_cast<std::size_t>(cli.get_int("sessions"));
    const auto rounds = static_cast<std::size_t>(cli.get_int("rounds"));

    bench::init_trace_from_env();

    Fleet fleet;
    fleet::FleetClient client(fleet.client_options());
    std::vector<std::string> sessions;
    for (std::size_t i = 0; i < session_count; ++i)
        sessions.push_back("fleet/w" + std::to_string(i));

    std::printf("bench_fleet_failover: 3-node loopback ring, %zu sessions, "
                "%zu ops/window\n\n",
                session_count, ops);

    // Warm up: every session materialized on its owner.
    for (const auto& session : sessions) (void)timed_op(client, session);

    // ---- steady state ----
    std::vector<double> steady_lat;
    steady_lat.reserve(ops);
    Stopwatch steady_watch;
    for (std::size_t i = 0; i < ops; ++i)
        steady_lat.push_back(timed_op(client, sessions[i % session_count]));
    const Window steady = summarize(steady_lat, steady_watch.elapsed_ms());

    // ---- replication bandwidth (warm fleet, before the kill) ----
    const auto bytes_before = [&] {
        std::size_t total = 0;
        for (const auto& member : fleet.members)
            total += member->node.stats().push_bytes;
        return total;
    };
    const std::size_t push_bytes_start = bytes_before();
    std::size_t replicated_entries = 0;
    Stopwatch replicate_watch;
    for (std::size_t round = 0; round < rounds; ++round)
        for (const auto& member : fleet.members)
            replicated_entries += member->node.replicate_now();
    const double replicate_ms = replicate_watch.elapsed_ms();
    const std::size_t replicated_bytes = bytes_before() - push_bytes_start;

    // ---- kill the busiest node mid-stream ----
    std::vector<std::size_t> owned(3, 0);
    for (const auto& session : sessions)
        for (std::size_t i = 0; i < 3; ++i)
            if (client.ring().owner(session) == fleet.names[i]) ++owned[i];
    std::size_t victim = 0;
    for (std::size_t i = 1; i < 3; ++i)
        if (owned[i] > owned[victim]) victim = i;

    std::vector<double> before_lat;
    std::vector<double> after_lat;
    before_lat.reserve(ops / 2);
    after_lat.reserve(ops / 2);
    Stopwatch before_watch;
    for (std::size_t i = 0; i < ops / 2; ++i)
        before_lat.push_back(timed_op(client, sessions[i % session_count]));
    const double before_ms = before_watch.elapsed_ms();
    fleet.members[victim]->kill();
    Stopwatch after_watch;
    for (std::size_t i = 0; i < ops / 2; ++i)
        after_lat.push_back(timed_op(client, sessions[i % session_count]));
    const double after_ms = after_watch.elapsed_ms();
    const Window before = summarize(before_lat, before_ms);
    const Window after = summarize(after_lat, after_ms);

    Table table({"window", "ops/s", "p50 [us]", "p99 [us]", "max [us]"});
    CsvWriter csv({"window", "ops_per_second", "p50_us", "p99_us", "max_us"});
    const auto emit = [&](const char* label, const Window& w) {
        table.row()
            .text(label)
            .num(w.ops_per_second, 0)
            .num(w.p50_us, 1)
            .num(w.p99_us, 1)
            .num(w.max_us, 1);
        csv.add_row({label, format_num(w.ops_per_second, 0), format_num(w.p50_us, 2),
                     format_num(w.p99_us, 2), format_num(w.max_us, 2)});
    };
    emit("steady (3 nodes)", steady);
    emit("pre-kill", before);
    emit("post-kill (2 nodes)", after);
    std::printf("%s\n", table.to_string().c_str());

    std::printf("killed %s (owned %zu/%zu sessions): %llu failover(s), "
                "worst post-kill op %.1f us, every op succeeded\n",
                fleet.names[victim].c_str(), owned[victim], session_count,
                static_cast<unsigned long long>(client.failovers()),
                after.max_us);

    const double bytes_per_second =
        replicate_ms > 0.0
            ? static_cast<double>(replicated_bytes) / (replicate_ms / 1000.0)
            : 0.0;
    std::printf("replication: %zu round(s) in %.1f ms (%.2f ms/round), "
                "%zu entrie(s) / %zu byte(s) shipped, %.0f bytes/s\n",
                rounds, replicate_ms, replicate_ms / static_cast<double>(rounds),
                replicated_entries, replicated_bytes, bytes_per_second);
    csv.add_row({"replication", format_num(bytes_per_second, 0),
                 format_num(replicate_ms / static_cast<double>(rounds), 2), "", ""});

    const std::string out = "results/fleet_failover.csv";
    if (csv.write_file(out)) std::printf("wrote %s\n", out.c_str());

    std::printf(
        "\nReading the numbers: steady-state ops pay one routed loopback round\n"
        "trip (two frames); the post-kill window folds the one-time detection\n"
        "blip (max) into an otherwise unchanged tail served by the successor;\n"
        "replication ships only sessions whose tuner state advanced since the\n"
        "last round (version-deduplicated at the receiver).\n");
    return 0;
}

/// google-benchmark microbenchmarks of the seven matchers + Hybrid:
/// throughput over corpus size and pattern length, sequential vs parallel.
/// Complements Figure 1 with per-algorithm scaling data.

#include <benchmark/benchmark.h>

#include "stringmatch/corpus.hpp"
#include "stringmatch/matcher.hpp"
#include "stringmatch/parallel.hpp"

namespace {

using namespace atk;
using namespace atk::sm;

const std::vector<std::unique_ptr<Matcher>>& matchers() {
    static const auto instance = make_all_matchers_with_hybrid();
    return instance;
}

const std::string& corpus() {
    static const std::string text = bible_like_corpus(1 << 20, 2016, 4);
    return text;
}

void matcher_args(benchmark::internal::Benchmark* bench) {
    // {matcher index, pattern length}
    for (int m = 0; m < 8; ++m)
        for (const int pattern_len : {4, 16, 39})
            bench->Args({m, pattern_len});
}

void BM_MatcherSequential(benchmark::State& state) {
    const auto& matcher = *matchers()[static_cast<std::size_t>(state.range(0))];
    const auto pattern_len = static_cast<std::size_t>(state.range(1));
    const std::string pattern(query_phrase().substr(0, pattern_len));
    std::size_t found = 0;
    for (auto _ : state) {
        found = matcher.count(corpus(), pattern);
        benchmark::DoNotOptimize(found);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(corpus().size()));
    state.SetLabel(matcher.name() + " m=" + std::to_string(pattern_len));
}
BENCHMARK(BM_MatcherSequential)->Apply(matcher_args)->Unit(benchmark::kMillisecond);

void BM_MatcherParallel(benchmark::State& state) {
    static ThreadPool pool;
    const auto& matcher = *matchers()[static_cast<std::size_t>(state.range(0))];
    const std::string pattern(query_phrase());
    std::size_t found = 0;
    for (auto _ : state) {
        found = parallel_count(matcher, corpus(), pattern, pool);
        benchmark::DoNotOptimize(found);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(corpus().size()));
    state.SetLabel(matcher.name() + " parallel");
}
BENCHMARK(BM_MatcherParallel)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

void BM_DnaCorpus(benchmark::State& state) {
    // Small-alphabet stress: the paper's second corpus (human genome).
    static const std::string pattern = "GATTACAGATTACAGATTACAGATTACAGATT";
    static const std::string text = dna_corpus(1 << 20, pattern, 7, 4);
    const auto& matcher = *matchers()[static_cast<std::size_t>(state.range(0))];
    std::size_t found = 0;
    for (auto _ : state) {
        found = matcher.count(text, pattern);
        benchmark::DoNotOptimize(found);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(text.size()));
    state.SetLabel(matcher.name() + " dna");
}
BENCHMARK(BM_DnaCorpus)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

/// google-benchmark microbenchmarks of the four kD-tree builders: build
/// time per algorithm and scene size, plus traversal throughput of the
/// resulting trees.  Complements Figure 5 with absolute substrate numbers.

#include <benchmark/benchmark.h>

#include "raytrace/builder.hpp"
#include "raytrace/renderer.hpp"

namespace {

using namespace atk;
using namespace atk::rt;

const Scene& cathedral() {
    static const Scene scene = make_cathedral();
    return scene;
}

const char* builder_name(int index) {
    static const char* names[] = {"Inplace", "Lazy", "Nested", "Wald-Havran"};
    return names[index];
}

void BM_TreeBuild(benchmark::State& state) {
    static ThreadPool pool;
    const auto builder = make_builder(builder_name(static_cast<int>(state.range(0))));
    const BuildConfig config = builder->decode(builder->default_config());
    for (auto _ : state) {
        KdTree tree = builder->build(cathedral(), config, pool);
        benchmark::DoNotOptimize(tree.node_count());
    }
    state.SetLabel(builder->name());
}
BENCHMARK(BM_TreeBuild)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_TreeBuildSoup(benchmark::State& state) {
    static ThreadPool pool;
    const auto scene = make_soup(static_cast<std::size_t>(state.range(1)), 3);
    const auto builder = make_builder(builder_name(static_cast<int>(state.range(0))));
    const BuildConfig config = builder->decode(builder->default_config());
    for (auto _ : state) {
        KdTree tree = builder->build(scene, config, pool);
        benchmark::DoNotOptimize(tree.node_count());
    }
    state.SetLabel(std::string(builder->name()) + " n=" +
                   std::to_string(state.range(1)));
}
BENCHMARK(BM_TreeBuildSoup)
    ->ArgsProduct({{0, 1, 2, 3}, {1000, 8000}})
    ->Unit(benchmark::kMillisecond);

void BM_RenderFrame(benchmark::State& state) {
    static ThreadPool pool;
    const auto builder = make_builder(builder_name(static_cast<int>(state.range(0))));
    const BuildConfig config = builder->decode(builder->default_config());
    const KdTree tree = builder->build(cathedral(), config, pool);
    const Camera camera(cathedral().camera_position, cathedral().camera_target, 60.0f,
                        96, 72);
    for (auto _ : state) {
        const Image image = render(cathedral(), tree, camera, pool);
        benchmark::DoNotOptimize(image.checksum());
    }
    state.SetLabel(std::string(builder->name()) + " render-only");
}
BENCHMARK(BM_RenderFrame)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

void BM_SahBinsSweep(benchmark::State& state) {
    // Build cost as a function of the tunable bin count (Nested builder).
    static ThreadPool pool;
    const auto builder = make_builder("Nested");
    BuildConfig config = builder->decode(builder->default_config());
    config.sah_bins = static_cast<int>(state.range(0));
    for (auto _ : state) {
        KdTree tree = builder->build(cathedral(), config, pool);
        benchmark::DoNotOptimize(tree.node_count());
    }
    state.SetLabel("bins=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_SahBinsSweep)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

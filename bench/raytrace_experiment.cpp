#include "raytrace_experiment.hpp"

namespace atk::bench {

std::vector<std::string> RaytraceContext::algorithm_names() const {
    std::vector<std::string> names;
    for (const auto& builder : builders) names.push_back(builder->name());
    return names;
}

void add_raytrace_options(Cli& cli) {
    cli.add_int("reps", 10, "experiment repetitions (paper: 100)")
        .add_int("frames", 50, "frames (= tuning iterations) per repetition (paper: 100)")
        .add_int("width", 96, "image width")
        .add_int("height", 72, "image height")
        .add_int("floor-tiles", 12, "cathedral floor tessellation")
        .add_int("column-segments", 10, "cathedral column tessellation")
        .add_int("vault-segments", 16, "cathedral vault tessellation")
        .add_int("clutter", 24, "cathedral clutter boxes")
        .add_int("threads", 0, "worker threads (0 = hardware)")
        .add_flag("paper", "paper-scale parameters (100 reps x 100 frames, finer scene)");
}

RaytraceContext make_raytrace_context(const Cli& cli) {
    const bool paper = cli.get_flag("paper");
    rt::CathedralParams params;
    params.floor_tiles = static_cast<int>(cli.get_int("floor-tiles")) * (paper ? 2 : 1);
    params.column_segments =
        static_cast<int>(cli.get_int("column-segments")) * (paper ? 2 : 1);
    params.vault_segments =
        static_cast<int>(cli.get_int("vault-segments")) * (paper ? 2 : 1);
    params.clutter = static_cast<int>(cli.get_int("clutter")) * (paper ? 2 : 1);

    RaytraceContext context;
    context.pipeline = std::make_unique<rt::RaytracePipeline>(
        rt::make_cathedral(params), static_cast<int>(cli.get_int("width")),
        static_cast<int>(cli.get_int("height")),
        static_cast<std::size_t>(cli.get_int("threads")));
    context.builders = rt::make_all_builders();
    std::printf("scene: %zu triangles, %dx%d px\n",
                context.pipeline->scene().triangles.size(),
                static_cast<int>(cli.get_int("width")),
                static_cast<int>(cli.get_int("height")));
    return context;
}

std::size_t raytrace_reps(const Cli& cli) {
    return cli.get_flag("paper") ? 100 : static_cast<std::size_t>(cli.get_int("reps"));
}

std::size_t raytrace_frames(const Cli& cli) {
    return cli.get_flag("paper") ? 100 : static_cast<std::size_t>(cli.get_int("frames"));
}

RunResult run_raytrace_tuning(RaytraceContext& context, const StrategySpec& strategy,
                              std::size_t frames, std::uint64_t seed) {
    TwoPhaseTuner tuner(strategy.make(), rt::make_tunable_builders(context.builders),
                        seed);
    const TuningTrace trace = tuner.run(
        [&](const Trial& trial) {
            const auto& builder = *context.builders[trial.algorithm];
            return std::max(1e-6, context.pipeline->render_frame(
                                      builder, builder.decode(trial.config)));
        },
        frames);

    RunResult result;
    result.costs = trace.costs();
    result.counts = trace.choice_counts(context.builders.size());
    return result;
}

std::vector<double> run_single_builder_timeline(RaytraceContext& context,
                                                std::size_t builder_index,
                                                std::size_t frames, std::uint64_t seed) {
    const auto& builder = *context.builders[builder_index];
    NelderMeadSearcher searcher;
    const SearchSpace space = builder.tuning_space();  // must outlive the searcher
    searcher.reset(space, builder.default_config());
    Rng rng(seed);
    std::vector<double> timeline;
    timeline.reserve(frames);
    for (std::size_t frame = 0; frame < frames; ++frame) {
        const Configuration config = searcher.propose(rng);
        const Millis cost = std::max(
            1e-6, context.pipeline->render_frame(builder, builder.decode(config)));
        searcher.feedback(config, cost);
        timeline.push_back(cost);
    }
    return timeline;
}

} // namespace atk::bench

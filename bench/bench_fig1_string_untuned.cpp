/// Reproduces Figure 1 ("String Matching: Performance of the parallel string
/// matching algorithms"): a per-algorithm boxplot of untuned search times
/// for the Revelation phrase on the Bible-like corpus.

#include "stringmatch/corpus.hpp"
#include "stringmatch/parallel.hpp"
#include "stringmatch_experiment.hpp"
#include "support/clock.hpp"

using namespace atk;

int main(int argc, char** argv) {
    Cli cli("bench_fig1_string_untuned",
            "Figure 1: untuned per-algorithm string matching performance");
    bench::add_stringmatch_options(cli);
    if (!cli.parse(argc, argv)) return 1;

    bench::StringMatchContext context = bench::make_stringmatch_context(cli);
    bench::print_header("Figure 1 — String Matching: untuned algorithm performance",
                        "query: \"" + context.pattern + "\"");
    const std::size_t reps = bench::stringmatch_reps(cli);
    std::printf("corpus: %zu bytes, %zu repetitions, %zu threads\n\n",
                context.corpus.size(), reps, context.pool->thread_count());

    Table table({"algorithm", "min", "q1", "median", "q3", "max", "mean", "stddev"});
    CsvWriter csv({"algorithm", "repetition", "time_ms"});
    for (const auto& matcher : context.matchers) {
        std::vector<double> times;
        std::size_t occurrences = 0;
        for (std::size_t rep = 0; rep < reps; ++rep) {
            Stopwatch watch;
            occurrences = sm::parallel_count(*matcher, context.corpus, context.pattern,
                                             *context.pool);
            times.push_back(watch.elapsed_ms());
            csv.add_row({matcher->name(), std::to_string(rep),
                         format_num(times.back(), 4)});
        }
        const BoxStats stats = summarize(times);
        table.row()
            .text(matcher->name())
            .num(stats.min, 3)
            .num(stats.q1, 3)
            .num(stats.median, 3)
            .num(stats.q3, 3)
            .num(stats.max, 3)
            .num(stats.mean, 3)
            .num(stats.stddev, 3);
        if (occurrences == 0)
            std::fprintf(stderr, "warning: %s found no occurrences\n",
                         matcher->name().c_str());
    }
    std::printf("(all times in ms; boxplot columns as in the paper's Figure 1)\n\n");
    table.print();
    const std::string path = bench::results_path("fig1_string_untuned.csv");
    if (csv.write_file(path)) std::printf("\n[csv] %s\n", path.c_str());

    std::printf(
        "\nExpected shape (paper): SSEF, EBOM, Hash3 and Hybrid are the fast\n"
        "group; Boyer-Moore, KMP and ShiftOr are the slow group with larger\n"
        "spread.\n");
    return 0;
}

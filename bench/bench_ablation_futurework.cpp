/// Ablation (paper Sections IV-C and VI, "future work"): the strategy
/// combinations the paper anticipates, raced on the two failure modes of
/// plain ε-Greedy — a crossover workload (an initially-slower algorithm
/// tunes past the early leader) and a converged steady state (where
/// continued exploration is pure overhead).

#include "harness.hpp"

using namespace atk;

namespace {

std::vector<TunableAlgorithm> crossover_workload() {
    std::vector<TunableAlgorithm> algorithms;
    algorithms.push_back(TunableAlgorithm::untunable("quickstart"));
    TunableAlgorithm slowburner;
    slowburner.name = "slowburner";
    slowburner.space.add(Parameter::ratio("x", 0, 100));
    slowburner.initial = Configuration{{10}};
    slowburner.searcher = std::make_unique<NelderMeadSearcher>();
    algorithms.push_back(std::move(slowburner));
    return algorithms;
}

Cost measure_crossover(const Trial& trial) {
    if (trial.algorithm == 0) return 20.0;  // immediately decent, flat
    const double x = static_cast<double>(trial.config[0]);
    return 8.0 + 0.3 * std::abs(x - 85.0);  // 30.5 at start, 8 when tuned
}

struct Outcome {
    double late_mean = 0.0;       // mean cost of the final third
    double winner_share = 0.0;    // share of late iterations on algorithm 1
};

Outcome race(const std::function<std::unique_ptr<NominalStrategy>()>& factory,
             std::size_t iterations, std::size_t reps) {
    Outcome outcome;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        TwoPhaseTuner tuner(factory(), crossover_workload(), rep + 1);
        const TuningTrace trace = tuner.run(measure_crossover, iterations);
        const std::size_t from = iterations * 2 / 3;
        double late = 0.0;
        std::size_t winner = 0;
        for (std::size_t i = from; i < iterations; ++i) {
            late += trace[i].cost;
            if (trace[i].algorithm == 1) ++winner;
        }
        outcome.late_mean += late / static_cast<double>(iterations - from);
        outcome.winner_share +=
            static_cast<double>(winner) / static_cast<double>(iterations - from);
    }
    outcome.late_mean /= static_cast<double>(reps);
    outcome.winner_share /= static_cast<double>(reps);
    return outcome;
}

} // namespace

int main(int argc, char** argv) {
    Cli cli("bench_ablation_futurework",
            "Ablation: the paper's anticipated strategy combinations");
    cli.add_int("reps", 20, "repetitions per strategy")
        .add_int("iters", 300, "tuning iterations per run");
    if (!cli.parse(argc, argv)) return 1;
    const auto reps = static_cast<std::size_t>(cli.get_int("reps"));
    const auto iters = static_cast<std::size_t>(cli.get_int("iters"));

    bench::print_header(
        "Ablation — future-work strategy combinations",
        "crossover workload: flat 20 ms vs 30.5 ms tuning down to 8 ms");
    std::printf("%zu reps x %zu iterations; late = final third\n\n", reps, iters);

    struct Candidate {
        std::string label;
        std::function<std::unique_ptr<NominalStrategy>()> make;
    };
    const std::vector<Candidate> candidates{
        {"e-Greedy (10%) [paper]", [] { return std::make_unique<EpsilonGreedy>(0.10); }},
        {"e-Greedy (20%) [paper]", [] { return std::make_unique<EpsilonGreedy>(0.20); }},
        {"Gradient Weighted [paper]",
         [] { return std::make_unique<GradientWeighted>(16); }},
        {"Gradient-Greedy (10%) [combined]",
         [] { return std::make_unique<GradientGreedy>(0.10, 16); }},
        {"Decaying e-Greedy (20%, 0.02)",
         [] { return std::make_unique<DecayingEpsilonGreedy>(0.20, 0.02); }},
        {"Softmax (t=0.1)", [] { return std::make_unique<Softmax>(0.1); }},
        {"Sliding-Window AUC [paper]",
         [] { return std::make_unique<SlidingWindowAuc>(16); }},
    };

    Table table({"strategy", "late mean [ms]", "late winner share"});
    for (const auto& candidate : candidates) {
        const Outcome outcome = race(candidate.make, iters, reps);
        table.row()
            .text(candidate.label)
            .num(outcome.late_mean, 2)
            .num(outcome.winner_share, 2);
    }
    table.print();

    std::printf(
        "\nExpected shape: all greedy-family strategies find the crossover\n"
        "(winner share near 1) and approach the 8 ms optimum; pure Gradient\n"
        "Weighted keeps sampling both algorithms (the paper's 'special case,\n"
        "not applicable in practice'); the decaying schedule shaves the\n"
        "residual exploration tax off plain e-Greedy.\n");
    return 0;
}

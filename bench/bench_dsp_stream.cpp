/// Per-block latency distribution of the three streaming convolution
/// engines (case study 3): p50/p95/p99 wall-clock per block and the
/// deadline-miss rate against the real-time audio budget, per algorithm
/// across block sizes.  This is the measured surface the dsp tuning space
/// exposes — direct wins tiny blocks, single-FFT overlap-add the middle,
/// uniform partitioning the long-impulse regime — and the reason a tail
/// objective can disagree with the paper's mean-time objective.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "dsp/dsp.hpp"
#include "harness.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"

using namespace atk;

namespace {

/// Real-time budget of one block at 48 kHz, in milliseconds: a streaming
/// convolver must finish a block before the next one arrives.
double audio_budget_ms(std::size_t block) {
    return static_cast<double>(block) / 48000.0 * 1000.0;
}

std::vector<std::unique_ptr<dsp::Convolver>> engines_for(
    const std::vector<double>& impulse, std::size_t block) {
    std::vector<std::unique_ptr<dsp::Convolver>> engines;
    engines.push_back(std::make_unique<dsp::DirectConvolver>(impulse, block));
    engines.push_back(std::make_unique<dsp::OverlapAddConvolver>(impulse, block));
    const std::size_t partition = std::min<std::size_t>(block, 64);
    engines.push_back(
        std::make_unique<dsp::PartitionedConvolver>(impulse, block, partition));
    return engines;
}

} // namespace

int main(int argc, char** argv) {
    Cli cli("bench_dsp_stream",
            "Per-block latency distribution of the streaming convolvers");
    cli.add_int("ir", 1024, "impulse response length (samples)");
    cli.add_int("blocks", 400, "blocks streamed per engine/block-size pair");
    cli.add_int("warmup", 32, "untimed warm-up blocks per run");
    if (!cli.parse(argc, argv)) return 0;

    const auto ir_length = static_cast<std::size_t>(cli.get_int("ir"));
    const auto blocks = static_cast<std::size_t>(cli.get_int("blocks"));
    const auto warmup = static_cast<std::size_t>(cli.get_int("warmup"));

    bench::print_header(
        "DSP stream — per-block latency tails",
        "p50/p95/p99 per block and 48 kHz deadline misses, per engine");

    Table table({"engine", "block", "budget ms", "p50 ms", "p95 ms", "p99 ms",
                 "miss %"});
    CsvWriter csv({"engine", "block", "budget_ms", "p50_ms", "p95_ms", "p99_ms",
                   "miss_rate"});

    for (const std::size_t block : {64, 128, 256, 512, 1024}) {
        dsp::StreamSpec spec;
        spec.ir_length = ir_length;
        spec.deadline_ms = audio_budget_ms(block);
        dsp::StreamHarness harness(spec);
        Rng ir_rng(spec.seed);
        const std::vector<double> impulse =
            dsp::make_impulse_response(ir_length, ir_rng);
        for (const auto& engine : engines_for(impulse, block)) {
            (void)harness.run(*engine, warmup);  // fault in caches/pages
            const dsp::StreamReport report = harness.run(*engine, blocks);
            table.row()
                .text(engine->name())
                .integer(static_cast<long long>(block))
                .num(spec.deadline_ms, 3)
                .num(report.p50(), 4)
                .num(report.p95(), 4)
                .num(report.p99(), 4)
                .num(report.miss_rate() * 100.0, 1);
            csv.add_row({engine->name(), std::to_string(block),
                         std::to_string(spec.deadline_ms),
                         std::to_string(report.p50()),
                         std::to_string(report.p95()),
                         std::to_string(report.p99()),
                         std::to_string(report.miss_rate())});
        }
    }
    table.print();

    const std::string path = bench::results_path("dsp_stream.csv");
    if (csv.write_file(path))
        std::printf("\nraw series: %s\n", path.c_str());

    std::printf(
        "\nThe mean-fastest engine is not the tail-safest one: direct's p99\n"
        "grows linearly with the impulse while partitioned amortizes it, which\n"
        "is exactly the disagreement the quantile/deadline cost objectives\n"
        "surface during online tuning (tests/sim/deadline_test.cpp).\n");
    return 0;
}

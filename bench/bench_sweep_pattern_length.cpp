/// Pattern-length sweep over all eight matchers: the data behind the
/// Hybrid matcher's hand-crafted thresholds and the regime structure the
/// Nitro-style feature model learns.  For every length, prints each
/// matcher's median time and marks the winner.

#include "stringmatch/corpus.hpp"
#include "stringmatch/parallel.hpp"
#include "stringmatch_experiment.hpp"
#include "support/clock.hpp"

using namespace atk;

int main(int argc, char** argv) {
    Cli cli("bench_sweep_pattern_length",
            "per-matcher performance as a function of pattern length");
    cli.add_int("corpus-bytes", 2 * 1024 * 1024, "corpus size")
        .add_int("reps", 7, "repetitions per (matcher, length)")
        .add_int("threads", 0, "worker threads (0 = hardware)")
        .add_string("corpus", "bible", "corpus kind: bible | dna");
    if (!cli.parse(argc, argv)) return 1;

    bench::print_header("Sweep — matcher performance by pattern length",
                        "the regimes behind the Hybrid heuristic");

    const bool dna = cli.get_string("corpus") == "dna";
    const auto bytes = static_cast<std::size_t>(cli.get_int("corpus-bytes"));
    const std::string corpus = dna ? sm::dna_corpus(bytes, "ACGT", 2016, 0)
                                   : sm::bible_like_corpus(bytes, 2016, 0);
    auto matchers = sm::make_all_matchers_with_hybrid();
    ThreadPool pool(static_cast<std::size_t>(cli.get_int("threads")));
    const auto reps = static_cast<std::size_t>(cli.get_int("reps"));
    Rng rng(17);

    const std::size_t lengths[] = {2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96};
    std::vector<std::string> headers{"m"};
    for (const auto& matcher : matchers) headers.push_back(matcher->name());
    headers.push_back("winner");
    Table table(headers);
    CsvWriter csv({"pattern_length", "algorithm", "median_ms"});

    for (const std::size_t m : lengths) {
        // A real substring of the corpus so character statistics are native.
        const std::string pattern = corpus.substr(rng.index(corpus.size() - m), m);
        auto row = table.row();
        row.integer(static_cast<long long>(m));
        double best = std::numeric_limits<double>::infinity();
        std::size_t winner = 0;
        for (std::size_t a = 0; a < matchers.size(); ++a) {
            std::vector<double> times;
            for (std::size_t rep = 0; rep < reps; ++rep) {
                Stopwatch watch;
                (void)sm::parallel_count(*matchers[a], corpus, pattern, pool);
                times.push_back(watch.elapsed_ms());
            }
            const double med = median(times);
            row.num(med, 3);
            csv.add_row({std::to_string(m), matchers[a]->name(), format_num(med, 4)});
            if (med < best) {
                best = med;
                winner = a;
            }
        }
        row.text(matchers[winner]->name());
    }
    table.print();
    const std::string path = bench::results_path("sweep_pattern_length.csv");
    if (csv.write_file(path)) std::printf("\n[csv] %s\n", path.c_str());

    std::printf(
        "\nExpected shape: winners shift with m — q-gram/bit-parallel methods\n"
        "(Hash3, FSBNDM, ShiftOr) for short patterns, oracle/filter methods\n"
        "(EBOM, SSEF) as m grows; Hybrid should track the per-length winner,\n"
        "validating (or challenging) its hand-crafted thresholds.\n");
    return 0;
}

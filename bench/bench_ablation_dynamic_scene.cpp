/// Ablation (paper Section I: "this variation can occur during application
/// runtime"): the paper's raytracing case study renders a *static* scene.
/// Here the camera sways inside the cathedral while the tuner runs, so the ray
/// distribution — and with it the cost landscape over builders and
/// configurations — drifts continuously.  Compares the paper's strategies
/// under a static and an orbiting camera.

#include <cmath>
#include <numbers>

#include "raytrace_experiment.hpp"

using namespace atk;

namespace {

double run_dynamic(bench::RaytraceContext& context, const bench::StrategySpec& strategy,
                   std::size_t frames, std::uint64_t seed, bool orbit,
                   double* late_mean) {
    TwoPhaseTuner tuner(strategy.make(), rt::make_tunable_builders(context.builders),
                        seed);
    double total = 0.0;
    double late = 0.0;
    for (std::size_t frame = 0; frame < frames; ++frame) {
        if (orbit) {
            // Sway +-0.15 rad so the camera stays inside the nave; one full
            // sway cycle per repetition.
            const float phase = 2.0f * std::numbers::pi_v<float> *
                                static_cast<float>(frame) / static_cast<float>(frames);
            context.pipeline->orbit_camera(0.15f * std::sin(phase));
        }
        const Trial trial = tuner.next();
        const auto& builder = *context.builders[trial.algorithm];
        const Millis elapsed = std::max(
            1e-6, context.pipeline->render_frame(builder, builder.decode(trial.config)));
        tuner.report(trial, elapsed);
        total += elapsed;
        if (frame >= frames * 2 / 3) late += elapsed;
    }
    context.pipeline->orbit_camera(0.0f);  // restore for the next run
    *late_mean = late / static_cast<double>(frames - frames * 2 / 3);
    return total / static_cast<double>(frames);
}

} // namespace

int main(int argc, char** argv) {
    Cli cli("bench_ablation_dynamic_scene",
            "Ablation: swaying camera (drifting context) vs static scene");
    bench::add_raytrace_options(cli);
    if (!cli.parse(argc, argv)) return 1;

    bench::print_header("Ablation — dynamic scene (swaying camera)",
                        "context drifts continuously instead of staying constant");

    bench::RaytraceContext context = bench::make_raytrace_context(cli);
    const std::size_t reps = bench::raytrace_reps(cli);
    const std::size_t frames = bench::raytrace_frames(cli);
    std::printf("%zu reps x %zu frames (one sway cycle per repetition)\n\n", reps,
                frames);

    Table table({"strategy", "static mean [ms]", "orbit mean [ms]",
                 "orbit late mean [ms]"});
    for (const auto& strategy : bench::paper_strategies()) {
        double static_total = 0.0;
        double orbit_total = 0.0;
        double orbit_late_total = 0.0;
        for (std::size_t rep = 0; rep < reps; ++rep) {
            double late = 0.0;
            static_total += run_dynamic(context, strategy, frames, rep + 1, false, &late);
            orbit_total += run_dynamic(context, strategy, frames, rep + 1, true, &late);
            orbit_late_total += late;
        }
        table.row()
            .text(strategy.name)
            .num(static_total / static_cast<double>(reps), 3)
            .num(orbit_total / static_cast<double>(reps), 3)
            .num(orbit_late_total / static_cast<double>(reps), 3);
        std::printf("  [done] %s\n", strategy.name.c_str());
    }
    std::printf("\n");
    table.print();

    std::printf(
        "\nExpected shape: with the drifting view, per-frame costs vary and the\n"
        "cost landscape under the tuner moves; the interesting comparison is\n"
        "within the orbit columns — strategies whose estimates age out\n"
        "(Sliding-Window AUC, Optimum/Gradient Weighted) track the drift,\n"
        "while best-ever e-Greedy exploits a frozen estimate. Static-vs-orbit\n"
        "absolute differences also reflect visibility changes, not only\n"
        "tuning quality.\n");
    return 0;
}

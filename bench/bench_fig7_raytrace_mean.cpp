/// Reproduces Figure 7 ("Raytracing: Mean performance in individual
/// iterations of all strategies"): the averaged data for the same context as
/// Figure 6, which surfaces outlier runs (the paper's Optimum-Weighted spike
/// from pathological Nested/Wald-Havran configurations).

#include "raytrace_experiment.hpp"

using namespace atk;

int main(int argc, char** argv) {
    Cli cli("bench_fig7_raytrace_mean",
            "Figure 7: mean per-iteration performance, combined tuning");
    bench::add_raytrace_options(cli);
    if (!cli.parse(argc, argv)) return 1;

    bench::print_header("Figure 7 — Raytracing: mean per-iteration performance",
                        "algorithmic choice over 4 builders + Nelder-Mead per builder");

    bench::RaytraceContext context = bench::make_raytrace_context(cli);
    const std::size_t reps = bench::raytrace_reps(cli);
    const std::size_t frames = bench::raytrace_frames(cli);
    std::printf("%zu reps x %zu frames\n", reps, frames);

    const auto series = bench::run_all_strategies(
        [&](const bench::StrategySpec& strategy, std::uint64_t seed) {
            return bench::run_raytrace_tuning(context, strategy, frames, seed);
        },
        reps);

    bench::print_series_table(
        "Mean frame time per iteration [ms]", series,
        [](const bench::StrategySeries& s) { return s.mean_per_iteration(); }, frames);
    bench::write_series_csv("fig7_raytrace_mean.csv", series,
                            [](const bench::StrategySeries& s) {
                                return s.mean_per_iteration();
                            });

    std::printf(
        "\nExpected shape (paper): same properties as the median data, plus\n"
        "occasional spikes where a weighted strategy sampled a particularly bad\n"
        "configuration of a builder (the paper observed a 5x outlier for\n"
        "Optimum Weighted).\n");
    return 0;
}

/// Measures what the wire costs: round-trip latency and throughput of the
/// atk::net stack over loopback, compared against calling the same
/// TuningService in-process.  Three request shapes per thread count:
///
///   recommend      one blocking recommend() round trip per operation
///   report-acked   one blocking acknowledged report per operation
///   report-async   fire-and-forget batched reports (the hot-loop path)
///
/// The delta between in-process and loopback is the protocol + epoll + TCP
/// overhead a remote worker pays per tuning decision.
///
/// A final section repeats the blocking recommend loop with distributed
/// tracing enabled: the 16-byte trace-context wire extension plus client
/// and server spans — the per-request tax of following a tuning decision
/// across both processes.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/autotune.hpp"
#include "harness.hpp"
#include "net/net.hpp"
#include "obs/span.hpp"
#include "runtime/runtime.hpp"
#include "support/cli.hpp"
#include "support/clock.hpp"
#include "support/csv.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

using namespace atk;
using namespace atk::runtime;

namespace {

std::vector<TunableAlgorithm> two_algorithms() {
    std::vector<TunableAlgorithm> algorithms;
    algorithms.push_back(TunableAlgorithm::untunable("A"));

    TunableAlgorithm b;
    b.name = "B";
    b.space.add(Parameter::ratio("x", 0, 50));
    b.initial = Configuration{{0}};
    b.searcher = std::make_unique<NelderMeadSearcher>();
    algorithms.push_back(std::move(b));
    return algorithms;
}

TunerFactory factory() {
    return [](const std::string& session) {
        return std::make_unique<TwoPhaseTuner>(std::make_unique<EpsilonGreedy>(0.10),
                                               two_algorithms(),
                                               std::hash<std::string>{}(session));
    };
}

struct Result {
    double wall_ms = 0.0;
    double ops_per_second = 0.0;
    double p50_us = 0.0;  ///< per-op latency median (blocking modes only)
    double p99_us = 0.0;
};

std::string session_name(std::size_t thread) {
    std::string name = std::to_string(thread);
    name.insert(name.begin(), 'w');
    return name;
}

/// In-process baseline: the same begin/report pattern without the wire.
Result run_local(TuningService& service, std::size_t threads, std::size_t ops) {
    Stopwatch watch;
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < threads; ++t) {
        clients.emplace_back([&service, t, ops] {
            const std::string session = session_name(t);
            for (std::size_t i = 0; i < ops; ++i) {
                const Ticket ticket = service.begin(session);
                (void)service.report(session, ticket, 1.0 + static_cast<double>(i % 7));
            }
        });
    }
    for (auto& client : clients) client.join();
    Result result;
    result.wall_ms = watch.elapsed_ms();
    result.ops_per_second =
        static_cast<double>(threads * ops) / (result.wall_ms / 1000.0);
    return result;
}

enum class Mode { Recommend, ReportAcked, ReportAsync };

Result run_net(std::uint16_t port, Mode mode, std::size_t threads, std::size_t ops) {
    std::vector<std::vector<double>> latencies(threads);
    Stopwatch watch;
    std::vector<std::thread> clients;
    for (std::size_t t = 0; t < threads; ++t) {
        clients.emplace_back([&latencies, port, mode, t, ops] {
            net::ClientOptions options;
            options.port = port;
            options.client_name = "bench-" + std::to_string(t);
            net::TuningClient client(options);
            const std::string session = session_name(t);
            Ticket ticket = client.recommend(session);  // connect + first pick
            auto& lat = latencies[t];
            lat.reserve(mode == Mode::ReportAsync ? 0 : ops);
            for (std::size_t i = 0; i < ops; ++i) {
                const Cost cost = 1.0 + static_cast<double>(i % 7);
                Stopwatch op;
                switch (mode) {
                case Mode::Recommend:
                    ticket = client.recommend(session);
                    lat.push_back(op.elapsed_ms() * 1000.0);
                    break;
                case Mode::ReportAcked:
                    (void)client.report(session, ticket, cost);
                    lat.push_back(op.elapsed_ms() * 1000.0);
                    break;
                case Mode::ReportAsync:
                    client.report_async(session, ticket, cost);
                    break;
                }
            }
            client.flush_reports();
        });
    }
    for (auto& client : clients) client.join();

    Result result;
    result.wall_ms = watch.elapsed_ms();
    result.ops_per_second =
        static_cast<double>(threads * ops) / (result.wall_ms / 1000.0);
    std::vector<double> all;
    for (auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
    if (!all.empty()) {
        result.p50_us = quantile(all, 0.50);
        result.p99_us = quantile(all, 0.99);
    }
    return result;
}

const char* mode_name(Mode mode) {
    switch (mode) {
    case Mode::Recommend: return "recommend";
    case Mode::ReportAcked: return "report-acked";
    case Mode::ReportAsync: return "report-async";
    }
    return "?";
}

} // namespace

int main(int argc, char** argv) {
    Cli cli("bench_net_loopback",
            "Net layer: loopback round-trip latency and throughput vs in-process");
    cli.add_int("ops", 5000, "operations per client thread");
    cli.add_int("workers", 2, "server event-loop workers");
    if (!cli.parse(argc, argv)) return 1;

    const auto ops = static_cast<std::size_t>(cli.get_int("ops"));

    bench::init_trace_from_env();

    ServiceOptions service_options;
    service_options.queue_capacity = 65536;
    TuningService service(factory(), service_options);
    net::ServerOptions server_options;
    server_options.worker_threads = static_cast<std::size_t>(cli.get_int("workers"));
    net::TuningServer server(service, server_options);
    server.start();
    std::printf("bench_net_loopback: server on 127.0.0.1:%u (%zu workers), "
                "%zu ops/thread\n\n",
                server.port(), server_options.worker_threads, ops);

    Table table({"mode", "threads", "wall [ms]", "ops/s", "p50 [us]", "p99 [us]"});
    CsvWriter csv({"mode", "threads", "wall_ms", "ops_per_second", "p50_us", "p99_us"});
    for (const std::size_t threads : {1u, 2u, 4u}) {
        const Result local = run_local(service, threads, ops);
        table.row()
            .text("in-process")
            .integer(static_cast<long long>(threads))
            .num(local.wall_ms, 1)
            .num(local.ops_per_second, 0)
            .text("-")
            .text("-");
        csv.add_row({"in-process", std::to_string(threads),
                     format_num(local.wall_ms, 3), format_num(local.ops_per_second, 0),
                     "", ""});
        for (const Mode mode : {Mode::Recommend, Mode::ReportAcked, Mode::ReportAsync}) {
            const Result r = run_net(server.port(), mode, threads, ops);
            {
                Table::RowBuilder row = table.row();
                row.text(mode_name(mode))
                    .integer(static_cast<long long>(threads))
                    .num(r.wall_ms, 1)
                    .num(r.ops_per_second, 0);
                if (mode == Mode::ReportAsync)
                    row.text("-").text("-");
                else
                    row.num(r.p50_us, 1).num(r.p99_us, 1);
            }
            csv.add_row({mode_name(mode), std::to_string(threads),
                         format_num(r.wall_ms, 3), format_num(r.ops_per_second, 0),
                         format_num(r.p50_us, 2), format_num(r.p99_us, 2)});
        }
        service.flush();
    }
    std::printf("%s\n", table.to_string().c_str());
    const std::string out = "results/net_loopback.csv";
    if (csv.write_file(out)) std::printf("wrote %s\n", out.c_str());

    // Trace-context propagation tax: one client thread, blocking recommends,
    // tracing off vs on.  "On" pays for the wire extension plus a span on
    // each side of the socket; "off" must stay at the untraced floor (the
    // extension is gated on Tracer::enabled(), not merely empty).
    obs::Tracer::enable(false);
    const Result untraced = run_net(server.port(), Mode::Recommend, 1, ops);
    obs::Tracer::enable(true);
    const Result traced = run_net(server.port(), Mode::Recommend, 1, ops);
    obs::Tracer::enable(false);
    obs::Tracer::clear();
    Table trace_table({"tracing", "p50 [us]", "p99 [us]", "ops/s"});
    trace_table.row()
        .text("off")
        .num(untraced.p50_us, 1)
        .num(untraced.p99_us, 1)
        .num(untraced.ops_per_second, 0);
    trace_table.row()
        .text("on (wire ext + spans)")
        .num(traced.p50_us, 1)
        .num(traced.p99_us, 1)
        .num(traced.ops_per_second, 0);
    std::printf("%s\n", trace_table.to_string().c_str());

    server.stop();
    service.stop();

    std::printf(
        "\nReading the numbers: recommend / report-acked pay one loopback round\n"
        "trip per operation (p50 is the protocol + epoll + TCP floor);\n"
        "report-async amortizes the wire across batches and approaches the\n"
        "in-process ingestion rate.\n");
    return 0;
}

#pragma once

/// Shared machinery for the figure/table reproduction harnesses.  Every
/// bench binary prints the same rows/series the paper reports and writes
/// the raw series as CSV next to the binary (results/<name>.csv) for
/// re-plotting.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/autotune.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/statistics.hpp"
#include "support/table.hpp"

namespace atk::bench {

/// Factory for one of the paper's six evaluated strategies.
struct StrategySpec {
    std::string name;
    std::function<std::unique_ptr<NominalStrategy>()> make;
};

/// The six strategies of the paper's evaluation, in legend order:
/// ε-Greedy (5 %, 10 %, 20 %), Gradient Weighted, Optimum Weighted,
/// Sliding-Window AUC.
[[nodiscard]] std::vector<StrategySpec> paper_strategies();

/// One repetition of an online-tuning experiment: per-iteration costs and
/// per-algorithm choice counts.
struct RunResult {
    std::vector<double> costs;          // cost per iteration
    std::vector<std::size_t> counts;    // selections per algorithm
};

/// Cross-repetition aggregate for one strategy.
struct StrategySeries {
    std::string strategy;
    std::vector<std::vector<double>> cost_rows;        // [rep][iteration]
    std::vector<std::vector<std::size_t>> count_rows;  // [rep][algorithm]

    [[nodiscard]] std::vector<double> median_per_iteration() const;
    [[nodiscard]] std::vector<double> mean_per_iteration() const;
    /// Boxplot of the per-repetition counts of one algorithm.
    [[nodiscard]] BoxStats count_stats(std::size_t algorithm) const;
};

/// Runs `reps` independent repetitions of `run` (seeded 1..reps) for every
/// paper strategy.
[[nodiscard]] std::vector<StrategySeries> run_all_strategies(
    const std::function<RunResult(const StrategySpec&, std::uint64_t seed)>& run,
    std::size_t reps);

/// Prints a per-iteration series table: one row per iteration (capped at
/// `max_iterations`), one column per strategy.
void print_series_table(const std::string& title,
                        const std::vector<StrategySeries>& series,
                        const std::function<std::vector<double>(const StrategySeries&)>&
                            reduce,
                        std::size_t max_iterations);

/// Prints a per-algorithm × per-strategy histogram table (median count with
/// quartiles, the textual form of the paper's count boxplots).
void print_histogram_table(const std::string& title,
                           const std::vector<StrategySeries>& series,
                           const std::vector<std::string>& algorithm_names);

/// Writes the per-iteration reduction of every strategy to CSV
/// (columns: iteration, then one per strategy). Returns the path written,
/// or an empty string on failure (reported, non-fatal).
std::string write_series_csv(const std::string& filename,
                             const std::vector<StrategySeries>& series,
                             const std::function<std::vector<double>(
                                 const StrategySeries&)>& reduce);

/// Standard bench preamble: prints the experiment id & context line.
void print_header(const std::string& experiment, const std::string& description);

/// ATK_TRACE=<path> enables span tracing for this process and registers an
/// atexit Chrome-trace dump.  Called by print_header(); benches with their
/// own banner call it directly.  Idempotent.
void init_trace_from_env();

/// Creates the results/ directory (next to the cwd) if needed; returns
/// "results/<filename>".
[[nodiscard]] std::string results_path(const std::string& filename);

} // namespace atk::bench

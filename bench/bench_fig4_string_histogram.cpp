/// Reproduces Figure 4 ("String Matching: Frequency of all algorithms being
/// chosen by the strategies"): per strategy, how often each matcher was
/// selected, as a boxplot over the experiment repetitions.

#include "stringmatch_experiment.hpp"

using namespace atk;

int main(int argc, char** argv) {
    Cli cli("bench_fig4_string_histogram",
            "Figure 4: frequency of algorithm selection per strategy");
    bench::add_stringmatch_options(cli);
    if (!cli.parse(argc, argv)) return 1;

    bench::print_header("Figure 4 — String Matching: algorithm choice frequencies",
                        "accumulated histogram over all tuning iterations");

    bench::StringMatchContext context = bench::make_stringmatch_context(cli);
    const std::size_t reps = bench::stringmatch_reps(cli);
    const std::size_t iters = bench::stringmatch_iters(cli);
    std::printf("corpus: %zu bytes, %zu reps x %zu iterations\n", context.corpus.size(),
                reps, iters);

    const auto series = bench::run_all_strategies(
        [&](const bench::StrategySpec& strategy, std::uint64_t seed) {
            return bench::run_stringmatch_tuning(context, strategy, iters, seed);
        },
        reps);

    bench::print_histogram_table("Selections per algorithm", series,
                                 context.algorithm_names());

    CsvWriter csv({"strategy", "algorithm", "repetition", "count"});
    const auto names = context.algorithm_names();
    for (const auto& s : series)
        for (std::size_t rep = 0; rep < s.count_rows.size(); ++rep)
            for (std::size_t a = 0; a < names.size(); ++a)
                csv.add_row({s.strategy, names[a], std::to_string(rep),
                             std::to_string(s.count_rows[rep][a])});
    const std::string path = bench::results_path("fig4_string_histogram.csv");
    if (csv.write_file(path)) std::printf("\n[csv] %s\n", path.c_str());

    std::printf(
        "\nExpected shape (paper): the e-Greedy strategies concentrate on one\n"
        "fast matcher; Gradient/Optimum Weighted and Sliding-Window AUC spread\n"
        "their choices over the fast group (EBOM, Hash3, Hybrid, SSEF) with\n"
        "almost equal frequency.\n");
    return 0;
}

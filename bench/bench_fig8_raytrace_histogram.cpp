/// Reproduces Figure 8 ("Raytracing: Frequency of all algorithms being
/// chosen by the strategies"): per strategy, how often each construction
/// algorithm was selected, as a boxplot over the experiment repetitions.

#include "raytrace_experiment.hpp"

using namespace atk;

int main(int argc, char** argv) {
    Cli cli("bench_fig8_raytrace_histogram",
            "Figure 8: frequency of builder selection per strategy");
    bench::add_raytrace_options(cli);
    if (!cli.parse(argc, argv)) return 1;

    bench::print_header("Figure 8 — Raytracing: algorithm choice frequencies",
                        "accumulated histogram over all frames");

    bench::RaytraceContext context = bench::make_raytrace_context(cli);
    const std::size_t reps = bench::raytrace_reps(cli);
    const std::size_t frames = bench::raytrace_frames(cli);
    std::printf("%zu reps x %zu frames\n", reps, frames);

    const auto series = bench::run_all_strategies(
        [&](const bench::StrategySpec& strategy, std::uint64_t seed) {
            return bench::run_raytrace_tuning(context, strategy, frames, seed);
        },
        reps);

    bench::print_histogram_table("Selections per construction algorithm", series,
                                 context.algorithm_names());

    CsvWriter csv({"strategy", "algorithm", "repetition", "count"});
    const auto names = context.algorithm_names();
    for (const auto& s : series)
        for (std::size_t rep = 0; rep < s.count_rows.size(); ++rep)
            for (std::size_t a = 0; a < names.size(); ++a)
                csv.add_row({s.strategy, names[a], std::to_string(rep),
                             std::to_string(s.count_rows[rep][a])});
    const std::string path = bench::results_path("fig8_raytrace_histogram.csv");
    if (csv.write_file(path)) std::printf("\n[csv] %s\n", path.c_str());

    std::printf(
        "\nExpected shape (paper): the e-Greedy variants concentrate on the\n"
        "overall fastest builder; the weighted strategies show no significant\n"
        "preference toward any single algorithm (their weights cannot separate\n"
        "builders whose absolute performance is similar).\n");
    return 0;
}

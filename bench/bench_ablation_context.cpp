/// Ablation (DESIGN.md): what happens when the context K changes mid-run?
///
/// The paper assumes K constant ("the context is usually assumed to be
/// constant during the tuning process").  This harness breaks that
/// assumption on the string-matching case study: after half of the
/// iterations the query pattern switches from the paper's 39-char phrase to
/// a 3-char pattern, which moves the optimal matcher (long patterns favor
/// SSEF/EBOM; very short ones favor Hash3/ShiftOr).  It compares the
/// paper's best-ever ε-Greedy against the windowed variant and the
/// inherently windowed Sliding-Window AUC.

#include "stringmatch/corpus.hpp"
#include "stringmatch/parallel.hpp"
#include "stringmatch_experiment.hpp"
#include "support/clock.hpp"

using namespace atk;

namespace {

struct ContextRun {
    std::vector<double> costs;
    std::vector<std::size_t> late_counts;  // selections after the switch
};

ContextRun run_with_switch(bench::StringMatchContext& context,
                           std::unique_ptr<NominalStrategy> strategy,
                           std::size_t iterations, std::uint64_t seed) {
    std::vector<TunableAlgorithm> algorithms;
    for (const auto& matcher : context.matchers)
        algorithms.push_back(TunableAlgorithm::untunable(matcher->name()));
    TwoPhaseTuner tuner(std::move(strategy), std::move(algorithms), seed);

    const std::string long_pattern(sm::query_phrase());
    const std::string short_pattern = "the";
    ContextRun run;
    run.late_counts.assign(context.matchers.size(), 0);
    for (std::size_t i = 0; i < iterations; ++i) {
        const bool switched = i >= iterations / 2;
        const std::string& pattern = switched ? short_pattern : long_pattern;
        const Trial trial = tuner.next();
        Stopwatch watch;
        (void)sm::parallel_count(*context.matchers[trial.algorithm], context.corpus,
                                 pattern, *context.pool);
        const Millis elapsed = std::max(1e-6, watch.elapsed_ms());
        tuner.report(trial, elapsed);
        run.costs.push_back(elapsed);
        if (switched) ++run.late_counts[trial.algorithm];
    }
    return run;
}

} // namespace

int main(int argc, char** argv) {
    Cli cli("bench_ablation_context",
            "Ablation: context change mid-run (pattern switch)");
    bench::add_stringmatch_options(cli);
    if (!cli.parse(argc, argv)) return 1;

    bench::print_header(
        "Ablation — context change (query pattern switches mid-run)",
        "39-char phrase for the first half, 3-char pattern for the second");

    bench::StringMatchContext context = bench::make_stringmatch_context(cli);
    const std::size_t reps = bench::stringmatch_reps(cli);
    const std::size_t iters = std::max<std::size_t>(40, bench::stringmatch_iters(cli));
    std::printf("corpus: %zu bytes, %zu reps x %zu iterations (switch at %zu)\n\n",
                context.corpus.size(), reps, iters, iters / 2);

    struct Candidate {
        std::string label;
        std::function<std::unique_ptr<NominalStrategy>()> make;
    };
    const std::vector<Candidate> candidates{
        {"e-Greedy (10%) best-ever [paper]",
         [] { return std::make_unique<EpsilonGreedy>(0.10); }},
        {"e-Greedy (10%) windowed (w=16)",
         [] { return std::make_unique<EpsilonGreedy>(0.10, 16); }},
        {"Sliding-Window AUC", [] { return std::make_unique<SlidingWindowAuc>(16); }},
        {"Optimum Weighted", [] { return std::make_unique<OptimumWeighted>(); }},
    };

    Table table({"strategy", "mean cost before switch [ms]",
                 "mean cost after switch [ms]", "post-switch top pick"});
    for (const auto& candidate : candidates) {
        std::vector<double> before;
        std::vector<double> after;
        std::vector<std::size_t> late_totals(context.matchers.size(), 0);
        for (std::size_t rep = 0; rep < reps; ++rep) {
            const ContextRun run =
                run_with_switch(context, candidate.make(), iters, rep + 1);
            for (std::size_t i = 0; i < run.costs.size(); ++i)
                (i < iters / 2 ? before : after).push_back(run.costs[i]);
            for (std::size_t a = 0; a < late_totals.size(); ++a)
                late_totals[a] += run.late_counts[a];
        }
        const std::size_t top = static_cast<std::size_t>(
            std::max_element(late_totals.begin(), late_totals.end()) -
            late_totals.begin());
        table.row()
            .text(candidate.label)
            .num(mean(before), 3)
            .num(mean(after), 3)
            .text(context.matchers[top]->name());
        std::printf("  [done] %s\n", candidate.label.c_str());
    }
    std::printf("\n");
    table.print();

    std::printf(
        "\nExpected shape: the paper's best-ever e-Greedy keeps exploiting the\n"
        "pre-switch winner via its stale record; the windowed variants adapt to\n"
        "the new context and reach a lower post-switch mean.\n");
    return 0;
}

/// Reproduces Figure 5 ("Raytracing: Tuning timeline of all four
/// algorithms"): each kD-tree construction algorithm is tuned in isolation
/// by the Nelder-Mead online-autotuner, starting from its hand-crafted
/// configuration; the plot shows the average frame time per iteration.

#include "raytrace_experiment.hpp"
#include "support/sparkline.hpp"

using namespace atk;

int main(int argc, char** argv) {
    Cli cli("bench_fig5_raytrace_timeline",
            "Figure 5: per-builder Nelder-Mead tuning timeline");
    bench::add_raytrace_options(cli);
    if (!cli.parse(argc, argv)) return 1;

    bench::print_header("Figure 5 — Raytracing: tuning timeline of all four algorithms",
                        "Nelder-Mead only, no algorithmic choice");

    bench::RaytraceContext context = bench::make_raytrace_context(cli);
    const std::size_t reps = bench::raytrace_reps(cli);
    const std::size_t frames = bench::raytrace_frames(cli);
    std::printf("%zu reps x %zu frames\n\n", reps, frames);

    const auto names = context.algorithm_names();
    std::vector<std::vector<double>> averaged(names.size());
    for (std::size_t b = 0; b < names.size(); ++b) {
        std::vector<std::vector<double>> rows;
        for (std::size_t rep = 0; rep < reps; ++rep)
            rows.push_back(
                bench::run_single_builder_timeline(context, b, frames, rep + 1));
        averaged[b] = columnwise_mean(rows);
        std::printf("  [done] %s (%zu repetitions)\n", names[b].c_str(), reps);
    }

    std::printf("\nAverage frame time per tuning iteration [ms]\n");
    std::vector<std::string> headers{"iter"};
    headers.insert(headers.end(), names.begin(), names.end());
    Table table(headers);
    for (std::size_t i = 0; i < frames; ++i) {
        auto row = table.row();
        row.integer(static_cast<long long>(i));
        for (std::size_t b = 0; b < names.size(); ++b) row.num(averaged[b][i], 3);
    }
    table.print();

    std::vector<LabeledSeries> chart;
    for (std::size_t b = 0; b < names.size(); ++b)
        chart.push_back(LabeledSeries{names[b], averaged[b]});
    std::printf("\n%s", sparkline_chart(chart, "ms").c_str());

    CsvWriter csv(headers);
    for (std::size_t i = 0; i < frames; ++i) {
        std::vector<std::string> row{std::to_string(i)};
        for (std::size_t b = 0; b < names.size(); ++b)
            row.push_back(format_num(averaged[b][i], 4));
        csv.add_row(std::move(row));
    }
    const std::string path = bench::results_path("fig5_raytrace_timeline.csv");
    if (csv.write_file(path)) std::printf("\n[csv] %s\n", path.c_str());

    std::printf(
        "\nExpected shape (paper): a leap right at the first tuning iteration\n"
        "(the hand-crafted start is immediately improved), then similar,\n"
        "gradual convergence profiles for all four construction algorithms.\n");
    return 0;
}

/// Offline inspector for the observability layer's artifacts:
///
///     atk_obs_inspect --trace runtime_service.trace.json
///         per-span statistics (count, total/mean/min/max ms) and
///         per-thread span counts from a Chrome trace-event file
///
///     atk_obs_inspect --audit runtime_service.audit.jsonl
///         per-algorithm decision statistics and the decision timeline
///
///     atk_obs_inspect --audit ... --explain 42 [--session interactive]
///         full explanation of one tuning iteration: strategy weights,
///         derived selection probabilities, the exploration roll, the
///         chosen algorithm and the phase-one step
///
/// Both file formats are produced by atk_obs (obs/span.hpp, obs/audit.hpp);
/// runtime_service --trace/--audit writes ready-made examples.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace atk;

namespace {

int inspect_trace(const std::string& path) {
    const auto spans = obs::load_chrome_trace(path);
    if (!spans) {
        std::fprintf(stderr, "error: cannot read trace '%s'\n", path.c_str());
        return 1;
    }
    std::printf("%zu spans in %s\n\n", spans->size(), path.c_str());
    Table table({"span", "count", "total ms", "mean ms", "min ms", "max ms"});
    for (const auto& stats : obs::span_statistics(*spans)) {
        table.row()
            .text(stats.name)
            .integer(static_cast<long long>(stats.count))
            .num(stats.total_ms, 3)
            .num(stats.mean_ms, 4)
            .num(stats.min_ms, 4)
            .num(stats.max_ms, 4);
    }
    std::printf("%s\n", table.to_string().c_str());

    std::map<std::uint32_t, std::size_t> by_thread;
    for (const auto& span : *spans) ++by_thread[span.thread_id];
    std::printf("threads:");
    for (const auto& [tid, count] : by_thread)
        std::printf("  tid %u: %zu spans", tid, count);
    std::printf("\n");
    return 0;
}

int explain_iteration(const std::vector<obs::Decision>& decisions,
                      std::size_t iteration, const std::string& session) {
    bool found = false;
    for (const auto& decision : decisions) {
        if (decision.iteration != iteration) continue;
        if (!session.empty() && decision.session != session) continue;
        std::printf("%s\n", obs::explain_decision(decision).c_str());
        found = true;
    }
    if (!found) {
        std::fprintf(stderr,
                     "error: no decision for iteration %zu%s%s in the audit window\n",
                     iteration, session.empty() ? "" : " of session ",
                     session.c_str());
        return 1;
    }
    return 0;
}

int inspect_audit(const std::string& path, std::int64_t explain,
                  const std::string& session, std::size_t limit) {
    const auto decisions = obs::load_audit_file(path);
    if (!decisions) {
        std::fprintf(stderr, "error: cannot read audit file '%s'\n", path.c_str());
        return 1;
    }
    if (explain >= 0)
        return explain_iteration(*decisions, static_cast<std::size_t>(explain),
                                 session);

    std::printf("%zu decisions in %s\n\n", decisions->size(), path.c_str());

    // Per-algorithm statistics, grouped per session.
    struct AlgorithmStats {
        std::size_t selections = 0;
        std::size_t explored = 0;
        double probability_sum = 0.0;
    };
    std::map<std::pair<std::string, std::string>, AlgorithmStats> stats;
    for (const auto& decision : *decisions) {
        if (!session.empty() && decision.session != session) continue;
        auto& row = stats[{decision.session, decision.algorithm_name}];
        ++row.selections;
        if (decision.explored) ++row.explored;
        if (decision.algorithm < decision.probabilities.size())
            row.probability_sum += decision.probabilities[decision.algorithm];
    }
    Table per_algorithm(
        {"session", "algorithm", "selections", "explored", "mean p(select)"});
    for (const auto& [key, row] : stats) {
        per_algorithm.row()
            .text(key.first.empty() ? "-" : key.first)
            .text(key.second)
            .integer(static_cast<long long>(row.selections))
            .integer(static_cast<long long>(row.explored))
            .num(row.selections == 0
                     ? 0.0
                     : row.probability_sum / static_cast<double>(row.selections),
                 4);
    }
    std::printf("%s\n", per_algorithm.to_string().c_str());

    // Decision timeline (most recent `limit` rows).
    Table timeline({"iter", "session", "algorithm", "roll", "step", "p(chosen)"});
    const std::size_t start =
        decisions->size() > limit ? decisions->size() - limit : 0;
    for (std::size_t i = start; i < decisions->size(); ++i) {
        const auto& d = (*decisions)[i];
        if (!session.empty() && d.session != session) continue;
        timeline.row()
            .integer(static_cast<long long>(d.iteration))
            .text(d.session.empty() ? "-" : d.session)
            .text(d.algorithm_name)
            .text(d.explored ? "explore" : "exploit")
            .text(d.step_kind.empty() ? "-" : d.step_kind)
            .num(d.algorithm < d.probabilities.size() ? d.probabilities[d.algorithm]
                                                      : 0.0,
                 4);
    }
    std::printf("timeline (last %zu):\n%s", limit, timeline.to_string().c_str());
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    Cli cli("atk_obs_inspect",
            "inspect span traces and decision audit logs of the tuning runtime");
    cli.add_string("trace", "", "Chrome trace-event JSON to summarize")
        .add_string("audit", "", "decision audit JSONL to summarize")
        .add_int("explain", -1, "explain this tuning iteration (needs --audit)")
        .add_string("session", "", "restrict --audit output to one session")
        .add_int("limit", 40, "timeline rows to print");
    if (!cli.parse(argc, argv)) return 1;

    const std::string trace = cli.get_string("trace");
    const std::string audit = cli.get_string("audit");
    if (trace.empty() && audit.empty()) {
        std::fprintf(stderr, "error: pass --trace and/or --audit\n");
        cli.print_usage();
        return 1;
    }
    int status = 0;
    if (!trace.empty()) status = inspect_trace(trace);
    if (!audit.empty() && status == 0)
        status = inspect_audit(audit, cli.get_int("explain"),
                               cli.get_string("session"),
                               static_cast<std::size_t>(cli.get_int("limit")));
    return status;
}

/// Offline inspector for the observability layer's artifacts:
///
///     atk_obs_inspect --trace runtime_service.trace.json
///         per-span statistics (count, total/mean/min/max ms) and
///         per-thread span counts from a Chrome trace-event file
///
///     atk_obs_inspect --trace client.trace.json,server.trace.json
///                     --merge-out merged.trace.json
///         merges traces from several processes into one Perfetto timeline
///         (each file gets its own pid lane; spans stay linked across
///         processes by their shared trace_id) and summarizes the
///         distributed traces that span more than one process
///
///     atk_obs_inspect --audit runtime_service.audit.jsonl
///         per-algorithm decision statistics and the decision timeline
///
///     atk_obs_inspect --audit ... --explain 42 [--session interactive]
///         full explanation of one tuning iteration: strategy weights,
///         derived selection probabilities, the exploration roll, the
///         chosen algorithm and the phase-one step
///
///     atk_obs_inspect --health health.jsonl
///         per-session tuning-health table (convergence, drift, plateau,
///         regret) from the JSON lines `atk_serve --health` writes
///
/// All file formats are produced by atk_obs (obs/span.hpp, obs/audit.hpp,
/// obs/health.hpp); runtime_service --trace/--audit and atk_serve
/// --health/--trace write ready-made examples.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "support/cli.hpp"
#include "support/table.hpp"

using namespace atk;

namespace {

std::vector<std::string> split_paths(const std::string& list) {
    std::vector<std::string> paths;
    std::size_t at = 0;
    while (at <= list.size()) {
        const std::size_t comma = list.find(',', at);
        const std::size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > at) paths.push_back(list.substr(at, end - at));
        if (comma == std::string::npos) break;
        at = comma + 1;
    }
    return paths;
}

int inspect_trace(const std::string& path_list, const std::string& merge_out) {
    // Comma-separated files = one process each; stamp pid lanes 1..N and
    // merge, so spans sharing a trace_id line up across processes.
    const std::vector<std::string> paths = split_paths(path_list);
    std::vector<std::vector<obs::SpanRecord>> per_process;
    for (std::size_t i = 0; i < paths.size(); ++i) {
        auto spans = obs::load_chrome_trace(paths[i]);
        if (!spans) {
            std::fprintf(stderr, "error: cannot read trace '%s'\n",
                         paths[i].c_str());
            return 1;
        }
        if (paths.size() > 1)
            obs::set_process_id(*spans, static_cast<std::uint32_t>(i + 1));
        std::printf("%zu spans in %s\n", spans->size(), paths[i].c_str());
        per_process.push_back(std::move(*spans));
    }
    const std::vector<obs::SpanRecord> spans = obs::merge_traces(per_process);
    std::printf("\n");

    Table table({"span", "count", "total ms", "mean ms", "min ms", "max ms"});
    for (const auto& stats : obs::span_statistics(spans)) {
        table.row()
            .text(stats.name)
            .integer(static_cast<long long>(stats.count))
            .num(stats.total_ms, 3)
            .num(stats.mean_ms, 4)
            .num(stats.min_ms, 4)
            .num(stats.max_ms, 4);
    }
    std::printf("%s\n", table.to_string().c_str());

    std::map<std::uint32_t, std::size_t> by_thread;
    for (const auto& span : spans) ++by_thread[span.thread_id];
    std::printf("threads:");
    for (const auto& [tid, count] : by_thread)
        std::printf("  tid %u: %zu spans", tid, count);
    std::printf("\n");

    // Distributed traces: group by trace_id, call out the ones that cross a
    // process boundary (a recommend visible client → wire → worker → tuner).
    struct TraceGroup {
        std::size_t spans = 0;
        std::set<std::uint32_t> pids;
    };
    std::map<std::uint64_t, TraceGroup> traces;
    for (const auto& span : spans) {
        if (span.trace_id == 0) continue;
        auto& group = traces[span.trace_id];
        ++group.spans;
        group.pids.insert(span.process_id);
    }
    if (!traces.empty()) {
        std::size_t cross = 0;
        for (const auto& [id, group] : traces)
            if (group.pids.size() > 1) ++cross;
        std::printf("distributed traces: %zu total, %zu spanning processes\n",
                    traces.size(), cross);
        for (const auto& [id, group] : traces) {
            if (group.pids.size() < 2) continue;
            std::printf("  trace %016llx: %zu spans across %zu processes\n",
                        static_cast<unsigned long long>(id), group.spans,
                        group.pids.size());
        }
    }

    if (!merge_out.empty()) {
        if (!obs::write_chrome_trace(merge_out, spans)) {
            std::fprintf(stderr, "error: cannot write '%s'\n", merge_out.c_str());
            return 1;
        }
        std::printf("merged timeline written to %s (open in ui.perfetto.dev)\n",
                    merge_out.c_str());
    }
    return 0;
}

int inspect_health(const std::string& path, const std::string& session) {
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "error: cannot read health file '%s'\n", path.c_str());
        return 1;
    }
    std::vector<std::pair<std::string, obs::HealthSnapshot>> sessions;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        auto parsed = obs::health_from_json(line);
        if (!parsed) {
            std::fprintf(stderr, "warning: skipping malformed health line\n");
            continue;
        }
        if (!session.empty() && parsed->first != session) continue;
        sessions.push_back(std::move(*parsed));
    }
    if (sessions.empty()) {
        std::fprintf(stderr, "error: no health records%s%s in '%s'\n",
                     session.empty() ? "" : " for session ", session.c_str(),
                     path.c_str());
        return 1;
    }
    std::printf("%zu session(s) in %s\n\n", sessions.size(), path.c_str());
    Table table({"session", "samples", "leader", "share", "converged@", "drift",
                 "crossover", "plateau", "regret"});
    for (const auto& [name, h] : sessions) {
        table.row()
            .text(name.empty() ? "-" : name)
            .integer(static_cast<long long>(h.samples))
            .text(h.leader ? std::to_string(*h.leader) : "-")
            .num(h.leader_share, 3)
            .text(h.converged ? std::to_string(h.converged_at) : "never")
            .integer(static_cast<long long>(h.drift_events))
            .integer(static_cast<long long>(h.crossover_events))
            .text(h.plateau ? "YES" : "no")
            .num(h.regret, 4);
    }
    std::printf("%s\n", table.to_string().c_str());

    // Per-algorithm detail of each (or the selected) session.
    Table detail({"session", "alg", "samples", "mean cost", "best cost", "yield",
                  "recent cv", "plateau", "drift"});
    for (const auto& [name, h] : sessions) {
        for (std::size_t i = 0; i < h.algorithms.size(); ++i) {
            const auto& a = h.algorithms[i];
            detail.row()
                .text(name.empty() ? "-" : name)
                .integer(static_cast<long long>(i))
                .integer(static_cast<long long>(a.samples))
                .num(a.mean_cost, 4)
                .num(a.best_cost, 4)
                .num(a.tuning_yield, 3)
                .num(a.recent_cv, 3)
                .text(a.plateau ? "YES" : "no")
                .integer(static_cast<long long>(a.drift_events));
        }
    }
    std::printf("per-algorithm:\n%s", detail.to_string().c_str());
    return 0;
}

int explain_iteration(const std::vector<obs::Decision>& decisions,
                      std::size_t iteration, const std::string& session) {
    bool found = false;
    for (const auto& decision : decisions) {
        if (decision.iteration != iteration) continue;
        if (!session.empty() && decision.session != session) continue;
        std::printf("%s\n", obs::explain_decision(decision).c_str());
        found = true;
    }
    if (!found) {
        std::fprintf(stderr,
                     "error: no decision for iteration %zu%s%s in the audit window\n",
                     iteration, session.empty() ? "" : " of session ",
                     session.c_str());
        return 1;
    }
    return 0;
}

int inspect_audit(const std::string& path, std::int64_t explain,
                  const std::string& session, std::size_t limit) {
    const auto decisions = obs::load_audit_file(path);
    if (!decisions) {
        std::fprintf(stderr, "error: cannot read audit file '%s'\n", path.c_str());
        return 1;
    }
    if (explain >= 0)
        return explain_iteration(*decisions, static_cast<std::size_t>(explain),
                                 session);

    std::printf("%zu decisions in %s\n\n", decisions->size(), path.c_str());

    // Per-algorithm statistics, grouped per session.
    struct AlgorithmStats {
        std::size_t selections = 0;
        std::size_t explored = 0;
        double probability_sum = 0.0;
    };
    std::map<std::pair<std::string, std::string>, AlgorithmStats> stats;
    for (const auto& decision : *decisions) {
        if (!session.empty() && decision.session != session) continue;
        auto& row = stats[{decision.session, decision.algorithm_name}];
        ++row.selections;
        if (decision.explored) ++row.explored;
        if (decision.algorithm < decision.probabilities.size())
            row.probability_sum += decision.probabilities[decision.algorithm];
    }
    Table per_algorithm(
        {"session", "algorithm", "selections", "explored", "mean p(select)"});
    for (const auto& [key, row] : stats) {
        per_algorithm.row()
            .text(key.first.empty() ? "-" : key.first)
            .text(key.second)
            .integer(static_cast<long long>(row.selections))
            .integer(static_cast<long long>(row.explored))
            .num(row.selections == 0
                     ? 0.0
                     : row.probability_sum / static_cast<double>(row.selections),
                 4);
    }
    std::printf("%s\n", per_algorithm.to_string().c_str());

    // Decision timeline (most recent `limit` rows).
    Table timeline({"iter", "session", "algorithm", "roll", "step", "p(chosen)"});
    const std::size_t start =
        decisions->size() > limit ? decisions->size() - limit : 0;
    for (std::size_t i = start; i < decisions->size(); ++i) {
        const auto& d = (*decisions)[i];
        if (!session.empty() && d.session != session) continue;
        timeline.row()
            .integer(static_cast<long long>(d.iteration))
            .text(d.session.empty() ? "-" : d.session)
            .text(d.algorithm_name)
            .text(d.explored ? "explore" : "exploit")
            .text(d.step_kind.empty() ? "-" : d.step_kind)
            .num(d.algorithm < d.probabilities.size() ? d.probabilities[d.algorithm]
                                                      : 0.0,
                 4);
    }
    std::printf("timeline (last %zu):\n%s", limit, timeline.to_string().c_str());
    return 0;
}

} // namespace

int main(int argc, char** argv) {
    Cli cli("atk_obs_inspect",
            "inspect span traces, decision audit logs and tuning health of "
            "the tuning runtime");
    cli.add_string("trace", "",
                   "Chrome trace-event JSON to summarize; comma-separated "
                   "files merge into one multi-process timeline")
        .add_string("merge-out", "",
                    "write the merged --trace timeline here (Perfetto-ready)")
        .add_string("audit", "", "decision audit JSONL to summarize")
        .add_string("health", "", "tuning-health JSONL to summarize")
        .add_int("explain", -1, "explain this tuning iteration (needs --audit)")
        .add_string("session", "",
                    "restrict --audit/--health output to one session")
        .add_int("limit", 40, "timeline rows to print");
    if (!cli.parse(argc, argv)) return 1;

    const std::string trace = cli.get_string("trace");
    const std::string audit = cli.get_string("audit");
    const std::string health = cli.get_string("health");
    if (trace.empty() && audit.empty() && health.empty()) {
        std::fprintf(stderr, "error: pass --trace, --audit and/or --health\n");
        cli.print_usage();
        return 1;
    }
    int status = 0;
    if (!trace.empty())
        status = inspect_trace(trace, cli.get_string("merge-out"));
    if (!audit.empty() && status == 0)
        status = inspect_audit(audit, cli.get_int("explain"),
                               cli.get_string("session"),
                               static_cast<std::size_t>(cli.get_int("limit")));
    if (!health.empty() && status == 0)
        status = inspect_health(health, cli.get_string("session"));
    return status;
}

/// \file
/// atk_lint — static layering and banned-pattern checker for the atk tree.
///
/// The checker parses every .hpp/.cpp under a source root (default: src/),
/// extracts its quoted includes, and enforces the architectural rules that
/// CMake target link lines cannot see (header-only dependencies compile fine
/// against any include path):
///
///   layering        support → obs → core → runtime form a strict DAG: a
///                   layer may include itself and anything below, never
///                   above.  sim/ and net/ are leaf layers on top of
///                   runtime: each may use every ranked layer but they must
///                   not include each other, and nothing may include them.
///                   stringmatch/, raytrace/ and dsp/ are leaf domains:
///                   they may use every ranked layer, but no layer or other
///                   domain may include them.
///   include-cycle   the quoted-include graph must be acyclic.
///   banned-rand     std::rand/srand/rand anywhere outside support/rng —
///                   reproducibility requires the seeded xoshiro Rng.
///   naked-new       `new` expressions in library code; ownership must go
///                   through containers or smart pointers.
///   naked-delete    `delete` expressions (`= delete` declarations are fine).
///   iostream        std::cout/cerr/clog in library code; libraries report
///                   through return values and the obs layer, not terminals.
///   banned-socket   raw send()/recv() family calls outside src/net/ — all
///                   wire I/O goes through the net layer's framed transport.
///   pragma-once     every header starts with #pragma once.
///   self-contained  (--self-contained) every header compiles alone.
///
/// Individual lines opt out with a trailing or preceding comment:
///     // atk-lint: allow(naked-new)
///
/// `--self-test` seeds a temporary tree with one violation per rule plus a
/// suppressed and a clean file, then asserts the analyzer flags exactly the
/// seeded problems.  The build gate runs it before trusting a clean report.
///
/// Exit codes: 0 clean / self-test passed, 1 violations found, 2 usage or
/// environment error.

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

struct Violation {
    std::string file;      ///< path relative to the scanned root
    std::size_t line = 0;  ///< 1-based; 0 when the finding is file-scoped
    std::string rule;
    std::string message;
};

struct SourceFile {
    std::string rel;       ///< path relative to root, '/'-separated
    std::string raw;       ///< file contents as read
    std::string stripped;  ///< comments and literal bodies blanked, newlines kept
    bool is_header = false;
    /// line → rules allowed on that line (and the one after it).
    std::map<std::size_t, std::set<std::string>> suppressions;
    /// (line, include-path) for every `#include "..."`.
    std::vector<std::pair<std::size_t, std::string>> includes;
};

/// Rank of the core layers, bottom-up.  Leaf layers and domains have none.
int layer_rank(std::string_view top) {
    if (top == "support") return 0;
    if (top == "obs") return 1;
    if (top == "core") return 2;
    if (top == "runtime") return 3;
    return -1;
}

/// sim/ and net/ both sit directly on top of runtime as siblings: each may
/// use every ranked layer, nothing may include them — including each other
/// (a chaos scenario that needs both composes them at the test layer).
bool is_leaf_layer(std::string_view top) { return top == "sim" || top == "net"; }

bool is_domain(std::string_view top) {
    return top == "stringmatch" || top == "raytrace" || top == "dsp";
}

/// May a file under `from` include a header under `to`?
bool include_allowed(std::string_view from, std::string_view to) {
    if (from == to) return true;
    if (is_domain(from)) return layer_rank(to) >= 0;  // any layer, no other domain
    if (is_leaf_layer(from)) return layer_rank(to) >= 0;  // never the sibling leaf
    if (layer_rank(from) < 0 || layer_rank(to) < 0) return false;
    return layer_rank(to) <= layer_rank(from);
}

// ---------------------------------------------------------------------------
// Lexing helpers
// ---------------------------------------------------------------------------

bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Blank comments and the bodies of string/char literals with spaces,
/// preserving newlines so line numbers survive.  Handles //, /* */, "...",
/// '...', and R"delim(...)delim".
std::string strip_comments_and_literals(const std::string& text) {
    std::string out = text;
    std::size_t i = 0;
    const std::size_t n = text.size();
    auto blank = [&](std::size_t at) {
        if (out[at] != '\n') out[at] = ' ';
    };
    while (i < n) {
        const char c = text[i];
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            while (i < n && text[i] != '\n') blank(i++);
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            blank(i++);
            blank(i++);
            while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) blank(i++);
            if (i + 1 < n) { blank(i++); blank(i++); }
        } else if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
                   (i == 0 || !ident_char(text[i - 1]))) {
            std::size_t d = i + 2;
            while (d < n && text[d] != '(') ++d;
            const std::string close = ")" + text.substr(i + 2, d - (i + 2)) + "\"";
            const std::size_t end = text.find(close, d);
            const std::size_t stop = end == std::string::npos ? n : end + close.size();
            while (i < stop) blank(i++);
        } else if (c == '"' || c == '\'') {
            // Skip digit separators (1'000) — a quote right after an
            // identifier/digit character is not a literal delimiter.
            if (c == '\'' && i > 0 && ident_char(text[i - 1])) {
                ++i;
                continue;
            }
            const char quote = c;
            blank(i++);
            while (i < n && text[i] != quote) {
                if (text[i] == '\\' && i + 1 < n) blank(i++);
                blank(i++);
            }
            if (i < n) blank(i++);
        } else {
            ++i;
        }
    }
    return out;
}

std::vector<std::string_view> split_lines(const std::string& text) {
    std::vector<std::string_view> lines;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t end = text.find('\n', start);
        if (end == std::string::npos) {
            lines.emplace_back(text.data() + start, text.size() - start);
            break;
        }
        lines.emplace_back(text.data() + start, end - start);
        start = end + 1;
    }
    return lines;
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0)
        s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0)
        s.remove_suffix(1);
    return s;
}

/// Find whole-word occurrences of `word` in `line`; returns column offsets.
std::vector<std::size_t> find_word(std::string_view line, std::string_view word) {
    std::vector<std::size_t> hits;
    std::size_t pos = 0;
    while ((pos = line.find(word, pos)) != std::string_view::npos) {
        const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
        const std::size_t after = pos + word.size();
        const bool right_ok = after >= line.size() || !ident_char(line[after]);
        if (left_ok && right_ok) hits.push_back(pos);
        pos = after;
    }
    return hits;
}

/// Last non-space character strictly before `col`, or '\0'.
char prev_nonspace(std::string_view line, std::size_t col) {
    while (col > 0) {
        --col;
        if (std::isspace(static_cast<unsigned char>(line[col])) == 0) return line[col];
    }
    return '\0';
}

/// The identifier immediately preceding column `col` (skipping spaces).
std::string_view prev_word(std::string_view line, std::size_t col) {
    while (col > 0 && std::isspace(static_cast<unsigned char>(line[col - 1])) != 0) --col;
    std::size_t end = col;
    while (col > 0 && ident_char(line[col - 1])) --col;
    return line.substr(col, end - col);
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

std::optional<std::string> read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void collect_suppressions(SourceFile& file) {
    const auto lines = split_lines(file.raw);
    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
        const std::string_view line = lines[ln];
        std::size_t mark = line.find("atk-lint:");
        if (mark == std::string_view::npos) continue;
        mark = line.find("allow(", mark);
        if (mark == std::string_view::npos) continue;
        const std::size_t open = mark + 6;
        const std::size_t close = line.find(')', open);
        if (close == std::string_view::npos) continue;
        std::string rules(line.substr(open, close - open));
        std::replace(rules.begin(), rules.end(), ',', ' ');
        std::istringstream tokens(rules);
        std::string rule;
        while (tokens >> rule) file.suppressions[ln + 1].insert(rule);
    }
}

void collect_includes(SourceFile& file) {
    const auto lines = split_lines(file.raw);
    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
        std::string_view line = trim(lines[ln]);
        if (line.empty() || line.front() != '#') continue;
        line.remove_prefix(1);
        line = trim(line);
        if (line.rfind("include", 0) != 0) continue;
        line = trim(line.substr(7));
        if (line.size() < 2 || line.front() != '"') continue;
        const std::size_t close = line.find('"', 1);
        if (close == std::string_view::npos) continue;
        file.includes.emplace_back(ln + 1, std::string(line.substr(1, close - 1)));
    }
}

std::optional<SourceFile> load_file(const fs::path& root, const fs::path& path) {
    auto raw = read_file(path);
    if (!raw) return std::nullopt;
    SourceFile file;
    file.rel = fs::relative(path, root).generic_string();
    file.raw = std::move(*raw);
    file.stripped = strip_comments_and_literals(file.raw);
    file.is_header = path.extension() == ".hpp" || path.extension() == ".h";
    collect_suppressions(file);
    collect_includes(file);
    return file;
}

std::string top_component(std::string_view rel) {
    const std::size_t slash = rel.find('/');
    return std::string(slash == std::string_view::npos ? std::string_view{}
                                                       : rel.substr(0, slash));
}

bool suppressed(const SourceFile& file, const std::string& rule, std::size_t line) {
    for (const std::size_t at : {line, line > 0 ? line - 1 : 0}) {
        const auto it = file.suppressions.find(at);
        if (it != file.suppressions.end() && it->second.count(rule) != 0) return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// Checks
// ---------------------------------------------------------------------------

class Linter {
public:
    explicit Linter(fs::path root) : root_(std::move(root)) {}

    bool scan() {
        std::vector<fs::path> paths;
        for (const auto& entry : fs::recursive_directory_iterator(root_)) {
            if (!entry.is_regular_file()) continue;
            const auto ext = entry.path().extension();
            if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc")
                paths.push_back(entry.path());
        }
        std::sort(paths.begin(), paths.end());
        for (const auto& path : paths) {
            auto file = load_file(root_, path);
            if (!file) {
                report({path.generic_string(), 0, "io", "cannot read file"});
                continue;
            }
            files_.push_back(std::move(*file));
        }
        for (const auto& file : files_) check_file(file);
        check_cycles();
        return violations_.empty();
    }

    void check_file(const SourceFile& file) {
        check_layering(file);
        check_patterns(file);
        if (file.is_header) check_pragma_once(file);
    }

    void check_layering(const SourceFile& file) {
        const std::string from = top_component(file.rel);
        if (from.empty()) return;  // files directly under the root are unlayered
        for (const auto& [line, path] : file.includes) {
            const std::string to = top_component(path);
            if (to.empty()) continue;  // relative include inside one directory
            if (layer_rank(to) < 0 && !is_domain(to) && !is_leaf_layer(to))
                continue;  // not ours
            if (include_allowed(from, to)) continue;
            if (suppressed(file, "layering", line)) continue;
            report({file.rel, line, "layering",
                    "'" + from + "' must not include '" + path + "': the layer order is " +
                        "support < obs < core < runtime; sim and net are sibling "
                        "leaves on top, domains are leaves"});
        }
    }

    void check_patterns(const SourceFile& file) {
        const auto lines = split_lines(file.stripped);
        const std::string stem = fs::path(file.rel).stem().string();
        const bool rng_home = top_component(file.rel) == "support" && stem == "rng";
        for (std::size_t ln = 0; ln < lines.size(); ++ln) {
            const std::string_view line = lines[ln];
            const std::size_t lineno = ln + 1;
            if (!rng_home) {
                for (const char* word : {"rand", "srand"}) {
                    for (const std::size_t col : find_word(line, word)) {
                        if (suppressed(file, "banned-rand", lineno)) continue;
                        (void)col;
                        report({file.rel, lineno, "banned-rand",
                                "C rand()/srand() is unseeded global state; use "
                                "support/rng.hpp (atk::Rng)"});
                    }
                }
            }
            for (const std::size_t col : find_word(line, "new")) {
                if (prev_word(line, col) == "operator") continue;
                if (suppressed(file, "naked-new", lineno)) continue;
                report({file.rel, lineno, "naked-new",
                        "naked new in library code; use containers or make_unique/"
                        "make_shared"});
            }
            for (const std::size_t col : find_word(line, "delete")) {
                if (prev_nonspace(line, col) == '=') continue;  // = delete
                if (prev_word(line, col) == "operator") continue;
                if (suppressed(file, "naked-delete", lineno)) continue;
                report({file.rel, lineno, "naked-delete",
                        "naked delete in library code; ownership must be automatic"});
            }
            if (top_component(file.rel) != "net") {
                for (const char* call : {"send", "recv", "sendto", "recvfrom",
                                         "sendmsg", "recvmsg"}) {
                    for (const std::size_t col : find_word(line, call)) {
                        // Only call expressions: the next non-space character
                        // must open the argument list.  Member calls
                        // (queue.send(...)) are someone else's send.
                        std::size_t after = col + std::string_view(call).size();
                        while (after < line.size() &&
                               std::isspace(static_cast<unsigned char>(line[after])) != 0)
                            ++after;
                        if (after >= line.size() || line[after] != '(') continue;
                        std::size_t p = col;
                        while (p > 0 && std::isspace(
                                            static_cast<unsigned char>(line[p - 1])) != 0)
                            --p;
                        if (p >= 2 && line[p - 1] == ':' && line[p - 2] == ':') {
                            // `Foo::send(` is a qualified member; only the
                            // global-scope `::send(` is the libc call.
                            std::size_t q = p - 2;
                            while (q > 0 && std::isspace(static_cast<unsigned char>(
                                                line[q - 1])) != 0)
                                --q;
                            if (q > 0 && ident_char(line[q - 1])) continue;
                        } else {
                            const char before = p > 0 ? line[p - 1] : '\0';
                            if (before == '.' || before == '>') continue;  // member call
                            // An identifier before the name means a
                            // declaration (`ssize_t send(`) — except
                            // `return send(...)`, which is a call.
                            if (ident_char(before) &&
                                prev_word(line, col) != "return")
                                continue;
                        }
                        if (suppressed(file, "banned-socket", lineno)) continue;
                        report({file.rel, lineno, "banned-socket",
                                "raw socket I/O outside src/net/; all wire traffic "
                                "goes through the net layer's framed transport"});
                    }
                }
            }
            for (const char* stream : {"cout", "cerr", "clog"}) {
                for (const std::size_t col : find_word(line, stream)) {
                    // Only std::cout etc. — a local identifier `cout` is odd
                    // but not what this rule is about.
                    if (col < 2 || line.substr(col - 2, 2) != "::") continue;
                    if (prev_word(line, col - 2) != "std") continue;
                    if (suppressed(file, "iostream", lineno)) continue;
                    report({file.rel, lineno, "iostream",
                            "terminal output from library code; report through "
                            "return values or the obs layer"});
                }
            }
        }
    }

    void check_pragma_once(const SourceFile& file) {
        for (const std::string_view line : split_lines(file.stripped)) {
            const std::string_view content = trim(line);
            if (content.empty()) continue;
            if (content.rfind("#pragma once", 0) != 0)
                report({file.rel, 1, "pragma-once",
                        "header must start with #pragma once"});
            return;
        }
        report({file.rel, 1, "pragma-once", "header is empty"});
    }

    void check_cycles() {
        // Quoted-include graph over files that exist under the root.
        std::map<std::string, std::vector<std::string>> graph;
        std::set<std::string> known;
        for (const auto& file : files_) known.insert(file.rel);
        for (const auto& file : files_) {
            for (const auto& [line, path] : file.includes) {
                (void)line;
                if (known.count(path) != 0) graph[file.rel].push_back(path);
            }
        }
        std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
        std::vector<std::string> stack;
        for (const auto& file : files_)
            if (color[file.rel] == 0) dfs_cycle(file.rel, graph, color, stack);
    }

    void dfs_cycle(const std::string& node,
                   const std::map<std::string, std::vector<std::string>>& graph,
                   std::map<std::string, int>& color,
                   std::vector<std::string>& stack) {
        color[node] = 1;
        stack.push_back(node);
        const auto it = graph.find(node);
        if (it != graph.end()) {
            for (const auto& next : it->second) {
                if (color[next] == 1) {
                    std::string chain;
                    const auto begin =
                        std::find(stack.begin(), stack.end(), next);
                    for (auto at = begin; at != stack.end(); ++at)
                        chain += *at + " -> ";
                    chain += next;
                    report({node, 0, "include-cycle", "include cycle: " + chain});
                } else if (color[next] == 0) {
                    dfs_cycle(next, graph, color, stack);
                }
            }
        }
        stack.pop_back();
        color[node] = 2;
    }

    /// Compile every header alone against the root include path.
    void check_self_contained(const std::string& compiler) {
        const fs::path scratch =
            fs::temp_directory_path() / "atk_lint_tu";
        fs::create_directories(scratch);
        for (const auto& file : files_) {
            if (!file.is_header) continue;
            const fs::path tu = scratch / "self_contained.cpp";
            {
                std::ofstream out(tu);
                out << "#include \"" << file.rel << "\"\n";
            }
            const std::string command = compiler + " -std=c++20 -fsyntax-only -I" +
                                        root_.string() + " " + tu.string() +
                                        " > " + (scratch / "log").string() + " 2>&1";
            if (std::system(command.c_str()) != 0) {
                std::string log = read_file(scratch / "log").value_or("");
                if (log.size() > 400) log.resize(400);
                report({file.rel, 1, "self-contained",
                        "header does not compile on its own:\n" + log});
            }
        }
        std::error_code ec;
        fs::remove_all(scratch, ec);
    }

    void report(Violation v) { violations_.push_back(std::move(v)); }

    const std::vector<Violation>& violations() const { return violations_; }
    std::size_t file_count() const { return files_.size(); }

private:
    fs::path root_;
    std::vector<SourceFile> files_;
    std::vector<Violation> violations_;
};

void print_violations(const Linter& lint) {
    for (const auto& v : lint.violations()) {
        std::cout << v.file;
        if (v.line != 0) std::cout << ":" << v.line;
        std::cout << ": [" << v.rule << "] " << v.message << "\n";
    }
}

// ---------------------------------------------------------------------------
// Self-test
// ---------------------------------------------------------------------------

void write_seed(const fs::path& path, const std::string& text) {
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    out << text;
}

int self_test() {
    const fs::path root = fs::temp_directory_path() / "atk_lint_selftest";
    std::error_code ec;
    fs::remove_all(root, ec);

    // One seeded violation per rule, plus a suppression and a clean file.
    write_seed(root / "runtime/service.hpp", "#pragma once\nint service();\n");
    write_seed(root / "support/bad_layer.hpp",
               "#pragma once\n#include \"runtime/service.hpp\"\n");
    // sim and net sit on top of runtime as sibling leaves: downward includes
    // are clean, upward ones (runtime reaching into a leaf) and sideways
    // ones (leaf to leaf, either direction) violate the DAG.
    write_seed(root / "sim/harness.hpp",
               "#pragma once\n#include \"runtime/service.hpp\"\n");
    write_seed(root / "runtime/uses_sim.hpp",
               "#pragma once\n#include \"sim/harness.hpp\"\n");
    write_seed(root / "net/server.hpp",
               "#pragma once\n#include \"runtime/service.hpp\"\n");
    write_seed(root / "net/uses_sim.hpp",
               "#pragma once\n#include \"sim/harness.hpp\"\n");
    write_seed(root / "sim/uses_net.hpp",
               "#pragma once\n#include \"net/server.hpp\"\n");
    // The health monitor lives in obs and is *fed by* runtime and *served
    // by* net — obs reaching up into net (e.g. to define the Health frame
    // there instead of in net/protocol) would invert the whole DAG.
    write_seed(root / "obs/uses_net.hpp",
               "#pragma once\n#include \"net/server.hpp\"\n");
    // dsp is a domain: it may reach any ranked layer, but never a leaf, and
    // no ranked layer may reach back into it.
    write_seed(root / "dsp/engine.hpp",
               "#pragma once\n#include \"runtime/service.hpp\"\n");
    write_seed(root / "dsp/uses_net.hpp",
               "#pragma once\n#include \"net/server.hpp\"\n");
    write_seed(root / "core/uses_dsp.hpp",
               "#pragma once\n#include \"dsp/engine.hpp\"\n");
    // Raw socket I/O belongs to net/: flagged elsewhere, clean inside it,
    // and member calls named send/recv are not what the rule is about.
    write_seed(root / "runtime/raw_socket.cpp",
               "int leak_io(int fd, char* b, long n) {\n"
               "    return static_cast<int>(recv(fd, b, n, 0));\n"
               "}\n");
    write_seed(root / "net/transport.cpp",
               "int frame_io(int fd, const char* b, long n) {\n"
               "    return static_cast<int>(send(fd, b, n, 0));\n"
               "}\n");
    write_seed(root / "core/channel.cpp",
               "struct Chan { void send(int); };\n"
               "void pump(Chan& c) { c.send(1); }\n");
    write_seed(root / "core/uses_rand.cpp",
               "#include <cstdlib>\nint f() { return std::rand(); }\n");
    write_seed(root / "core/leak.cpp",
               "int* make() { return new int(4); }\n"
               "void drop(int* p) { delete p; }\n");
    write_seed(root / "obs/noisy.cpp",
               "#include <iostream>\nvoid shout() { std::cout << 1; }\n");
    write_seed(root / "core/no_pragma.hpp", "int g();\n");
    write_seed(root / "core/cycle_a.hpp",
               "#pragma once\n#include \"core/cycle_b.hpp\"\n");
    write_seed(root / "core/cycle_b.hpp",
               "#pragma once\n#include \"core/cycle_a.hpp\"\n");
    write_seed(root / "core/suppressed.cpp",
               "// atk-lint: allow(naked-new)\n"
               "int* keep() { return new int(2); }\n");
    write_seed(root / "core/clean.cpp",
               "// new and delete in comments are fine, so is \"std::cout\" in a\n"
               "// string: the scanner must strip both before matching.\n"
               "#include \"support/util.hpp\"\n"
               "struct Holder {\n"
               "    Holder(const Holder&) = delete;\n"
               "};\n"
               "const char* banner() { return \"no new delete std::rand here\"; }\n");
    write_seed(root / "support/util.hpp", "#pragma once\nint util();\n");

    Linter lint(root);
    const bool clean = lint.scan();

    std::map<std::string, std::size_t> by_rule;
    std::set<std::string> flagged_files;
    for (const auto& v : lint.violations()) {
        ++by_rule[v.rule];
        flagged_files.insert(v.file);
    }

    std::size_t failures = 0;
    auto expect = [&](bool ok, const std::string& what) {
        std::cout << (ok ? "  ok: " : "  FAIL: ") << what << "\n";
        if (!ok) ++failures;
    };

    expect(!clean, "seeded tree is reported as failing");
    expect(by_rule["layering"] == 7,
           "all seven layering violations detected (support->runtime, "
           "runtime->sim, net->sim, sim->net, obs->net, dsp->net, core->dsp)");
    expect(flagged_files.count("obs/uses_net.hpp") == 1,
           "obs including net (upward into a leaf) flagged");
    expect(flagged_files.count("sim/harness.hpp") == 0,
           "sim including runtime (downward) not flagged");
    expect(flagged_files.count("net/server.hpp") == 0,
           "net including runtime (downward) not flagged");
    expect(flagged_files.count("dsp/engine.hpp") == 0,
           "dsp domain including a ranked layer not flagged");
    expect(by_rule["banned-socket"] == 1, "raw recv() outside net/ detected");
    expect(flagged_files.count("net/transport.cpp") == 0,
           "raw send() inside net/ not flagged");
    expect(flagged_files.count("core/channel.cpp") == 0,
           "member function named send not flagged");
    expect(by_rule["banned-rand"] == 1, "std::rand detected");
    expect(by_rule["naked-new"] == 1, "naked new detected");
    expect(by_rule["naked-delete"] == 1, "naked delete detected");
    expect(by_rule["iostream"] == 1, "std::cout detected");
    expect(by_rule["pragma-once"] == 1, "missing #pragma once detected");
    expect(by_rule["include-cycle"] >= 1, "include cycle detected");
    expect(flagged_files.count("core/suppressed.cpp") == 0,
           "allow(naked-new) suppression honored");
    expect(flagged_files.count("core/clean.cpp") == 0,
           "clean file (comments, strings, = delete) not flagged");
    expect(flagged_files.count("support/util.hpp") == 0, "clean header not flagged");

    if (failures != 0) {
        std::cout << "--- violations from the seeded tree ---\n";
        print_violations(lint);
    }
    fs::remove_all(root, ec);
    std::cout << "atk_lint --self-test: "
              << (failures == 0 ? "PASS" : "FAIL") << "\n";
    return failures == 0 ? 0 : 1;
}

}  // namespace

// ---------------------------------------------------------------------------

int main(int argc, char** argv) {
    fs::path root = "src";
    bool self_contained = false;
    bool run_self_test = false;
    const char* env_cxx = std::getenv("CXX");
    std::string compiler = env_cxx != nullptr && *env_cxx != '\0' ? env_cxx : "c++";

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--compiler" && i + 1 < argc) {
            compiler = argv[++i];
        } else if (arg == "--self-contained") {
            self_contained = true;
        } else if (arg == "--self-test") {
            run_self_test = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: atk_lint [--root <src-dir>] [--self-contained]"
                         " [--compiler <cxx>] [--self-test]\n";
            return 0;
        } else {
            std::cerr << "atk_lint: unknown argument '" << arg << "'\n";
            return 2;
        }
    }

    if (run_self_test) return self_test();

    if (!fs::is_directory(root)) {
        std::cerr << "atk_lint: source root '" << root.string()
                  << "' is not a directory\n";
        return 2;
    }

    Linter lint(root);
    const bool clean = lint.scan();
    if (self_contained) lint.check_self_contained(compiler);

    if (!lint.violations().empty()) {
        print_violations(lint);
        std::cout << "atk_lint: " << lint.violations().size() << " violation(s) in "
                  << lint.file_count() << " file(s)\n";
        return 1;
    }
    (void)clean;
    std::cout << "atk_lint: clean (" << lint.file_count() << " files)\n";
    return 0;
}

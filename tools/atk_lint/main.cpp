/// \file
/// atk_lint — static layering and banned-pattern checker for the atk tree.
///
/// The checker parses every .hpp/.cpp under a source root (default: src/),
/// extracts its quoted includes, and enforces the architectural rules that
/// CMake target link lines cannot see (header-only dependencies compile fine
/// against any include path):
///
///   layering        support → obs → core → runtime form a strict DAG: a
///                   layer may include itself and anything below, never
///                   above.  sim/ and net/ are leaf layers on top of
///                   runtime: each may use every ranked layer but they must
///                   not include each other, and nothing may include them.
///                   fleet/ is the composition layer above net: it may use
///                   net plus every ranked layer — but never sim (chaos
///                   scenarios that need both compose them at the test
///                   layer) — and nothing may include fleet.
///                   stringmatch/, raytrace/ and dsp/ are leaf domains:
///                   they may use every ranked layer, but no layer or other
///                   domain may include them.
///   include-cycle   the quoted-include graph must be acyclic.
///   banned-rand     std::rand/srand/rand anywhere outside support/rng —
///                   reproducibility requires the seeded xoshiro Rng.
///   naked-new       `new` expressions in library code; ownership must go
///                   through containers or smart pointers.
///   naked-delete    `delete` expressions (`= delete` declarations are fine).
///   iostream        std::cout/cerr/clog in library code; libraries report
///                   through return values and the obs layer, not terminals.
///   banned-socket   raw send()/recv() family calls outside src/net/ — all
///                   wire I/O goes through the net layer's framed transport.
///   pragma-once     every header starts with #pragma once.
///   self-contained  (--self-contained) every header compiles alone.
///
/// Lock discipline (token-level, brace-aware scope tracking — the static
/// companion of the clang -Wthread-safety gate, see
/// support/thread_annotations.hpp):
///
///   unguarded-mutex      every std::mutex / std::shared_mutex / Mutex
///                        *member* must be referenced from a capability
///                        annotation (ATK_GUARDED_BY and friends, in the
///                        file or its .hpp/.cpp pair) or carry an explicit
///                        suppression.  Function-local mutexes are exempt.
///   blocking-under-lock  no blocking calls (send/recv family, poll/select/
///                        epoll_wait/accept/connect, sleep_for/sleep_until/
///                        usleep/nanosleep) while a lock_guard/scoped_lock/
///                        unique_lock/MutexLock scope is open; a
///                        condition-variable wait()/wait_for()/wait_until()
///                        is flagged when a non-CV-capable lock (lock_guard,
///                        scoped_lock, shared_lock) is held or two or more
///                        locks are held at once.
///   banned-detach        std::thread::detach() tree-wide — every thread
///                        must have a joining owner.
///   unjoined-thread      a std::thread member requires a join( call in the
///                        same file or its header/impl pair (std::jthread
///                        joins itself and is exempt).
///   relaxed              memory_order_relaxed requires an adjacent
///                        `// atk-lint: allow(relaxed)` justification.
///
/// Individual lines opt out with a trailing or preceding comment:
///     // atk-lint: allow(naked-new)
///
/// `--self-test` seeds a temporary tree with one violation per rule plus a
/// suppressed and a clean file, then asserts the analyzer flags exactly the
/// seeded problems.  The build gate runs it before trusting a clean report.
///
/// Exit codes: 0 clean / self-test passed, 1 violations found, 2 usage or
/// environment error.

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

struct Violation {
    std::string file;      ///< path relative to the scanned root
    std::size_t line = 0;  ///< 1-based; 0 when the finding is file-scoped
    std::string rule;
    std::string message;
};

struct SourceFile {
    std::string rel;       ///< path relative to root, '/'-separated
    std::string raw;       ///< file contents as read
    std::string stripped;  ///< comments and literal bodies blanked, newlines kept
    bool is_header = false;
    /// line → rules allowed on that line (and the one after it).
    std::map<std::size_t, std::set<std::string>> suppressions;
    /// (line, include-path) for every `#include "..."`.
    std::vector<std::pair<std::size_t, std::string>> includes;
};

/// Rank of the core layers, bottom-up.  Leaf layers and domains have none.
int layer_rank(std::string_view top) {
    if (top == "support") return 0;
    if (top == "obs") return 1;
    if (top == "core") return 2;
    if (top == "runtime") return 3;
    return -1;
}

/// sim/ and net/ both sit directly on top of runtime as siblings: each may
/// use every ranked layer, nothing may include them — including each other
/// (a chaos scenario that needs both composes them at the test layer).
bool is_leaf_layer(std::string_view top) { return top == "sim" || top == "net"; }

/// fleet/ composes net + runtime into multi-node operation, so it sits above
/// the leaves: it may use net and every ranked layer, never sim (the mutual
/// exclusivity keeps deterministic replay and real sockets apart), and
/// nothing may include it.
bool is_fleet_layer(std::string_view top) { return top == "fleet"; }

bool is_domain(std::string_view top) {
    return top == "stringmatch" || top == "raytrace" || top == "dsp";
}

/// May a file under `from` include a header under `to`?
bool include_allowed(std::string_view from, std::string_view to) {
    if (from == to) return true;
    if (is_fleet_layer(from))
        return layer_rank(to) >= 0 || to == "net";  // everything but sim/domains
    if (is_domain(from)) return layer_rank(to) >= 0;  // any layer, no other domain
    if (is_leaf_layer(from)) return layer_rank(to) >= 0;  // never the sibling leaf
    if (layer_rank(from) < 0 || layer_rank(to) < 0) return false;
    return layer_rank(to) <= layer_rank(from);
}

// ---------------------------------------------------------------------------
// Lexing helpers
// ---------------------------------------------------------------------------

bool ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Blank comments and the bodies of string/char literals with spaces,
/// preserving newlines so line numbers survive.  Handles //, /* */, "...",
/// '...', and R"delim(...)delim".
std::string strip_comments_and_literals(const std::string& text) {
    std::string out = text;
    std::size_t i = 0;
    const std::size_t n = text.size();
    auto blank = [&](std::size_t at) {
        if (out[at] != '\n') out[at] = ' ';
    };
    while (i < n) {
        const char c = text[i];
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            while (i < n && text[i] != '\n') blank(i++);
        } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            blank(i++);
            blank(i++);
            while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) blank(i++);
            if (i + 1 < n) { blank(i++); blank(i++); }
        } else if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
                   (i == 0 || !ident_char(text[i - 1]))) {
            std::size_t d = i + 2;
            while (d < n && text[d] != '(') ++d;
            const std::string close = ")" + text.substr(i + 2, d - (i + 2)) + "\"";
            const std::size_t end = text.find(close, d);
            const std::size_t stop = end == std::string::npos ? n : end + close.size();
            while (i < stop) blank(i++);
        } else if (c == '"' || c == '\'') {
            // Skip digit separators (1'000) — a quote right after an
            // identifier/digit character is not a literal delimiter.
            if (c == '\'' && i > 0 && ident_char(text[i - 1])) {
                ++i;
                continue;
            }
            const char quote = c;
            blank(i++);
            while (i < n && text[i] != quote) {
                if (text[i] == '\\' && i + 1 < n) blank(i++);
                blank(i++);
            }
            if (i < n) blank(i++);
        } else {
            ++i;
        }
    }
    return out;
}

std::vector<std::string_view> split_lines(const std::string& text) {
    std::vector<std::string_view> lines;
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t end = text.find('\n', start);
        if (end == std::string::npos) {
            lines.emplace_back(text.data() + start, text.size() - start);
            break;
        }
        lines.emplace_back(text.data() + start, end - start);
        start = end + 1;
    }
    return lines;
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0)
        s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0)
        s.remove_suffix(1);
    return s;
}

/// Find whole-word occurrences of `word` in `line`; returns column offsets.
std::vector<std::size_t> find_word(std::string_view line, std::string_view word) {
    std::vector<std::size_t> hits;
    std::size_t pos = 0;
    while ((pos = line.find(word, pos)) != std::string_view::npos) {
        const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
        const std::size_t after = pos + word.size();
        const bool right_ok = after >= line.size() || !ident_char(line[after]);
        if (left_ok && right_ok) hits.push_back(pos);
        pos = after;
    }
    return hits;
}

/// Last non-space character strictly before `col`, or '\0'.
char prev_nonspace(std::string_view line, std::size_t col) {
    while (col > 0) {
        --col;
        if (std::isspace(static_cast<unsigned char>(line[col])) == 0) return line[col];
    }
    return '\0';
}

/// The identifier immediately preceding column `col` (skipping spaces).
std::string_view prev_word(std::string_view line, std::size_t col) {
    while (col > 0 && std::isspace(static_cast<unsigned char>(line[col - 1])) != 0) --col;
    std::size_t end = col;
    while (col > 0 && ident_char(line[col - 1])) --col;
    return line.substr(col, end - col);
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

std::optional<std::string> read_file(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void collect_suppressions(SourceFile& file) {
    const auto lines = split_lines(file.raw);
    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
        const std::string_view line = lines[ln];
        std::size_t mark = line.find("atk-lint:");
        if (mark == std::string_view::npos) continue;
        mark = line.find("allow(", mark);
        if (mark == std::string_view::npos) continue;
        const std::size_t open = mark + 6;
        const std::size_t close = line.find(')', open);
        if (close == std::string_view::npos) continue;
        std::string rules(line.substr(open, close - open));
        std::replace(rules.begin(), rules.end(), ',', ' ');
        std::istringstream tokens(rules);
        std::string rule;
        while (tokens >> rule) file.suppressions[ln + 1].insert(rule);
    }
}

void collect_includes(SourceFile& file) {
    const auto lines = split_lines(file.raw);
    for (std::size_t ln = 0; ln < lines.size(); ++ln) {
        std::string_view line = trim(lines[ln]);
        if (line.empty() || line.front() != '#') continue;
        line.remove_prefix(1);
        line = trim(line);
        if (line.rfind("include", 0) != 0) continue;
        line = trim(line.substr(7));
        if (line.size() < 2 || line.front() != '"') continue;
        const std::size_t close = line.find('"', 1);
        if (close == std::string_view::npos) continue;
        file.includes.emplace_back(ln + 1, std::string(line.substr(1, close - 1)));
    }
}

std::optional<SourceFile> load_file(const fs::path& root, const fs::path& path) {
    auto raw = read_file(path);
    if (!raw) return std::nullopt;
    SourceFile file;
    file.rel = fs::relative(path, root).generic_string();
    file.raw = std::move(*raw);
    file.stripped = strip_comments_and_literals(file.raw);
    file.is_header = path.extension() == ".hpp" || path.extension() == ".h";
    collect_suppressions(file);
    collect_includes(file);
    return file;
}

std::string top_component(std::string_view rel) {
    const std::size_t slash = rel.find('/');
    return std::string(slash == std::string_view::npos ? std::string_view{}
                                                       : rel.substr(0, slash));
}

bool suppressed(const SourceFile& file, const std::string& rule, std::size_t line) {
    for (const std::size_t at : {line, line > 0 ? line - 1 : 0}) {
        const auto it = file.suppressions.find(at);
        if (it != file.suppressions.end() && it->second.count(rule) != 0) return true;
    }
    return false;
}

// ---------------------------------------------------------------------------
// Lock discipline: tokens and classification tables
// ---------------------------------------------------------------------------

struct Token {
    std::string text;
    std::size_t line = 0;  ///< 1-based
};

/// Tokenize stripped source: identifiers (with immediately adjacent `::`
/// qualifiers merged, so `std::this_thread::sleep_for` is one token), the
/// `::` and `->` digraphs, and single punctuation characters.
std::vector<Token> tokenize(const std::string& stripped) {
    std::vector<Token> out;
    std::size_t line = 1;
    std::size_t i = 0;
    const std::size_t n = stripped.size();
    while (i < n) {
        const char c = stripped[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            ++i;
            continue;
        }
        if (ident_char(c)) {
            const std::size_t start = i;
            while (i < n && ident_char(stripped[i])) ++i;
            while (i + 2 < n && stripped[i] == ':' && stripped[i + 1] == ':' &&
                   ident_char(stripped[i + 2])) {
                i += 2;
                while (i < n && ident_char(stripped[i])) ++i;
            }
            out.push_back({stripped.substr(start, i - start), line});
            continue;
        }
        if (c == ':' && i + 1 < n && stripped[i + 1] == ':') {
            out.push_back({"::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && stripped[i + 1] == '>') {
            out.push_back({"->", line});
            i += 2;
            continue;
        }
        out.push_back({std::string(1, c), line});
        ++i;
    }
    return out;
}

/// The component after the last `::` of a (possibly qualified) token.
std::string_view last_component(std::string_view token) {
    const std::size_t pos = token.rfind("::");
    return pos == std::string_view::npos ? token : token.substr(pos + 2);
}

bool is_identifier_token(const std::string& t) {
    return !t.empty() &&
           (std::isalpha(static_cast<unsigned char>(t[0])) != 0 || t[0] == '_');
}

bool is_mutex_type(const std::string& t) {
    return t == "std::mutex" || t == "std::shared_mutex" ||
           t == "std::timed_mutex" || t == "std::recursive_mutex" ||
           t == "Mutex" || t == "atk::Mutex";
}

bool is_lock_type(const std::string& t) {
    return t == "std::lock_guard" || t == "std::scoped_lock" ||
           t == "std::unique_lock" || t == "std::shared_lock" ||
           t == "MutexLock" || t == "atk::MutexLock";
}

/// unique_lock — and the MutexLock wrapper, whose native() hands the wait a
/// unique_lock — is released and reacquired by a condition-variable wait;
/// lock_guard/scoped_lock/shared_lock are not.
bool is_cv_capable_lock(const std::string& t) {
    return t == "std::unique_lock" || t == "MutexLock" || t == "atk::MutexLock";
}

/// Everything inside the parentheses of capability annotations, concatenated
/// so a mutex member can be matched against the guards that reference it.
std::string annotation_arguments(const SourceFile& file) {
    static constexpr const char* kMacros[] = {
        "ATK_GUARDED_BY",    "ATK_PT_GUARDED_BY",    "ATK_REQUIRES",
        "ATK_REQUIRES_SHARED", "ATK_ACQUIRE",        "ATK_ACQUIRE_SHARED",
        "ATK_RELEASE",       "ATK_RELEASE_SHARED",   "ATK_EXCLUDES",
        "ATK_RETURN_CAPABILITY", "ATK_ASSERT_CAPABILITY"};
    std::string args;
    const std::string& text = file.stripped;
    for (const char* macro : kMacros) {
        const std::string_view name(macro);
        std::size_t pos = 0;
        while ((pos = text.find(macro, pos)) != std::string::npos) {
            const std::size_t after = pos + name.size();
            if ((pos > 0 && ident_char(text[pos - 1])) ||
                (after < text.size() && ident_char(text[after]))) {
                pos = after;
                continue;
            }
            std::size_t open = after;
            while (open < text.size() &&
                   std::isspace(static_cast<unsigned char>(text[open])) != 0)
                ++open;
            if (open >= text.size() || text[open] != '(') {
                pos = after;
                continue;
            }
            int depth = 1;
            std::size_t close = open + 1;
            while (close < text.size() && depth > 0) {
                if (text[close] == '(') ++depth;
                if (text[close] == ')') --depth;
                ++close;
            }
            args += text.substr(open + 1, close - open - (depth == 0 ? 2 : 1));
            args += ' ';
            pos = close;
        }
    }
    return args;
}

/// Whether a `join(` call expression appears anywhere in the file.
bool has_join_call(const SourceFile& file) {
    for (const std::string_view line : split_lines(file.stripped)) {
        for (const std::size_t col : find_word(line, "join")) {
            std::size_t after = col + 4;
            while (after < line.size() &&
                   std::isspace(static_cast<unsigned char>(line[after])) != 0)
                ++after;
            if (after < line.size() && line[after] == '(') return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------------
// Checks
// ---------------------------------------------------------------------------

class Linter {
public:
    explicit Linter(fs::path root) : root_(std::move(root)) {}

    bool scan() {
        std::vector<fs::path> paths;
        for (const auto& entry : fs::recursive_directory_iterator(root_)) {
            if (!entry.is_regular_file()) continue;
            const auto ext = entry.path().extension();
            if (ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc")
                paths.push_back(entry.path());
        }
        std::sort(paths.begin(), paths.end());
        for (const auto& path : paths) {
            auto file = load_file(root_, path);
            if (!file) {
                report({path.generic_string(), 0, "io", "cannot read file"});
                continue;
            }
            files_.push_back(std::move(*file));
        }
        for (const auto& file : files_) check_file(file);
        check_cycles();
        return violations_.empty();
    }

    void check_file(const SourceFile& file) {
        check_layering(file);
        check_patterns(file);
        check_lock_discipline(file);
        if (file.is_header) check_pragma_once(file);
    }

    /// The other half of a header/implementation pair, if it was scanned.
    const SourceFile* pair_of(const SourceFile& file) const {
        fs::path alt(file.rel);
        alt.replace_extension(file.is_header ? ".cpp" : ".hpp");
        const std::string want = alt.generic_string();
        for (const auto& candidate : files_)
            if (candidate.rel == want) return &candidate;
        return nullptr;
    }

    /// Token-level lock-discipline pass; the rules are documented in the
    /// file header.  Tracks brace scopes (namespace / class / block) and the
    /// set of RAII lock guards currently in scope.
    void check_lock_discipline(const SourceFile& file) {
        const std::vector<Token> tokens = tokenize(file.stripped);
        const SourceFile* pair = pair_of(file);
        const std::string guards =
            annotation_arguments(file) +
            (pair != nullptr ? annotation_arguments(*pair) : "");
        const bool joins =
            has_join_call(file) || (pair != nullptr && has_join_call(*pair));

        struct HeldLock {
            std::size_t depth;    ///< scope depth the guard was declared at
            bool cv_capable;
        };
        std::vector<char> scopes;  // 'n' namespace, 'c' class, 'b' block
        std::vector<HeldLock> locks;
        std::vector<std::size_t> header;  // token indices since the last ; { }
        int parens = 0;

        // What kind of scope does the brace whose statement prefix is
        // `header` open?  Tokens inside parentheses (parameter lists,
        // attribute arguments) are not part of the prefix.
        auto classify = [&]() -> char {
            bool found_class = false;
            for (const std::size_t h : header) {
                const std::string& t = tokens[h].text;
                if (t == "namespace") return 'n';
                if (t == "enum") return 'b';  // enumerators, not members
                if (t == "class" || t == "struct" || t == "union")
                    found_class = true;
            }
            if (!found_class || header.empty()) return 'b';
            const std::string& tail = tokens[header.back()].text;
            // `T f(struct timespec*) const {` is a function, not a class.
            if (tail == "const" || tail == "noexcept" || tail == "override" ||
                tail == ")")
                return 'b';
            return 'c';
        };

        // Member declarations: every mutex member must be referenced from a
        // capability annotation; every std::thread member needs a join(.
        auto member_decl_checks = [&]() {
            if (scopes.empty() || scopes.back() != 'c') return;
            for (std::size_t h = 0; h + 1 < header.size(); ++h) {
                const Token& t = tokens[header[h]];
                const Token& after = tokens[header[h + 1]];
                if (is_mutex_type(t.text) && is_identifier_token(after.text)) {
                    if (find_word(guards, after.text).empty() &&
                        !suppressed(file, "unguarded-mutex", t.line))
                        report({file.rel, t.line, "unguarded-mutex",
                                "mutex member '" + after.text +
                                    "' is referenced by no capability annotation; "
                                    "add ATK_GUARDED_BY on the data it protects or "
                                    "an explicit allow(unguarded-mutex)"});
                }
                if (t.text == "std::thread") {
                    std::size_t k = h + 1;
                    while (k < header.size() && tokens[header[k]].text == ">") ++k;
                    if (k < header.size() &&
                        is_identifier_token(tokens[header[k]].text) && !joins &&
                        !suppressed(file, "unjoined-thread", t.line))
                        report({file.rel, t.line, "unjoined-thread",
                                "std::thread member '" + tokens[header[k]].text +
                                    "' has no join( in this file or its header/"
                                    "impl pair; every thread needs a joining "
                                    "owner (or use std::jthread)"});
                }
            }
        };

        // `MutexLock lock(m);` and friends open a held-lock region that lasts
        // until the enclosing brace closes.
        auto lock_registration = [&]() {
            if (scopes.empty() || scopes.back() != 'b') return;
            for (std::size_t h = 0; h < header.size(); ++h) {
                const std::string& t = tokens[header[h]].text;
                if (!is_lock_type(t)) continue;
                std::size_t k = h + 1;
                if (k < header.size() && tokens[header[k]].text == "<") {
                    while (k < header.size() && tokens[header[k]].text != ">") ++k;
                    ++k;
                }
                if (k < header.size() && is_identifier_token(tokens[header[k]].text))
                    locks.push_back({scopes.size(), is_cv_capable_lock(t)});
                return;
            }
        };

        for (std::size_t i = 0; i < tokens.size(); ++i) {
            const Token& t = tokens[i];
            const std::string* prev = i > 0 ? &tokens[i - 1].text : nullptr;
            const std::string* next =
                i + 1 < tokens.size() ? &tokens[i + 1].text : nullptr;

            if (t.text == "(") {
                ++parens;
                continue;
            }
            if (t.text == ")") {
                if (parens > 0) --parens;
                continue;
            }
            if (t.text == "{") {
                scopes.push_back(classify());
                header.clear();
                parens = 0;
                continue;
            }
            if (t.text == "}") {
                if (!scopes.empty()) scopes.pop_back();
                while (!locks.empty() && locks.back().depth > scopes.size())
                    locks.pop_back();
                header.clear();
                parens = 0;
                continue;
            }
            if (t.text == ";") {
                member_decl_checks();
                lock_registration();
                header.clear();
                parens = 0;
                continue;
            }
            if (parens == 0) header.push_back(i);

            if (t.text == "std::memory_order_relaxed" ||
                t.text == "memory_order_relaxed") {
                if (!suppressed(file, "relaxed", t.line))
                    report({file.rel, t.line, "relaxed",
                            "memory_order_relaxed without an adjacent "
                            "`atk-lint: allow(relaxed)` justification"});
                continue;
            }
            if (t.text == "detach" && prev != nullptr && next != nullptr &&
                (*prev == "." || *prev == "->") && *next == "(") {
                if (!suppressed(file, "banned-detach", t.line))
                    report({file.rel, t.line, "banned-detach",
                            "thread detach() is banned tree-wide; every thread "
                            "needs a joining owner"});
                continue;
            }

            if (locks.empty() || next == nullptr || *next != "(") continue;
            const std::string_view call = last_component(t.text);
            const bool member_call =
                prev != nullptr && (*prev == "." || *prev == "->");

            if ((call == "wait" || call == "wait_for" || call == "wait_until") &&
                member_call) {
                // A CV wait releases exactly the lock it is handed; holding a
                // second lock (or a guard the wait cannot release) across the
                // sleep is a latent deadlock.
                bool non_cv = false;
                for (const HeldLock& held : locks) non_cv |= !held.cv_capable;
                if ((locks.size() >= 2 || non_cv) &&
                    !suppressed(file, "blocking-under-lock", t.line))
                    report({file.rel, t.line, "blocking-under-lock",
                            "condition-variable wait while holding " +
                                std::to_string(locks.size()) +
                                " lock(s), at least one of which the wait cannot "
                                "release"});
                continue;
            }

            bool blocking = false;
            for (const std::string_view name :
                 {"sleep_for", "sleep_until", "usleep", "nanosleep"})
                blocking = blocking || call == name;
            if (!blocking) {
                // Socket syscalls: only bare (or `::`-global) call
                // expressions; member calls and declarations are not libc.
                const bool qualified = t.text.find("::") != std::string::npos;
                const bool declaration = prev != nullptr &&
                                         is_identifier_token(*prev) &&
                                         *prev != "return";
                if (!qualified && !member_call && !declaration)
                    for (const std::string_view name :
                         {"send", "recv", "sendto", "recvfrom", "sendmsg",
                          "recvmsg", "poll", "epoll_wait", "select", "accept",
                          "connect"})
                        blocking = blocking || t.text == name;
            }
            if (blocking && !suppressed(file, "blocking-under-lock", t.line))
                report({file.rel, t.line, "blocking-under-lock",
                        "blocking call '" + t.text + "' while holding " +
                            std::to_string(locks.size()) +
                            " lock(s); release the lock first"});
        }
    }

    void check_layering(const SourceFile& file) {
        const std::string from = top_component(file.rel);
        if (from.empty()) return;  // files directly under the root are unlayered
        for (const auto& [line, path] : file.includes) {
            const std::string to = top_component(path);
            if (to.empty()) continue;  // relative include inside one directory
            if (layer_rank(to) < 0 && !is_domain(to) && !is_leaf_layer(to) &&
                !is_fleet_layer(to))
                continue;  // not ours
            if (include_allowed(from, to)) continue;
            if (suppressed(file, "layering", line)) continue;
            report({file.rel, line, "layering",
                    "'" + from + "' must not include '" + path + "': the layer order is " +
                        "support < obs < core < runtime; sim and net are sibling "
                        "leaves on top, fleet composes net above them, domains "
                        "are leaves"});
        }
    }

    void check_patterns(const SourceFile& file) {
        const auto lines = split_lines(file.stripped);
        const std::string stem = fs::path(file.rel).stem().string();
        const bool rng_home = top_component(file.rel) == "support" && stem == "rng";
        for (std::size_t ln = 0; ln < lines.size(); ++ln) {
            const std::string_view line = lines[ln];
            const std::size_t lineno = ln + 1;
            if (!rng_home) {
                for (const char* word : {"rand", "srand"}) {
                    for (const std::size_t col : find_word(line, word)) {
                        if (suppressed(file, "banned-rand", lineno)) continue;
                        (void)col;
                        report({file.rel, lineno, "banned-rand",
                                "C rand()/srand() is unseeded global state; use "
                                "support/rng.hpp (atk::Rng)"});
                    }
                }
            }
            for (const std::size_t col : find_word(line, "new")) {
                if (prev_word(line, col) == "operator") continue;
                if (suppressed(file, "naked-new", lineno)) continue;
                report({file.rel, lineno, "naked-new",
                        "naked new in library code; use containers or make_unique/"
                        "make_shared"});
            }
            for (const std::size_t col : find_word(line, "delete")) {
                if (prev_nonspace(line, col) == '=') continue;  // = delete
                if (prev_word(line, col) == "operator") continue;
                if (suppressed(file, "naked-delete", lineno)) continue;
                report({file.rel, lineno, "naked-delete",
                        "naked delete in library code; ownership must be automatic"});
            }
            if (top_component(file.rel) != "net") {
                for (const char* call : {"send", "recv", "sendto", "recvfrom",
                                         "sendmsg", "recvmsg"}) {
                    for (const std::size_t col : find_word(line, call)) {
                        // Only call expressions: the next non-space character
                        // must open the argument list.  Member calls
                        // (queue.send(...)) are someone else's send.
                        std::size_t after = col + std::string_view(call).size();
                        while (after < line.size() &&
                               std::isspace(static_cast<unsigned char>(line[after])) != 0)
                            ++after;
                        if (after >= line.size() || line[after] != '(') continue;
                        std::size_t p = col;
                        while (p > 0 && std::isspace(
                                            static_cast<unsigned char>(line[p - 1])) != 0)
                            --p;
                        if (p >= 2 && line[p - 1] == ':' && line[p - 2] == ':') {
                            // `Foo::send(` is a qualified member; only the
                            // global-scope `::send(` is the libc call.
                            std::size_t q = p - 2;
                            while (q > 0 && std::isspace(static_cast<unsigned char>(
                                                line[q - 1])) != 0)
                                --q;
                            if (q > 0 && ident_char(line[q - 1])) continue;
                        } else {
                            const char before = p > 0 ? line[p - 1] : '\0';
                            if (before == '.' || before == '>') continue;  // member call
                            // An identifier before the name means a
                            // declaration (`ssize_t send(`) — except
                            // `return send(...)`, which is a call.
                            if (ident_char(before) &&
                                prev_word(line, col) != "return")
                                continue;
                        }
                        if (suppressed(file, "banned-socket", lineno)) continue;
                        report({file.rel, lineno, "banned-socket",
                                "raw socket I/O outside src/net/; all wire traffic "
                                "goes through the net layer's framed transport"});
                    }
                }
            }
            for (const char* stream : {"cout", "cerr", "clog"}) {
                for (const std::size_t col : find_word(line, stream)) {
                    // Only std::cout etc. — a local identifier `cout` is odd
                    // but not what this rule is about.
                    if (col < 2 || line.substr(col - 2, 2) != "::") continue;
                    if (prev_word(line, col - 2) != "std") continue;
                    if (suppressed(file, "iostream", lineno)) continue;
                    report({file.rel, lineno, "iostream",
                            "terminal output from library code; report through "
                            "return values or the obs layer"});
                }
            }
        }
    }

    void check_pragma_once(const SourceFile& file) {
        for (const std::string_view line : split_lines(file.stripped)) {
            const std::string_view content = trim(line);
            if (content.empty()) continue;
            if (content.rfind("#pragma once", 0) != 0)
                report({file.rel, 1, "pragma-once",
                        "header must start with #pragma once"});
            return;
        }
        report({file.rel, 1, "pragma-once", "header is empty"});
    }

    void check_cycles() {
        // Quoted-include graph over files that exist under the root.
        std::map<std::string, std::vector<std::string>> graph;
        std::set<std::string> known;
        for (const auto& file : files_) known.insert(file.rel);
        for (const auto& file : files_) {
            for (const auto& [line, path] : file.includes) {
                (void)line;
                if (known.count(path) != 0) graph[file.rel].push_back(path);
            }
        }
        std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
        std::vector<std::string> stack;
        for (const auto& file : files_)
            if (color[file.rel] == 0) dfs_cycle(file.rel, graph, color, stack);
    }

    void dfs_cycle(const std::string& node,
                   const std::map<std::string, std::vector<std::string>>& graph,
                   std::map<std::string, int>& color,
                   std::vector<std::string>& stack) {
        color[node] = 1;
        stack.push_back(node);
        const auto it = graph.find(node);
        if (it != graph.end()) {
            for (const auto& next : it->second) {
                if (color[next] == 1) {
                    std::string chain;
                    const auto begin =
                        std::find(stack.begin(), stack.end(), next);
                    for (auto at = begin; at != stack.end(); ++at)
                        chain += *at + " -> ";
                    chain += next;
                    report({node, 0, "include-cycle", "include cycle: " + chain});
                } else if (color[next] == 0) {
                    dfs_cycle(next, graph, color, stack);
                }
            }
        }
        stack.pop_back();
        color[node] = 2;
    }

    /// Compile every header alone against the root include path.
    void check_self_contained(const std::string& compiler) {
        const fs::path scratch =
            fs::temp_directory_path() / "atk_lint_tu";
        fs::create_directories(scratch);
        for (const auto& file : files_) {
            if (!file.is_header) continue;
            const fs::path tu = scratch / "self_contained.cpp";
            {
                std::ofstream out(tu);
                out << "#include \"" << file.rel << "\"\n";
            }
            const std::string command = compiler + " -std=c++20 -fsyntax-only -I" +
                                        root_.string() + " " + tu.string() +
                                        " > " + (scratch / "log").string() + " 2>&1";
            if (std::system(command.c_str()) != 0) {
                std::string log = read_file(scratch / "log").value_or("");
                if (log.size() > 400) log.resize(400);
                report({file.rel, 1, "self-contained",
                        "header does not compile on its own:\n" + log});
            }
        }
        std::error_code ec;
        fs::remove_all(scratch, ec);
    }

    void report(Violation v) { violations_.push_back(std::move(v)); }

    const std::vector<Violation>& violations() const { return violations_; }
    std::size_t file_count() const { return files_.size(); }

private:
    fs::path root_;
    std::vector<SourceFile> files_;
    std::vector<Violation> violations_;
};

void print_violations(const Linter& lint) {
    for (const auto& v : lint.violations()) {
        std::cout << v.file;
        if (v.line != 0) std::cout << ":" << v.line;
        std::cout << ": [" << v.rule << "] " << v.message << "\n";
    }
}

// ---------------------------------------------------------------------------
// Self-test
// ---------------------------------------------------------------------------

void write_seed(const fs::path& path, const std::string& text) {
    fs::create_directories(path.parent_path());
    std::ofstream out(path);
    out << text;
}

int self_test() {
    const fs::path root = fs::temp_directory_path() / "atk_lint_selftest";
    std::error_code ec;
    fs::remove_all(root, ec);

    // One seeded violation per rule, plus a suppression and a clean file.
    write_seed(root / "runtime/service.hpp", "#pragma once\nint service();\n");
    write_seed(root / "support/bad_layer.hpp",
               "#pragma once\n#include \"runtime/service.hpp\"\n");
    // sim and net sit on top of runtime as sibling leaves: downward includes
    // are clean, upward ones (runtime reaching into a leaf) and sideways
    // ones (leaf to leaf, either direction) violate the DAG.
    write_seed(root / "sim/harness.hpp",
               "#pragma once\n#include \"runtime/service.hpp\"\n");
    write_seed(root / "runtime/uses_sim.hpp",
               "#pragma once\n#include \"sim/harness.hpp\"\n");
    write_seed(root / "net/server.hpp",
               "#pragma once\n#include \"runtime/service.hpp\"\n");
    write_seed(root / "net/uses_sim.hpp",
               "#pragma once\n#include \"sim/harness.hpp\"\n");
    write_seed(root / "sim/uses_net.hpp",
               "#pragma once\n#include \"net/server.hpp\"\n");
    // fleet composes net above the leaves: fleet→net is the point of the
    // layer, fleet→sim and any reach back into fleet invert it, and the
    // sim/fleet pair is mutually exclusive in both directions.
    write_seed(root / "fleet/node.hpp",
               "#pragma once\n#include \"net/server.hpp\"\n"
               "#include \"runtime/service.hpp\"\n");
    write_seed(root / "fleet/uses_sim.hpp",
               "#pragma once\n#include \"sim/harness.hpp\"\n");
    write_seed(root / "sim/uses_fleet.hpp",
               "#pragma once\n#include \"fleet/node.hpp\"\n");
    write_seed(root / "runtime/uses_fleet.hpp",
               "#pragma once\n#include \"fleet/node.hpp\"\n");
    // The health monitor lives in obs and is *fed by* runtime and *served
    // by* net — obs reaching up into net (e.g. to define the Health frame
    // there instead of in net/protocol) would invert the whole DAG.
    write_seed(root / "obs/uses_net.hpp",
               "#pragma once\n#include \"net/server.hpp\"\n");
    // dsp is a domain: it may reach any ranked layer, but never a leaf, and
    // no ranked layer may reach back into it.
    write_seed(root / "dsp/engine.hpp",
               "#pragma once\n#include \"runtime/service.hpp\"\n");
    write_seed(root / "dsp/uses_net.hpp",
               "#pragma once\n#include \"net/server.hpp\"\n");
    write_seed(root / "core/uses_dsp.hpp",
               "#pragma once\n#include \"dsp/engine.hpp\"\n");
    // Raw socket I/O belongs to net/: flagged elsewhere, clean inside it,
    // and member calls named send/recv are not what the rule is about.
    write_seed(root / "runtime/raw_socket.cpp",
               "int leak_io(int fd, char* b, long n) {\n"
               "    return static_cast<int>(recv(fd, b, n, 0));\n"
               "}\n");
    write_seed(root / "net/transport.cpp",
               "int frame_io(int fd, const char* b, long n) {\n"
               "    return static_cast<int>(send(fd, b, n, 0));\n"
               "}\n");
    write_seed(root / "core/channel.cpp",
               "struct Chan { void send(int); };\n"
               "void pump(Chan& c) { c.send(1); }\n");
    write_seed(root / "core/uses_rand.cpp",
               "#include <cstdlib>\nint f() { return std::rand(); }\n");
    write_seed(root / "core/leak.cpp",
               "int* make() { return new int(4); }\n"
               "void drop(int* p) { delete p; }\n");
    write_seed(root / "obs/noisy.cpp",
               "#include <iostream>\nvoid shout() { std::cout << 1; }\n");
    write_seed(root / "core/no_pragma.hpp", "int g();\n");
    write_seed(root / "core/cycle_a.hpp",
               "#pragma once\n#include \"core/cycle_b.hpp\"\n");
    write_seed(root / "core/cycle_b.hpp",
               "#pragma once\n#include \"core/cycle_a.hpp\"\n");
    write_seed(root / "core/suppressed.cpp",
               "// atk-lint: allow(naked-new)\n"
               "int* keep() { return new int(2); }\n");
    write_seed(root / "core/clean.cpp",
               "// new and delete in comments are fine, so is \"std::cout\" in a\n"
               "// string: the scanner must strip both before matching.\n"
               "#include \"support/util.hpp\"\n"
               "struct Holder {\n"
               "    Holder(const Holder&) = delete;\n"
               "};\n"
               "const char* banner() { return \"no new delete std::rand here\"; }\n");
    write_seed(root / "support/util.hpp", "#pragma once\nint util();\n");
    // --- lock discipline ---------------------------------------------------
    // Mutex members must be referenced from a capability annotation (or carry
    // an explicit suppression); function-local mutexes are exempt.
    write_seed(root / "core/locks_bad.hpp",
               "#pragma once\n"
               "#include <mutex>\n"
               "struct BadLocks {\n"
               "    std::mutex plain_;\n"
               "    std::shared_mutex rw_;\n"
               "};\n");
    write_seed(root / "core/locks_good.hpp",
               "#pragma once\n"
               "struct GoodLocks {\n"
               "    Mutex mutex_;\n"
               "    int data_ ATK_GUARDED_BY(mutex_) = 0;\n"
               "};\n");
    write_seed(root / "core/locks_suppressed.hpp",
               "#pragma once\n"
               "struct Quiet {\n"
               "    std::mutex free_;  // atk-lint: allow(unguarded-mutex)\n"
               "};\n");
    write_seed(root / "core/locks_local.cpp",
               "#include \"core/locks_good.hpp\"\n"
               "void local_only() {\n"
               "    std::mutex m;\n"
               "    std::lock_guard g(m);\n"
               "}\n");
    // Blocking under a held lock: raw socket I/O (inside net/, so the
    // banned-socket rule stays quiet), sleeping, and a CV wait under a guard
    // the wait cannot release.  The lock-free / post-release twins are clean.
    write_seed(root / "net/blocking_lock.cpp",
               "void hot_send(int fd, const char* b, long n) {\n"
               "    std::mutex m;\n"
               "    std::lock_guard<std::mutex> g(m);\n"
               "    ::send(fd, b, n, 0);\n"
               "}\n");
    write_seed(root / "core/sleepy.cpp",
               "void nap(std::mutex& m) {\n"
               "    std::unique_lock<std::mutex> lk(m);\n"
               "    std::this_thread::sleep_for(interval);\n"
               "}\n"
               "void nap_after(std::mutex& m) {\n"
               "    {\n"
               "        std::unique_lock<std::mutex> lk(m);\n"
               "    }\n"
               "    std::this_thread::sleep_for(interval);\n"
               "}\n");
    write_seed(root / "core/cv_wait.cpp",
               "void bad_wait(std::mutex& m, std::condition_variable& cv) {\n"
               "    std::lock_guard<std::mutex> g(m);\n"
               "    cv.wait(g);\n"
               "}\n"
               "void good_wait(std::mutex& m, std::condition_variable& cv) {\n"
               "    std::unique_lock<std::mutex> lk(m);\n"
               "    cv.wait(lk);\n"
               "}\n");
    // detach() is banned tree-wide; a std::thread *member* needs a join( in
    // its own file or the header/impl pair.
    write_seed(root / "core/detach.cpp",
               "void orphan(std::thread& t) { t.detach(); }\n");
    write_seed(root / "core/unjoined.hpp",
               "#pragma once\n"
               "struct Runner {\n"
               "    void start();\n"
               "    std::thread worker_;\n"
               "};\n");
    write_seed(root / "core/joined.hpp",
               "#pragma once\n"
               "struct Joiner {\n"
               "    ~Joiner();\n"
               "    std::thread worker_;\n"
               "};\n");
    write_seed(root / "core/joined.cpp",
               "#include \"core/joined.hpp\"\n"
               "Joiner::~Joiner() { if (worker_.joinable()) worker_.join(); }\n");
    // memory_order_relaxed needs an adjacent written justification.
    write_seed(root / "core/relaxed.cpp",
               "#include <atomic>\n"
               "int peek(std::atomic<int>& v) {\n"
               "    return v.load(std::memory_order_relaxed);\n"
               "}\n"
               "int peek_ok(std::atomic<int>& v) {\n"
               "    // monitoring counter, no ordering needed  atk-lint: allow(relaxed)\n"
               "    return v.load(std::memory_order_relaxed);\n"
               "}\n");

    Linter lint(root);
    const bool clean = lint.scan();

    std::map<std::string, std::size_t> by_rule;
    std::set<std::string> flagged_files;
    for (const auto& v : lint.violations()) {
        ++by_rule[v.rule];
        flagged_files.insert(v.file);
    }

    std::size_t failures = 0;
    auto expect = [&](bool ok, const std::string& what) {
        std::cout << (ok ? "  ok: " : "  FAIL: ") << what << "\n";
        if (!ok) ++failures;
    };

    expect(!clean, "seeded tree is reported as failing");
    expect(by_rule["layering"] == 10,
           "all ten layering violations detected (support->runtime, "
           "runtime->sim, net->sim, sim->net, obs->net, dsp->net, core->dsp, "
           "fleet->sim, sim->fleet, runtime->fleet)");
    expect(flagged_files.count("obs/uses_net.hpp") == 1,
           "obs including net (upward into a leaf) flagged");
    expect(flagged_files.count("fleet/node.hpp") == 0,
           "fleet including net and runtime (its whole point) not flagged");
    expect(flagged_files.count("fleet/uses_sim.hpp") == 1,
           "fleet including sim (mutual exclusivity) flagged");
    expect(flagged_files.count("sim/uses_fleet.hpp") == 1,
           "sim including fleet (mutual exclusivity) flagged");
    expect(flagged_files.count("runtime/uses_fleet.hpp") == 1,
           "runtime reaching up into fleet flagged");
    expect(flagged_files.count("sim/harness.hpp") == 0,
           "sim including runtime (downward) not flagged");
    expect(flagged_files.count("net/server.hpp") == 0,
           "net including runtime (downward) not flagged");
    expect(flagged_files.count("dsp/engine.hpp") == 0,
           "dsp domain including a ranked layer not flagged");
    expect(by_rule["banned-socket"] == 1, "raw recv() outside net/ detected");
    expect(flagged_files.count("net/transport.cpp") == 0,
           "raw send() inside net/ not flagged");
    expect(flagged_files.count("core/channel.cpp") == 0,
           "member function named send not flagged");
    expect(by_rule["banned-rand"] == 1, "std::rand detected");
    expect(by_rule["naked-new"] == 1, "naked new detected");
    expect(by_rule["naked-delete"] == 1, "naked delete detected");
    expect(by_rule["iostream"] == 1, "std::cout detected");
    expect(by_rule["pragma-once"] == 1, "missing #pragma once detected");
    expect(by_rule["include-cycle"] >= 1, "include cycle detected");
    expect(flagged_files.count("core/suppressed.cpp") == 0,
           "allow(naked-new) suppression honored");
    expect(flagged_files.count("core/clean.cpp") == 0,
           "clean file (comments, strings, = delete) not flagged");
    expect(flagged_files.count("support/util.hpp") == 0, "clean header not flagged");
    expect(by_rule["unguarded-mutex"] == 2,
           "both unannotated mutex members detected (std::mutex and "
           "std::shared_mutex)");
    expect(flagged_files.count("core/locks_good.hpp") == 0,
           "ATK_GUARDED_BY-referenced mutex member not flagged");
    expect(flagged_files.count("core/locks_suppressed.hpp") == 0,
           "allow(unguarded-mutex) suppression honored");
    expect(flagged_files.count("core/locks_local.cpp") == 0,
           "function-local mutex not flagged");
    expect(by_rule["blocking-under-lock"] == 3,
           "all three blocking-under-lock violations detected (raw send, "
           "sleep_for, CV wait under lock_guard)");
    expect(by_rule["banned-detach"] == 1, "thread detach() detected");
    expect(by_rule["unjoined-thread"] == 1, "unjoined std::thread member detected");
    expect(flagged_files.count("core/joined.hpp") == 0,
           "thread member joined in the paired .cpp not flagged");
    expect(by_rule["relaxed"] == 1,
           "unjustified memory_order_relaxed detected (and the justified "
           "one passed)");

    if (failures != 0) {
        std::cout << "--- violations from the seeded tree ---\n";
        print_violations(lint);
    }
    fs::remove_all(root, ec);
    std::cout << "atk_lint --self-test: "
              << (failures == 0 ? "PASS" : "FAIL") << "\n";
    return failures == 0 ? 0 : 1;
}

}  // namespace

// ---------------------------------------------------------------------------

int main(int argc, char** argv) {
    fs::path root = "src";
    bool self_contained = false;
    bool run_self_test = false;
    const char* env_cxx = std::getenv("CXX");
    std::string compiler = env_cxx != nullptr && *env_cxx != '\0' ? env_cxx : "c++";

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--compiler" && i + 1 < argc) {
            compiler = argv[++i];
        } else if (arg == "--self-contained") {
            self_contained = true;
        } else if (arg == "--self-test") {
            run_self_test = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: atk_lint [--root <src-dir>] [--self-contained]"
                         " [--compiler <cxx>] [--self-test]\n";
            return 0;
        } else {
            std::cerr << "atk_lint: unknown argument '" << arg << "'\n";
            return 2;
        }
    }

    if (run_self_test) return self_test();

    if (!fs::is_directory(root)) {
        std::cerr << "atk_lint: source root '" << root.string()
                  << "' is not a directory\n";
        return 2;
    }

    Linter lint(root);
    const bool clean = lint.scan();
    if (self_contained) lint.check_self_contained(compiler);

    if (!lint.violations().empty()) {
        print_violations(lint);
        std::cout << "atk_lint: " << lint.violations().size() << " violation(s) in "
                  << lint.file_count() << " file(s)\n";
        return 1;
    }
    (void)clean;
    std::cout << "atk_lint: clean (" << lint.file_count() << " files)\n";
    return 0;
}

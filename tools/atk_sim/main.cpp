// atk_sim — runs named simulation scenarios against the phase-two strategies
// and summarizes what the tuner did: convergence iterations, selection
// shares, sparkline share curves, optional CSV / decision-audit JSONL /
// Chrome-trace outputs.  Everything is deterministic per (scenario,
// strategy, seed); the convergence gates in tests/sim run the same engine.
//
// Typical invocations:
//
//   atk_sim --list
//   atk_sim --scenario static
//   atk_sim --scenario drift --strategy e-greedy-5 --seeds 32
//   atk_sim --scenario static --csv shares.csv --audit decisions.jsonl

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/nominal/epsilon_greedy.hpp"
#include "core/nominal/gradient_weighted.hpp"
#include "core/nominal/optimum_weighted.hpp"
#include "core/nominal/sliding_auc.hpp"
#include "obs/span.hpp"
#include "sim/sim.hpp"
#include "support/cli.hpp"
#include "support/csv.hpp"
#include "support/sparkline.hpp"
#include "support/statistics.hpp"

namespace {

using namespace atk;
using namespace atk::sim;

struct NamedStrategy {
    std::string name;
    StrategyFactory make;
};

/// `spec` parameterizes the contextual contenders: the offline feature-model
/// baseline trains against the scenario's own cost surfaces, and the
/// bucketed/contextual strategies read the scenario's size feature.
std::vector<NamedStrategy> strategy_registry(const ScenarioSpec& spec) {
    return {
        {"e-greedy-5", [] { return std::make_unique<EpsilonGreedy>(0.05); }},
        {"e-greedy-10", [] { return std::make_unique<EpsilonGreedy>(0.10); }},
        {"e-greedy-20", [] { return std::make_unique<EpsilonGreedy>(0.20); }},
        {"gradient", [] { return std::make_unique<GradientWeighted>(); }},
        {"optimum", [] { return std::make_unique<OptimumWeighted>(); }},
        {"auc", [] { return std::make_unique<SlidingWindowAuc>(); }},
        {"contextual", contextual_strategy()},
        {"bucketed", bucketed_strategy({4.0})},
        {"feature-model", feature_model_strategy(spec)},
    };
}

std::vector<NamedStrategy> resolve_strategies(const std::string& wanted,
                                              const ScenarioSpec& spec) {
    auto registry = strategy_registry(spec);
    if (wanted == "all") return registry;
    for (auto& entry : registry)
        if (entry.name == wanted) return {std::move(entry)};
    std::cerr << "atk_sim: unknown strategy '" << wanted << "' (have: all";
    for (const auto& entry : registry) std::cerr << ", " << entry.name;
    std::cerr << ")\n";
    return {};
}

void list_scenarios() {
    std::cout << "scenarios:\n";
    for (const auto& name : scenario_names()) {
        const auto spec = make_scenario(name);
        std::cout << "  " << name << "  (" << spec.algorithm_count()
                  << " algorithms, horizon " << spec.iterations() << ")\n";
        for (std::size_t a = 0; a < spec.algorithm_count(); ++a)
            std::cout << "      [" << a << "] " << spec.model(a).name
                      << (spec.best_algorithm(0) == a ? "  <- best at start" : "")
                      << "\n";
    }
    std::cout << "strategies: all";
    for (const auto& entry : strategy_registry(make_scenario("static")))
        std::cout << ", " << entry.name;
    std::cout << "\n";
}

} // namespace

int main(int argc, char** argv) {
    Cli cli("atk_sim",
            "Run deterministic autotuning simulation scenarios and summarize "
            "strategy convergence.");
    cli.add_string("scenario", "static",
                   "scenario to run (static, drift, plateau, sweep, deadline, "
                   "mixed)")
        .add_string("strategy", "all", "strategy name or 'all'")
        .add_int("seed", 20170612, "base seed of the ensemble")
        .add_int("seeds", 8, "ensemble size (runs per strategy)")
        .add_int("iterations", 0, "override the scenario horizon (0 = default)")
        .add_int("window", 50, "trailing window for selection-share curves")
        .add_double("share", 0.9, "share threshold for convergence extraction")
        .add_string("csv", "", "write per-seed convergence rows to this CSV file")
        .add_string("audit", "",
                    "write the first seed's decision stream as JSON Lines")
        .add_string("trace", "", "write a Chrome trace of the simulated runs")
        .add_flag("list", "list scenarios and strategies, then exit");
    if (!cli.parse(argc, argv)) return 1;

    if (cli.get_flag("list")) {
        list_scenarios();
        return 0;
    }

    ScenarioSpec spec = make_scenario(cli.get_string("scenario"));
    if (cli.get_int("iterations") > 0)
        spec.horizon(static_cast<std::size_t>(cli.get_int("iterations")));
    spec.validate();

    const auto strategies = resolve_strategies(cli.get_string("strategy"), spec);
    if (strategies.empty()) return 1;

    const auto base_seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const auto seed_count = static_cast<std::size_t>(cli.get_int("seeds"));
    const auto window = static_cast<std::size_t>(cli.get_int("window"));
    const double share = cli.get_double("share");
    const std::size_t horizon = spec.iterations();
    const std::size_t best_start = spec.best_algorithm(0);
    const std::size_t best_end = spec.best_algorithm(horizon - 1);

    const bool tracing = !cli.get_string("trace").empty();
    if (tracing) obs::Tracer::enable();

    std::cout << "scenario " << spec.name() << ": " << spec.algorithm_count()
              << " algorithms, horizon " << horizon << ", best ["
              << best_start << "] " << spec.model(best_start).name;
    if (best_end != best_start)
        std::cout << " -> [" << best_end << "] " << spec.model(best_end).name;
    std::cout << ", " << seed_count << " seeds from " << base_seed << "\n\n";

    CsvWriter csv({"scenario", "strategy", "seed", "converged_iteration",
                   "final_share", "best_algorithm", "best_cost",
                   "min_probability"});
    std::vector<LabeledSeries> share_curves;
    std::string audit_jsonl;

    std::printf("%-12s %12s %12s %12s %14s\n", "strategy", "conv. median",
                "conv. worst", "final share", "min probability");
    for (const auto& strategy : strategies) {
        obs::Span span("atk_sim.ensemble");
        SimOptions options;
        options.capture_audit = !cli.get_string("audit").empty();
        const auto runs =
            simulate_ensemble(spec, strategy.make, base_seed, seed_count, options);
        const auto conv =
            ensemble_convergence(runs, best_end, share, window, horizon);

        std::vector<double> final_shares;
        double min_probability = 1.0;
        for (const auto& run : runs) {
            final_shares.push_back(
                selection_share(run.trace, best_end, horizon - window, horizon));
            min_probability = std::min(min_probability, run.min_probability);
        }
        for (std::size_t s = 0; s < runs.size(); ++s)
            csv.add_row({spec.name(), strategy.name,
                         std::to_string(base_seed + s),
                         std::to_string(static_cast<std::size_t>(conv[s])),
                         std::to_string(final_shares[s]),
                         std::to_string(runs[s].best_algorithm),
                         std::to_string(runs[s].best_cost),
                         std::to_string(runs[s].min_probability)});

        share_curves.push_back(
            {strategy.name,
             selection_share_curve(runs.front().trace, best_end, window)});
        if (audit_jsonl.empty()) audit_jsonl = runs.front().audit_jsonl;

        std::printf("%-12s %12.0f %12.0f %12.3f %14.2e\n", strategy.name.c_str(),
                    median(conv), *std::max_element(conv.begin(), conv.end()),
                    median(final_shares), min_probability);
    }

    std::cout << "\nselection share of [" << best_end << "] "
              << spec.model(best_end).name << " (window " << window
              << ", seed " << base_seed << "):\n"
              << sparkline_chart(share_curves, "share");

    if (!cli.get_string("csv").empty()) {
        if (!csv.write_file(cli.get_string("csv"))) {
            std::cerr << "atk_sim: cannot write " << cli.get_string("csv") << "\n";
            return 1;
        }
        std::cout << "wrote " << cli.get_string("csv") << "\n";
    }
    if (!cli.get_string("audit").empty()) {
        FILE* out = std::fopen(cli.get_string("audit").c_str(), "w");
        if (out == nullptr) {
            std::cerr << "atk_sim: cannot write " << cli.get_string("audit") << "\n";
            return 1;
        }
        std::fputs(audit_jsonl.c_str(), out);
        std::fclose(out);
        std::cout << "wrote " << cli.get_string("audit") << "\n";
    }
    if (tracing) {
        if (!obs::write_chrome_trace(cli.get_string("trace"),
                                     obs::Tracer::snapshot())) {
            std::cerr << "atk_sim: cannot write " << cli.get_string("trace") << "\n";
            return 1;
        }
        std::cout << "wrote " << cli.get_string("trace") << "\n";
    }
    return 0;
}

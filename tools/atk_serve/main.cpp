// atk_serve — stands up a TuningService behind the atk::net wire protocol
// so remote workloads (examples/net_client, bench_net_loopback, or your own
// TuningClient) can be tuned over TCP.
//
// The tuner factory is keyed on the session-name prefix:
//
//   stringmatch/...  the eight parallel text matchers of case study 1
//   raytrace/...     the kD-tree builder choice of case study 2
//   dsp/...          the streaming convolution engines of case study 3
//   anything else    the synthetic A-vs-B(block) pair of the runtime demo
//
// Typical invocations:
//
//   atk_serve --port 4077
//   atk_serve --port 0                       # ephemeral; bound port printed
//   atk_serve --install seed.state           # warm-start from a snapshot
//   atk_serve --metrics-port 9100            # Prometheus text on /metrics
//   atk_serve --duration 30 --snapshot-out final.state
//   atk_serve --health health.jsonl          # per-session tuning health
//   atk_serve --trace server.trace.json      # span trace (merge with the
//                                            # client's via atk_obs_inspect)

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "core/autotune.hpp"
#include "fleet/fleet.hpp"
#include "net/net.hpp"
#include "obs/span.hpp"
#include "support/cli.hpp"
#include "factory.hpp"

using namespace atk;
using namespace atk::runtime;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

/// Parses "--peers name=host:port,name=host:port" into PeerSpecs.  Throws
/// std::invalid_argument on malformed entries.
std::vector<fleet::PeerSpec> parse_peers(const std::string& spec) {
    std::vector<fleet::PeerSpec> peers;
    std::size_t at = 0;
    while (at < spec.size()) {
        std::size_t comma = spec.find(',', at);
        if (comma == std::string::npos) comma = spec.size();
        const std::string entry = spec.substr(at, comma - at);
        at = comma + 1;
        if (entry.empty()) continue;
        const std::size_t eq = entry.find('=');
        const std::size_t colon = entry.rfind(':');
        if (eq == std::string::npos || colon == std::string::npos || colon < eq)
            throw std::invalid_argument("--peers entry '" + entry +
                                        "' is not name=host:port");
        fleet::PeerSpec peer;
        peer.name = entry.substr(0, eq);
        peer.host = entry.substr(eq + 1, colon - eq - 1);
        const int port = std::stoi(entry.substr(colon + 1));
        if (peer.name.empty() || peer.host.empty() || port <= 0 || port > 65535)
            throw std::invalid_argument("--peers entry '" + entry +
                                        "' is not name=host:port");
        peer.port = static_cast<std::uint16_t>(port);
        peers.push_back(std::move(peer));
    }
    return peers;
}

/// Minimal single-threaded Prometheus endpoint: every HTTP request gets the
/// current MetricsRegistry rendering.  Deliberately tiny — one request per
/// connection, no keep-alive, no routing — because scrapers need no more.
void serve_metrics(net::FdHandle listener, MetricsRegistry& metrics,
                   const std::atomic<bool>& stop) {
    while (!stop.load(std::memory_order_relaxed)) {
        if (!net::wait_readable(listener.get(), std::chrono::milliseconds(200)))
            continue;
        net::FdHandle conn(::accept(listener.get(), nullptr, nullptr));
        if (!conn.valid()) continue;
        char request[4096];
        if (net::wait_readable(conn.get(), std::chrono::milliseconds(250))) {
            [[maybe_unused]] const auto ignored =
                ::read(conn.get(), request, sizeof(request));
        }
        const std::string body = metrics.to_prometheus();
        std::string response = "HTTP/1.0 200 OK\r\n"
                               "Content-Type: text/plain; version=0.0.4\r\n"
                               "Content-Length: " +
                               std::to_string(body.size()) + "\r\n\r\n" + body;
        std::size_t at = 0;
        while (at < response.size()) {
            const auto wrote =
                ::write(conn.get(), response.data() + at, response.size() - at);
            if (wrote <= 0) break;
            at += static_cast<std::size_t>(wrote);
        }
    }
}

} // namespace

int main(int argc, char** argv) {
    Cli cli("atk_serve", "serve a TuningService over the atk::net wire protocol");
    cli.add_string("bind", "127.0.0.1", "address to listen on")
        .add_int("port", 4077, "TCP port (0 = ephemeral, printed at startup)")
        .add_int("workers", 2, "epoll event-loop worker threads")
        .add_int("queue", 4096, "measurement queue capacity")
        .add_double("epsilon", 0.10, "exploration rate of new sessions")
        .add_string("strategy", "e-greedy",
                    "phase-two strategy of new sessions (e-greedy, contextual)")
        .add_string("install", "", "warm-start from this snapshot before serving")
        .add_string("snapshot-out", "", "write a final snapshot here on shutdown")
        .add_int("metrics-port", 0, "Prometheus text endpoint port (0 = disabled)")
        .add_int("idle-timeout", 30000, "close idle connections after this many ms")
        .add_int("duration", 0, "serve for this many seconds (0 = until SIGINT)")
        .add_string("health", "",
                    "enable the tuning-health monitor; write per-session JSON "
                    "lines here on shutdown")
        .add_string("trace", "",
                    "enable span tracing; write a Chrome/Perfetto trace here "
                    "on shutdown")
        .add_string("node-name", "",
                    "fleet ring name of this node (enables fleet mode)")
        .add_string("peers", "",
                    "fleet members as name=host:port,name=host:port")
        .add_int("replicate-every", 2000,
                 "fleet snapshot replication cadence in ms (0 = never)")
        .add_int("replicas", 1, "ring successors each owned session copies to")
        .add_int("ring-seed", 0, "consistent-hash ring seed (0 = built-in)")
        .add_int("vnodes", 64, "virtual nodes per fleet member")
        .add_int("max-sessions", 0,
                 "evict least-recently-touched sessions beyond this many "
                 "(0 = unbounded)")
        .add_int("quota", 0,
                 "max distinct session names per tenant prefix (0 = none)")
        .add_string("spill-dir", "",
                    "directory evicted-session snapshots spill to "
                    "(default: hold them in memory)");
    if (!cli.parse(argc, argv)) return 1;

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    const std::string health_out = cli.get_string("health");
    const std::string trace_out = cli.get_string("trace");
    if (!trace_out.empty()) obs::Tracer::enable();

    const std::string node_name = cli.get_string("node-name");
    std::vector<fleet::PeerSpec> peers;
    try {
        peers = parse_peers(cli.get_string("peers"));
        if (!peers.empty() && node_name.empty())
            throw std::invalid_argument("--peers requires --node-name");
    } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }

    // The replica store outlives the service: its hydrator is how replicated
    // and pulled snapshots reach lazily-created sessions.
    fleet::ReplicaStore replica_store;

    ServiceOptions service_options;
    service_options.queue_capacity = static_cast<std::size_t>(cli.get_int("queue"));
    service_options.health_enabled = !health_out.empty();
    service_options.max_sessions = static_cast<std::size_t>(cli.get_int("max-sessions"));
    service_options.tenant_quota = static_cast<std::size_t>(cli.get_int("quota"));
    service_options.spill_dir = cli.get_string("spill-dir");
    if (!node_name.empty())
        service_options.hydrator = fleet::replica_hydrator(replica_store);
    try {
        // The factory resolves the strategy lazily (per session); validate
        // the name now so a typo fails at startup, not at first begin().
        (void)serve::make_strategy(cli.get_string("strategy"),
                                   cli.get_double("epsilon"));
    } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    TuningService service(serve::make_factory(cli.get_double("epsilon"),
                                              cli.get_string("strategy")),
                          service_options);

    const std::string install = cli.get_string("install");
    if (!install.empty()) {
        try {
            const std::size_t restored = service.restore_from(install);
            std::printf("warm-started %zu session(s) from %s\n", restored,
                        install.c_str());
        } catch (const std::exception& error) {
            std::fprintf(stderr, "error: cannot restore %s: %s\n", install.c_str(),
                         error.what());
            return 1;
        }
    }

    net::ServerOptions server_options;
    server_options.bind_address = cli.get_string("bind");
    server_options.port = static_cast<std::uint16_t>(cli.get_int("port"));
    server_options.worker_threads = static_cast<std::size_t>(cli.get_int("workers"));
    server_options.idle_timeout =
        std::chrono::milliseconds(cli.get_int("idle-timeout"));

    std::unique_ptr<fleet::FleetNode> fleet_node;
    if (!node_name.empty()) {
        fleet::FleetNodeOptions fleet_options;
        fleet_options.node_name = node_name;
        fleet_options.peers = peers;
        if (cli.get_int("ring-seed") != 0)
            fleet_options.ring.seed =
                static_cast<std::uint64_t>(cli.get_int("ring-seed"));
        fleet_options.ring.virtual_nodes =
            static_cast<std::size_t>(cli.get_int("vnodes"));
        fleet_options.replicas = static_cast<std::size_t>(cli.get_int("replicas"));
        fleet_options.replicate_every =
            std::chrono::milliseconds(cli.get_int("replicate-every"));
        fleet_options.peer_client.request_timeout = std::chrono::milliseconds(2000);
        fleet_options.peer_client.max_attempts = 1;  // dead peer = one cheap miss
        try {
            fleet_node = std::make_unique<fleet::FleetNode>(
                service, replica_store, std::move(fleet_options));
        } catch (const std::exception& error) {
            std::fprintf(stderr, "error: fleet: %s\n", error.what());
            return 1;
        }
        server_options.peer_ops = fleet_node->peer_ops();
        server_options.server_name = node_name;
    }

    net::TuningServer server(service, server_options);
    try {
        server.start();
    } catch (const std::exception& error) {
        std::fprintf(stderr, "error: cannot listen on %s:%u: %s\n",
                     server_options.bind_address.c_str(), server_options.port,
                     error.what());
        return 1;
    }
    std::printf("atk_serve: listening on %s:%u (%zu workers)\n",
                server_options.bind_address.c_str(), server.port(),
                server_options.worker_threads);
    std::fflush(stdout);

    if (fleet_node) {
        // Catch-up first (a rejoining node reclaims its owned ranges from
        // whichever peers are up), then the steady-state replication cadence.
        const std::size_t pulled = fleet_node->pull_now();
        fleet_node->start();
        std::printf("atk_serve: fleet node '%s' on a %zu-member ring "
                    "(%zu replica(s), every %lld ms); pulled %zu session "
                    "snapshot(s) from peers\n",
                    node_name.c_str(), fleet_node->ring().size(),
                    static_cast<std::size_t>(cli.get_int("replicas")),
                    static_cast<long long>(cli.get_int("replicate-every")),
                    pulled);
        std::fflush(stdout);
    }

    std::atomic<bool> metrics_stop{false};
    std::thread metrics_thread;
    const auto metrics_port = static_cast<std::uint16_t>(cli.get_int("metrics-port"));
    if (metrics_port != 0) {
        try {
            auto [listener, bound] =
                net::listen_tcp(server_options.bind_address, metrics_port);
            std::printf("atk_serve: metrics on http://%s:%u/metrics\n",
                        server_options.bind_address.c_str(), bound);
            std::fflush(stdout);
            metrics_thread = std::thread(serve_metrics, std::move(listener),
                                         std::ref(service.metrics()),
                                         std::cref(metrics_stop));
        } catch (const std::exception& error) {
            std::fprintf(stderr, "error: metrics endpoint: %s\n", error.what());
            server.stop();
            return 1;
        }
    }

    const auto duration = cli.get_int("duration");
    const auto started = std::chrono::steady_clock::now();
    while (g_stop == 0) {
        if (duration > 0 && std::chrono::steady_clock::now() - started >=
                                std::chrono::seconds(duration))
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }

    std::printf("atk_serve: draining...\n");
    if (fleet_node) {
        // One last push so successors hold this node's freshest state before
        // the socket closes — the cheap half of a graceful handover.
        fleet_node->stop();
        (void)fleet_node->replicate_now();
        const fleet::FleetNodeStats fleet_stats = fleet_node->stats();
        std::printf("atk_serve: fleet: %llu push(es) shipped %llu session "
                    "snapshot(s) / %llu byte(s); holding %zu replica(s)\n",
                    static_cast<unsigned long long>(fleet_stats.pushes_tx),
                    static_cast<unsigned long long>(fleet_stats.push_sessions),
                    static_cast<unsigned long long>(fleet_stats.push_bytes),
                    fleet_stats.replicas_held);
    }
    server.stop();
    metrics_stop.store(true, std::memory_order_relaxed);
    if (metrics_thread.joinable()) metrics_thread.join();
    service.flush();

    const ServiceStats stats = service.stats();
    std::printf("atk_serve: served %zu session(s), %llu report(s) ingested "
                "(%llu dropped)\n",
                stats.sessions,
                static_cast<unsigned long long>(stats.reports_enqueued),
                static_cast<unsigned long long>(stats.reports_dropped));

    const std::string snapshot_out = cli.get_string("snapshot-out");
    if (!snapshot_out.empty()) {
        if (!service.snapshot_to(snapshot_out)) {
            std::fprintf(stderr, "error: cannot write %s\n", snapshot_out.c_str());
            return 1;
        }
        std::printf("atk_serve: snapshot written to %s\n", snapshot_out.c_str());
    }

    if (!health_out.empty()) {
        if (!service.write_health_json(health_out)) {
            std::fprintf(stderr, "error: cannot write %s\n", health_out.c_str());
            return 1;
        }
        std::printf("atk_serve: health written to %s "
                    "(inspect with atk_obs_inspect --health)\n",
                    health_out.c_str());
    }
    if (!trace_out.empty()) {
        auto spans = obs::Tracer::snapshot();
        // Server-side spans take pid lane 2 by convention (clients use 1),
        // so a merged two-process timeline separates cleanly in Perfetto.
        obs::set_process_id(spans, 2);
        if (!obs::write_chrome_trace(trace_out, spans)) {
            std::fprintf(stderr, "error: cannot write %s\n", trace_out.c_str());
            return 1;
        }
        std::printf("atk_serve: %zu span(s) written to %s\n", spans.size(),
                    trace_out.c_str());
    }
    service.stop();
    return 0;
}

#pragma once

// The atk_serve tuner factory, keyed on the session-name prefix:
//
//   stringmatch/...  the eight parallel text matchers of case study 1
//   raytrace/...     the kD-tree builder choice of case study 2
//   dsp/...          the streaming convolution engines of case study 3
//   anything else    the synthetic A-vs-B(block) pair of the runtime demo
//
// Split out of main.cpp so tests/net can stand up a server with exactly the
// production algorithm sets and exercise every prefix over the wire.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/autotune.hpp"
#include "dsp/stream.hpp"
#include "raytrace/pipeline.hpp"
#include "runtime/service.hpp"
#include "stringmatch/matcher.hpp"

namespace atk::serve {

inline std::vector<TunableAlgorithm> make_default_algorithms() {
    std::vector<TunableAlgorithm> algorithms;
    algorithms.push_back(TunableAlgorithm::untunable("A"));
    TunableAlgorithm b;
    b.name = "B";
    b.space.add(Parameter::ratio("block", 0, 80));
    b.initial = Configuration{{0}};
    b.searcher = std::make_unique<NelderMeadSearcher>();
    algorithms.push_back(std::move(b));
    return algorithms;
}

inline std::vector<TunableAlgorithm> make_stringmatch_algorithms() {
    std::vector<TunableAlgorithm> algorithms;
    for (const auto& matcher : sm::make_all_matchers_with_hybrid())
        algorithms.push_back(TunableAlgorithm::untunable(matcher->name()));
    return algorithms;
}

inline std::vector<TunableAlgorithm> make_raytrace_algorithms() {
    std::vector<TunableAlgorithm> algorithms;
    for (const auto& builder : rt::make_all_builders()) {
        TunableAlgorithm algorithm;
        algorithm.name = builder->name();
        algorithm.space = builder->tuning_space();
        algorithm.initial = builder->default_config();
        algorithm.searcher = std::make_unique<NelderMeadSearcher>();
        algorithms.push_back(std::move(algorithm));
    }
    return algorithms;
}

inline std::vector<TunableAlgorithm> make_dsp_algorithms() {
    return dsp::tunable_algorithms();
}

/// Phase-two strategy chosen by atk_serve's --strategy flag.  "e-greedy" is
/// the context-blind default; "contextual" serves a discounted LinUCB over
/// the single size feature v3 clients announce with begin()/report() —
/// context-blind clients on the same server degrade gracefully (empty
/// feature vectors embed as bias-only contexts).
inline std::unique_ptr<NominalStrategy> make_strategy(const std::string& strategy,
                                                      double epsilon) {
    if (strategy == "contextual")
        return std::make_unique<LinUcb>(/*dimension=*/1, /*alpha=*/1.0,
                                        /*ridge=*/1.0, epsilon, /*gamma=*/0.99);
    if (strategy == "e-greedy") return std::make_unique<EpsilonGreedy>(epsilon);
    throw std::invalid_argument("atk_serve: unknown strategy '" + strategy +
                                "' (have: e-greedy, contextual)");
}

/// Deterministic per name, as snapshot restores require.
inline runtime::TunerFactory make_factory(double epsilon,
                                          std::string strategy = "e-greedy") {
    return [epsilon, strategy = std::move(strategy)](const std::string& session) {
        std::vector<TunableAlgorithm> algorithms;
        if (session.rfind("stringmatch/", 0) == 0)
            algorithms = make_stringmatch_algorithms();
        else if (session.rfind("raytrace/", 0) == 0)
            algorithms = make_raytrace_algorithms();
        else if (session.rfind("dsp/", 0) == 0)
            algorithms = make_dsp_algorithms();
        else
            algorithms = make_default_algorithms();
        return std::make_unique<TwoPhaseTuner>(make_strategy(strategy, epsilon),
                                               std::move(algorithms),
                                               std::hash<std::string>{}(session));
    };
}

} // namespace atk::serve

file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/combined_strategies_test.cpp.o"
  "CMakeFiles/test_core.dir/core/combined_strategies_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/epsilon_greedy_test.cpp.o"
  "CMakeFiles/test_core.dir/core/epsilon_greedy_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/feature_model_test.cpp.o"
  "CMakeFiles/test_core.dir/core/feature_model_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/nelder_mead_test.cpp.o"
  "CMakeFiles/test_core.dir/core/nelder_mead_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/nominal_strategy_test.cpp.o"
  "CMakeFiles/test_core.dir/core/nominal_strategy_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/offline_test.cpp.o"
  "CMakeFiles/test_core.dir/core/offline_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/parameter_test.cpp.o"
  "CMakeFiles/test_core.dir/core/parameter_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/property_sweeps_test.cpp.o"
  "CMakeFiles/test_core.dir/core/property_sweeps_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/search_space_test.cpp.o"
  "CMakeFiles/test_core.dir/core/search_space_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/searcher_contract_test.cpp.o"
  "CMakeFiles/test_core.dir/core/searcher_contract_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/searchers_test.cpp.o"
  "CMakeFiles/test_core.dir/core/searchers_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/trace_test.cpp.o"
  "CMakeFiles/test_core.dir/core/trace_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/tuner_test.cpp.o"
  "CMakeFiles/test_core.dir/core/tuner_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/weighted_strategies_test.cpp.o"
  "CMakeFiles/test_core.dir/core/weighted_strategies_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/combined_strategies_test.cpp" "tests/CMakeFiles/test_core.dir/core/combined_strategies_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/combined_strategies_test.cpp.o.d"
  "/root/repo/tests/core/epsilon_greedy_test.cpp" "tests/CMakeFiles/test_core.dir/core/epsilon_greedy_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/epsilon_greedy_test.cpp.o.d"
  "/root/repo/tests/core/feature_model_test.cpp" "tests/CMakeFiles/test_core.dir/core/feature_model_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/feature_model_test.cpp.o.d"
  "/root/repo/tests/core/nelder_mead_test.cpp" "tests/CMakeFiles/test_core.dir/core/nelder_mead_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/nelder_mead_test.cpp.o.d"
  "/root/repo/tests/core/nominal_strategy_test.cpp" "tests/CMakeFiles/test_core.dir/core/nominal_strategy_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/nominal_strategy_test.cpp.o.d"
  "/root/repo/tests/core/offline_test.cpp" "tests/CMakeFiles/test_core.dir/core/offline_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/offline_test.cpp.o.d"
  "/root/repo/tests/core/parameter_test.cpp" "tests/CMakeFiles/test_core.dir/core/parameter_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/parameter_test.cpp.o.d"
  "/root/repo/tests/core/property_sweeps_test.cpp" "tests/CMakeFiles/test_core.dir/core/property_sweeps_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/property_sweeps_test.cpp.o.d"
  "/root/repo/tests/core/search_space_test.cpp" "tests/CMakeFiles/test_core.dir/core/search_space_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/search_space_test.cpp.o.d"
  "/root/repo/tests/core/searcher_contract_test.cpp" "tests/CMakeFiles/test_core.dir/core/searcher_contract_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/searcher_contract_test.cpp.o.d"
  "/root/repo/tests/core/searchers_test.cpp" "tests/CMakeFiles/test_core.dir/core/searchers_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/searchers_test.cpp.o.d"
  "/root/repo/tests/core/trace_test.cpp" "tests/CMakeFiles/test_core.dir/core/trace_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/trace_test.cpp.o.d"
  "/root/repo/tests/core/tuner_test.cpp" "tests/CMakeFiles/test_core.dir/core/tuner_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/tuner_test.cpp.o.d"
  "/root/repo/tests/core/weighted_strategies_test.cpp" "tests/CMakeFiles/test_core.dir/core/weighted_strategies_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/weighted_strategies_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/atk_support.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stringmatch/CMakeFiles/atk_stringmatch.dir/DependInfo.cmake"
  "/root/repo/build/src/raytrace/CMakeFiles/atk_raytrace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

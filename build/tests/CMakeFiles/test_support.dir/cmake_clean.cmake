file(REMOVE_RECURSE
  "CMakeFiles/test_support.dir/support/cli_test.cpp.o"
  "CMakeFiles/test_support.dir/support/cli_test.cpp.o.d"
  "CMakeFiles/test_support.dir/support/csv_test.cpp.o"
  "CMakeFiles/test_support.dir/support/csv_test.cpp.o.d"
  "CMakeFiles/test_support.dir/support/rng_test.cpp.o"
  "CMakeFiles/test_support.dir/support/rng_test.cpp.o.d"
  "CMakeFiles/test_support.dir/support/sparkline_test.cpp.o"
  "CMakeFiles/test_support.dir/support/sparkline_test.cpp.o.d"
  "CMakeFiles/test_support.dir/support/statistics_test.cpp.o"
  "CMakeFiles/test_support.dir/support/statistics_test.cpp.o.d"
  "CMakeFiles/test_support.dir/support/sysinfo_test.cpp.o"
  "CMakeFiles/test_support.dir/support/sysinfo_test.cpp.o.d"
  "CMakeFiles/test_support.dir/support/table_test.cpp.o"
  "CMakeFiles/test_support.dir/support/table_test.cpp.o.d"
  "CMakeFiles/test_support.dir/support/thread_pool_test.cpp.o"
  "CMakeFiles/test_support.dir/support/thread_pool_test.cpp.o.d"
  "test_support"
  "test_support.pdb"
  "test_support[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/raytrace/builder_test.cpp" "tests/CMakeFiles/test_raytrace.dir/raytrace/builder_test.cpp.o" "gcc" "tests/CMakeFiles/test_raytrace.dir/raytrace/builder_test.cpp.o.d"
  "/root/repo/tests/raytrace/geometry_test.cpp" "tests/CMakeFiles/test_raytrace.dir/raytrace/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/test_raytrace.dir/raytrace/geometry_test.cpp.o.d"
  "/root/repo/tests/raytrace/kdtree_test.cpp" "tests/CMakeFiles/test_raytrace.dir/raytrace/kdtree_test.cpp.o" "gcc" "tests/CMakeFiles/test_raytrace.dir/raytrace/kdtree_test.cpp.o.d"
  "/root/repo/tests/raytrace/lazy_test.cpp" "tests/CMakeFiles/test_raytrace.dir/raytrace/lazy_test.cpp.o" "gcc" "tests/CMakeFiles/test_raytrace.dir/raytrace/lazy_test.cpp.o.d"
  "/root/repo/tests/raytrace/renderer_test.cpp" "tests/CMakeFiles/test_raytrace.dir/raytrace/renderer_test.cpp.o" "gcc" "tests/CMakeFiles/test_raytrace.dir/raytrace/renderer_test.cpp.o.d"
  "/root/repo/tests/raytrace/sah_test.cpp" "tests/CMakeFiles/test_raytrace.dir/raytrace/sah_test.cpp.o" "gcc" "tests/CMakeFiles/test_raytrace.dir/raytrace/sah_test.cpp.o.d"
  "/root/repo/tests/raytrace/scene_test.cpp" "tests/CMakeFiles/test_raytrace.dir/raytrace/scene_test.cpp.o" "gcc" "tests/CMakeFiles/test_raytrace.dir/raytrace/scene_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/atk_support.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stringmatch/CMakeFiles/atk_stringmatch.dir/DependInfo.cmake"
  "/root/repo/build/src/raytrace/CMakeFiles/atk_raytrace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_raytrace.dir/raytrace/builder_test.cpp.o"
  "CMakeFiles/test_raytrace.dir/raytrace/builder_test.cpp.o.d"
  "CMakeFiles/test_raytrace.dir/raytrace/geometry_test.cpp.o"
  "CMakeFiles/test_raytrace.dir/raytrace/geometry_test.cpp.o.d"
  "CMakeFiles/test_raytrace.dir/raytrace/kdtree_test.cpp.o"
  "CMakeFiles/test_raytrace.dir/raytrace/kdtree_test.cpp.o.d"
  "CMakeFiles/test_raytrace.dir/raytrace/lazy_test.cpp.o"
  "CMakeFiles/test_raytrace.dir/raytrace/lazy_test.cpp.o.d"
  "CMakeFiles/test_raytrace.dir/raytrace/renderer_test.cpp.o"
  "CMakeFiles/test_raytrace.dir/raytrace/renderer_test.cpp.o.d"
  "CMakeFiles/test_raytrace.dir/raytrace/sah_test.cpp.o"
  "CMakeFiles/test_raytrace.dir/raytrace/sah_test.cpp.o.d"
  "CMakeFiles/test_raytrace.dir/raytrace/scene_test.cpp.o"
  "CMakeFiles/test_raytrace.dir/raytrace/scene_test.cpp.o.d"
  "test_raytrace"
  "test_raytrace.pdb"
  "test_raytrace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raytrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_stringmatch.
# This may be replaced when dependencies are built.

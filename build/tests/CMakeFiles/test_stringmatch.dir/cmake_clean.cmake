file(REMOVE_RECURSE
  "CMakeFiles/test_stringmatch.dir/stringmatch/algorithm_internals_test.cpp.o"
  "CMakeFiles/test_stringmatch.dir/stringmatch/algorithm_internals_test.cpp.o.d"
  "CMakeFiles/test_stringmatch.dir/stringmatch/corpus_test.cpp.o"
  "CMakeFiles/test_stringmatch.dir/stringmatch/corpus_test.cpp.o.d"
  "CMakeFiles/test_stringmatch.dir/stringmatch/matcher_conformance_test.cpp.o"
  "CMakeFiles/test_stringmatch.dir/stringmatch/matcher_conformance_test.cpp.o.d"
  "CMakeFiles/test_stringmatch.dir/stringmatch/parallel_match_test.cpp.o"
  "CMakeFiles/test_stringmatch.dir/stringmatch/parallel_match_test.cpp.o.d"
  "test_stringmatch"
  "test_stringmatch.pdb"
  "test_stringmatch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stringmatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/stringmatch_online.dir/stringmatch_online.cpp.o"
  "CMakeFiles/stringmatch_online.dir/stringmatch_online.cpp.o.d"
  "stringmatch_online"
  "stringmatch_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stringmatch_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for stringmatch_online.
# This may be replaced when dependencies are built.

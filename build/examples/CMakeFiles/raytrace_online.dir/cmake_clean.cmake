file(REMOVE_RECURSE
  "CMakeFiles/raytrace_online.dir/raytrace_online.cpp.o"
  "CMakeFiles/raytrace_online.dir/raytrace_online.cpp.o.d"
  "raytrace_online"
  "raytrace_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raytrace_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for raytrace_online.
# This may be replaced when dependencies are built.

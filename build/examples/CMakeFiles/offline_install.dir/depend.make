# Empty dependencies file for offline_install.
# This may be replaced when dependencies are built.

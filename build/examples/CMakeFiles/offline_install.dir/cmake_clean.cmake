file(REMOVE_RECURSE
  "CMakeFiles/offline_install.dir/offline_install.cpp.o"
  "CMakeFiles/offline_install.dir/offline_install.cpp.o.d"
  "offline_install"
  "offline_install.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_install.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

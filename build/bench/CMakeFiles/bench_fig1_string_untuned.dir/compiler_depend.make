# Empty compiler generated dependencies file for bench_fig1_string_untuned.
# This may be replaced when dependencies are built.

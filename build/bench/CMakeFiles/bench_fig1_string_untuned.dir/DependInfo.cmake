
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig1_string_untuned.cpp" "bench/CMakeFiles/bench_fig1_string_untuned.dir/bench_fig1_string_untuned.cpp.o" "gcc" "bench/CMakeFiles/bench_fig1_string_untuned.dir/bench_fig1_string_untuned.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/atk_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stringmatch/CMakeFiles/atk_stringmatch.dir/DependInfo.cmake"
  "/root/repo/build/src/raytrace/CMakeFiles/atk_raytrace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/atk_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

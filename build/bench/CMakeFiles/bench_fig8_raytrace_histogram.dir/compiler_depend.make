# Empty compiler generated dependencies file for bench_fig8_raytrace_histogram.
# This may be replaced when dependencies are built.

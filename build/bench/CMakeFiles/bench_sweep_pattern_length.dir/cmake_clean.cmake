file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_pattern_length.dir/bench_sweep_pattern_length.cpp.o"
  "CMakeFiles/bench_sweep_pattern_length.dir/bench_sweep_pattern_length.cpp.o.d"
  "bench_sweep_pattern_length"
  "bench_sweep_pattern_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_pattern_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

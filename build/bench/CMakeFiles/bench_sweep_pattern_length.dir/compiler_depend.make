# Empty compiler generated dependencies file for bench_sweep_pattern_length.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_futurework.dir/bench_ablation_futurework.cpp.o"
  "CMakeFiles/bench_ablation_futurework.dir/bench_ablation_futurework.cpp.o.d"
  "bench_ablation_futurework"
  "bench_ablation_futurework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_futurework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

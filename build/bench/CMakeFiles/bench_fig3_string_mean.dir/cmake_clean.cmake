file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_string_mean.dir/bench_fig3_string_mean.cpp.o"
  "CMakeFiles/bench_fig3_string_mean.dir/bench_fig3_string_mean.cpp.o.d"
  "bench_fig3_string_mean"
  "bench_fig3_string_mean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_string_mean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

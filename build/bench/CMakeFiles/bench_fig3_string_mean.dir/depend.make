# Empty dependencies file for bench_fig3_string_mean.
# This may be replaced when dependencies are built.

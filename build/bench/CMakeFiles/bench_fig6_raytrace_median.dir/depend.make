# Empty dependencies file for bench_fig6_raytrace_median.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_raytrace_median.dir/bench_fig6_raytrace_median.cpp.o"
  "CMakeFiles/bench_fig6_raytrace_median.dir/bench_fig6_raytrace_median.cpp.o.d"
  "bench_fig6_raytrace_median"
  "bench_fig6_raytrace_median.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_raytrace_median.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

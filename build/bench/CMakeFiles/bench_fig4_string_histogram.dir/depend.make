# Empty dependencies file for bench_fig4_string_histogram.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_string_histogram.dir/bench_fig4_string_histogram.cpp.o"
  "CMakeFiles/bench_fig4_string_histogram.dir/bench_fig4_string_histogram.cpp.o.d"
  "bench_fig4_string_histogram"
  "bench_fig4_string_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_string_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_dynamic_scene.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_raytrace_mean.dir/bench_fig7_raytrace_mean.cpp.o"
  "CMakeFiles/bench_fig7_raytrace_mean.dir/bench_fig7_raytrace_mean.cpp.o.d"
  "bench_fig7_raytrace_mean"
  "bench_fig7_raytrace_mean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_raytrace_mean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig7_raytrace_mean.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for atk_bench_common.
# This may be replaced when dependencies are built.

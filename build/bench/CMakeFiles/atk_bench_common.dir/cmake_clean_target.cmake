file(REMOVE_RECURSE
  "libatk_bench_common.a"
)

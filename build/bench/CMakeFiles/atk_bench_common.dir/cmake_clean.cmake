file(REMOVE_RECURSE
  "CMakeFiles/atk_bench_common.dir/harness.cpp.o"
  "CMakeFiles/atk_bench_common.dir/harness.cpp.o.d"
  "CMakeFiles/atk_bench_common.dir/raytrace_experiment.cpp.o"
  "CMakeFiles/atk_bench_common.dir/raytrace_experiment.cpp.o.d"
  "CMakeFiles/atk_bench_common.dir/stringmatch_experiment.cpp.o"
  "CMakeFiles/atk_bench_common.dir/stringmatch_experiment.cpp.o.d"
  "libatk_bench_common.a"
  "libatk_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table1_parameter_classes.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig2_string_median.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_string_median.dir/bench_fig2_string_median.cpp.o"
  "CMakeFiles/bench_fig2_string_median.dir/bench_fig2_string_median.cpp.o.d"
  "bench_fig2_string_median"
  "bench_fig2_string_median.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_string_median.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_baseline_feature_model.
# This may be replaced when dependencies are built.

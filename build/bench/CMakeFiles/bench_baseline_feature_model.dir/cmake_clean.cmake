file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_feature_model.dir/bench_baseline_feature_model.cpp.o"
  "CMakeFiles/bench_baseline_feature_model.dir/bench_baseline_feature_model.cpp.o.d"
  "bench_baseline_feature_model"
  "bench_baseline_feature_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_feature_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

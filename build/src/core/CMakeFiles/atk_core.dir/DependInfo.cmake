
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/feature_model.cpp" "src/core/CMakeFiles/atk_core.dir/feature_model.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/feature_model.cpp.o.d"
  "/root/repo/src/core/nominal/combined.cpp" "src/core/CMakeFiles/atk_core.dir/nominal/combined.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/nominal/combined.cpp.o.d"
  "/root/repo/src/core/nominal/epsilon_greedy.cpp" "src/core/CMakeFiles/atk_core.dir/nominal/epsilon_greedy.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/nominal/epsilon_greedy.cpp.o.d"
  "/root/repo/src/core/nominal/gradient_weighted.cpp" "src/core/CMakeFiles/atk_core.dir/nominal/gradient_weighted.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/nominal/gradient_weighted.cpp.o.d"
  "/root/repo/src/core/nominal/optimum_weighted.cpp" "src/core/CMakeFiles/atk_core.dir/nominal/optimum_weighted.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/nominal/optimum_weighted.cpp.o.d"
  "/root/repo/src/core/nominal/sliding_auc.cpp" "src/core/CMakeFiles/atk_core.dir/nominal/sliding_auc.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/nominal/sliding_auc.cpp.o.d"
  "/root/repo/src/core/nominal/softmax.cpp" "src/core/CMakeFiles/atk_core.dir/nominal/softmax.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/nominal/softmax.cpp.o.d"
  "/root/repo/src/core/nominal/strategy.cpp" "src/core/CMakeFiles/atk_core.dir/nominal/strategy.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/nominal/strategy.cpp.o.d"
  "/root/repo/src/core/offline.cpp" "src/core/CMakeFiles/atk_core.dir/offline.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/offline.cpp.o.d"
  "/root/repo/src/core/parameter.cpp" "src/core/CMakeFiles/atk_core.dir/parameter.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/parameter.cpp.o.d"
  "/root/repo/src/core/search/differential_evolution.cpp" "src/core/CMakeFiles/atk_core.dir/search/differential_evolution.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/search/differential_evolution.cpp.o.d"
  "/root/repo/src/core/search/exhaustive.cpp" "src/core/CMakeFiles/atk_core.dir/search/exhaustive.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/search/exhaustive.cpp.o.d"
  "/root/repo/src/core/search/genetic.cpp" "src/core/CMakeFiles/atk_core.dir/search/genetic.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/search/genetic.cpp.o.d"
  "/root/repo/src/core/search/hill_climbing.cpp" "src/core/CMakeFiles/atk_core.dir/search/hill_climbing.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/search/hill_climbing.cpp.o.d"
  "/root/repo/src/core/search/nelder_mead.cpp" "src/core/CMakeFiles/atk_core.dir/search/nelder_mead.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/search/nelder_mead.cpp.o.d"
  "/root/repo/src/core/search/particle_swarm.cpp" "src/core/CMakeFiles/atk_core.dir/search/particle_swarm.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/search/particle_swarm.cpp.o.d"
  "/root/repo/src/core/search/searcher.cpp" "src/core/CMakeFiles/atk_core.dir/search/searcher.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/search/searcher.cpp.o.d"
  "/root/repo/src/core/search/simulated_annealing.cpp" "src/core/CMakeFiles/atk_core.dir/search/simulated_annealing.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/search/simulated_annealing.cpp.o.d"
  "/root/repo/src/core/search/unit_space.cpp" "src/core/CMakeFiles/atk_core.dir/search/unit_space.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/search/unit_space.cpp.o.d"
  "/root/repo/src/core/search_space.cpp" "src/core/CMakeFiles/atk_core.dir/search_space.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/search_space.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/core/CMakeFiles/atk_core.dir/trace.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/trace.cpp.o.d"
  "/root/repo/src/core/tuner.cpp" "src/core/CMakeFiles/atk_core.dir/tuner.cpp.o" "gcc" "src/core/CMakeFiles/atk_core.dir/tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/atk_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

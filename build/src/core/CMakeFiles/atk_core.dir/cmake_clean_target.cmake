file(REMOVE_RECURSE
  "libatk_core.a"
)

# Empty compiler generated dependencies file for atk_core.
# This may be replaced when dependencies are built.

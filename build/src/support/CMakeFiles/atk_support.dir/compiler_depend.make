# Empty compiler generated dependencies file for atk_support.
# This may be replaced when dependencies are built.

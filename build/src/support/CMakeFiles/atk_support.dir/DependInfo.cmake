
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/cli.cpp" "src/support/CMakeFiles/atk_support.dir/cli.cpp.o" "gcc" "src/support/CMakeFiles/atk_support.dir/cli.cpp.o.d"
  "/root/repo/src/support/csv.cpp" "src/support/CMakeFiles/atk_support.dir/csv.cpp.o" "gcc" "src/support/CMakeFiles/atk_support.dir/csv.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/support/CMakeFiles/atk_support.dir/rng.cpp.o" "gcc" "src/support/CMakeFiles/atk_support.dir/rng.cpp.o.d"
  "/root/repo/src/support/sparkline.cpp" "src/support/CMakeFiles/atk_support.dir/sparkline.cpp.o" "gcc" "src/support/CMakeFiles/atk_support.dir/sparkline.cpp.o.d"
  "/root/repo/src/support/statistics.cpp" "src/support/CMakeFiles/atk_support.dir/statistics.cpp.o" "gcc" "src/support/CMakeFiles/atk_support.dir/statistics.cpp.o.d"
  "/root/repo/src/support/sysinfo.cpp" "src/support/CMakeFiles/atk_support.dir/sysinfo.cpp.o" "gcc" "src/support/CMakeFiles/atk_support.dir/sysinfo.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/support/CMakeFiles/atk_support.dir/table.cpp.o" "gcc" "src/support/CMakeFiles/atk_support.dir/table.cpp.o.d"
  "/root/repo/src/support/thread_pool.cpp" "src/support/CMakeFiles/atk_support.dir/thread_pool.cpp.o" "gcc" "src/support/CMakeFiles/atk_support.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libatk_support.a"
)

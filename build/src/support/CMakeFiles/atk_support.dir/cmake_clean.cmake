file(REMOVE_RECURSE
  "CMakeFiles/atk_support.dir/cli.cpp.o"
  "CMakeFiles/atk_support.dir/cli.cpp.o.d"
  "CMakeFiles/atk_support.dir/csv.cpp.o"
  "CMakeFiles/atk_support.dir/csv.cpp.o.d"
  "CMakeFiles/atk_support.dir/rng.cpp.o"
  "CMakeFiles/atk_support.dir/rng.cpp.o.d"
  "CMakeFiles/atk_support.dir/sparkline.cpp.o"
  "CMakeFiles/atk_support.dir/sparkline.cpp.o.d"
  "CMakeFiles/atk_support.dir/statistics.cpp.o"
  "CMakeFiles/atk_support.dir/statistics.cpp.o.d"
  "CMakeFiles/atk_support.dir/sysinfo.cpp.o"
  "CMakeFiles/atk_support.dir/sysinfo.cpp.o.d"
  "CMakeFiles/atk_support.dir/table.cpp.o"
  "CMakeFiles/atk_support.dir/table.cpp.o.d"
  "CMakeFiles/atk_support.dir/thread_pool.cpp.o"
  "CMakeFiles/atk_support.dir/thread_pool.cpp.o.d"
  "libatk_support.a"
  "libatk_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raytrace/builders.cpp" "src/raytrace/CMakeFiles/atk_raytrace.dir/builders.cpp.o" "gcc" "src/raytrace/CMakeFiles/atk_raytrace.dir/builders.cpp.o.d"
  "/root/repo/src/raytrace/builders_detail.cpp" "src/raytrace/CMakeFiles/atk_raytrace.dir/builders_detail.cpp.o" "gcc" "src/raytrace/CMakeFiles/atk_raytrace.dir/builders_detail.cpp.o.d"
  "/root/repo/src/raytrace/geometry.cpp" "src/raytrace/CMakeFiles/atk_raytrace.dir/geometry.cpp.o" "gcc" "src/raytrace/CMakeFiles/atk_raytrace.dir/geometry.cpp.o.d"
  "/root/repo/src/raytrace/kdtree.cpp" "src/raytrace/CMakeFiles/atk_raytrace.dir/kdtree.cpp.o" "gcc" "src/raytrace/CMakeFiles/atk_raytrace.dir/kdtree.cpp.o.d"
  "/root/repo/src/raytrace/pipeline.cpp" "src/raytrace/CMakeFiles/atk_raytrace.dir/pipeline.cpp.o" "gcc" "src/raytrace/CMakeFiles/atk_raytrace.dir/pipeline.cpp.o.d"
  "/root/repo/src/raytrace/renderer.cpp" "src/raytrace/CMakeFiles/atk_raytrace.dir/renderer.cpp.o" "gcc" "src/raytrace/CMakeFiles/atk_raytrace.dir/renderer.cpp.o.d"
  "/root/repo/src/raytrace/sah.cpp" "src/raytrace/CMakeFiles/atk_raytrace.dir/sah.cpp.o" "gcc" "src/raytrace/CMakeFiles/atk_raytrace.dir/sah.cpp.o.d"
  "/root/repo/src/raytrace/scene.cpp" "src/raytrace/CMakeFiles/atk_raytrace.dir/scene.cpp.o" "gcc" "src/raytrace/CMakeFiles/atk_raytrace.dir/scene.cpp.o.d"
  "/root/repo/src/raytrace/wald_havran.cpp" "src/raytrace/CMakeFiles/atk_raytrace.dir/wald_havran.cpp.o" "gcc" "src/raytrace/CMakeFiles/atk_raytrace.dir/wald_havran.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/atk_support.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atk_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

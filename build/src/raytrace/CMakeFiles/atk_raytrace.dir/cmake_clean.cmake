file(REMOVE_RECURSE
  "CMakeFiles/atk_raytrace.dir/builders.cpp.o"
  "CMakeFiles/atk_raytrace.dir/builders.cpp.o.d"
  "CMakeFiles/atk_raytrace.dir/builders_detail.cpp.o"
  "CMakeFiles/atk_raytrace.dir/builders_detail.cpp.o.d"
  "CMakeFiles/atk_raytrace.dir/geometry.cpp.o"
  "CMakeFiles/atk_raytrace.dir/geometry.cpp.o.d"
  "CMakeFiles/atk_raytrace.dir/kdtree.cpp.o"
  "CMakeFiles/atk_raytrace.dir/kdtree.cpp.o.d"
  "CMakeFiles/atk_raytrace.dir/pipeline.cpp.o"
  "CMakeFiles/atk_raytrace.dir/pipeline.cpp.o.d"
  "CMakeFiles/atk_raytrace.dir/renderer.cpp.o"
  "CMakeFiles/atk_raytrace.dir/renderer.cpp.o.d"
  "CMakeFiles/atk_raytrace.dir/sah.cpp.o"
  "CMakeFiles/atk_raytrace.dir/sah.cpp.o.d"
  "CMakeFiles/atk_raytrace.dir/scene.cpp.o"
  "CMakeFiles/atk_raytrace.dir/scene.cpp.o.d"
  "CMakeFiles/atk_raytrace.dir/wald_havran.cpp.o"
  "CMakeFiles/atk_raytrace.dir/wald_havran.cpp.o.d"
  "libatk_raytrace.a"
  "libatk_raytrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_raytrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

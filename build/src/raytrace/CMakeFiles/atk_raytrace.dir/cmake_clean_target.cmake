file(REMOVE_RECURSE
  "libatk_raytrace.a"
)

# Empty dependencies file for atk_raytrace.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/atk_stringmatch.dir/boyer_moore.cpp.o"
  "CMakeFiles/atk_stringmatch.dir/boyer_moore.cpp.o.d"
  "CMakeFiles/atk_stringmatch.dir/corpus.cpp.o"
  "CMakeFiles/atk_stringmatch.dir/corpus.cpp.o.d"
  "CMakeFiles/atk_stringmatch.dir/ebom.cpp.o"
  "CMakeFiles/atk_stringmatch.dir/ebom.cpp.o.d"
  "CMakeFiles/atk_stringmatch.dir/fsbndm.cpp.o"
  "CMakeFiles/atk_stringmatch.dir/fsbndm.cpp.o.d"
  "CMakeFiles/atk_stringmatch.dir/hash3.cpp.o"
  "CMakeFiles/atk_stringmatch.dir/hash3.cpp.o.d"
  "CMakeFiles/atk_stringmatch.dir/hybrid.cpp.o"
  "CMakeFiles/atk_stringmatch.dir/hybrid.cpp.o.d"
  "CMakeFiles/atk_stringmatch.dir/kmp.cpp.o"
  "CMakeFiles/atk_stringmatch.dir/kmp.cpp.o.d"
  "CMakeFiles/atk_stringmatch.dir/matcher.cpp.o"
  "CMakeFiles/atk_stringmatch.dir/matcher.cpp.o.d"
  "CMakeFiles/atk_stringmatch.dir/parallel.cpp.o"
  "CMakeFiles/atk_stringmatch.dir/parallel.cpp.o.d"
  "CMakeFiles/atk_stringmatch.dir/shift_or.cpp.o"
  "CMakeFiles/atk_stringmatch.dir/shift_or.cpp.o.d"
  "CMakeFiles/atk_stringmatch.dir/ssef.cpp.o"
  "CMakeFiles/atk_stringmatch.dir/ssef.cpp.o.d"
  "libatk_stringmatch.a"
  "libatk_stringmatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atk_stringmatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stringmatch/boyer_moore.cpp" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/boyer_moore.cpp.o" "gcc" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/boyer_moore.cpp.o.d"
  "/root/repo/src/stringmatch/corpus.cpp" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/corpus.cpp.o" "gcc" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/corpus.cpp.o.d"
  "/root/repo/src/stringmatch/ebom.cpp" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/ebom.cpp.o" "gcc" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/ebom.cpp.o.d"
  "/root/repo/src/stringmatch/fsbndm.cpp" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/fsbndm.cpp.o" "gcc" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/fsbndm.cpp.o.d"
  "/root/repo/src/stringmatch/hash3.cpp" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/hash3.cpp.o" "gcc" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/hash3.cpp.o.d"
  "/root/repo/src/stringmatch/hybrid.cpp" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/hybrid.cpp.o" "gcc" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/hybrid.cpp.o.d"
  "/root/repo/src/stringmatch/kmp.cpp" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/kmp.cpp.o" "gcc" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/kmp.cpp.o.d"
  "/root/repo/src/stringmatch/matcher.cpp" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/matcher.cpp.o" "gcc" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/matcher.cpp.o.d"
  "/root/repo/src/stringmatch/parallel.cpp" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/parallel.cpp.o" "gcc" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/parallel.cpp.o.d"
  "/root/repo/src/stringmatch/shift_or.cpp" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/shift_or.cpp.o" "gcc" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/shift_or.cpp.o.d"
  "/root/repo/src/stringmatch/ssef.cpp" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/ssef.cpp.o" "gcc" "src/stringmatch/CMakeFiles/atk_stringmatch.dir/ssef.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/atk_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

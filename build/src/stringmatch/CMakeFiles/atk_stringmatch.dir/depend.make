# Empty dependencies file for atk_stringmatch.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libatk_stringmatch.a"
)

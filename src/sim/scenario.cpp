#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/search/nelder_mead.hpp"
#include "support/contracts.hpp"

namespace atk::sim {

namespace {

/// Noise can never push a measurement to or below zero; the clamp keeps the
/// strategies' cost > 0 precondition intact even for adversarial specs.
constexpr double kCostFloor = 1e-9;

} // namespace

AlgorithmModel AlgorithmModel::constant(std::string name, double base) {
    AlgorithmModel model;
    model.name = std::move(name);
    model.base = base;
    return model;
}

AlgorithmModel AlgorithmModel::bowl(std::string name, double base,
                                    std::vector<double> optimum, double slope,
                                    double curvature) {
    AlgorithmModel model;
    model.name = std::move(name);
    model.base = base;
    model.optimum = std::move(optimum);
    model.slope = slope;
    model.curvature = curvature;
    return model;
}

AlgorithmModel AlgorithmModel::plateau(std::string name, double base,
                                       std::vector<double> optimum, double radius,
                                       double slope) {
    AlgorithmModel model = bowl(std::move(name), base, std::move(optimum), slope);
    model.plateau_radius = radius;
    return model;
}

AlgorithmModel AlgorithmModel::heavy_tail(std::string name, double base,
                                          double spike_prob, double spike_scale) {
    AlgorithmModel model = constant(std::move(name), base);
    model.spike_prob = spike_prob;
    model.spike_scale = spike_scale;
    return model;
}

ScenarioSpec ScenarioSpec::named(std::string name) {
    ScenarioSpec spec;
    spec.name_ = std::move(name);
    return spec;
}

ScenarioSpec& ScenarioSpec::algorithm(AlgorithmModel model) {
    algorithms_.push_back(std::move(model));
    return *this;
}

ScenarioSpec& ScenarioSpec::relative_noise(double magnitude) {
    noise_ = NoiseModel{NoiseModel::Kind::Relative, magnitude};
    return *this;
}

ScenarioSpec& ScenarioSpec::additive_noise(double magnitude) {
    noise_ = NoiseModel{NoiseModel::Kind::Additive, magnitude};
    return *this;
}

ScenarioSpec& ScenarioSpec::shift(std::size_t at_iteration, std::vector<double> bases,
                                  std::vector<double> ramps) {
    shifts_.push_back(PhaseShift{at_iteration, std::move(bases), std::move(ramps)});
    return *this;
}

ScenarioSpec& ScenarioSpec::input_scale(std::size_t at_iteration, double scale) {
    sizes_.push_back(SizeStep{at_iteration, scale});
    return *this;
}

ScenarioSpec& ScenarioSpec::horizon(std::size_t iterations) {
    iterations_ = iterations;
    return *this;
}

ScenarioSpec& ScenarioSpec::deadline(double cost_units) {
    deadline_ = cost_units;
    return *this;
}

ScenarioSpec& ScenarioSpec::blocks(std::size_t per_trial) {
    blocks_ = per_trial;
    return *this;
}

void ScenarioSpec::validate() const {
    if (algorithms_.empty())
        throw std::invalid_argument("ScenarioSpec '" + name_ + "': no algorithms");
    if (iterations_ == 0)
        throw std::invalid_argument("ScenarioSpec '" + name_ + "': zero-iteration horizon");
    for (const auto& model : algorithms_) {
        if (model.name.empty())
            throw std::invalid_argument("ScenarioSpec '" + name_ + "': unnamed algorithm");
        if (!(model.base > 0.0) || !std::isfinite(model.base))
            throw std::invalid_argument("ScenarioSpec '" + name_ + "': algorithm '" +
                                        model.name + "' base must be a positive cost");
        if (model.slope < 0.0 || model.plateau_radius < 0.0 || model.curvature <= 0.0)
            throw std::invalid_argument("ScenarioSpec '" + name_ + "': algorithm '" +
                                        model.name + "' has a negative surface shape");
        if (model.lo > model.hi)
            throw std::invalid_argument("ScenarioSpec '" + name_ + "': algorithm '" +
                                        model.name + "' has an empty parameter range");
        for (const double opt : model.optimum)
            if (opt < static_cast<double>(model.lo) || opt > static_cast<double>(model.hi))
                throw std::invalid_argument("ScenarioSpec '" + name_ + "': algorithm '" +
                                            model.name + "' optimum outside [lo, hi]");
        if (model.spike_prob < 0.0 || model.spike_prob >= 1.0 ||
            model.spike_scale < 1.0 || !std::isfinite(model.spike_scale))
            throw std::invalid_argument("ScenarioSpec '" + name_ + "': algorithm '" +
                                        model.name +
                                        "' heavy tail needs prob in [0, 1) and "
                                        "scale >= 1");
    }
    if (deadline_ < 0.0 || !std::isfinite(deadline_))
        throw std::invalid_argument("ScenarioSpec '" + name_ +
                                    "': deadline must be non-negative");
    if (blocks_ == 0)
        throw std::invalid_argument("ScenarioSpec '" + name_ +
                                    "': blocks per trial must be at least 1");
    std::size_t previous = 0;
    for (std::size_t s = 0; s < shifts_.size(); ++s) {
        const auto& shift = shifts_[s];
        if (s > 0 && shift.at_iteration <= previous)
            throw std::invalid_argument("ScenarioSpec '" + name_ +
                                        "': phase shifts must be strictly increasing");
        previous = shift.at_iteration;
        if (shift.bases.size() != algorithms_.size())
            throw std::invalid_argument("ScenarioSpec '" + name_ +
                                        "': phase shift base count != algorithm count");
        if (!shift.ramps.empty() && shift.ramps.size() != algorithms_.size())
            throw std::invalid_argument("ScenarioSpec '" + name_ +
                                        "': phase shift ramp count != algorithm count");
        for (const double base : shift.bases)
            if (!(base > 0.0) || !std::isfinite(base))
                throw std::invalid_argument("ScenarioSpec '" + name_ +
                                            "': phase shift base must be positive");
    }
    previous = 0;
    for (std::size_t s = 0; s < sizes_.size(); ++s) {
        if (s > 0 && sizes_[s].at_iteration <= previous)
            throw std::invalid_argument("ScenarioSpec '" + name_ +
                                        "': size steps must be strictly increasing");
        previous = sizes_[s].at_iteration;
        if (!(sizes_[s].scale > 0.0))
            throw std::invalid_argument("ScenarioSpec '" + name_ +
                                        "': input scale must be positive");
    }
    if (noise_.kind == NoiseModel::Kind::Relative &&
        (noise_.magnitude < 0.0 || noise_.magnitude >= 1.0))
        throw std::invalid_argument("ScenarioSpec '" + name_ +
                                    "': relative noise must be in [0, 1)");
    if (noise_.kind == NoiseModel::Kind::Additive && noise_.magnitude < 0.0)
        throw std::invalid_argument("ScenarioSpec '" + name_ +
                                    "': additive noise must be non-negative");
}

double ScenarioSpec::base_at(std::size_t a, std::size_t i) const {
    const AlgorithmModel& model = algorithms_.at(a);
    double base = model.base;
    double ramp = model.ramp;
    std::size_t phase_start = 0;
    for (const auto& shift : shifts_) {
        if (shift.at_iteration > i) break;
        base = shift.bases[a];
        ramp = shift.ramps.empty() ? 0.0 : shift.ramps[a];
        phase_start = shift.at_iteration;
    }
    return base + ramp * static_cast<double>(i - phase_start);
}

double ScenarioSpec::scale_at(std::size_t i) const {
    double scale = 1.0;
    for (const auto& step : sizes_) {
        if (step.at_iteration > i) break;
        scale = step.scale;
    }
    return scale;
}

FeatureVector ScenarioSpec::features_at(std::size_t i) const {
    return FeatureVector{scale_at(i)};
}

double ScenarioSpec::ideal_cost(std::size_t a, std::size_t i) const {
    return base_at(a, i) *
           std::pow(scale_at(i), algorithms_.at(a).size_exponent);
}

std::size_t ScenarioSpec::best_algorithm(std::size_t i) const {
    std::size_t best = 0;
    double best_cost = ideal_cost(0, i);
    for (std::size_t a = 1; a < algorithms_.size(); ++a) {
        const double cost = ideal_cost(a, i);
        if (cost < best_cost) {
            best_cost = cost;
            best = a;
        }
    }
    return best;
}

Cost ScenarioSpec::evaluate(const Trial& trial, std::size_t iteration,
                            Rng& rng) const {
    const AlgorithmModel& model = algorithms_.at(trial.algorithm);
    double dist_sq = 0.0;
    for (std::size_t d = 0; d < model.optimum.size(); ++d) {
        const double delta =
            static_cast<double>(trial.config[d]) - model.optimum[d];
        dist_sq += delta * delta;
    }
    const double excess =
        std::max(0.0, std::sqrt(dist_sq) - model.plateau_radius);
    double cost = base_at(trial.algorithm, iteration) +
                  model.slope * std::pow(excess, model.curvature);
    cost *= std::pow(scale_at(iteration), model.size_exponent);
    switch (noise_.kind) {
    case NoiseModel::Kind::None:
        break;
    case NoiseModel::Kind::Relative:
        cost *= 1.0 + noise_.magnitude * rng.uniform_real(-1.0, 1.0);
        break;
    case NoiseModel::Kind::Additive:
        cost += noise_.magnitude * rng.uniform_real(-1.0, 1.0);
        break;
    }
    // Heavy tail after noise: a spiked sample is the whole (noisy) operation
    // inflated, the way a scheduling stall inflates a real block's latency.
    if (model.spike_prob > 0.0 && rng.chance(model.spike_prob))
        cost *= model.spike_scale;
    cost = std::max(cost, kCostFloor);
    ATK_ASSERT(std::isfinite(cost) && cost > 0.0,
               "scenario surface produced a non-positive or non-finite cost");
    return cost;
}

CostBatch ScenarioSpec::evaluate_batch(const Trial& trial, std::size_t iteration,
                                       Rng& rng) const {
    CostBatch batch;
    batch.deadline = deadline_;
    batch.samples.reserve(blocks_);
    for (std::size_t b = 0; b < blocks_; ++b)
        batch.samples.push_back(evaluate(trial, iteration, rng));
    return batch;
}

std::vector<TunableAlgorithm> ScenarioSpec::make_algorithms() const {
    std::vector<TunableAlgorithm> algorithms;
    algorithms.reserve(algorithms_.size());
    for (const auto& model : algorithms_) {
        if (model.optimum.empty()) {
            algorithms.push_back(TunableAlgorithm::untunable(model.name));
            continue;
        }
        TunableAlgorithm algorithm;
        algorithm.name = model.name;
        for (std::size_t d = 0; d < model.optimum.size(); ++d) {
            // Built up in place: `"x" + std::string&&` trips gcc 12's
            // -Wrestrict false positive (PR 105651) under -Werror.
            std::string axis = "x";
            axis += std::to_string(d);
            algorithm.space.add(Parameter::ratio(axis, model.lo, model.hi));
        }
        algorithm.initial = algorithm.space.midpoint();
        algorithm.searcher = std::make_unique<NelderMeadSearcher>();
        algorithms.push_back(std::move(algorithm));
    }
    return algorithms;
}

std::vector<std::string> scenario_names() {
    return {"static", "drift", "plateau", "sweep", "deadline", "mixed"};
}

ScenarioSpec make_scenario(const std::string& name) {
    if (name == "static") {
        // The paper's static setting: four algorithms, one clear winner after
        // phase-one tuning, mild measurement noise (Section IV-A dynamics).
        return ScenarioSpec::named("static")
            .algorithm(AlgorithmModel::constant("slowflat", 40.0))
            .algorithm(AlgorithmModel::bowl("winner", 8.0, {80.0}, 0.5))
            .algorithm(AlgorithmModel::bowl("midrange", 20.0, {20.0}, 0.2))
            .algorithm(AlgorithmModel::bowl("terrible", 120.0, {50.0}, 1.0))
            .relative_noise(0.02)
            .horizon(400);
    }
    if (name == "drift") {
        // Online drift (paper §IV-C): the incumbent degrades, a previously
        // uncompetitive algorithm becomes strictly faster than the incumbent
        // ever was — every strategy, including best-ever trackers, can and
        // must re-converge.  Noise-free so re-convergence gates are exact:
        // the incumbent's post-shift ramp keeps its gradient strictly
        // negative, which the Gradient-Weighted gate relies on.
        return ScenarioSpec::named("drift")
            .algorithm(AlgorithmModel::constant("incumbent", 10.0))
            .algorithm(AlgorithmModel::constant("latebloomer", 30.0))
            .shift(150, {30.0, 4.0}, {0.02, 0.0})
            .horizon(450);
    }
    if (name == "plateau") {
        // Flat-floor surfaces: inside the plateau every configuration looks
        // identical, starving Nelder-Mead of gradient information.
        return ScenarioSpec::named("plateau")
            .algorithm(AlgorithmModel::plateau("mesa", 12.0, {30.0}, 15.0, 0.8))
            .algorithm(AlgorithmModel::bowl("spike", 10.0, {70.0}, 0.05, 2.0))
            .algorithm(AlgorithmModel::constant("flatline", 25.0))
            .relative_noise(0.05)
            .horizon(400);
    }
    if (name == "sweep") {
        // Input-size sweep: a linear-cost algorithm wins small inputs, a
        // sublinear one takes over as the simulated input grows 6×.
        AlgorithmModel linear = AlgorithmModel::constant("linear", 5.0);
        linear.size_exponent = 1.0;
        AlgorithmModel sublinear = AlgorithmModel::constant("sublinear", 12.0);
        sublinear.size_exponent = 0.3;
        return ScenarioSpec::named("sweep")
            .algorithm(std::move(linear))
            .algorithm(std::move(sublinear))
            .input_scale(150, 2.0)
            .input_scale(300, 6.0)
            .relative_noise(0.02)
            .horizon(450);
    }
    if (name == "deadline") {
        // Latency-SLO setting over heavy tails: "meanfast" wins clearly on
        // mean cost (6·(0.9 + 0.1·6) = 9 vs 13) but one block in ten spikes
        // to ~36, far past the 20-unit deadline; "steady" is slower on
        // average and never misses.  A mean objective therefore weights
        // meanfast up, while the p95 of a 16-block batch (spiked with
        // probability 1 − 0.9¹⁶ ≈ 0.81) scores ≈23 against steady's 13 and
        // pushes the tuner the other way — the Wilcoxon gate in
        // tests/sim/deadline_test.cpp.
        return ScenarioSpec::named("deadline")
            .algorithm(AlgorithmModel::heavy_tail("meanfast", 6.0, 0.10, 6.0))
            .algorithm(AlgorithmModel::constant("steady", 13.0))
            .relative_noise(0.02)
            .deadline(20.0)
            .blocks(16)
            .horizon(400);
    }
    if (name == "mixed") {
        // Mixed workload: the input size flips between small and large every
        // 30 iterations, so the best algorithm alternates all run long.  A
        // context-blind strategy can only average over both regimes (or
        // thrash between them); anything that keys its choice off the size
        // feature wins both.  At scale 1 "linear" costs 5 vs "sublinear" 12;
        // at scale 8 linear is 40 vs sublinear 12·8^0.3 ≈ 22.4.
        AlgorithmModel linear = AlgorithmModel::constant("linear", 5.0);
        linear.size_exponent = 1.0;
        AlgorithmModel sublinear = AlgorithmModel::constant("sublinear", 12.0);
        sublinear.size_exponent = 0.3;
        ScenarioSpec spec = ScenarioSpec::named("mixed")
                                .algorithm(std::move(linear))
                                .algorithm(std::move(sublinear))
                                .relative_noise(0.02)
                                .horizon(480);
        for (std::size_t start = 30; start < 480; start += 60) {
            spec.input_scale(start, 8.0);
            spec.input_scale(start + 30, 1.0);
        }
        return spec;
    }
    throw std::invalid_argument(
        "make_scenario: unknown scenario '" + name +
        "' (have: static, drift, plateau, sweep, deadline, mixed)");
}

} // namespace atk::sim

#include "sim/contextual.hpp"

#include <memory>
#include <stdexcept>

#include "core/nominal/bucketed.hpp"
#include "core/nominal/epsilon_greedy.hpp"
#include "core/nominal/feature_policy.hpp"
#include "core/nominal/linucb.hpp"

namespace atk::sim {

StrategyFactory contextual_strategy(std::size_t dimension, double alpha,
                                    double epsilon, double gamma) {
    return [dimension, alpha, epsilon, gamma] {
        return std::make_unique<LinUcb>(dimension, alpha, /*ridge=*/1.0,
                                        epsilon, gamma);
    };
}

StrategyFactory bucketed_strategy(std::vector<double> edges, double epsilon) {
    return [edges = std::move(edges), epsilon] {
        return std::make_unique<BucketedStrategy>(
            [epsilon] { return std::make_unique<EpsilonGreedy>(epsilon); },
            FeatureBucketizer({edges}));
    };
}

FeatureModel train_scenario_feature_model(const ScenarioSpec& spec,
                                          std::size_t points, std::size_t k) {
    spec.validate();
    if (points == 0)
        throw std::invalid_argument(
            "train_scenario_feature_model: need at least one training point");
    std::vector<TrainingWorkload> workloads;
    workloads.reserve(points);
    const std::size_t horizon = spec.iterations();
    for (std::size_t t = 0; t < points; ++t) {
        // Evenly spaced training iterations across the horizon, so every
        // input-size regime the schedule visits appears in training.
        const std::size_t i =
            points == 1 ? 0 : t * (horizon - 1) / (points - 1);
        TrainingWorkload workload;
        workload.features = spec.features_at(i);
        workload.measure = [&spec, i](std::size_t algorithm) {
            return spec.ideal_cost(algorithm, i);
        };
        workloads.push_back(std::move(workload));
    }
    return train_feature_model(workloads, spec.algorithm_count(), k);
}

StrategyFactory feature_model_strategy(const ScenarioSpec& spec) {
    // Trained once, copied into every tuner instance: the offline phase
    // happens before deployment, exactly as in the Nitro workflow.
    FeatureModel model = train_scenario_feature_model(spec);
    return [model = std::move(model)] {
        return std::make_unique<FeatureModelPolicy>(model);
    };
}

double mean_trace_cost(const SimResult& run) {
    if (run.trace.size() == 0) return 0.0;
    double total = 0.0;
    for (std::size_t i = 0; i < run.trace.size(); ++i)
        total += run.trace[i].cost;
    return total / static_cast<double>(run.trace.size());
}

double best_tracking_share(const ScenarioSpec& spec, const SimResult& run,
                           std::size_t begin, std::size_t end) {
    if (begin >= end || end > run.trace.size())
        throw std::invalid_argument("best_tracking_share: bad window");
    std::size_t hits = 0;
    for (std::size_t i = begin; i < end; ++i)
        if (run.trace[i].algorithm == spec.best_algorithm(run.trace[i].iteration))
            ++hits;
    return static_cast<double>(hits) / static_cast<double>(end - begin);
}

} // namespace atk::sim

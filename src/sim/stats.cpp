#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace atk::sim {

std::vector<double> selection_share_curve(const TuningTrace& trace,
                                          std::size_t algorithm,
                                          std::size_t window) {
    if (window == 0)
        throw std::invalid_argument("selection_share_curve: window must be positive");
    std::vector<double> curve(trace.size(), 0.0);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (trace[i].algorithm == algorithm) ++hits;
        if (i >= window && trace[i - window].algorithm == algorithm) --hits;
        const std::size_t span = std::min(i + 1, window);
        curve[i] = static_cast<double>(hits) / static_cast<double>(span);
    }
    return curve;
}

double selection_share(const TuningTrace& trace, std::size_t algorithm,
                       std::size_t begin, std::size_t end) {
    if (begin >= end || end > trace.size())
        throw std::invalid_argument("selection_share: empty or out-of-range span");
    std::size_t hits = 0;
    for (std::size_t i = begin; i < end; ++i)
        if (trace[i].algorithm == algorithm) ++hits;
    return static_cast<double>(hits) / static_cast<double>(end - begin);
}

std::size_t modal_choice(const TuningTrace& trace, std::size_t algorithms,
                         std::size_t begin, std::size_t end) {
    if (begin >= end || end > trace.size())
        throw std::invalid_argument("modal_choice: empty or out-of-range span");
    std::vector<std::size_t> counts(algorithms, 0);
    for (std::size_t i = begin; i < end; ++i) ++counts.at(trace[i].algorithm);
    return static_cast<std::size_t>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
}

std::optional<std::size_t> convergence_iteration(const TuningTrace& trace,
                                                 std::size_t algorithm,
                                                 double share,
                                                 std::size_t window) {
    const auto curve = selection_share_curve(trace, algorithm, window);
    for (std::size_t i = window > 0 ? window - 1 : 0; i < curve.size(); ++i)
        if (curve[i] >= share) return i;
    return std::nullopt;
}

std::vector<double> ensemble_convergence(std::span<const SimResult> ensemble,
                                         std::size_t algorithm, double share,
                                         std::size_t window,
                                         std::size_t horizon) {
    std::vector<double> iterations;
    iterations.reserve(ensemble.size());
    for (const SimResult& run : ensemble) {
        const auto converged =
            convergence_iteration(run.trace, algorithm, share, window);
        iterations.push_back(static_cast<double>(converged.value_or(horizon)));
    }
    return iterations;
}

namespace {

/// Φ(z), the standard normal CDF.
double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

} // namespace

WilcoxonResult wilcoxon_signed_rank(std::span<const double> a,
                                    std::span<const double> b) {
    if (a.size() != b.size())
        throw std::invalid_argument("wilcoxon_signed_rank: paired spans differ in length");

    struct Pair {
        double magnitude;
        bool positive;
    };
    std::vector<Pair> pairs;
    pairs.reserve(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double diff = a[i] - b[i];
        if (diff != 0.0) pairs.push_back({std::abs(diff), diff > 0.0});
    }

    WilcoxonResult result;
    result.n = pairs.size();
    if (pairs.empty()) return result;  // all ties: no evidence either way

    std::sort(pairs.begin(), pairs.end(),
              [](const Pair& x, const Pair& y) { return x.magnitude < y.magnitude; });

    // Average ranks within tie groups; accumulate the tie correction term.
    double tie_correction = 0.0;
    std::size_t i = 0;
    while (i < pairs.size()) {
        std::size_t j = i;
        while (j < pairs.size() && pairs[j].magnitude == pairs[i].magnitude) ++j;
        const double tied = static_cast<double>(j - i);
        const double rank =
            (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
        for (std::size_t k = i; k < j; ++k) {
            if (pairs[k].positive)
                result.w_plus += rank;
            else
                result.w_minus += rank;
        }
        tie_correction += tied * tied * tied - tied;
        i = j;
    }

    const double n = static_cast<double>(result.n);
    const double mean = n * (n + 1.0) / 4.0;
    const double variance =
        n * (n + 1.0) * (2.0 * n + 1.0) / 24.0 - tie_correction / 48.0;
    if (variance <= 0.0) return result;  // degenerate: every magnitude tied away

    // Continuity correction pulls W+ half a rank toward the mean.
    double w = result.w_plus;
    if (w > mean)
        w -= 0.5;
    else if (w < mean)
        w += 0.5;
    result.z = (w - mean) / std::sqrt(variance);
    result.p_a_less_b = normal_cdf(result.z);
    return result;
}

} // namespace atk::sim

#pragma once

// Deterministic simulation harness for the autotuning kit: synthetic cost
// surfaces (scenario.hpp), a seeded virtual clock (sim_clock.hpp), the
// single-run and ensemble drivers (simulator.hpp), the statistical assertion
// kit (stats.hpp) and runtime fault injection (fault.hpp).

#include "sim/contextual.hpp"
#include "sim/fault.hpp"
#include "sim/scenario.hpp"
#include "sim/sim_clock.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/nominal/strategy.hpp"
#include "core/trace.hpp"
#include "core/tuner.hpp"
#include "sim/scenario.hpp"
#include "support/clock.hpp"

namespace atk::sim {

/// Builds a fresh phase-two strategy for one simulated run.  Ensembles call
/// it once per seed, so strategies never leak state across repetitions.
using StrategyFactory = std::function<std::unique_ptr<NominalStrategy>()>;

struct SimOptions {
    std::size_t iterations = 0;  ///< 0 = the scenario's horizon
    bool capture_audit = false;  ///< record the decision stream as JSONL
    double clock_jitter = 0.0;   ///< SimClock timing jitter (seeded)
    /// Builds the tuner's cost objective for one run (same per-seed freshness
    /// contract as StrategyFactory).  Null = the tuner's default (mean cost).
    std::function<std::unique_ptr<CostObjective>()> objective;
};

/// Everything one simulated tuning run produced, ready for the statistical
/// assertion kit: the full trace, the strategy's final view, the worst-case
/// weight/probability ever handed out (the no-exclusion invariant), and the
/// deterministic simulated timeline.
struct SimResult {
    TuningTrace trace;
    std::size_t algorithms = 0;
    std::vector<double> final_weights;
    double min_weight = 0.0;        ///< min over every decision and algorithm
    double min_probability = 0.0;   ///< same, after normalization
    Millis sim_time = 0.0;          ///< SimClock at the end of the run
    std::size_t best_algorithm = 0; ///< tuner's best-known trial
    Cost best_cost = 0.0;
    std::string audit_jsonl;        ///< non-empty when capture_audit was set
    /// Batch scenarios (blocks_per_trial > 1 or a deadline set) also expose
    /// the raw per-block cost stream in trial order — the realized latency
    /// distribution the deadline gates assert on.  Empty for scalar runs.
    std::vector<double> block_costs;
    std::size_t deadline_misses = 0;///< blocks whose cost exceeded the deadline
    double deadline = 0.0;          ///< the scenario's per-block budget (0 = none)
};

/// Runs `spec` against a TwoPhaseTuner for the configured horizon on a
/// deterministic virtual clock.  Identical (spec, factory, seed, options)
/// produce bit-identical results — the property tests/sim/determinism_test
/// pins down and every convergence gate relies on.
[[nodiscard]] SimResult simulate(const ScenarioSpec& spec,
                                 const StrategyFactory& make_strategy,
                                 std::uint64_t seed, SimOptions options = {});

/// The per-seed repetition set every statistical gate runs over: seeds
/// base_seed, base_seed+1, ….  Kept explicit (not hidden inside ensemble
/// runs) so a failing seed can be replayed alone.
[[nodiscard]] std::vector<std::uint64_t> ensemble_seeds(std::uint64_t base_seed,
                                                        std::size_t count);

/// One simulate() per seed, in seed order (deterministic, single-threaded).
[[nodiscard]] std::vector<SimResult> simulate_ensemble(
    const ScenarioSpec& spec, const StrategyFactory& make_strategy,
    std::uint64_t base_seed, std::size_t seed_count, SimOptions options = {});

} // namespace atk::sim

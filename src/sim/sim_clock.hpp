#pragma once

#include <cstdint>

#include "support/clock.hpp"
#include "support/rng.hpp"

namespace atk::sim {

/// The simulation's time source: a virtual clock (same now()/advance()
/// surface as support's VirtualClock) whose optional timing jitter is drawn
/// from a seeded Rng, so an entire simulated timeline — every timestamp and
/// every perturbed duration — is bit-reproducible from a single seed.
///
/// The harness advances it by simulated measurement durations instead of
/// reading a wall clock; hardware noise becomes a seeded, replayable model.
class SimClock {
public:
    explicit SimClock(std::uint64_t seed, double jitter = 0.0) noexcept
        : jitter_(jitter < 0.0 ? 0.0 : jitter), rng_(seed) {}

    [[nodiscard]] Millis now() const noexcept { return now_; }

    /// Advances exactly `delta` milliseconds (no jitter).
    void advance(Millis delta) noexcept { now_ += delta; }

    /// Advances by `nominal` perturbed with ±jitter (relative), returning the
    /// duration actually "measured".  With jitter 0 this is advance() that
    /// reports back.  The result never drops to zero or below.
    Millis tick(Millis nominal) noexcept {
        Millis actual = nominal;
        if (jitter_ > 0.0)
            actual *= 1.0 + jitter_ * rng_.uniform_real(-1.0, 1.0);
        if (actual < 1e-9) actual = 1e-9;
        now_ += actual;
        return actual;
    }

private:
    Millis now_ = 0.0;
    double jitter_;
    Rng rng_;
};

} // namespace atk::sim

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/tuner.hpp"
#include "support/rng.hpp"

namespace atk::sim {

/// Parametric cost surface of one simulated algorithm.  The surface is the
/// controlled stand-in for "run algorithm A with configuration C and time
/// it": a convex bowl (optionally flattened into a plateau) over A's own
/// parameter space, whose floor can move over simulated time.
///
/// Cost of configuration x at tuning iteration i:
///
///   dist    = ‖x − optimum‖₂                     (0 for untunable algorithms)
///   surface = base(i) + slope · max(0, dist − plateau_radius)^curvature
///   cost    = surface · input_scale(i)^size_exponent
///
/// base(i) follows the scenario's phase schedule: each phase supplies a base
/// and a per-iteration ramp (the paper's drifting-context setting, §IV-C).
struct AlgorithmModel {
    std::string name;
    double base = 10.0;            ///< best achievable cost in phase 0
    double ramp = 0.0;             ///< additive cost drift per iteration
    double slope = 0.0;            ///< cost per unit distance beyond the plateau
    double curvature = 1.0;        ///< distance exponent (2 = quadratic bowl)
    double plateau_radius = 0.0;   ///< flat region around the optimum
    std::vector<double> optimum;   ///< per-dimension optimum; empty = untunable
    std::int64_t lo = 0;           ///< parameter range (each dimension)
    std::int64_t hi = 100;
    double size_exponent = 1.0;    ///< how cost scales with the input-size factor
    double spike_prob = 0.0;       ///< chance a sample lands in the heavy tail
    double spike_scale = 1.0;      ///< tail multiplier applied to such samples

    /// Untunable algorithm with a constant surface (a fixed matcher).
    static AlgorithmModel constant(std::string name, double base);

    /// Convex bowl over `optimum.size()` ratio parameters — the landscape
    /// Nelder-Mead is built for.
    static AlgorithmModel bowl(std::string name, double base,
                               std::vector<double> optimum, double slope,
                               double curvature = 1.0);

    /// Bowl with a flat floor of the given radius: inside the plateau every
    /// configuration is equally good, which starves gradient information.
    static AlgorithmModel plateau(std::string name, double base,
                                  std::vector<double> optimum, double radius,
                                  double slope);

    /// Constant surface with a heavy tail: each sample is `base`, inflated
    /// by `spike_scale` with probability `spike_prob`.  The mean is
    /// base·(1 + prob·(scale−1)) but high quantiles see the full spike —
    /// the surface family where mean-time and tail objectives disagree.
    static AlgorithmModel heavy_tail(std::string name, double base,
                                     double spike_prob, double spike_scale);
};

/// Measurement noise applied on top of the surface.  Seeded from the
/// scenario RNG, so two runs with the same seed observe identical noise.
struct NoiseModel {
    enum class Kind { None, Relative, Additive };
    Kind kind = Kind::None;
    double magnitude = 0.0;  ///< ±fraction (Relative) or ±ms (Additive)
};

/// One entry of the phase-change schedule: from `at_iteration` on, algorithm
/// a's surface floor becomes bases[a] (+ ramps[a] per iteration since the
/// shift).  Swapping which base is smallest swaps the best algorithm mid-run.
struct PhaseShift {
    std::size_t at_iteration = 0;
    std::vector<double> bases;  ///< one per algorithm
    std::vector<double> ramps;  ///< one per algorithm; empty = all zero
};

/// One entry of the input-size sweep: from `at_iteration` on, the simulated
/// input is `scale`× the phase-0 size.  Algorithms feel it through their
/// size_exponent, so complexity classes cross over as the input grows.
struct SizeStep {
    std::size_t at_iteration = 0;
    double scale = 1.0;
};

/// A complete, self-contained description of one simulated tuning problem:
/// the algorithm set with their cost surfaces, the noise model, the
/// phase-change schedule and the input-size sweep.  Built fluently:
///
///     auto spec = ScenarioSpec::named("drift")
///                     .algorithm(AlgorithmModel::constant("incumbent", 10))
///                     .algorithm(AlgorithmModel::constant("latebloomer", 30))
///                     .shift(200, {30.0, 4.0}, {0.02, 0.0})
///                     .horizon(450);
///
/// A spec is pure data: evaluating it never touches a wall clock, and all
/// randomness comes from the Rng the caller passes in.
class ScenarioSpec {
public:
    static ScenarioSpec named(std::string name);

    ScenarioSpec& algorithm(AlgorithmModel model);
    ScenarioSpec& relative_noise(double magnitude);
    ScenarioSpec& additive_noise(double magnitude);
    ScenarioSpec& shift(std::size_t at_iteration, std::vector<double> bases,
                        std::vector<double> ramps = {});
    ScenarioSpec& input_scale(std::size_t at_iteration, double scale);
    ScenarioSpec& horizon(std::size_t iterations);

    /// Per-operation deadline (cost units; 0 = none) carried into every
    /// CostBatch evaluate_batch() produces.
    ScenarioSpec& deadline(double cost_units);

    /// Operations (blocks) measured per trial; evaluate_batch() draws this
    /// many samples of the surface per iteration.  Default 1.
    ScenarioSpec& blocks(std::size_t per_trial);

    /// Throws std::invalid_argument when the spec is inconsistent (no
    /// algorithms, non-positive bases, shift shape mismatches, unsorted
    /// schedules, optima outside [lo, hi], noise that could reach zero).
    void validate() const;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] std::size_t algorithm_count() const noexcept { return algorithms_.size(); }
    [[nodiscard]] const AlgorithmModel& model(std::size_t a) const {
        return algorithms_.at(a);
    }
    [[nodiscard]] std::size_t iterations() const noexcept { return iterations_; }
    [[nodiscard]] const NoiseModel& noise() const noexcept { return noise_; }
    [[nodiscard]] double deadline_cost() const noexcept { return deadline_; }
    [[nodiscard]] std::size_t blocks_per_trial() const noexcept { return blocks_; }

    /// Surface floor of algorithm `a` at iteration `i` (phase schedule applied).
    [[nodiscard]] double base_at(std::size_t a, std::size_t i) const;

    /// Input-size factor at iteration `i` (1.0 before the first step).
    [[nodiscard]] double scale_at(std::size_t i) const;

    /// The workload descriptor a context-aware strategy sees at iteration
    /// `i` — what an application would compute from the actual input before
    /// asking the tuner.  Currently the input-size factor; scenarios where
    /// size never varies still expose it (constant features carry no
    /// signal, which is exactly the honest baseline for those scenarios).
    [[nodiscard]] FeatureVector features_at(std::size_t i) const;

    /// Cost of algorithm `a` tuned perfectly to its optimum, at iteration `i`
    /// — the floor the tuner is converging toward, noise-free.
    [[nodiscard]] double ideal_cost(std::size_t a, std::size_t i) const;

    /// Algorithm with the lowest ideal cost at iteration `i`: the choice a
    /// perfect phase-two strategy converges to.
    [[nodiscard]] std::size_t best_algorithm(std::size_t i) const;

    /// The measurement function: surface + schedules + seeded noise.  The
    /// result is clamped to a small positive floor — strategies require
    /// cost > 0.  Noise draws from `rng` only when the noise model is active,
    /// so noise-free scenarios consume no random numbers here.
    [[nodiscard]] Cost evaluate(const Trial& trial, std::size_t iteration,
                                Rng& rng) const;

    /// Batch form: blocks_per_trial() independent samples of the surface
    /// (each with its own noise and heavy-tail draw) plus the deadline —
    /// what a streaming workload hands to a CostObjective.
    [[nodiscard]] CostBatch evaluate_batch(const Trial& trial,
                                           std::size_t iteration,
                                           Rng& rng) const;

    /// Materializes the tuner-side view: one TunableAlgorithm per model, with
    /// a ratio parameter per optimum dimension (Nelder-Mead attached) or an
    /// untunable fixed configuration when the model has no dimensions.
    [[nodiscard]] std::vector<TunableAlgorithm> make_algorithms() const;

private:
    std::string name_;
    std::vector<AlgorithmModel> algorithms_;
    NoiseModel noise_;
    std::vector<PhaseShift> shifts_;  ///< sorted by at_iteration
    std::vector<SizeStep> sizes_;     ///< sorted by at_iteration
    std::size_t iterations_ = 400;
    double deadline_ = 0.0;
    std::size_t blocks_ = 1;
};

/// Named scenario library used by tests/sim, tools/atk_sim and check.sh:
///   static    the paper's static four-algorithm setting (bowls + noise)
///   drift     phase change swaps the best algorithm mid-run
///   plateau   flat-floor surfaces that starve gradient information
///   sweep     input-size sweep crossing two complexity classes over
///   deadline  heavy-tailed latencies under a per-block SLO: mean-time and
///             tail objectives pick different algorithms
[[nodiscard]] std::vector<std::string> scenario_names();

/// Throws std::invalid_argument for an unknown name.
[[nodiscard]] ScenarioSpec make_scenario(const std::string& name);

} // namespace atk::sim

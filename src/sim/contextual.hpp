#pragma once

#include <cstddef>
#include <vector>

#include "core/feature_model.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace atk::sim {

/// The three-way-race contenders (shared by tests/sim/contextual_race_test
/// and tools/atk_sim), built with one configuration so the gated numbers
/// and the CLI's numbers are the same experiment.

/// Online contextual: discounted LinUCB over the scenario library's single
/// size feature.  γ < 1 keeps the bandit honest under drift (stale arms
/// decay back to "unknown" and are re-explored).
[[nodiscard]] StrategyFactory contextual_strategy(std::size_t dimension = 1,
                                                  double alpha = 1.0,
                                                  double epsilon = 0.05,
                                                  double gamma = 0.99);

/// Per-feature-bucket ε-Greedy: independent best-ever tables per input-size
/// regime, split at the given size-feature edges.
[[nodiscard]] StrategyFactory bucketed_strategy(std::vector<double> edges,
                                                double epsilon = 0.05);

/// Offline training à la Nitro against the scenario's own noise-free cost
/// surfaces: `points` workloads sampled evenly across the horizon, each
/// labeled with its ideal best algorithm.  This is the strongest version of
/// the offline baseline — its training distribution IS the test
/// distribution.
[[nodiscard]] FeatureModel train_scenario_feature_model(const ScenarioSpec& spec,
                                                        std::size_t points = 24,
                                                        std::size_t k = 3);

/// The offline FeatureModel baseline as a race contender.
[[nodiscard]] StrategyFactory feature_model_strategy(const ScenarioSpec& spec);

/// Mean observed cost per iteration of one run — the per-seed statistic the
/// race's Wilcoxon gates compare.
[[nodiscard]] double mean_trace_cost(const SimResult& run);

/// Fraction of iterations in [begin, end) whose choice was the scenario's
/// ideal best algorithm *at that iteration* — unlike selection_share this
/// follows the moving target, so it is the right leader-share metric for
/// sweep/mixed scenarios where the best algorithm changes mid-run.
[[nodiscard]] double best_tracking_share(const ScenarioSpec& spec,
                                         const SimResult& run,
                                         std::size_t begin, std::size_t end);

} // namespace atk::sim

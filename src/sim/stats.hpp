#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/trace.hpp"
#include "sim/simulator.hpp"

namespace atk::sim {

/// Rolling selection share: share[i] = fraction of the `window` iterations
/// ending at i (inclusive) that chose `algorithm`.  The first window-1
/// entries use the shorter prefix window.  This is the curve behind the
/// paper's Figure 4/8 histograms, unrolled over time.
[[nodiscard]] std::vector<double> selection_share_curve(const TuningTrace& trace,
                                                        std::size_t algorithm,
                                                        std::size_t window);

/// Fraction of iterations in [begin, end) that chose `algorithm`.
/// Throws std::invalid_argument on an empty or out-of-range span.
[[nodiscard]] double selection_share(const TuningTrace& trace,
                                     std::size_t algorithm, std::size_t begin,
                                     std::size_t end);

/// Most frequently chosen algorithm in [begin, end) (lowest index wins ties).
[[nodiscard]] std::size_t modal_choice(const TuningTrace& trace,
                                       std::size_t algorithms, std::size_t begin,
                                       std::size_t end);

/// Convergence-iteration extraction: the first iteration i ≥ window-1 whose
/// trailing `window` selection share of `algorithm` reaches `share`;
/// nullopt when the trace never concentrates that far (the weighted
/// strategies' deliberate spreading shows up exactly here).
[[nodiscard]] std::optional<std::size_t> convergence_iteration(
    const TuningTrace& trace, std::size_t algorithm, double share,
    std::size_t window);

/// Per-seed convergence iterations of an ensemble, with never-converged runs
/// mapped to `horizon` so the values stay comparable (and Wilcoxon-rankable)
/// across strategies that do and don't concentrate.
[[nodiscard]] std::vector<double> ensemble_convergence(
    std::span<const SimResult> ensemble, std::size_t algorithm, double share,
    std::size_t window, std::size_t horizon);

/// Wilcoxon signed-rank test over paired per-seed statistics (normal
/// approximation with average ranks, tie correction and continuity
/// correction) — the seed-ensemble comparison the convergence gates use.
/// Zero differences are dropped per standard practice.
struct WilcoxonResult {
    std::size_t n = 0;         ///< pairs with a non-zero difference
    double w_plus = 0.0;       ///< rank sum of pairs where a > b
    double w_minus = 0.0;      ///< rank sum of pairs where a < b
    double z = 0.0;            ///< standardized statistic (0 when n or var is 0)
    double p_a_less_b = 0.5;   ///< one-sided P under H0 against "a shifted below b"
};

/// Throws std::invalid_argument when the spans' lengths differ.
[[nodiscard]] WilcoxonResult wilcoxon_signed_rank(std::span<const double> a,
                                                  std::span<const double> b);

} // namespace atk::sim

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/service.hpp"
#include "sim/scenario.hpp"
#include "sim/simulator.hpp"

namespace atk::sim {

/// What can go wrong between a client measuring and the aggregator learning
/// from it.  Each knob models a real runtime pathology: lossy transports
/// drop, retries duplicate, concurrent clients reorder, slow clients delay,
/// and process restarts snapshot + restore mid-stream.  All randomness is
/// seeded, so a failing chaos run replays exactly.
struct FaultPlan {
    double drop_probability = 0.0;      ///< measurement vanishes before report()
    double duplicate_probability = 0.0; ///< measurement delivered twice
    std::size_t reorder_window = 0;     ///< deliver in shuffled batches of N
    std::size_t delay_cycles = 0;       ///< hold each measurement N begin-cycles
    std::size_t snapshot_every = 0;     ///< snapshot→destroy→restore every N cycles
    std::string snapshot_path;          ///< "" = auto temp file
};

/// What a fault-injected run did and how the service came out of it.  The
/// gates assert `weights_healthy` (all strategy weights finite and strictly
/// positive — no NaN poisoning, no exclusion) and that ingestion made
/// progress despite the faults.
struct FaultReport {
    std::size_t cycles = 0;
    std::size_t delivered = 0;           ///< report() calls that reached the service
    std::size_t accepted = 0;            ///< report() calls that returned true
    std::size_t dropped_by_fault = 0;
    std::size_t duplicated = 0;
    std::size_t reordered_batches = 0;
    std::size_t snapshots_taken = 0;
    std::size_t sessions_restored = 0;
    std::size_t tuner_iterations = 0;    ///< session iteration count at the end
    bool has_best = false;
    Cost best_cost = 0.0;
    std::vector<double> final_weights;
    bool weights_healthy = false;
};

/// Drives a real TuningService (background aggregator thread included)
/// against a scenario's cost model while a FaultPlan corrupts the
/// measurement stream.  The service must degrade gracefully: late,
/// duplicated and reordered measurements become stale observations, dropped
/// ones are simply lost samples, and a snapshot/restore mid-scenario resumes
/// with the exact persisted strategy state.
class ServiceSimulator {
public:
    ServiceSimulator(ScenarioSpec spec, std::uint64_t seed,
                     runtime::ServiceOptions options = {});

    /// Runs `cycles` begin→measure→(faulty) report cycles, then drains every
    /// buffered measurement and flushes the service.  Throws only on real
    /// bugs (contract violations, snapshot I/O failure surfaces as a
    /// std::runtime_error); fault-induced degradation is reported, not thrown.
    FaultReport run(const StrategyFactory& make_strategy, const FaultPlan& plan,
                    std::size_t cycles);

    [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }

private:
    ScenarioSpec spec_;
    std::uint64_t seed_;
    runtime::ServiceOptions options_;
};

} // namespace atk::sim

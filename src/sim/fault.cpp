#include "sim/fault.hpp"

#include <cmath>
#include <deque>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <utility>

#include "sim/sim_clock.hpp"

namespace atk::sim {

namespace {

constexpr std::uint64_t kFaultStream = 0x6661756C74ULL;  // "fault"
constexpr std::uint64_t kNoiseStream = 0x6E6F697365ULL;  // "noise"

constexpr const char* kSessionName = "sim";

struct PendingMeasurement {
    runtime::Ticket ticket;
    Cost cost = 0.0;
    std::size_t due_cycle = 0;
};

} // namespace

ServiceSimulator::ServiceSimulator(ScenarioSpec spec, std::uint64_t seed,
                                   runtime::ServiceOptions options)
    : spec_(std::move(spec)), seed_(seed), options_(std::move(options)) {
    spec_.validate();
}

FaultReport ServiceSimulator::run(const StrategyFactory& make_strategy,
                                  const FaultPlan& plan, std::size_t cycles) {
    if (plan.drop_probability < 0.0 || plan.drop_probability > 1.0 ||
        plan.duplicate_probability < 0.0 || plan.duplicate_probability > 1.0)
        throw std::invalid_argument(
            "FaultPlan: probabilities must be within [0, 1]");

    // The factory must be deterministic per session name across service
    // incarnations for snapshots to restore (see runtime::TunerFactory); the
    // captured spec and seed make it so.
    const ScenarioSpec& spec = spec_;
    const std::uint64_t seed = seed_;
    runtime::TunerFactory factory = [&spec, &make_strategy,
                                     seed](const std::string&) {
        return std::make_unique<TwoPhaseTuner>(make_strategy(),
                                               spec.make_algorithms(), seed);
    };

    std::string snapshot_path = plan.snapshot_path;
    if (snapshot_path.empty() && plan.snapshot_every != 0)
        snapshot_path = (std::filesystem::temp_directory_path() /
                         ("atk_sim_fault_" + std::to_string(seed_) + ".state"))
                            .string();

    auto service =
        std::make_unique<runtime::TuningService>(factory, options_);
    Rng faults(seed_ ^ kFaultStream);
    Rng noise(seed_ ^ kNoiseStream);

    FaultReport report;
    report.cycles = cycles;

    std::deque<PendingMeasurement> delayed;   // waiting for their due cycle
    std::vector<PendingMeasurement> reorder;  // batch to shuffle and flush

    const auto deliver = [&](const PendingMeasurement& m) {
        ++report.delivered;
        if (service->report(kSessionName, m.ticket, m.cost)) ++report.accepted;
    };

    const auto flush_reorder = [&] {
        if (reorder.empty()) return;
        faults.shuffle(reorder);
        for (const auto& m : reorder) deliver(m);
        reorder.clear();
        ++report.reordered_batches;
    };

    const auto stage = [&](PendingMeasurement m) {
        if (plan.reorder_window > 0) {
            reorder.push_back(std::move(m));
            if (reorder.size() >= plan.reorder_window) flush_reorder();
        } else {
            deliver(m);
        }
    };

    for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
        // Measurements whose delay has elapsed re-enter the stream first, so
        // they interleave with fresher ones exactly like a slow client's.
        while (!delayed.empty() && delayed.front().due_cycle <= cycle) {
            stage(std::move(delayed.front()));
            delayed.pop_front();
        }

        const runtime::Ticket ticket = service->begin(kSessionName);
        const Cost cost = spec.evaluate(ticket.trial, cycle, noise);

        if (faults.chance(plan.drop_probability)) {
            ++report.dropped_by_fault;
        } else {
            const bool duplicate = faults.chance(plan.duplicate_probability);
            PendingMeasurement m{ticket, cost, cycle + plan.delay_cycles};
            if (plan.delay_cycles > 0) {
                delayed.push_back(m);
                if (duplicate) {
                    delayed.push_back(m);
                    ++report.duplicated;
                }
            } else {
                if (duplicate) {
                    stage(m);
                    ++report.duplicated;
                }
                stage(std::move(m));
            }
        }

        if (plan.snapshot_every != 0 && (cycle + 1) % plan.snapshot_every == 0) {
            // Simulated process restart: persist, tear the service down
            // (stopping its aggregator), bring a fresh one up, restore.
            // Measurements still buffered in the fault pipeline survive the
            // restart and land as cross-incarnation late reports.
            if (!service->snapshot_to(snapshot_path))
                throw std::runtime_error("ServiceSimulator: snapshot_to failed at '" +
                                         snapshot_path + "'");
            ++report.snapshots_taken;
            service = std::make_unique<runtime::TuningService>(factory, options_);
            report.sessions_restored += service->restore_from(snapshot_path);
        }
    }

    // Drain the fault pipeline: everything still in flight is delivered as a
    // late report before the final health check.
    while (!delayed.empty()) {
        stage(std::move(delayed.front()));
        delayed.pop_front();
    }
    flush_reorder();
    service->flush();

    const auto session = service->find(kSessionName);
    if (session != nullptr) {
        report.tuner_iterations = session->iterations();
        report.final_weights = session->strategy_weights();
        report.has_best = session->has_best();
        if (report.has_best) report.best_cost = session->best_cost();
    }
    report.weights_healthy = !report.final_weights.empty();
    for (const double w : report.final_weights)
        if (!std::isfinite(w) || w <= 0.0) report.weights_healthy = false;

    service->stop();
    if (!snapshot_path.empty()) {
        std::error_code ec;
        std::filesystem::remove(snapshot_path, ec);
    }
    return report;
}

} // namespace atk::sim

#include "sim/simulator.hpp"

#include <algorithm>
#include <limits>

#include "obs/audit.hpp"
#include "sim/sim_clock.hpp"
#include "support/contracts.hpp"

namespace atk::sim {

namespace {

/// Seed-stream separation: the tuner, the noise model and the clock jitter
/// each get an independent stream derived from the run seed, so adding noise
/// draws never perturbs the tuner's selection stream.
constexpr std::uint64_t kNoiseStream = 0x6E6F697365ULL;  // "noise"
constexpr std::uint64_t kClockStream = 0x636C6F636BULL;  // "clock"

} // namespace

SimResult simulate(const ScenarioSpec& spec, const StrategyFactory& make_strategy,
                   std::uint64_t seed, SimOptions options) {
    spec.validate();
    const std::size_t iterations =
        options.iterations != 0 ? options.iterations : spec.iterations();

    TwoPhaseTuner tuner(make_strategy(), spec.make_algorithms(), seed,
                        options.objective ? options.objective() : nullptr);
    Rng noise(seed ^ kNoiseStream);
    SimClock clock(seed ^ kClockStream, options.clock_jitter);

    SimResult result;
    result.algorithms = spec.algorithm_count();
    result.min_weight = std::numeric_limits<double>::infinity();
    result.min_probability = std::numeric_limits<double>::infinity();

    std::unique_ptr<obs::DecisionAuditTrail> trail;
    if (options.capture_audit)
        trail = std::make_unique<obs::DecisionAuditTrail>(iterations);

    tuner.set_decision_hook([&](const DecisionEvent& event) {
        for (const double w : event.weights)
            result.min_weight = std::min(result.min_weight, w);
        const auto probabilities = obs::selection_probabilities(event.weights);
        for (const double p : probabilities)
            result.min_probability = std::min(result.min_probability, p);
        if (trail != nullptr) {
            obs::Decision decision;
            decision.session = spec.name();
            decision.iteration = event.iteration;
            decision.algorithm = event.algorithm;
            decision.algorithm_name = event.algorithm_name;
            decision.explored = event.explored;
            decision.step_kind = event.step_kind;
            decision.objective = event.objective;
            decision.weights = event.weights;
            decision.probabilities = probabilities;
            decision.config = event.config.values();
            decision.features = event.features;
            decision.scores = event.scores;
            trail->record(std::move(decision));
        }
    });

    const bool batched = spec.blocks_per_trial() > 1 || spec.deadline_cost() > 0.0;
    result.deadline = spec.deadline_cost();
    if (batched)
        result.block_costs.reserve(iterations * spec.blocks_per_trial());
    for (std::size_t i = 0; i < iterations; ++i) {
        // Every run is feature-driven; context-blind strategies ignore the
        // vector (and draw identical RNG streams), contextual ones see the
        // same workload descriptor the cost surface is computed from.
        const Trial trial = tuner.next(spec.features_at(i));
        if (batched) {
            // Streaming path: one trial = blocks_per_trial() blocks, scored
            // through the tuner's CostObjective; simulated time advances by
            // the whole batch.
            const CostBatch batch = spec.evaluate_batch(trial, i, noise);
            double total = 0.0;
            for (const double block : batch.samples) {
                total += block;
                result.block_costs.push_back(block);
                if (batch.deadline > 0.0 && block > batch.deadline)
                    ++result.deadline_misses;
            }
            clock.tick(total);
            tuner.report(trial, batch);
        } else {
            const Cost cost = spec.evaluate(trial, i, noise);
            clock.tick(cost);
            tuner.report(trial, cost);
        }
    }

    ATK_ASSERT(result.min_weight > 0.0,
               "a strategy handed out a non-positive weight during simulation");

    result.trace = tuner.trace();
    result.final_weights = tuner.strategy().weights();
    result.sim_time = clock.now();
    result.best_algorithm = tuner.best_trial().algorithm;
    result.best_cost = tuner.best_cost();
    if (trail != nullptr) result.audit_jsonl = trail->to_jsonl();
    return result;
}

std::vector<std::uint64_t> ensemble_seeds(std::uint64_t base_seed,
                                          std::size_t count) {
    std::vector<std::uint64_t> seeds(count);
    for (std::size_t s = 0; s < count; ++s) seeds[s] = base_seed + s;
    return seeds;
}

std::vector<SimResult> simulate_ensemble(const ScenarioSpec& spec,
                                         const StrategyFactory& make_strategy,
                                         std::uint64_t base_seed,
                                         std::size_t seed_count,
                                         SimOptions options) {
    std::vector<SimResult> results;
    results.reserve(seed_count);
    for (const std::uint64_t seed : ensemble_seeds(base_seed, seed_count))
        results.push_back(simulate(spec, make_strategy, seed, options));
    return results;
}

} // namespace atk::sim

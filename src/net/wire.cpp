#include "net/wire.hpp"

#include <bit>
#include <cstring>

namespace atk::net {

namespace {

template <typename T>
void append_le(std::string& out, T value) {
    char bytes[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i)
        bytes[i] = static_cast<char>((value >> (8 * i)) & 0xFF);
    out.append(bytes, sizeof(T));
}

template <typename T>
T read_le(const char* data) {
    T value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        value |= static_cast<T>(static_cast<unsigned char>(data[i])) << (8 * i);
    return value;
}

} // namespace

void WireWriter::put_u8(std::uint8_t value) { out_.push_back(static_cast<char>(value)); }
void WireWriter::put_u16(std::uint16_t value) { append_le(out_, value); }
void WireWriter::put_u32(std::uint32_t value) { append_le(out_, value); }
void WireWriter::put_u64(std::uint64_t value) { append_le(out_, value); }
void WireWriter::put_i64(std::int64_t value) {
    append_le(out_, static_cast<std::uint64_t>(value));
}
void WireWriter::put_f64(double value) { append_le(out_, std::bit_cast<std::uint64_t>(value)); }

void WireWriter::put_str(const std::string& value) {
    if (value.size() > 0xFFFFFFFFu)
        throw std::invalid_argument("WireWriter: string exceeds u32 length");
    put_u32(static_cast<std::uint32_t>(value.size()));
    out_.append(value);
}

const char* WireReader::require(std::size_t bytes) {
    if (size_ - pos_ < bytes)
        throw WireError("wire: payload truncated (" + std::to_string(bytes) +
                        " bytes needed, " + std::to_string(size_ - pos_) + " left)");
    const char* at = data_ + pos_;
    pos_ += bytes;
    return at;
}

std::uint8_t WireReader::get_u8() {
    return static_cast<std::uint8_t>(*require(1));
}
std::uint16_t WireReader::get_u16() { return read_le<std::uint16_t>(require(2)); }
std::uint32_t WireReader::get_u32() { return read_le<std::uint32_t>(require(4)); }
std::uint64_t WireReader::get_u64() { return read_le<std::uint64_t>(require(8)); }
std::int64_t WireReader::get_i64() {
    return static_cast<std::int64_t>(read_le<std::uint64_t>(require(8)));
}
double WireReader::get_f64() {
    return std::bit_cast<double>(read_le<std::uint64_t>(require(8)));
}

std::string WireReader::get_str() {
    const std::uint32_t length = get_u32();
    if (size_ - pos_ < length)
        throw WireError("wire: string length " + std::to_string(length) +
                        " overruns payload (" + std::to_string(size_ - pos_) +
                        " bytes left)");
    const char* at = require(length);
    return std::string(at, length);
}

std::size_t WireReader::get_count(std::size_t min_element_bytes) {
    const std::uint32_t count = get_u32();
    if (min_element_bytes != 0 && count > remaining() / min_element_bytes)
        throw WireError("wire: element count " + std::to_string(count) +
                        " impossible for " + std::to_string(remaining()) +
                        " remaining bytes");
    return count;
}

} // namespace atk::net

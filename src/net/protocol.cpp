#include "net/protocol.hpp"

#include <utility>

namespace atk::net {

namespace {

bool known_type(std::uint8_t byte) {
    return byte >= static_cast<std::uint8_t>(FrameType::Hello) &&
           byte <= static_cast<std::uint8_t>(FrameType::PeerStatsOk);
}

std::string finish_frame(FrameType type, std::uint8_t flags, WireWriter payload) {
    Frame frame{type, flags, payload.take()};
    return encode_frame(frame);
}

/// Every decode_* must consume the payload exactly: trailing bytes mean the
/// peer and we disagree about the layout, which is as fatal as truncation.
void expect_consumed(const WireReader& in, FrameType type) {
    if (!in.at_end())
        throw WireError(std::string("wire: trailing bytes after ") +
                        frame_type_name(type) + " payload");
}

void expect_type(const Frame& frame, FrameType type) {
    if (frame.type != type)
        throw WireError(std::string("wire: expected ") + frame_type_name(type) +
                        " frame, got " + frame_type_name(frame.type));
}

void put_config(WireWriter& out, const Configuration& config) {
    if (config.size() > 0xFFFFFFFFu)
        throw std::invalid_argument("wire: configuration exceeds u32 dimension");
    out.put_u32(static_cast<std::uint32_t>(config.size()));
    for (std::size_t i = 0; i < config.size(); ++i) out.put_i64(config[i]);
}

Configuration get_config(WireReader& in) {
    const std::size_t dims = in.get_count(/*min_element_bytes=*/8);
    std::vector<std::int64_t> values;
    values.reserve(dims);
    for (std::size_t i = 0; i < dims; ++i) values.push_back(in.get_i64());
    return Configuration{std::move(values)};
}

/// v2 trace-context payload extension: appended *after* the base payload so
/// a v1 decoder (which never sees the flag) parses the same bytes
/// unchanged.  Returns the flag bit to OR into the frame header, 0 when the
/// context is invalid (frame encodes byte-identically to v1).
std::uint8_t put_trace(WireWriter& out, const obs::TraceContext& trace) {
    if (!trace.valid()) return 0;
    out.put_u64(trace.trace_id);
    out.put_u64(trace.span_id);
    return kFlagTraceContext;
}

/// Reads the extension iff the frame's header carried kFlagTraceContext; a
/// flagged frame whose payload is too short for the 16 extension bytes is a
/// WireError (truncated extension), same as any other short payload.
obs::TraceContext get_trace(WireReader& in, const Frame& frame) {
    obs::TraceContext trace;
    if ((frame.flags & kFlagTraceContext) != 0) {
        trace.trace_id = in.get_u64();
        trace.span_id = in.get_u64();
    }
    return trace;
}

/// v3 feature-vector payload extension (u32 count + count × f64), appended
/// after the base payload and before the trace extension.  Returns the flag
/// bit to OR into the frame header; an empty vector encodes nothing (frame
/// is byte-identical to v2).
std::uint8_t put_features(WireWriter& out, const FeatureVector& features) {
    if (features.empty()) return 0;
    if (features.size() > 0xFFFFFFFFu)
        throw std::invalid_argument("wire: feature vector exceeds u32 count");
    out.put_u32(static_cast<std::uint32_t>(features.size()));
    for (const double f : features) out.put_f64(f);
    return kFlagFeatureVector;
}

/// Reads the extension iff the frame's header carried kFlagFeatureVector; a
/// hostile count is bounded by get_count's remaining-bytes check, so the
/// allocation can never exceed the frame payload itself.
FeatureVector get_features(WireReader& in, const Frame& frame) {
    FeatureVector features;
    if ((frame.flags & kFlagFeatureVector) != 0) {
        const std::size_t count = in.get_count(/*min_element_bytes=*/8);
        features.reserve(count);
        for (std::size_t i = 0; i < count; ++i) features.push_back(in.get_f64());
    }
    return features;
}

} // namespace

const char* frame_type_name(FrameType type) noexcept {
    switch (type) {
        case FrameType::Hello: return "Hello";
        case FrameType::HelloOk: return "HelloOk";
        case FrameType::Recommend: return "Recommend";
        case FrameType::Recommendation: return "Recommendation";
        case FrameType::Report: return "Report";
        case FrameType::ReportOk: return "ReportOk";
        case FrameType::Snapshot: return "Snapshot";
        case FrameType::SnapshotOk: return "SnapshotOk";
        case FrameType::Restore: return "Restore";
        case FrameType::RestoreOk: return "RestoreOk";
        case FrameType::Stats: return "Stats";
        case FrameType::StatsOk: return "StatsOk";
        case FrameType::Error: return "Error";
        case FrameType::Health: return "Health";
        case FrameType::HealthOk: return "HealthOk";
        case FrameType::PeerHello: return "PeerHello";
        case FrameType::PeerHelloOk: return "PeerHelloOk";
        case FrameType::SnapshotPush: return "SnapshotPush";
        case FrameType::SnapshotPushOk: return "SnapshotPushOk";
        case FrameType::SnapshotPull: return "SnapshotPull";
        case FrameType::SnapshotPullOk: return "SnapshotPullOk";
        case FrameType::PeerStats: return "PeerStats";
        case FrameType::PeerStatsOk: return "PeerStatsOk";
    }
    return "Unknown";
}

std::string encode_frame(const Frame& frame) {
    if (frame.payload.size() > 0xFFFFFFFFu)
        throw std::invalid_argument("wire: frame payload exceeds u32 length");
    WireWriter header;
    header.put_u32(static_cast<std::uint32_t>(frame.payload.size()));
    header.put_u8(static_cast<std::uint8_t>(frame.type));
    header.put_u8(frame.flags);
    header.put_u16(0);  // reserved, must be zero
    std::string out = header.take();
    out += frame.payload;
    return out;
}

// ---------------------------------------------------------------------------
// FrameDecoder
// ---------------------------------------------------------------------------

FrameDecoder::FrameDecoder(std::size_t max_payload) : max_payload_(max_payload) {}

bool FrameDecoder::parse_header() {
    WireReader in(buffer_.data(), kFrameHeaderBytes);
    pending_length_ = in.get_u32();
    const std::uint8_t type_byte = in.get_u8();
    pending_flags_ = in.get_u8();
    const std::uint16_t reserved = in.get_u16();
    if (pending_length_ > max_payload_) {
        error_ = "frame length " + std::to_string(pending_length_) +
                 " exceeds the payload cap of " + std::to_string(max_payload_);
        return false;
    }
    if (!known_type(type_byte)) {
        error_ = "unknown frame type " + std::to_string(type_byte);
        return false;
    }
    if ((pending_flags_ &
         ~(kFlagAckRequested | kFlagTraceContext | kFlagFeatureVector)) != 0) {
        error_ = "unknown frame flags " + std::to_string(pending_flags_);
        return false;
    }
    if (reserved != 0) {
        error_ = "nonzero reserved header field";
        return false;
    }
    pending_type_ = static_cast<FrameType>(type_byte);
    return true;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
    if (error()) return;  // poisoned stream: no frame boundary exists anymore
    std::size_t at = 0;
    while (at < size) {
        if (!have_header_) {
            const std::size_t want = kFrameHeaderBytes - buffer_.size();
            const std::size_t take = std::min(want, size - at);
            buffer_.append(data + at, take);
            at += take;
            if (buffer_.size() < kFrameHeaderBytes) return;
            if (!parse_header()) {
                buffer_.clear();
                return;
            }
            have_header_ = true;
            buffer_.clear();
            // The declared length was validated against the cap above, so
            // this is the only payload-sized allocation the peer can cause.
            buffer_.reserve(pending_length_);
        }
        const std::size_t want = pending_length_ - buffer_.size();
        const std::size_t take = std::min(want, size - at);
        buffer_.append(data + at, take);
        at += take;
        if (buffer_.size() < pending_length_) return;
        ready_.push_back(Frame{pending_type_, pending_flags_, std::move(buffer_)});
        buffer_ = {};
        have_header_ = false;
        pending_length_ = 0;
    }
}

std::optional<Frame> FrameDecoder::next() {
    if (ready_at_ >= ready_.size()) {
        ready_.clear();
        ready_at_ = 0;
        return std::nullopt;
    }
    Frame frame = std::move(ready_[ready_at_++]);
    if (ready_at_ >= ready_.size()) {
        ready_.clear();
        ready_at_ = 0;
    }
    return frame;
}

// ---------------------------------------------------------------------------
// Message encode/decode
// ---------------------------------------------------------------------------

std::string encode_hello(const HelloMsg& msg) {
    WireWriter out;
    out.put_u32(msg.version);
    out.put_str(msg.client_name);
    return finish_frame(FrameType::Hello, 0, std::move(out));
}

HelloMsg decode_hello(const Frame& frame) {
    expect_type(frame, FrameType::Hello);
    WireReader in(frame.payload);
    HelloMsg msg;
    msg.version = in.get_u32();
    msg.client_name = in.get_str();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_hello_ok(const HelloOkMsg& msg) {
    WireWriter out;
    out.put_u32(msg.version);
    out.put_str(msg.server_name);
    return finish_frame(FrameType::HelloOk, 0, std::move(out));
}

HelloOkMsg decode_hello_ok(const Frame& frame) {
    expect_type(frame, FrameType::HelloOk);
    WireReader in(frame.payload);
    HelloOkMsg msg;
    msg.version = in.get_u32();
    msg.server_name = in.get_str();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_recommend(const RecommendMsg& msg) {
    WireWriter out;
    out.put_str(msg.session);
    std::uint8_t flags = put_features(out, msg.features);
    flags |= put_trace(out, msg.trace);
    return finish_frame(FrameType::Recommend, flags, std::move(out));
}

RecommendMsg decode_recommend(const Frame& frame) {
    expect_type(frame, FrameType::Recommend);
    WireReader in(frame.payload);
    RecommendMsg msg;
    msg.session = in.get_str();
    msg.features = get_features(in, frame);
    msg.trace = get_trace(in, frame);
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_recommendation(const RecommendationMsg& msg) {
    WireWriter out;
    out.put_str(msg.session);
    out.put_u64(msg.ticket.sequence);
    if (msg.ticket.trial.algorithm > 0xFFFFFFFFu)
        throw std::invalid_argument("wire: algorithm index exceeds u32");
    out.put_u32(static_cast<std::uint32_t>(msg.ticket.trial.algorithm));
    put_config(out, msg.ticket.trial.config);
    return finish_frame(FrameType::Recommendation, 0, std::move(out));
}

RecommendationMsg decode_recommendation(const Frame& frame) {
    expect_type(frame, FrameType::Recommendation);
    WireReader in(frame.payload);
    RecommendationMsg msg;
    msg.session = in.get_str();
    msg.ticket.sequence = in.get_u64();
    msg.ticket.trial.algorithm = in.get_u32();
    msg.ticket.trial.config = get_config(in);
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_report(const ReportMsg& msg, bool ack_requested) {
    WireWriter out;
    out.put_str(msg.session);
    if (msg.batch.size() > 0xFFFFFFFFu)
        throw std::invalid_argument("wire: report batch exceeds u32 count");
    out.put_u32(static_cast<std::uint32_t>(msg.batch.size()));
    for (const runtime::BatchedMeasurement& m : msg.batch) {
        out.put_u64(m.ticket.sequence);
        if (m.ticket.trial.algorithm > 0xFFFFFFFFu)
            throw std::invalid_argument("wire: algorithm index exceeds u32");
        out.put_u32(static_cast<std::uint32_t>(m.ticket.trial.algorithm));
        put_config(out, m.ticket.trial.config);
        out.put_f64(m.cost);
    }
    std::uint8_t flags = ack_requested ? kFlagAckRequested : 0;
    flags |= put_features(out, msg.features);
    flags |= put_trace(out, msg.trace);
    return finish_frame(FrameType::Report, flags, std::move(out));
}

ReportMsg decode_report(const Frame& frame) {
    expect_type(frame, FrameType::Report);
    WireReader in(frame.payload);
    ReportMsg msg;
    msg.session = in.get_str();
    // seq(8) + alg(4) + config count(4) + cost(8) is the smallest entry.
    const std::size_t count = in.get_count(/*min_element_bytes=*/24);
    msg.batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        runtime::BatchedMeasurement m;
        m.ticket.sequence = in.get_u64();
        m.ticket.trial.algorithm = in.get_u32();
        m.ticket.trial.config = get_config(in);
        m.cost = in.get_f64();
        msg.batch.push_back(std::move(m));
    }
    msg.features = get_features(in, frame);
    msg.trace = get_trace(in, frame);
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_report_ok(const ReportOkMsg& msg) {
    WireWriter out;
    out.put_u32(msg.accepted);
    out.put_u32(msg.dropped);
    return finish_frame(FrameType::ReportOk, 0, std::move(out));
}

ReportOkMsg decode_report_ok(const Frame& frame) {
    expect_type(frame, FrameType::ReportOk);
    WireReader in(frame.payload);
    ReportOkMsg msg;
    msg.accepted = in.get_u32();
    msg.dropped = in.get_u32();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_snapshot_request() {
    return encode_frame(Frame{FrameType::Snapshot, 0, {}});
}

std::string encode_snapshot_ok(const SnapshotOkMsg& msg) {
    WireWriter out;
    out.put_str(msg.payload);
    return finish_frame(FrameType::SnapshotOk, 0, std::move(out));
}

SnapshotOkMsg decode_snapshot_ok(const Frame& frame) {
    expect_type(frame, FrameType::SnapshotOk);
    WireReader in(frame.payload);
    SnapshotOkMsg msg;
    msg.payload = in.get_str();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_restore(const RestoreMsg& msg) {
    WireWriter out;
    out.put_str(msg.payload);
    return finish_frame(FrameType::Restore, 0, std::move(out));
}

RestoreMsg decode_restore(const Frame& frame) {
    expect_type(frame, FrameType::Restore);
    WireReader in(frame.payload);
    RestoreMsg msg;
    msg.payload = in.get_str();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_restore_ok(const RestoreOkMsg& msg) {
    WireWriter out;
    out.put_u64(msg.sessions_restored);
    return finish_frame(FrameType::RestoreOk, 0, std::move(out));
}

RestoreOkMsg decode_restore_ok(const Frame& frame) {
    expect_type(frame, FrameType::RestoreOk);
    WireReader in(frame.payload);
    RestoreOkMsg msg;
    msg.sessions_restored = in.get_u64();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_stats_request() {
    return encode_frame(Frame{FrameType::Stats, 0, {}});
}

std::string encode_stats_ok(const StatsOkMsg& msg, std::uint32_t version) {
    WireWriter out;
    const runtime::ServiceStats& s = msg.stats;
    out.put_u64(s.sessions);
    out.put_u64(s.queue_depth);
    out.put_u64(s.queue_capacity);
    out.put_u64(s.reports_enqueued);
    out.put_u64(s.reports_dropped);
    out.put_u64(s.reports_orphaned);
    out.put_u64(s.reports_fresh);
    out.put_u64(s.reports_stale);
    out.put_u64(s.installs_applied);
    out.put_u64(s.installs_rejected);
    out.put_u64(s.snapshots_restored);
    if (version >= 4) {
        // v4 appends the eviction/quota counters; a ≤v3 connection gets the
        // 11-scalar layout its decoder expects, byte-identical to a v3 build.
        out.put_u64(s.sessions_evicted);
        out.put_u64(s.sessions_rehydrated);
        out.put_u64(s.quota_rejected);
        out.put_u64(s.evicted_held);
    }
    return finish_frame(FrameType::StatsOk, 0, std::move(out));
}

StatsOkMsg decode_stats_ok(const Frame& frame) {
    expect_type(frame, FrameType::StatsOk);
    WireReader in(frame.payload);
    StatsOkMsg msg;
    runtime::ServiceStats& s = msg.stats;
    s.sessions = static_cast<std::size_t>(in.get_u64());
    s.queue_depth = static_cast<std::size_t>(in.get_u64());
    s.queue_capacity = static_cast<std::size_t>(in.get_u64());
    s.reports_enqueued = in.get_u64();
    s.reports_dropped = in.get_u64();
    s.reports_orphaned = in.get_u64();
    s.reports_fresh = in.get_u64();
    s.reports_stale = in.get_u64();
    s.installs_applied = in.get_u64();
    s.installs_rejected = in.get_u64();
    s.snapshots_restored = in.get_u64();
    if (!in.at_end()) {
        // v4 layout: four appended counters.  Anything else (one trailing
        // scalar, three, garbage) still fails expect_consumed below.
        s.sessions_evicted = in.get_u64();
        s.sessions_rehydrated = in.get_u64();
        s.quota_rejected = in.get_u64();
        s.evicted_held = in.get_u64();
    }
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_error(const ErrorMsg& msg) {
    WireWriter out;
    out.put_u32(static_cast<std::uint32_t>(msg.code));
    out.put_str(msg.message);
    return finish_frame(FrameType::Error, 0, std::move(out));
}

ErrorMsg decode_error(const Frame& frame) {
    expect_type(frame, FrameType::Error);
    WireReader in(frame.payload);
    ErrorMsg msg;
    msg.code = static_cast<ErrorCode>(in.get_u32());
    msg.message = in.get_str();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_health(const HealthMsg& msg) {
    WireWriter out;
    out.put_str(msg.session);
    return finish_frame(FrameType::Health, 0, std::move(out));
}

HealthMsg decode_health(const Frame& frame) {
    expect_type(frame, FrameType::Health);
    WireReader in(frame.payload);
    HealthMsg msg;
    msg.session = in.get_str();
    expect_consumed(in, frame.type);
    return msg;
}

namespace {

// A leader is a small algorithm index; this sentinel encodes "no leader yet"
// without a separate presence byte.
constexpr std::uint64_t kNoLeader = 0xFFFFFFFFFFFFFFFFull;

void put_health_snapshot(WireWriter& out, const obs::HealthSnapshot& h) {
    out.put_u64(h.samples);
    out.put_u64(h.leader ? static_cast<std::uint64_t>(*h.leader) : kNoLeader);
    out.put_f64(h.leader_share);
    out.put_u8(h.converged ? 1 : 0);
    out.put_u64(h.converged_at);
    out.put_u64(h.drift_events);
    out.put_u64(h.last_drift_sample);
    out.put_u64(h.crossover_events);
    out.put_u8(h.plateau ? 1 : 0);
    out.put_u64(h.plateau_events);
    out.put_f64(h.regret);
    out.put_f64(h.recent_cost);
    out.put_f64(h.baseline_cost);
    if (h.algorithms.size() > 0xFFFFFFFFu)
        throw std::invalid_argument("wire: health algorithm rows exceed u32");
    out.put_u32(static_cast<std::uint32_t>(h.algorithms.size()));
    for (const obs::AlgorithmHealth& a : h.algorithms) {
        out.put_u64(a.samples);
        out.put_f64(a.mean_cost);
        out.put_f64(a.best_cost);
        out.put_f64(a.tuning_yield);
        out.put_f64(a.recent_cv);
        out.put_u8(a.plateau ? 1 : 0);
        out.put_u64(a.drift_events);
    }
}

obs::HealthSnapshot get_health_snapshot(WireReader& in) {
    obs::HealthSnapshot h;
    h.samples = in.get_u64();
    const std::uint64_t leader = in.get_u64();
    if (leader != kNoLeader) h.leader = static_cast<std::size_t>(leader);
    h.leader_share = in.get_f64();
    h.converged = in.get_u8() != 0;
    h.converged_at = in.get_u64();
    h.drift_events = in.get_u64();
    h.last_drift_sample = in.get_u64();
    h.crossover_events = in.get_u64();
    h.plateau = in.get_u8() != 0;
    h.plateau_events = in.get_u64();
    h.regret = in.get_f64();
    h.recent_cost = in.get_f64();
    h.baseline_cost = in.get_f64();
    // samples(8)+mean(8)+best(8)+yield(8)+cv(8)+plateau(1)+drift(8) per row.
    const std::size_t rows = in.get_count(/*min_element_bytes=*/49);
    h.algorithms.reserve(rows);
    for (std::size_t i = 0; i < rows; ++i) {
        obs::AlgorithmHealth a;
        a.samples = in.get_u64();
        a.mean_cost = in.get_f64();
        a.best_cost = in.get_f64();
        a.tuning_yield = in.get_f64();
        a.recent_cv = in.get_f64();
        a.plateau = in.get_u8() != 0;
        a.drift_events = in.get_u64();
        h.algorithms.push_back(a);
    }
    return h;
}

} // namespace

std::string encode_health_ok(const HealthOkMsg& msg) {
    WireWriter out;
    if (msg.sessions.size() > 0xFFFFFFFFu)
        throw std::invalid_argument("wire: health session count exceeds u32");
    out.put_u32(static_cast<std::uint32_t>(msg.sessions.size()));
    for (const SessionHealthEntry& entry : msg.sessions) {
        out.put_str(entry.session);
        put_health_snapshot(out, entry.health);
    }
    return finish_frame(FrameType::HealthOk, 0, std::move(out));
}

HealthOkMsg decode_health_ok(const Frame& frame) {
    expect_type(frame, FrameType::HealthOk);
    WireReader in(frame.payload);
    HealthOkMsg msg;
    // str len(4) + snapshot scalars dominate; 4 is a safe per-entry floor.
    const std::size_t count = in.get_count(/*min_element_bytes=*/4);
    msg.sessions.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        SessionHealthEntry entry;
        entry.session = in.get_str();
        entry.health = get_health_snapshot(in);
        msg.sessions.push_back(std::move(entry));
    }
    expect_consumed(in, frame.type);
    return msg;
}

// ---------------------------------------------------------------------------
// Peer (fleet) frames, v4
// ---------------------------------------------------------------------------

namespace {

void put_replica_entry(WireWriter& out, const ReplicaEntry& entry) {
    out.put_str(entry.session);
    out.put_u64(entry.version);
    out.put_str(entry.blob);
}

ReplicaEntry get_replica_entry(WireReader& in) {
    ReplicaEntry entry;
    entry.session = in.get_str();
    entry.version = in.get_u64();
    entry.blob = in.get_str();
    return entry;
}

void put_replica_list(WireWriter& out, const std::vector<ReplicaEntry>& entries) {
    if (entries.size() > 0xFFFFFFFFu)
        throw std::invalid_argument("wire: replica entry count exceeds u32");
    out.put_u32(static_cast<std::uint32_t>(entries.size()));
    for (const ReplicaEntry& entry : entries) put_replica_entry(out, entry);
}

std::vector<ReplicaEntry> get_replica_list(WireReader& in) {
    // session len(4) + version(8) + blob len(4) is the smallest entry, so a
    // hostile count field can never reserve more than the payload holds.
    const std::size_t count = in.get_count(/*min_element_bytes=*/16);
    std::vector<ReplicaEntry> entries;
    entries.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        entries.push_back(get_replica_entry(in));
    return entries;
}

} // namespace

std::string encode_peer_hello(const PeerHelloMsg& msg) {
    WireWriter out;
    out.put_str(msg.node);
    out.put_u64(msg.ring_seed);
    out.put_u32(msg.virtual_nodes);
    return finish_frame(FrameType::PeerHello, 0, std::move(out));
}

PeerHelloMsg decode_peer_hello(const Frame& frame) {
    expect_type(frame, FrameType::PeerHello);
    WireReader in(frame.payload);
    PeerHelloMsg msg;
    msg.node = in.get_str();
    msg.ring_seed = in.get_u64();
    msg.virtual_nodes = in.get_u32();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_peer_hello_ok(const PeerHelloOkMsg& msg) {
    WireWriter out;
    out.put_str(msg.node);
    out.put_u64(msg.live_sessions);
    return finish_frame(FrameType::PeerHelloOk, 0, std::move(out));
}

PeerHelloOkMsg decode_peer_hello_ok(const Frame& frame) {
    expect_type(frame, FrameType::PeerHelloOk);
    WireReader in(frame.payload);
    PeerHelloOkMsg msg;
    msg.node = in.get_str();
    msg.live_sessions = in.get_u64();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_snapshot_push(const SnapshotPushMsg& msg) {
    WireWriter out;
    out.put_str(msg.from_node);
    put_replica_list(out, msg.entries);
    return finish_frame(FrameType::SnapshotPush, 0, std::move(out));
}

SnapshotPushMsg decode_snapshot_push(const Frame& frame) {
    expect_type(frame, FrameType::SnapshotPush);
    WireReader in(frame.payload);
    SnapshotPushMsg msg;
    msg.from_node = in.get_str();
    msg.entries = get_replica_list(in);
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_snapshot_push_ok(const SnapshotPushOkMsg& msg) {
    WireWriter out;
    out.put_u64(msg.stored);
    return finish_frame(FrameType::SnapshotPushOk, 0, std::move(out));
}

SnapshotPushOkMsg decode_snapshot_push_ok(const Frame& frame) {
    expect_type(frame, FrameType::SnapshotPushOk);
    WireReader in(frame.payload);
    SnapshotPushOkMsg msg;
    msg.stored = in.get_u64();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_snapshot_pull(const SnapshotPullMsg& msg) {
    WireWriter out;
    out.put_str(msg.node);
    return finish_frame(FrameType::SnapshotPull, 0, std::move(out));
}

SnapshotPullMsg decode_snapshot_pull(const Frame& frame) {
    expect_type(frame, FrameType::SnapshotPull);
    WireReader in(frame.payload);
    SnapshotPullMsg msg;
    msg.node = in.get_str();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_snapshot_pull_ok(const SnapshotPullOkMsg& msg) {
    WireWriter out;
    put_replica_list(out, msg.entries);
    return finish_frame(FrameType::SnapshotPullOk, 0, std::move(out));
}

SnapshotPullOkMsg decode_snapshot_pull_ok(const Frame& frame) {
    expect_type(frame, FrameType::SnapshotPullOk);
    WireReader in(frame.payload);
    SnapshotPullOkMsg msg;
    msg.entries = get_replica_list(in);
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_peer_stats_request() {
    return encode_frame(Frame{FrameType::PeerStats, 0, {}});
}

std::string encode_peer_stats_ok(const PeerStatsOkMsg& msg) {
    WireWriter out;
    out.put_str(msg.node);
    out.put_u64(msg.replicas_held);
    out.put_u64(msg.replica_bytes);
    out.put_u64(msg.pushes_rx);
    out.put_u64(msg.pulls_rx);
    out.put_u64(msg.sessions_live);
    out.put_u64(msg.sessions_evicted);
    return finish_frame(FrameType::PeerStatsOk, 0, std::move(out));
}

PeerStatsOkMsg decode_peer_stats_ok(const Frame& frame) {
    expect_type(frame, FrameType::PeerStatsOk);
    WireReader in(frame.payload);
    PeerStatsOkMsg msg;
    msg.node = in.get_str();
    msg.replicas_held = in.get_u64();
    msg.replica_bytes = in.get_u64();
    msg.pushes_rx = in.get_u64();
    msg.pulls_rx = in.get_u64();
    msg.sessions_live = in.get_u64();
    msg.sessions_evicted = in.get_u64();
    expect_consumed(in, frame.type);
    return msg;
}

} // namespace atk::net

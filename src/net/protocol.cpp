#include "net/protocol.hpp"

#include <utility>

namespace atk::net {

namespace {

bool known_type(std::uint8_t byte) {
    return byte >= static_cast<std::uint8_t>(FrameType::Hello) &&
           byte <= static_cast<std::uint8_t>(FrameType::Error);
}

std::string finish_frame(FrameType type, std::uint8_t flags, WireWriter payload) {
    Frame frame{type, flags, payload.take()};
    return encode_frame(frame);
}

/// Every decode_* must consume the payload exactly: trailing bytes mean the
/// peer and we disagree about the layout, which is as fatal as truncation.
void expect_consumed(const WireReader& in, FrameType type) {
    if (!in.at_end())
        throw WireError(std::string("wire: trailing bytes after ") +
                        frame_type_name(type) + " payload");
}

void expect_type(const Frame& frame, FrameType type) {
    if (frame.type != type)
        throw WireError(std::string("wire: expected ") + frame_type_name(type) +
                        " frame, got " + frame_type_name(frame.type));
}

void put_config(WireWriter& out, const Configuration& config) {
    if (config.size() > 0xFFFFFFFFu)
        throw std::invalid_argument("wire: configuration exceeds u32 dimension");
    out.put_u32(static_cast<std::uint32_t>(config.size()));
    for (std::size_t i = 0; i < config.size(); ++i) out.put_i64(config[i]);
}

Configuration get_config(WireReader& in) {
    const std::size_t dims = in.get_count(/*min_element_bytes=*/8);
    std::vector<std::int64_t> values;
    values.reserve(dims);
    for (std::size_t i = 0; i < dims; ++i) values.push_back(in.get_i64());
    return Configuration{std::move(values)};
}

} // namespace

const char* frame_type_name(FrameType type) noexcept {
    switch (type) {
        case FrameType::Hello: return "Hello";
        case FrameType::HelloOk: return "HelloOk";
        case FrameType::Recommend: return "Recommend";
        case FrameType::Recommendation: return "Recommendation";
        case FrameType::Report: return "Report";
        case FrameType::ReportOk: return "ReportOk";
        case FrameType::Snapshot: return "Snapshot";
        case FrameType::SnapshotOk: return "SnapshotOk";
        case FrameType::Restore: return "Restore";
        case FrameType::RestoreOk: return "RestoreOk";
        case FrameType::Stats: return "Stats";
        case FrameType::StatsOk: return "StatsOk";
        case FrameType::Error: return "Error";
    }
    return "Unknown";
}

std::string encode_frame(const Frame& frame) {
    if (frame.payload.size() > 0xFFFFFFFFu)
        throw std::invalid_argument("wire: frame payload exceeds u32 length");
    WireWriter header;
    header.put_u32(static_cast<std::uint32_t>(frame.payload.size()));
    header.put_u8(static_cast<std::uint8_t>(frame.type));
    header.put_u8(frame.flags);
    header.put_u16(0);  // reserved, must be zero
    std::string out = header.take();
    out += frame.payload;
    return out;
}

// ---------------------------------------------------------------------------
// FrameDecoder
// ---------------------------------------------------------------------------

FrameDecoder::FrameDecoder(std::size_t max_payload) : max_payload_(max_payload) {}

bool FrameDecoder::parse_header() {
    WireReader in(buffer_.data(), kFrameHeaderBytes);
    pending_length_ = in.get_u32();
    const std::uint8_t type_byte = in.get_u8();
    pending_flags_ = in.get_u8();
    const std::uint16_t reserved = in.get_u16();
    if (pending_length_ > max_payload_) {
        error_ = "frame length " + std::to_string(pending_length_) +
                 " exceeds the payload cap of " + std::to_string(max_payload_);
        return false;
    }
    if (!known_type(type_byte)) {
        error_ = "unknown frame type " + std::to_string(type_byte);
        return false;
    }
    if ((pending_flags_ & ~kFlagAckRequested) != 0) {
        error_ = "unknown frame flags " + std::to_string(pending_flags_);
        return false;
    }
    if (reserved != 0) {
        error_ = "nonzero reserved header field";
        return false;
    }
    pending_type_ = static_cast<FrameType>(type_byte);
    return true;
}

void FrameDecoder::feed(const char* data, std::size_t size) {
    if (error()) return;  // poisoned stream: no frame boundary exists anymore
    std::size_t at = 0;
    while (at < size) {
        if (!have_header_) {
            const std::size_t want = kFrameHeaderBytes - buffer_.size();
            const std::size_t take = std::min(want, size - at);
            buffer_.append(data + at, take);
            at += take;
            if (buffer_.size() < kFrameHeaderBytes) return;
            if (!parse_header()) {
                buffer_.clear();
                return;
            }
            have_header_ = true;
            buffer_.clear();
            // The declared length was validated against the cap above, so
            // this is the only payload-sized allocation the peer can cause.
            buffer_.reserve(pending_length_);
        }
        const std::size_t want = pending_length_ - buffer_.size();
        const std::size_t take = std::min(want, size - at);
        buffer_.append(data + at, take);
        at += take;
        if (buffer_.size() < pending_length_) return;
        ready_.push_back(Frame{pending_type_, pending_flags_, std::move(buffer_)});
        buffer_ = {};
        have_header_ = false;
        pending_length_ = 0;
    }
}

std::optional<Frame> FrameDecoder::next() {
    if (ready_at_ >= ready_.size()) {
        ready_.clear();
        ready_at_ = 0;
        return std::nullopt;
    }
    Frame frame = std::move(ready_[ready_at_++]);
    if (ready_at_ >= ready_.size()) {
        ready_.clear();
        ready_at_ = 0;
    }
    return frame;
}

// ---------------------------------------------------------------------------
// Message encode/decode
// ---------------------------------------------------------------------------

std::string encode_hello(const HelloMsg& msg) {
    WireWriter out;
    out.put_u32(msg.version);
    out.put_str(msg.client_name);
    return finish_frame(FrameType::Hello, 0, std::move(out));
}

HelloMsg decode_hello(const Frame& frame) {
    expect_type(frame, FrameType::Hello);
    WireReader in(frame.payload);
    HelloMsg msg;
    msg.version = in.get_u32();
    msg.client_name = in.get_str();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_hello_ok(const HelloOkMsg& msg) {
    WireWriter out;
    out.put_u32(msg.version);
    out.put_str(msg.server_name);
    return finish_frame(FrameType::HelloOk, 0, std::move(out));
}

HelloOkMsg decode_hello_ok(const Frame& frame) {
    expect_type(frame, FrameType::HelloOk);
    WireReader in(frame.payload);
    HelloOkMsg msg;
    msg.version = in.get_u32();
    msg.server_name = in.get_str();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_recommend(const RecommendMsg& msg) {
    WireWriter out;
    out.put_str(msg.session);
    return finish_frame(FrameType::Recommend, 0, std::move(out));
}

RecommendMsg decode_recommend(const Frame& frame) {
    expect_type(frame, FrameType::Recommend);
    WireReader in(frame.payload);
    RecommendMsg msg;
    msg.session = in.get_str();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_recommendation(const RecommendationMsg& msg) {
    WireWriter out;
    out.put_str(msg.session);
    out.put_u64(msg.ticket.sequence);
    if (msg.ticket.trial.algorithm > 0xFFFFFFFFu)
        throw std::invalid_argument("wire: algorithm index exceeds u32");
    out.put_u32(static_cast<std::uint32_t>(msg.ticket.trial.algorithm));
    put_config(out, msg.ticket.trial.config);
    return finish_frame(FrameType::Recommendation, 0, std::move(out));
}

RecommendationMsg decode_recommendation(const Frame& frame) {
    expect_type(frame, FrameType::Recommendation);
    WireReader in(frame.payload);
    RecommendationMsg msg;
    msg.session = in.get_str();
    msg.ticket.sequence = in.get_u64();
    msg.ticket.trial.algorithm = in.get_u32();
    msg.ticket.trial.config = get_config(in);
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_report(const ReportMsg& msg, bool ack_requested) {
    WireWriter out;
    out.put_str(msg.session);
    if (msg.batch.size() > 0xFFFFFFFFu)
        throw std::invalid_argument("wire: report batch exceeds u32 count");
    out.put_u32(static_cast<std::uint32_t>(msg.batch.size()));
    for (const runtime::BatchedMeasurement& m : msg.batch) {
        out.put_u64(m.ticket.sequence);
        if (m.ticket.trial.algorithm > 0xFFFFFFFFu)
            throw std::invalid_argument("wire: algorithm index exceeds u32");
        out.put_u32(static_cast<std::uint32_t>(m.ticket.trial.algorithm));
        put_config(out, m.ticket.trial.config);
        out.put_f64(m.cost);
    }
    return finish_frame(FrameType::Report, ack_requested ? kFlagAckRequested : 0,
                        std::move(out));
}

ReportMsg decode_report(const Frame& frame) {
    expect_type(frame, FrameType::Report);
    WireReader in(frame.payload);
    ReportMsg msg;
    msg.session = in.get_str();
    // seq(8) + alg(4) + config count(4) + cost(8) is the smallest entry.
    const std::size_t count = in.get_count(/*min_element_bytes=*/24);
    msg.batch.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        runtime::BatchedMeasurement m;
        m.ticket.sequence = in.get_u64();
        m.ticket.trial.algorithm = in.get_u32();
        m.ticket.trial.config = get_config(in);
        m.cost = in.get_f64();
        msg.batch.push_back(std::move(m));
    }
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_report_ok(const ReportOkMsg& msg) {
    WireWriter out;
    out.put_u32(msg.accepted);
    out.put_u32(msg.dropped);
    return finish_frame(FrameType::ReportOk, 0, std::move(out));
}

ReportOkMsg decode_report_ok(const Frame& frame) {
    expect_type(frame, FrameType::ReportOk);
    WireReader in(frame.payload);
    ReportOkMsg msg;
    msg.accepted = in.get_u32();
    msg.dropped = in.get_u32();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_snapshot_request() {
    return encode_frame(Frame{FrameType::Snapshot, 0, {}});
}

std::string encode_snapshot_ok(const SnapshotOkMsg& msg) {
    WireWriter out;
    out.put_str(msg.payload);
    return finish_frame(FrameType::SnapshotOk, 0, std::move(out));
}

SnapshotOkMsg decode_snapshot_ok(const Frame& frame) {
    expect_type(frame, FrameType::SnapshotOk);
    WireReader in(frame.payload);
    SnapshotOkMsg msg;
    msg.payload = in.get_str();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_restore(const RestoreMsg& msg) {
    WireWriter out;
    out.put_str(msg.payload);
    return finish_frame(FrameType::Restore, 0, std::move(out));
}

RestoreMsg decode_restore(const Frame& frame) {
    expect_type(frame, FrameType::Restore);
    WireReader in(frame.payload);
    RestoreMsg msg;
    msg.payload = in.get_str();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_restore_ok(const RestoreOkMsg& msg) {
    WireWriter out;
    out.put_u64(msg.sessions_restored);
    return finish_frame(FrameType::RestoreOk, 0, std::move(out));
}

RestoreOkMsg decode_restore_ok(const Frame& frame) {
    expect_type(frame, FrameType::RestoreOk);
    WireReader in(frame.payload);
    RestoreOkMsg msg;
    msg.sessions_restored = in.get_u64();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_stats_request() {
    return encode_frame(Frame{FrameType::Stats, 0, {}});
}

std::string encode_stats_ok(const StatsOkMsg& msg) {
    WireWriter out;
    const runtime::ServiceStats& s = msg.stats;
    out.put_u64(s.sessions);
    out.put_u64(s.queue_depth);
    out.put_u64(s.queue_capacity);
    out.put_u64(s.reports_enqueued);
    out.put_u64(s.reports_dropped);
    out.put_u64(s.reports_orphaned);
    out.put_u64(s.reports_fresh);
    out.put_u64(s.reports_stale);
    out.put_u64(s.installs_applied);
    out.put_u64(s.installs_rejected);
    out.put_u64(s.snapshots_restored);
    return finish_frame(FrameType::StatsOk, 0, std::move(out));
}

StatsOkMsg decode_stats_ok(const Frame& frame) {
    expect_type(frame, FrameType::StatsOk);
    WireReader in(frame.payload);
    StatsOkMsg msg;
    runtime::ServiceStats& s = msg.stats;
    s.sessions = static_cast<std::size_t>(in.get_u64());
    s.queue_depth = static_cast<std::size_t>(in.get_u64());
    s.queue_capacity = static_cast<std::size_t>(in.get_u64());
    s.reports_enqueued = in.get_u64();
    s.reports_dropped = in.get_u64();
    s.reports_orphaned = in.get_u64();
    s.reports_fresh = in.get_u64();
    s.reports_stale = in.get_u64();
    s.installs_applied = in.get_u64();
    s.installs_rejected = in.get_u64();
    s.snapshots_restored = in.get_u64();
    expect_consumed(in, frame.type);
    return msg;
}

std::string encode_error(const ErrorMsg& msg) {
    WireWriter out;
    out.put_u32(static_cast<std::uint32_t>(msg.code));
    out.put_str(msg.message);
    return finish_frame(FrameType::Error, 0, std::move(out));
}

ErrorMsg decode_error(const Frame& frame) {
    expect_type(frame, FrameType::Error);
    WireReader in(frame.payload);
    ErrorMsg msg;
    msg.code = static_cast<ErrorCode>(in.get_u32());
    msg.message = in.get_str();
    expect_consumed(in, frame.type);
    return msg;
}

} // namespace atk::net

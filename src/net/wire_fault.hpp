#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace atk::net {

/// What can go wrong on the wire between a TuningClient and its server —
/// the network twin of sim's FaultPlan.  All randomness is seeded, so a
/// failing chaos run replays exactly; the injector lives client-side, which
/// keeps the sequence of frames the server actually receives a pure
/// function of the seed (TCP delivers the survivors in order).
struct WireFaultPlan {
    /// Per frame: the transport writes the frame in several small chunks
    /// with a flush between each — a fragmenting middlebox or a tiny
    /// send buffer.  The peer's decoder must reassemble split frames.
    double split_probability = 0.0;
    /// Chunks a split frame is carved into (at least 2; bounded by size).
    std::size_t max_split_chunks = 5;
    /// Per frame: the connection is reset after a seeded prefix of the
    /// frame's bytes went out.  The peer sees a truncated frame followed by
    /// a close; the client sees a dead socket and must reconnect.
    double reset_probability = 0.0;
    std::uint64_t seed = 0x77697265ULL;  // "wire"
};

/// Seeded decision stream for one faulty connection.  plan_frame() is
/// consulted once per outgoing frame; the returned plan is deterministic in
/// (seed, call index) and independent of timing.
class WireFaultInjector {
public:
    explicit WireFaultInjector(const WireFaultPlan& plan);

    struct FrameFate {
        bool reset = false;              ///< kill the connection mid-frame
        std::size_t reset_after = 0;     ///< bytes written before the reset
        /// Chunk boundaries for a split write ({} = single write).
        std::vector<std::size_t> chunk_sizes;
    };

    [[nodiscard]] FrameFate plan_frame(std::size_t frame_bytes);

    [[nodiscard]] std::size_t frames_planned() const noexcept { return frames_; }
    [[nodiscard]] std::size_t resets_injected() const noexcept { return resets_; }
    [[nodiscard]] std::size_t splits_injected() const noexcept { return splits_; }

private:
    WireFaultPlan plan_;
    Rng rng_;
    std::size_t frames_ = 0;
    std::size_t resets_ = 0;
    std::size_t splits_ = 0;
};

} // namespace atk::net

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/search_space.hpp"
#include "net/wire.hpp"
#include "obs/health.hpp"
#include "obs/span.hpp"
#include "runtime/service.hpp"

namespace atk::net {

/// Version of the frame layout and message payloads.  Negotiated by the
/// mandatory Hello/HelloOk exchange that opens every connection: the server
/// replies HelloOk carrying min(client version, server version) as long as
/// the client is no older than kMinProtocolVersion, and refuses anything
/// else with Error{VersionMismatch} instead of guessing at payload layouts.
///
/// v2 adds (all invisible to v1 peers):
///   - an optional trace-context payload extension on Recommend/Report
///     frames (kFlagTraceContext), carrying the sender's distributed-trace
///     identity so server-side spans join the client's timeline;
///   - the Health/HealthOk frame pair exposing per-session
///     obs::TuningHealthMonitor snapshots.
///
/// v3 adds (invisible to v1/v2 peers):
///   - an optional feature-vector payload extension on Recommend/Report
///     frames (kFlagFeatureVector), carrying the client's workload features
///     so server-side contextual strategies (LinUCB, bucketed phase-two)
///     learn per-context costs.  Clients only emit it once HelloOk
///     negotiated v3; a context-blind client's frames are byte-identical to
///     v2 ones.
///
/// v4 adds (invisible to v1–v3 peers):
///   - the peer frame family for fleet operation (PeerHello, SnapshotPush,
///     SnapshotPull, PeerStats + their Ok replies), carrying single-session
///     warm-start snapshot blobs between nodes so tuning state survives
///     node churn.  A node only sends peer frames once HelloOk negotiated
///     v4; a v3-only peer simply never replicates and keeps serving the
///     client frames unchanged;
///   - four eviction/quota counters appended to the StatsOk payload (a v4
///     server encodes them only on v4 connections, so v3 clients keep
///     parsing the 11-scalar layout they expect);
///   - ErrorCode::QuotaExceeded, the typed reply when a tenant is at its
///     session quota.
inline constexpr std::uint32_t kProtocolVersion = 4;

/// Oldest protocol version this build still speaks.  v1 frames are a strict
/// subset of v2, and v2 of v3 (no feature extensions), so compatibility is
/// "don't send the new things", not a separate codec.
inline constexpr std::uint32_t kMinProtocolVersion = 1;

/// Hard ceiling on a frame payload (and therefore on every decoder
/// allocation).  Snapshot payloads dominate; 16 MiB of text state covers
/// thousands of sessions.  Both sides enforce it.
inline constexpr std::size_t kDefaultMaxPayload = 16u << 20;

/// Every frame on the wire, either direction.  Requests are client→server;
/// each has exactly one reply type (server→client), except Report frames
/// sent without the kFlagAckRequested bit, which have none.
enum class FrameType : std::uint8_t {
    Hello = 1,        ///< u32 version, str client_name
    HelloOk = 2,      ///< u32 version, str server_name
    Recommend = 3,    ///< str session
    Recommendation = 4, ///< str session, u64 sequence, u32 algorithm, config
    Report = 5,       ///< str session, u32 n, n × {u64 seq, u32 alg, config, f64 cost}
    ReportOk = 6,     ///< u32 accepted, u32 dropped
    Snapshot = 7,     ///< (empty)
    SnapshotOk = 8,   ///< str state payload (core/state_io text)
    Restore = 9,      ///< str state payload
    RestoreOk = 10,   ///< u64 sessions_restored
    Stats = 11,       ///< (empty)
    StatsOk = 12,     ///< the runtime::ServiceStats scalars
    Error = 13,       ///< u32 code, str message
    Health = 14,      ///< str session ("" = every session)        [v2]
    HealthOk = 15,    ///< u32 n, n × {str session, health snapshot} [v2]
    PeerHello = 16,   ///< str node, u64 ring_seed, u32 virtual_nodes [v4]
    PeerHelloOk = 17, ///< str node, u64 live_sessions               [v4]
    SnapshotPush = 18,///< str from_node, u32 n, n × ReplicaEntry    [v4]
    SnapshotPushOk = 19, ///< u64 stored                             [v4]
    SnapshotPull = 20,///< str node (requesting its owned ranges)    [v4]
    SnapshotPullOk = 21, ///< u32 n, n × ReplicaEntry                [v4]
    PeerStats = 22,   ///< (empty)                                   [v4]
    PeerStatsOk = 23, ///< the fleet-replication scalars             [v4]
};

/// Frame flags (bit set).  Unknown bits are rejected by the decoder so they
/// stay available for future versions.
///
/// kFlagAckRequested: Report frames only — the sender wants a ReportOk.
inline constexpr std::uint8_t kFlagAckRequested = 0x01;

/// kFlagTraceContext (v2): the Recommend/Report payload ends with a 16-byte
/// trace-context extension — u64 trace_id, u64 parent span_id — linking the
/// work the frame triggers into the sender's distributed trace.  v1 peers
/// never see the bit: clients only inject it once HelloOk negotiated v2.
inline constexpr std::uint8_t kFlagTraceContext = 0x02;

/// kFlagFeatureVector (v3): the Recommend/Report payload carries a
/// feature-vector extension — u32 count, count × f64 — describing the
/// workload the client is about to run (Recommend) or measured under
/// (Report; one context covers the whole batch).  Extensions stack in flag
/// order: features are appended directly after the base payload, *before*
/// the trace-context extension.  v1/v2 peers never see the bit: clients
/// only inject it once HelloOk negotiated v3.
inline constexpr std::uint8_t kFlagFeatureVector = 0x04;

/// Error frame codes.
enum class ErrorCode : std::uint32_t {
    BadFrame = 1,        ///< payload did not parse as the declared type
    VersionMismatch = 2, ///< Hello version != server version
    UnknownType = 3,     ///< frame type byte outside the enum
    BadRequest = 4,      ///< well-formed but unserviceable (e.g. bad restore)
    Internal = 5,        ///< server-side failure
    Shutdown = 6,        ///< server is draining; reconnect later
    QuotaExceeded = 7,   ///< tenant at its session quota (v4; non-fatal)
};

/// One complete frame as it travels: 8-byte header (u32 payload length,
/// u8 type, u8 flags, u16 reserved = 0) followed by `payload`.
struct Frame {
    FrameType type = FrameType::Error;
    std::uint8_t flags = 0;
    std::string payload;
};

inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Serializes a frame (header + payload) ready for the socket.
[[nodiscard]] std::string encode_frame(const Frame& frame);

/// Incremental, allocation-bounded decoder for a byte stream of frames.
///
/// feed() accepts whatever the socket produced; next() hands back complete
/// frames in order.  The decoder validates the header *before* reserving
/// payload space, so a hostile length field can never cause an allocation
/// beyond `max_payload + one read chunk`.  The first malformed header
/// (oversized length, unknown type, unknown flag bits, nonzero reserved
/// field) poisons the stream: error() turns true and stays true, because a
/// framing error leaves no way to find the next frame boundary — the
/// connection must be dropped.
class FrameDecoder {
public:
    explicit FrameDecoder(std::size_t max_payload = kDefaultMaxPayload);

    /// Appends raw bytes.  Cheap for partial frames; no per-call scan of
    /// data already buffered.  Bytes after a framing error are discarded.
    void feed(const char* data, std::size_t size);

    /// Next complete frame, if one is buffered.  The error state never
    /// yields frames decoded after the poisoned header (frames completed
    /// before it are still delivered).
    [[nodiscard]] std::optional<Frame> next();

    [[nodiscard]] bool error() const noexcept { return !error_.empty(); }
    [[nodiscard]] const std::string& error_message() const noexcept { return error_; }

    /// Bytes currently buffered (partial frame); bounded by
    /// kFrameHeaderBytes + max_payload.
    [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }
    [[nodiscard]] std::size_t max_payload() const noexcept { return max_payload_; }

private:
    /// True when the buffered header declares a valid frame; sets error_
    /// otherwise.  Populates pending_* from the header bytes.
    bool parse_header();

    std::size_t max_payload_;
    std::string buffer_;            ///< header-in-progress or payload-in-progress
    bool have_header_ = false;
    std::uint32_t pending_length_ = 0;
    FrameType pending_type_ = FrameType::Error;
    std::uint8_t pending_flags_ = 0;
    std::vector<Frame> ready_;      ///< decoded ahead of next() calls
    std::size_t ready_at_ = 0;      ///< consumed prefix of ready_
    std::string error_;
};

// ---------------------------------------------------------------------------
// Message payloads.  encode_* returns a complete wire-ready frame;
// decode_* parses a Frame's payload and throws WireError on any structural
// defect (truncation, overrun, trailing bytes).
// ---------------------------------------------------------------------------

struct HelloMsg {
    std::uint32_t version = kProtocolVersion;
    std::string client_name;
};

struct HelloOkMsg {
    std::uint32_t version = kProtocolVersion;
    std::string server_name;
};

struct RecommendMsg {
    std::string session;
    /// When non-empty, encoded as the kFlagFeatureVector payload extension
    /// (v3); empty vectors encode byte-identically to a v2 frame.
    FeatureVector features;
    /// When valid, encoded as the kFlagTraceContext payload extension (v2);
    /// invalid contexts encode byte-identically to a v1 frame.
    obs::TraceContext trace;
};

struct RecommendationMsg {
    std::string session;
    runtime::Ticket ticket;
};

struct ReportMsg {
    std::string session;
    std::vector<runtime::BatchedMeasurement> batch;
    /// See RecommendMsg::features; one feature vector covers the whole
    /// batch (a batch is one workload context by construction).
    FeatureVector features;
    /// See RecommendMsg::trace; one context covers the whole batch.
    obs::TraceContext trace;
};

struct ReportOkMsg {
    std::uint32_t accepted = 0;
    std::uint32_t dropped = 0;
};

struct SnapshotOkMsg {
    std::string payload;  ///< runtime snapshot (core/state_io text format)
};

struct RestoreMsg {
    std::string payload;
};

struct RestoreOkMsg {
    std::uint64_t sessions_restored = 0;
};

struct StatsOkMsg {
    runtime::ServiceStats stats;
};

struct ErrorMsg {
    ErrorCode code = ErrorCode::Internal;
    std::string message;
};

struct HealthMsg {
    std::string session;  ///< "" requests every session's health
};

struct SessionHealthEntry {
    std::string session;
    obs::HealthSnapshot health;
};

struct HealthOkMsg {
    std::vector<SessionHealthEntry> sessions;
};

// ---- peer (fleet) messages, v4 ----

/// Opens a peer link: identifies the sending node and its ring geometry.
/// The receiver refuses (BadRequest) when the geometry disagrees — two
/// nodes hashing sessions differently would replicate to the wrong owners.
struct PeerHelloMsg {
    std::string node;
    std::uint64_t ring_seed = 0;
    std::uint32_t virtual_nodes = 0;
};

struct PeerHelloOkMsg {
    std::string node;
    std::uint64_t live_sessions = 0;
};

/// One replicated session: a standalone single-session snapshot blob (the
/// bytes runtime::TuningService::session_snapshot() produces) plus a
/// monotonic version (the session's tuner iteration count at snapshot
/// time) so receivers keep the freshest copy under reordered pushes.
struct ReplicaEntry {
    std::string session;
    std::uint64_t version = 0;
    std::string blob;
};

struct SnapshotPushMsg {
    std::string from_node;
    std::vector<ReplicaEntry> entries;
};

struct SnapshotPushOkMsg {
    std::uint64_t stored = 0;  ///< entries accepted (stale versions skipped)
};

/// A rejoining node catching up: asks the peer for every session the
/// requester owns under the shared ring (live sessions the peer absorbed
/// via failover plus replicas it holds on the requester's behalf).
struct SnapshotPullMsg {
    std::string node;
};

struct SnapshotPullOkMsg {
    std::vector<ReplicaEntry> entries;
};

struct PeerStatsOkMsg {
    std::string node;
    std::uint64_t replicas_held = 0;
    std::uint64_t replica_bytes = 0;
    std::uint64_t pushes_rx = 0;
    std::uint64_t pulls_rx = 0;
    std::uint64_t sessions_live = 0;
    std::uint64_t sessions_evicted = 0;
};

[[nodiscard]] std::string encode_hello(const HelloMsg& msg);
[[nodiscard]] std::string encode_hello_ok(const HelloOkMsg& msg);
[[nodiscard]] std::string encode_recommend(const RecommendMsg& msg);
[[nodiscard]] std::string encode_recommendation(const RecommendationMsg& msg);
[[nodiscard]] std::string encode_report(const ReportMsg& msg, bool ack_requested);
[[nodiscard]] std::string encode_report_ok(const ReportOkMsg& msg);
[[nodiscard]] std::string encode_snapshot_request();
[[nodiscard]] std::string encode_snapshot_ok(const SnapshotOkMsg& msg);
[[nodiscard]] std::string encode_restore(const RestoreMsg& msg);
[[nodiscard]] std::string encode_restore_ok(const RestoreOkMsg& msg);
[[nodiscard]] std::string encode_stats_request();
/// `version` is the connection's negotiated protocol version: v4 appends
/// the eviction/quota scalars, older versions encode the 11-scalar layout
/// byte-identically to a v3 build.
[[nodiscard]] std::string encode_stats_ok(const StatsOkMsg& msg,
                                          std::uint32_t version = kProtocolVersion);
[[nodiscard]] std::string encode_error(const ErrorMsg& msg);
[[nodiscard]] std::string encode_health(const HealthMsg& msg);
[[nodiscard]] std::string encode_health_ok(const HealthOkMsg& msg);
[[nodiscard]] std::string encode_peer_hello(const PeerHelloMsg& msg);
[[nodiscard]] std::string encode_peer_hello_ok(const PeerHelloOkMsg& msg);
[[nodiscard]] std::string encode_snapshot_push(const SnapshotPushMsg& msg);
[[nodiscard]] std::string encode_snapshot_push_ok(const SnapshotPushOkMsg& msg);
[[nodiscard]] std::string encode_snapshot_pull(const SnapshotPullMsg& msg);
[[nodiscard]] std::string encode_snapshot_pull_ok(const SnapshotPullOkMsg& msg);
[[nodiscard]] std::string encode_peer_stats_request();
[[nodiscard]] std::string encode_peer_stats_ok(const PeerStatsOkMsg& msg);

[[nodiscard]] HelloMsg decode_hello(const Frame& frame);
[[nodiscard]] HelloOkMsg decode_hello_ok(const Frame& frame);
[[nodiscard]] RecommendMsg decode_recommend(const Frame& frame);
[[nodiscard]] RecommendationMsg decode_recommendation(const Frame& frame);
[[nodiscard]] ReportMsg decode_report(const Frame& frame);
[[nodiscard]] ReportOkMsg decode_report_ok(const Frame& frame);
[[nodiscard]] SnapshotOkMsg decode_snapshot_ok(const Frame& frame);
[[nodiscard]] RestoreMsg decode_restore(const Frame& frame);
[[nodiscard]] RestoreOkMsg decode_restore_ok(const Frame& frame);
/// Accepts both the 11-scalar (≤v3) and the extended (v4) layout, keyed by
/// the payload itself — a v3 peer's frame leaves the new counters zero.
[[nodiscard]] StatsOkMsg decode_stats_ok(const Frame& frame);
[[nodiscard]] ErrorMsg decode_error(const Frame& frame);
[[nodiscard]] HealthMsg decode_health(const Frame& frame);
[[nodiscard]] HealthOkMsg decode_health_ok(const Frame& frame);
[[nodiscard]] PeerHelloMsg decode_peer_hello(const Frame& frame);
[[nodiscard]] PeerHelloOkMsg decode_peer_hello_ok(const Frame& frame);
[[nodiscard]] SnapshotPushMsg decode_snapshot_push(const Frame& frame);
[[nodiscard]] SnapshotPushOkMsg decode_snapshot_push_ok(const Frame& frame);
[[nodiscard]] SnapshotPullMsg decode_snapshot_pull(const Frame& frame);
[[nodiscard]] SnapshotPullOkMsg decode_snapshot_pull_ok(const Frame& frame);
[[nodiscard]] PeerStatsOkMsg decode_peer_stats_ok(const Frame& frame);

/// Human-readable frame type name for logs and error messages.
[[nodiscard]] const char* frame_type_name(FrameType type) noexcept;

} // namespace atk::net

#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "net/wire_fault.hpp"
#include "runtime/service.hpp"
#include "support/rng.hpp"

namespace atk::net {

/// A request failed for good: connect/handshake/IO kept failing through the
/// whole reconnect budget, the server answered with an Error frame, or a
/// reply violated the protocol.
class NetError : public std::runtime_error {
public:
    explicit NetError(const std::string& what) : std::runtime_error(what) {}
};

/// The server itself answered with an Error frame: the request reached a
/// live, speaking peer and was refused.  Distinguished from transport-level
/// NetError so routing layers (FleetClient) know retrying another node is
/// pointless — the refusal is about the request, not the path.
class RemoteError : public NetError {
public:
    RemoteError(ErrorCode code, const std::string& what)
        : NetError(what), code_(code) {}

    [[nodiscard]] ErrorCode code() const noexcept { return code_; }

private:
    ErrorCode code_;
};

struct ClientOptions {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    std::string client_name = "atk-client";
    /// Per-request reply deadline (also the connect deadline).
    std::chrono::milliseconds request_timeout{5000};
    /// Reconnect budget per API call: how many connection attempts a single
    /// blocking call may burn before it throws NetError.
    std::size_t max_attempts = 5;
    /// Exponential backoff with decorrelated jitter between reconnects:
    /// sleep ~ uniform(backoff_base, 3 × previous), capped at backoff_cap.
    std::chrono::milliseconds backoff_base{10};
    std::chrono::milliseconds backoff_cap{2000};
    /// Seed of the jitter stream (support Rng), so tests replay exactly.
    std::uint64_t backoff_seed = 0x6A6974746572ULL;  // "jitter"
    std::size_t max_payload = kDefaultMaxPayload;
    /// Fire-and-forget reports buffered before flush_reports() triggers
    /// itself automatically.
    std::size_t async_batch_size = 64;
    /// Optional seeded wire-fault injection (tests/chaos only): frames may
    /// be split into fragments or the connection reset mid-frame.
    std::shared_ptr<WireFaultInjector> fault;
};

/// Client library for the TuningServer wire protocol.
///
/// Blocking API: recommend()/report()/snapshot()/restore()/stats() each
/// complete a request/reply exchange, transparently reconnecting (with
/// exponential backoff and decorrelated jitter) when the connection drops,
/// and throwing NetError once the attempt budget is spent.
///
/// Pipelined paths, for hot loops that must not pay a round trip per
/// measurement:
///   - report_async() queues measurements locally and ships them as one
///     batched, unacknowledged Report frame per flush_reports() (automatic
///     every async_batch_size entries) — the client-side twin of the
///     service's bounded-queue ingestion;
///   - recommend_many() writes N Recommend frames back-to-back and then
///     collects the N replies in order.
///
/// Version negotiation: the client opens with its newest protocol version
/// and, refused with VersionMismatch, retries the handshake once at
/// kMinProtocolVersion — so it interoperates with older servers by simply
/// not using v2 constructs on that connection.  When the negotiated version
/// is >= 2 and the Tracer is enabled, recommend/report frames carry the
/// calling thread's trace context, so server-side spans (worker dispatch
/// through tuner phase2_select) join this client's distributed trace.
///
/// Not thread-safe: one TuningClient per client thread (they can share a
/// server).  Reconnecting drops any unflushed async reports of the dead
/// connection — mirroring the runtime's drop-under-pressure policy; the
/// dropped count lands in reports_lost().
class TuningClient {
public:
    explicit TuningClient(ClientOptions options);
    ~TuningClient();

    TuningClient(const TuningClient&) = delete;
    TuningClient& operator=(const TuningClient&) = delete;

    /// Current recommendation for `session` (connects on first use).
    [[nodiscard]] runtime::Ticket recommend(const std::string& session);

    /// Context-aware recommend(): announces `features` (the workload the
    /// client is about to run) alongside the request.  Sent as the v3
    /// feature-vector extension when the connection negotiated version 3;
    /// silently elided on older servers, which degrades the session to
    /// context-blind tuning rather than failing.
    [[nodiscard]] runtime::Ticket recommend(const std::string& session,
                                            const FeatureVector& features);

    /// Pipelined: one Recommend frame per session, then all replies.
    [[nodiscard]] std::vector<runtime::Ticket> recommend_many(
        const std::vector<std::string>& sessions);

    /// Acknowledged single report; true when the server accepted it.
    bool report(const std::string& session, const runtime::Ticket& ticket, Cost cost);

    /// Context-aware report(): `features` describe the workload the
    /// measurement was taken under.  Same v3 negotiation rule as the
    /// recommend() overload.
    bool report(const std::string& session, const runtime::Ticket& ticket, Cost cost,
                const FeatureVector& features);

    /// Acknowledged batch; returns the server's accepted count.  `features`
    /// (may be empty) apply to the whole batch.
    std::size_t report_batch(const std::string& session,
                             const std::vector<runtime::BatchedMeasurement>& batch,
                             const FeatureVector& features = {});

    /// Fire-and-forget: queue locally, ship on flush_reports() (called
    /// automatically at async_batch_size, before any blocking call, and on
    /// destruction).
    void report_async(const std::string& session, const runtime::Ticket& ticket,
                      Cost cost);

    /// Ships the queued async reports now (one unacked frame per session).
    void flush_reports();

    /// Full service snapshot (core/state_io payload) — feed it to
    /// TuningService::restore_payload or write it as a warm-start file.
    [[nodiscard]] std::string snapshot();

    /// Pushes a snapshot payload into the remote service; returns the
    /// number of sessions restored.
    std::size_t restore(const std::string& payload);

    [[nodiscard]] runtime::ServiceStats stats();

    /// Per-session tuning-health snapshots ("" = every session).  Requires
    /// a v2 server: throws NetError when the connection negotiated v1.
    [[nodiscard]] std::vector<SessionHealthEntry> health(
        const std::string& session = "");

    // ---- peer (fleet) exchanges, v4 ----
    // Each requires a v4 fleet peer: throws NetError when the connection
    // negotiated an older version (check negotiated_version() to tell a
    // v3-only peer from a transport failure), RemoteError when the peer
    // refused (e.g. ring-geometry mismatch, not a fleet node).

    /// Identifies this node to a peer and verifies ring geometry.
    [[nodiscard]] PeerHelloOkMsg peer_hello(const PeerHelloMsg& msg);

    /// Ships replica snapshots; returns the peer's accepted count.
    [[nodiscard]] SnapshotPushOkMsg snapshot_push(const SnapshotPushMsg& msg);

    /// Catch-up pull: every session `node` owns that the peer knows about.
    [[nodiscard]] SnapshotPullOkMsg snapshot_pull(const std::string& node);

    [[nodiscard]] PeerStatsOkMsg peer_stats();

    /// Drops the connection; the next call reconnects from scratch.
    void disconnect() noexcept;

    [[nodiscard]] bool connected() const noexcept { return socket_.valid(); }

    /// Protocol version negotiated on the current connection; 0 while
    /// disconnected (the next call reconnects and re-negotiates).
    [[nodiscard]] std::uint32_t negotiated_version() const noexcept {
        return negotiated_version_;
    }

    // ---- client-side health counters ----
    [[nodiscard]] std::uint64_t reconnects() const noexcept { return reconnects_; }
    [[nodiscard]] std::uint64_t timeouts() const noexcept { return timeouts_; }
    /// Async reports that died with a connection before being flushed.
    [[nodiscard]] std::uint64_t reports_lost() const noexcept { return reports_lost_; }

private:
    struct PendingReport {
        std::string session;
        runtime::BatchedMeasurement measurement;
    };

    /// Ensures a handshaken connection, reconnecting with backoff; throws
    /// NetError when the attempt budget is exhausted.
    void ensure_connected();
    void connect_once();
    void backoff_sleep();

    /// Writes one encoded frame, honoring the fault injector; throws
    /// std::system_error on transport failure.
    void send_frame(const std::string& encoded);
    /// Reads until one complete frame is decoded or the deadline passes.
    [[nodiscard]] Frame read_frame();

    /// One request/reply exchange with reconnect-and-retry around it.  The
    /// frame is encoded *inside* the loop, after the connection (and thus
    /// the negotiated protocol version) is established — a frame built for
    /// v2 must not survive a reconnect that lands on a v1 server.
    [[nodiscard]] Frame exchange(const std::function<std::string()>& encode);

    /// Trace context to inject into an outgoing frame: the calling thread's
    /// active span when tracing is on and the connection negotiated v2,
    /// invalid (encodes as a plain v1 frame) otherwise.
    [[nodiscard]] obs::TraceContext wire_trace() const noexcept;
    /// Feature vector to inject into an outgoing frame: `features` when the
    /// connection negotiated v3, empty (encodes as a plain v2 frame)
    /// otherwise.
    [[nodiscard]] FeatureVector wire_features(const FeatureVector& features) const;
    /// Raises NetError for an Error frame, otherwise returns the frame.
    [[nodiscard]] static Frame reject_error(Frame frame);

    ClientOptions options_;
    FdHandle socket_;
    FrameDecoder decoder_;
    std::uint32_t negotiated_version_ = 0;  ///< 0 = not connected
    Rng backoff_rng_;
    std::chrono::milliseconds last_backoff_{0};
    std::vector<PendingReport> pending_;
    std::uint64_t reconnects_ = 0;
    std::uint64_t timeouts_ = 0;
    std::uint64_t reports_lost_ = 0;
};

} // namespace atk::net

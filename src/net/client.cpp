#include "net/client.hpp"

#include <algorithm>
#include <cerrno>
#include <sys/socket.h>
#include <system_error>
#include <thread>
#include <unistd.h>
#include <utility>

#include "obs/span.hpp"

namespace atk::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

/// Hard reset: SO_LINGER with zero timeout makes close() send RST instead
/// of FIN, which is what the fault injector wants the server to observe.
void reset_socket(FdHandle& socket) {
    if (!socket.valid()) return;
    struct linger hard {};
    hard.l_onoff = 1;
    hard.l_linger = 0;
    ::setsockopt(socket.get(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    socket.reset();
}

} // namespace

TuningClient::TuningClient(ClientOptions options)
    : options_(std::move(options)), decoder_(options_.max_payload),
      backoff_rng_(options_.backoff_seed) {
    if (options_.port == 0)
        throw std::invalid_argument("TuningClient: port must be set");
    if (options_.max_attempts == 0)
        throw std::invalid_argument("TuningClient: max_attempts must be positive");
}

TuningClient::~TuningClient() {
    try {
        flush_reports();
    } catch (...) {
        // Destructor: losses are already counted in reports_lost_.
    }
    disconnect();
}

void TuningClient::disconnect() noexcept {
    socket_.reset();
    decoder_ = FrameDecoder(options_.max_payload);
    negotiated_version_ = 0;
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

void TuningClient::backoff_sleep() {
    const auto base = static_cast<double>(options_.backoff_base.count());
    const auto cap = static_cast<double>(options_.backoff_cap.count());
    // Decorrelated jitter: next ~ uniform(base, 3 × previous), capped.
    const double previous = static_cast<double>(last_backoff_.count());
    const double hi = std::max(base, previous * 3.0);
    double next = base;
    if (hi > base) next = base + backoff_rng_.uniform_real(0.0, hi - base);
    next = std::min(next, cap);
    last_backoff_ = std::chrono::milliseconds(static_cast<std::int64_t>(next));
    std::this_thread::sleep_for(last_backoff_);
}

void TuningClient::connect_once() {
    // Open at our newest version; a server refusing it with VersionMismatch
    // (pre-v2 builds refuse anything but their own version) gets one
    // downgrade retry at the oldest version we still speak.
    for (const std::uint32_t version : {kProtocolVersion, kMinProtocolVersion}) {
        socket_ = connect_tcp(options_.host, options_.port, options_.request_timeout);
        decoder_ = FrameDecoder(options_.max_payload);
        send_frame(encode_hello({version, options_.client_name}));
        Frame reply = read_frame();
        if (reply.type == FrameType::Error) {
            ErrorMsg error;
            try {
                error = decode_error(reply);
            } catch (const WireError&) {
                error = {ErrorCode::Internal, "undecodable Error frame"};
            }
            disconnect();
            if (error.code == ErrorCode::VersionMismatch &&
                version != kMinProtocolVersion)
                continue;  // downgrade and try again
            // Any other handshake refusal (or a refusal of our oldest
            // version) will not improve with retries: surface it as final.
            throw NetError("handshake refused: " + error.message);
        }
        HelloOkMsg ok;
        try {
            ok = decode_hello_ok(reply);
        } catch (const WireError& e) {
            disconnect();
            throw NetError(std::string("handshake violated the protocol: ") +
                           e.what());
        }
        // Never speak newer than what we offered, whatever the server says.
        negotiated_version_ = std::min(ok.version, version);
        last_backoff_ = std::chrono::milliseconds(0);
        return;
    }
}

void TuningClient::ensure_connected() {
    if (!socket_.valid()) connect_once();
}

void TuningClient::send_frame(const std::string& encoded) {
    WireFaultInjector::FrameFate fate;
    if (options_.fault) fate = options_.fault->plan_frame(encoded.size());

    const auto write_all = [this](const char* data, std::size_t size) {
        std::size_t at = 0;
        while (at < size) {
            const ::ssize_t sent =
                ::send(socket_.get(), data + at, size - at, MSG_NOSIGNAL);
            if (sent < 0) {
                if (errno == EINTR) continue;
                throw std::system_error(errno, std::generic_category(),
                                        "net: send");
            }
            at += static_cast<std::size_t>(sent);
        }
    };

    if (fate.reset) {
        if (fate.reset_after > 0) write_all(encoded.data(), fate.reset_after);
        reset_socket(socket_);
        throw std::system_error(ECONNRESET, std::generic_category(),
                                "net: injected connection reset");
    }
    if (!fate.chunk_sizes.empty()) {
        std::size_t at = 0;
        for (const std::size_t chunk : fate.chunk_sizes) {
            write_all(encoded.data() + at, chunk);
            at += chunk;
        }
        return;
    }
    write_all(encoded.data(), encoded.size());
}

Frame TuningClient::read_frame() {
    const auto deadline = std::chrono::steady_clock::now() + options_.request_timeout;
    char chunk[kReadChunk];
    for (;;) {
        if (auto frame = decoder_.next()) return std::move(*frame);
        if (decoder_.error()) {
            const std::string what = decoder_.error_message();
            disconnect();
            throw NetError("server sent a malformed frame: " + what);
        }
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) {
            ++timeouts_;
            throw std::system_error(ETIMEDOUT, std::generic_category(),
                                    "net: request timed out");
        }
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
        if (!wait_readable(socket_.get(), std::max(left, std::chrono::milliseconds(1))))
            continue;  // deadline recheck above
        const ::ssize_t got = ::recv(socket_.get(), chunk, sizeof(chunk), 0);
        if (got < 0) {
            if (errno == EINTR) continue;
            throw std::system_error(errno, std::generic_category(), "net: recv");
        }
        if (got == 0)
            throw std::system_error(ECONNRESET, std::generic_category(),
                                    "net: server closed the connection");
        decoder_.feed(chunk, static_cast<std::size_t>(got));
    }
}

obs::TraceContext TuningClient::wire_trace() const noexcept {
    if (negotiated_version_ < 2 || !obs::Tracer::enabled()) return {};
    return obs::current_trace_context();
}

FeatureVector TuningClient::wire_features(const FeatureVector& features) const {
    if (negotiated_version_ < 3) return {};
    return features;
}

Frame TuningClient::exchange(const std::function<std::string()>& encode) {
    std::string last_error;
    for (std::size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
        if (attempt > 0) {
            ++reconnects_;
            backoff_sleep();
        }
        try {
            ensure_connected();
            // Encoded only now: the frame layout may depend on the protocol
            // version this (re)connection negotiated.
            send_frame(encode());
            return read_frame();
        } catch (const std::system_error& e) {
            last_error = e.what();
            disconnect();
        }
    }
    throw NetError("request failed after " + std::to_string(options_.max_attempts) +
                   " attempt(s): " + last_error);
}

Frame TuningClient::reject_error(Frame frame) {
    if (frame.type == FrameType::Error) {
        const ErrorMsg error = decode_error(frame);
        // Typed: the request reached a live server and was refused.  Callers
        // that route around dead nodes (FleetClient) must not fail over on
        // this — every node would refuse the same request.
        throw RemoteError(error.code,
                          "server error " +
                              std::to_string(static_cast<unsigned>(error.code)) +
                              ": " + error.message);
    }
    return frame;
}

// ---------------------------------------------------------------------------
// Blocking API
// ---------------------------------------------------------------------------

runtime::Ticket TuningClient::recommend(const std::string& session) {
    return recommend(session, FeatureVector{});
}

runtime::Ticket TuningClient::recommend(const std::string& session,
                                        const FeatureVector& features) {
    flush_reports();
    // The span covers the whole round trip and is the parent the server's
    // worker adopts when the frame carries our trace context.
    obs::Span span("client.recommend");
    const Frame reply = reject_error(exchange([&] {
        return encode_recommend({session, wire_features(features), wire_trace()});
    }));
    return decode_recommendation(reply).ticket;
}

std::vector<runtime::Ticket> TuningClient::recommend_many(
    const std::vector<std::string>& sessions) {
    flush_reports();
    std::string last_error;
    for (std::size_t attempt = 0; attempt < options_.max_attempts; ++attempt) {
        if (attempt > 0) {
            ++reconnects_;
            backoff_sleep();
        }
        try {
            ensure_connected();
            obs::Span span("client.recommend_many");
            // The pipelined path: all requests on the wire before the first
            // reply is read; replies come back in request order.
            for (const std::string& session : sessions)
                send_frame(encode_recommend({session, {}, wire_trace()}));
            std::vector<runtime::Ticket> tickets;
            tickets.reserve(sessions.size());
            for (std::size_t i = 0; i < sessions.size(); ++i) {
                const Frame reply = reject_error(read_frame());
                tickets.push_back(decode_recommendation(reply).ticket);
            }
            return tickets;
        } catch (const std::system_error& e) {
            last_error = e.what();
            disconnect();
        }
    }
    throw NetError("pipelined recommend failed after " +
                   std::to_string(options_.max_attempts) +
                   " attempt(s): " + last_error);
}

bool TuningClient::report(const std::string& session, const runtime::Ticket& ticket,
                          Cost cost) {
    return report_batch(session, {{ticket, cost}}) == 1;
}

bool TuningClient::report(const std::string& session, const runtime::Ticket& ticket,
                          Cost cost, const FeatureVector& features) {
    return report_batch(session, {{ticket, cost}}, features) == 1;
}

std::size_t TuningClient::report_batch(
    const std::string& session, const std::vector<runtime::BatchedMeasurement>& batch,
    const FeatureVector& features) {
    flush_reports();
    obs::Span span("client.report");
    const Frame reply = reject_error(exchange([&] {
        return encode_report({session, batch, wire_features(features), wire_trace()},
                             /*ack_requested=*/true);
    }));
    return decode_report_ok(reply).accepted;
}

void TuningClient::report_async(const std::string& session,
                                const runtime::Ticket& ticket, Cost cost) {
    pending_.push_back({session, {ticket, cost}});
    if (pending_.size() >= options_.async_batch_size) flush_reports();
}

void TuningClient::flush_reports() {
    if (pending_.empty()) return;
    std::vector<PendingReport> pending;
    pending.swap(pending_);
    try {
        ensure_connected();
        obs::Span span("client.flush_reports");
        // One unacked frame per distinct session, original order preserved
        // within each (the aggregator sees the same sequence the client
        // measured).
        std::vector<std::string> order;
        for (const PendingReport& p : pending)
            if (std::find(order.begin(), order.end(), p.session) == order.end())
                order.push_back(p.session);
        for (const std::string& session : order) {
            ReportMsg msg;
            msg.session = session;
            msg.trace = wire_trace();
            for (const PendingReport& p : pending)
                if (p.session == session) msg.batch.push_back(p.measurement);
            send_frame(encode_report(msg, /*ack_requested=*/false));
        }
    } catch (const std::system_error&) {
        // Fire-and-forget semantics: a dead connection costs the buffered
        // reports (counted), never the caller's control flow.
        reports_lost_ += pending.size();
        disconnect();
    } catch (const NetError&) {
        reports_lost_ += pending.size();
        disconnect();
        throw;  // handshake-level refusals should be loud
    }
}

std::string TuningClient::snapshot() {
    flush_reports();
    const Frame reply =
        reject_error(exchange([] { return encode_snapshot_request(); }));
    return decode_snapshot_ok(reply).payload;
}

std::size_t TuningClient::restore(const std::string& payload) {
    flush_reports();
    const Frame reply =
        reject_error(exchange([&] { return encode_restore({payload}); }));
    return static_cast<std::size_t>(decode_restore_ok(reply).sessions_restored);
}

runtime::ServiceStats TuningClient::stats() {
    flush_reports();
    const Frame reply =
        reject_error(exchange([] { return encode_stats_request(); }));
    return decode_stats_ok(reply).stats;
}

std::vector<SessionHealthEntry> TuningClient::health(const std::string& session) {
    flush_reports();
    const Frame reply = reject_error(exchange([&] {
        if (negotiated_version_ < 2)
            throw NetError("server negotiated protocol version " +
                           std::to_string(negotiated_version_) +
                           "; Health frames need version 2");
        return encode_health({session});
    }));
    return decode_health_ok(reply).sessions;
}

// ---------------------------------------------------------------------------
// Peer (fleet) exchanges, v4
// ---------------------------------------------------------------------------

namespace {

/// Shared guard for the peer methods: encode only once the connection
/// negotiated v4, so a v3-only peer yields a clean NetError (with
/// negotiated_version() telling the caller why) instead of a protocol
/// violation on the wire.
void require_v4(std::uint32_t negotiated) {
    if (negotiated < 4)
        throw NetError("server negotiated protocol version " +
                       std::to_string(negotiated) +
                       "; peer frames need version 4");
}

} // namespace

PeerHelloOkMsg TuningClient::peer_hello(const PeerHelloMsg& msg) {
    flush_reports();
    obs::Span span("client.peer_hello");
    const Frame reply = reject_error(exchange([&] {
        require_v4(negotiated_version_);
        return encode_peer_hello(msg);
    }));
    return decode_peer_hello_ok(reply);
}

SnapshotPushOkMsg TuningClient::snapshot_push(const SnapshotPushMsg& msg) {
    flush_reports();
    obs::Span span("client.snapshot_push");
    const Frame reply = reject_error(exchange([&] {
        require_v4(negotiated_version_);
        return encode_snapshot_push(msg);
    }));
    return decode_snapshot_push_ok(reply);
}

SnapshotPullOkMsg TuningClient::snapshot_pull(const std::string& node) {
    flush_reports();
    obs::Span span("client.snapshot_pull");
    const Frame reply = reject_error(exchange([&] {
        require_v4(negotiated_version_);
        return encode_snapshot_pull({node});
    }));
    return decode_snapshot_pull_ok(reply);
}

PeerStatsOkMsg TuningClient::peer_stats() {
    flush_reports();
    const Frame reply = reject_error(exchange([&] {
        require_v4(negotiated_version_);
        return encode_peer_stats_request();
    }));
    return decode_peer_stats_ok(reply);
}

} // namespace atk::net

#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>

namespace atk::net {

/// Owning file-descriptor handle: closes on destruction, move-only.  The
/// thin base every socket in the net layer sits on — raw fds never cross a
/// function boundary unowned.
class FdHandle {
public:
    FdHandle() = default;
    explicit FdHandle(int fd) noexcept : fd_(fd) {}
    ~FdHandle() { reset(); }

    FdHandle(const FdHandle&) = delete;
    FdHandle& operator=(const FdHandle&) = delete;
    FdHandle(FdHandle&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
    FdHandle& operator=(FdHandle&& other) noexcept {
        if (this != &other) {
            reset();
            fd_ = std::exchange(other.fd_, -1);
        }
        return *this;
    }

    [[nodiscard]] int get() const noexcept { return fd_; }
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
    /// Releases ownership without closing.
    [[nodiscard]] int release() noexcept { return std::exchange(fd_, -1); }
    void reset() noexcept;

private:
    int fd_ = -1;
};

/// Marks the descriptor non-blocking (O_NONBLOCK); throws std::system_error.
void set_nonblocking(int fd);

/// Disables Nagle batching — the protocol is request/response with small
/// frames, where coalescing costs a full RTT of latency per exchange.
void set_tcp_nodelay(int fd);

/// Creates a listening TCP socket bound to `address:port` (port 0 picks an
/// ephemeral port).  SO_REUSEADDR is set so tests can rebind immediately.
/// Returns the socket and the actually bound port.
[[nodiscard]] std::pair<FdHandle, std::uint16_t> listen_tcp(
    const std::string& address, std::uint16_t port, int backlog = 128);

/// Blocking TCP connect with a deadline; throws std::system_error on
/// failure or timeout.  The returned socket is in blocking mode with
/// TCP_NODELAY set.
[[nodiscard]] FdHandle connect_tcp(const std::string& address, std::uint16_t port,
                                   std::chrono::milliseconds timeout);

/// poll() the descriptor for readability until the deadline.  Returns false
/// on timeout; throws std::system_error on poll failure or socket error.
[[nodiscard]] bool wait_readable(int fd, std::chrono::milliseconds timeout);

} // namespace atk::net

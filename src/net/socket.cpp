#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <system_error>
#include <unistd.h>

namespace atk::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in make_addr(const std::string& address, std::uint16_t port) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1)
        throw std::invalid_argument("net: '" + address +
                                    "' is not an IPv4 address literal");
    return addr;
}

} // namespace

void FdHandle::reset() noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throw_errno("net: fcntl(O_NONBLOCK)");
}

void set_tcp_nodelay(int fd) {
    const int one = 1;
    if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) < 0)
        throw_errno("net: setsockopt(TCP_NODELAY)");
}

std::pair<FdHandle, std::uint16_t> listen_tcp(const std::string& address,
                                              std::uint16_t port, int backlog) {
    FdHandle fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) throw_errno("net: socket()");
    const int one = 1;
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0)
        throw_errno("net: setsockopt(SO_REUSEADDR)");
    sockaddr_in addr = make_addr(address, port);
    if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0)
        throw_errno("net: bind(" + address + ":" + std::to_string(port) + ")");
    if (::listen(fd.get(), backlog) < 0) throw_errno("net: listen()");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) < 0)
        throw_errno("net: getsockname()");
    return {std::move(fd), ntohs(bound.sin_port)};
}

FdHandle connect_tcp(const std::string& address, std::uint16_t port,
                     std::chrono::milliseconds timeout) {
    FdHandle fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!fd.valid()) throw_errno("net: socket()");
    set_nonblocking(fd.get());
    sockaddr_in addr = make_addr(address, port);
    const int rc =
        ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (rc < 0 && errno != EINPROGRESS)
        throw_errno("net: connect(" + address + ":" + std::to_string(port) + ")");
    if (rc < 0) {
        pollfd pfd{fd.get(), POLLOUT, 0};
        const int ready =
            ::poll(&pfd, 1, static_cast<int>(timeout.count()));
        if (ready < 0) throw_errno("net: poll(connect)");
        if (ready == 0)
            throw std::system_error(ETIMEDOUT, std::generic_category(),
                                    "net: connect timed out after " +
                                        std::to_string(timeout.count()) + " ms");
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0)
            throw_errno("net: getsockopt(SO_ERROR)");
        if (err != 0)
            throw std::system_error(err, std::generic_category(),
                                    "net: connect(" + address + ":" +
                                        std::to_string(port) + ")");
    }
    // Back to blocking: the client API is synchronous and uses poll() for
    // its own deadlines.
    const int flags = ::fcntl(fd.get(), F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) < 0)
        throw_errno("net: fcntl(clear O_NONBLOCK)");
    set_tcp_nodelay(fd.get());
    return fd;
}

bool wait_readable(int fd, std::chrono::milliseconds timeout) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
    if (ready < 0) throw_errno("net: poll(read)");
    if (ready == 0) return false;
    if ((pfd.revents & (POLLERR | POLLNVAL)) != 0)
        throw std::system_error(EIO, std::generic_category(), "net: socket error");
    return true;  // POLLIN or POLLHUP: either way read() will not block
}

} // namespace atk::net

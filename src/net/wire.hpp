#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace atk::net {

/// Any structural defect in bytes received from a peer: truncated payload,
/// length field overrunning the frame, string longer than the remaining
/// bytes.  Peers are untrusted, so this is an expected runtime condition —
/// the dispatcher answers with a typed error frame instead of crashing —
/// and deliberately distinct from std::invalid_argument, which the codebase
/// reserves for caller bugs.
class WireError : public std::runtime_error {
public:
    explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends little-endian fixed-width primitives to a byte buffer.  All
/// multi-byte integers on the wire are little-endian regardless of host
/// order; doubles travel as their IEEE-754 bit pattern in a u64.
class WireWriter {
public:
    void put_u8(std::uint8_t value);
    void put_u16(std::uint16_t value);
    void put_u32(std::uint32_t value);
    void put_u64(std::uint64_t value);
    void put_i64(std::int64_t value);
    void put_f64(double value);
    /// u32 byte count followed by the raw bytes (no terminator).
    void put_str(const std::string& value);

    [[nodiscard]] const std::string& str() const noexcept { return out_; }
    [[nodiscard]] std::string take() noexcept { return std::move(out_); }
    [[nodiscard]] std::size_t size() const noexcept { return out_.size(); }

private:
    std::string out_;
};

/// Sequential reader over one frame payload.  Every getter throws WireError
/// when the remaining bytes cannot satisfy the read — malformed input from
/// the network must never turn into an over-read.
class WireReader {
public:
    /// Reads from `data`, which must outlive the reader (it aliases the
    /// frame's payload buffer; nothing is copied).
    explicit WireReader(const std::string& data) noexcept
        : data_(data.data()), size_(data.size()) {}
    WireReader(const char* data, std::size_t size) noexcept
        : data_(data), size_(size) {}

    [[nodiscard]] std::uint8_t get_u8();
    [[nodiscard]] std::uint16_t get_u16();
    [[nodiscard]] std::uint32_t get_u32();
    [[nodiscard]] std::uint64_t get_u64();
    [[nodiscard]] std::int64_t get_i64();
    [[nodiscard]] double get_f64();
    [[nodiscard]] std::string get_str();

    /// Reads a u32 element count and validates it against the bytes left:
    /// each element needs at least `min_element_bytes`, so a count the rest
    /// of the payload cannot hold is rejected before any allocation sized
    /// by it — a flipped length byte must not become a giant reserve().
    [[nodiscard]] std::size_t get_count(std::size_t min_element_bytes);

    [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
    [[nodiscard]] bool at_end() const noexcept { return pos_ >= size_; }

private:
    const char* require(std::size_t bytes);

    const char* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

} // namespace atk::net

#pragma once

/// atk::net — serving the tuning runtime over TCP.
///
/// A versioned, length-prefixed binary wire protocol (protocol.hpp) carried
/// over non-blocking epoll servers (server.hpp) and blocking/pipelined
/// clients (client.hpp), with seeded wire-fault injection for chaos tests
/// (wire_fault.hpp).  net sits above runtime in the layer DAG and is a leaf
/// like sim: the two never include each other.

#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "net/wire_fault.hpp"

#include "net/wire_fault.hpp"

#include <algorithm>
#include <stdexcept>

namespace atk::net {

WireFaultInjector::WireFaultInjector(const WireFaultPlan& plan)
    : plan_(plan), rng_(plan.seed) {
    if (plan_.split_probability < 0.0 || plan_.split_probability > 1.0 ||
        plan_.reset_probability < 0.0 || plan_.reset_probability > 1.0)
        throw std::invalid_argument("WireFaultPlan: probabilities must be in [0, 1]");
    if (plan_.max_split_chunks < 2)
        throw std::invalid_argument("WireFaultPlan: max_split_chunks must be >= 2");
}

WireFaultInjector::FrameFate WireFaultInjector::plan_frame(std::size_t frame_bytes) {
    ++frames_;
    FrameFate fate;
    // Order matters for determinism: both rolls always happen, so the
    // stream of random draws per frame is fixed regardless of outcomes.
    const bool reset = rng_.chance(plan_.reset_probability);
    const bool split = rng_.chance(plan_.split_probability);
    if (reset) {
        fate.reset = true;
        // A prefix in [0, frame_bytes): the peer never sees a whole frame.
        fate.reset_after = frame_bytes == 0 ? 0 : rng_.index(frame_bytes);
        ++resets_;
        return fate;
    }
    if (split && frame_bytes >= 2) {
        const std::size_t chunks =
            2 + rng_.index(std::min(plan_.max_split_chunks, frame_bytes) - 1);
        // Carve `frame_bytes` into `chunks` nonempty runs via sorted cuts.
        std::vector<std::size_t> cuts;
        cuts.reserve(chunks - 1);
        for (std::size_t c = 0; c + 1 < chunks; ++c)
            cuts.push_back(1 + rng_.index(frame_bytes - 1));
        std::sort(cuts.begin(), cuts.end());
        cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
        std::size_t previous = 0;
        for (const std::size_t cut : cuts) {
            fate.chunk_sizes.push_back(cut - previous);
            previous = cut;
        }
        fate.chunk_sizes.push_back(frame_bytes - previous);
        ++splits_;
    }
    return fate;
}

} // namespace atk::net

#include "net/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <system_error>
#include <unistd.h>

#include <unordered_map>
#include <utility>

#include "support/thread_annotations.hpp"

#include "obs/span.hpp"

namespace atk::net {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;
/// Epoll wait granularity: bounds how stale an idle sweep or a stop request
/// can get without costing measurable idle CPU.
constexpr int kTickMs = 50;

[[noreturn]] void throw_errno(const char* what) {
    throw std::system_error(errno, std::generic_category(), what);
}

} // namespace

/// Per-connection state; owned by exactly one worker thread, so none of it
/// is synchronized.
struct TuningServer::Connection {
    FdHandle fd;
    FrameDecoder decoder;
    std::string write_buf;
    std::size_t write_at = 0;       ///< flushed prefix of write_buf
    bool want_writable = false;     ///< EPOLLOUT currently registered
    bool handshaken = false;
    /// Protocol version negotiated at Hello: min(client, server).  v2-only
    /// requests (Health) from an older peer are protocol errors.
    std::uint32_t version = kProtocolVersion;
    bool close_after_flush = false; ///< fatal reply queued; close once sent
    std::chrono::steady_clock::time_point last_activity;

    explicit Connection(FdHandle socket, std::size_t max_payload)
        : fd(std::move(socket)), decoder(max_payload),
          last_activity(std::chrono::steady_clock::now()) {}

    [[nodiscard]] std::size_t unsent() const noexcept {
        return write_buf.size() - write_at;
    }
};

struct TuningServer::Worker {
    FdHandle epoll;
    FdHandle wake;  ///< eventfd the acceptor pings after filling the inbox
    Mutex inbox_mutex;
    std::vector<FdHandle> inbox
        ATK_GUARDED_BY(inbox_mutex);  ///< accepted sockets awaiting adoption
    // Everything below is worker-thread-private: connections never migrate,
    // so only inbox handoff needs a lock.
    std::unordered_map<int, std::unique_ptr<Connection>> connections;
    std::thread thread;
};

TuningServer::TuningServer(runtime::TuningService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {
    if (options_.worker_threads == 0)
        throw std::invalid_argument("TuningServer: worker_threads must be positive");
    if (options_.write_hard_cap < options_.write_high_watermark)
        throw std::invalid_argument(
            "TuningServer: write_hard_cap below write_high_watermark");
}

TuningServer::~TuningServer() { stop(); }

void TuningServer::start() {
    if (started_.exchange(true, std::memory_order_acq_rel))
        throw std::logic_error("TuningServer: start() called twice");
    auto [fd, port] = listen_tcp(options_.bind_address, options_.port);
    listen_fd_ = std::move(fd);
    port_ = port;
    set_nonblocking(listen_fd_.get());

    workers_.reserve(options_.worker_threads);
    for (std::size_t w = 0; w < options_.worker_threads; ++w) {
        auto worker = std::make_unique<Worker>();
        worker->epoll = FdHandle(::epoll_create1(EPOLL_CLOEXEC));
        if (!worker->epoll.valid()) throw_errno("net: epoll_create1");
        worker->wake = FdHandle(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
        if (!worker->wake.valid()) throw_errno("net: eventfd");
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = worker->wake.get();
        if (::epoll_ctl(worker->epoll.get(), EPOLL_CTL_ADD, worker->wake.get(), &ev) < 0)
            throw_errno("net: epoll_ctl(wake)");
        workers_.push_back(std::move(worker));
    }
    for (auto& worker : workers_)
        worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
    acceptor_ = std::thread([this] { accept_loop(); });
}

void TuningServer::stop() {
    if (!started_.load(std::memory_order_acquire)) return;
    if (stopping_.exchange(true, std::memory_order_acq_rel)) {
        // A second caller (or the destructor after an explicit stop) only
        // needs the joins below to have finished; they are idempotent via
        // joinable().
    }
    if (acceptor_.joinable()) acceptor_.join();
    for (auto& worker : workers_) {
        const std::uint64_t one = 1;
        if (worker->wake.valid())
            [[maybe_unused]] const auto n =
                ::write(worker->wake.get(), &one, sizeof(one));
        if (worker->thread.joinable()) worker->thread.join();
    }
}

std::size_t TuningServer::active_connections() const {
    // Monitoring counter; workers mutate it independently and no memory is
    // published through it.  atk-lint: allow(relaxed)
    return active_connections_.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Acceptor
// ---------------------------------------------------------------------------

void TuningServer::accept_loop() {
    while (!stopping_.load(std::memory_order_acquire)) {
        if (!wait_readable(listen_fd_.get(), std::chrono::milliseconds(kTickMs)))
            continue;
        for (;;) {
            const int raw = ::accept4(listen_fd_.get(), nullptr, nullptr,
                                      SOCK_NONBLOCK | SOCK_CLOEXEC);
            if (raw < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK) break;
                if (errno == EINTR || errno == ECONNABORTED) continue;
                break;  // transient accept failure; retry on the next tick
            }
            FdHandle socket(raw);
            try {
                set_tcp_nodelay(socket.get());
            } catch (const std::system_error&) {
                continue;  // peer vanished between accept and setsockopt
            }
            Worker& worker = *workers_[next_worker_];
            next_worker_ = (next_worker_ + 1) % workers_.size();
            {
                MutexLock lock(worker.inbox_mutex);
                worker.inbox.push_back(std::move(socket));
            }
            const std::uint64_t one = 1;
            [[maybe_unused]] const auto n =
                ::write(worker.wake.get(), &one, sizeof(one));
            service_.metrics().counter("net_connections").increment();
        }
    }
    listen_fd_.reset();  // stop owning the port as soon as draining begins
}

// ---------------------------------------------------------------------------
// Worker event loop
// ---------------------------------------------------------------------------

void TuningServer::adopt_inbox(Worker& worker) {
    std::vector<FdHandle> adopted;
    {
        MutexLock lock(worker.inbox_mutex);
        adopted.swap(worker.inbox);
    }
    for (FdHandle& socket : adopted) {
        const int fd = socket.get();
        auto conn = std::make_unique<Connection>(std::move(socket), options_.max_payload);
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(worker.epoll.get(), EPOLL_CTL_ADD, fd, &ev) < 0) continue;
        worker.connections.emplace(fd, std::move(conn));
        active_connections_.fetch_add(1, std::memory_order_relaxed);  // atk-lint: allow(relaxed)
        service_.metrics().gauge("net_connections_active")
            .set(static_cast<double>(
                active_connections_.load(std::memory_order_relaxed)));  // atk-lint: allow(relaxed)
    }
}

void TuningServer::worker_loop(Worker& worker) {
    std::chrono::steady_clock::time_point drain_deadline{};
    bool draining = false;
    epoll_event events[64];
    for (;;) {
        const int n = ::epoll_wait(worker.epoll.get(), events, 64, kTickMs);
        const auto now = std::chrono::steady_clock::now();
        if (stopping_.load(std::memory_order_acquire) && !draining) {
            draining = true;
            drain_deadline = now + options_.drain_timeout;
        }
        for (int i = 0; i < n; ++i) {
            const int fd = events[i].data.fd;
            if (fd == worker.wake.get()) {
                std::uint64_t drained = 0;
                [[maybe_unused]] const auto r =
                    ::read(worker.wake.get(), &drained, sizeof(drained));
                adopt_inbox(worker);
                continue;
            }
            const auto it = worker.connections.find(fd);
            if (it == worker.connections.end()) continue;
            Connection& conn = *it->second;
            if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
                close_connection(worker, conn);
                continue;
            }
            if ((events[i].events & EPOLLOUT) != 0) flush_writes(worker, conn);
            if ((events[i].events & EPOLLIN) != 0 &&
                worker.connections.count(fd) != 0)
                handle_readable(worker, conn);
        }
        adopt_inbox(worker);  // cover wake ticks coalesced with a burst of events
        sweep(worker, now, drain_deadline);
        if (draining && worker.connections.empty()) break;
    }
    worker.connections.clear();
}

void TuningServer::sweep(Worker& worker, std::chrono::steady_clock::time_point now,
                         std::chrono::steady_clock::time_point drain_deadline) {
    const bool draining = stopping_.load(std::memory_order_acquire);
    std::vector<int> doomed;
    for (auto& [fd, conn] : worker.connections) {
        if (draining) {
            // Drain policy: quiet connections leave now, everyone leaves at
            // the deadline.  In between, reads keep being served so a
            // request already on the wire still gets its reply.
            if (now >= drain_deadline || (conn->unsent() == 0 && conn->decoder.buffered() == 0))
                doomed.push_back(fd);
            continue;
        }
        if (conn->close_after_flush && conn->unsent() == 0) {
            doomed.push_back(fd);
            continue;
        }
        if (options_.idle_timeout.count() > 0 &&
            now - conn->last_activity > options_.idle_timeout) {
            service_.metrics().counter("net_idle_closed").increment();
            doomed.push_back(fd);
        }
    }
    for (const int fd : doomed) {
        const auto it = worker.connections.find(fd);
        if (it != worker.connections.end()) close_connection(worker, *it->second);
    }
}

void TuningServer::close_connection(Worker& worker, Connection& conn) {
    const int fd = conn.fd.get();
    ::epoll_ctl(worker.epoll.get(), EPOLL_CTL_DEL, fd, nullptr);
    worker.connections.erase(fd);  // destroys conn; fd closes via FdHandle
    active_connections_.fetch_sub(1, std::memory_order_relaxed);  // atk-lint: allow(relaxed)
    service_.metrics().gauge("net_connections_active")
        .set(static_cast<double>(
            active_connections_.load(std::memory_order_relaxed)));  // atk-lint: allow(relaxed)
}

void TuningServer::update_epoll_interest(Worker& worker, Connection& conn) {
    const bool want = conn.unsent() > 0;
    if (want == conn.want_writable) return;
    epoll_event ev{};
    ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
    ev.data.fd = conn.fd.get();
    if (::epoll_ctl(worker.epoll.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev) == 0)
        conn.want_writable = want;
}

void TuningServer::flush_writes(Worker& worker, Connection& conn) {
    while (conn.unsent() > 0) {
        const ::ssize_t sent =
            ::send(conn.fd.get(), conn.write_buf.data() + conn.write_at,
                   conn.unsent(), MSG_NOSIGNAL);
        if (sent < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            close_connection(worker, conn);
            return;
        }
        conn.write_at += static_cast<std::size_t>(sent);
        conn.last_activity = std::chrono::steady_clock::now();
    }
    if (conn.unsent() == 0) {
        conn.write_buf.clear();
        conn.write_at = 0;
        if (conn.close_after_flush) {
            close_connection(worker, conn);
            return;
        }
    } else if (conn.write_at > kReadChunk) {
        conn.write_buf.erase(0, conn.write_at);
        conn.write_at = 0;
    }
    update_epoll_interest(worker, conn);
}

void TuningServer::handle_readable(Worker& worker, Connection& conn) {
    if (conn.close_after_flush) {  // fatal reply pending: ignore further input
        flush_writes(worker, conn);
        return;
    }
    char chunk[kReadChunk];
    for (;;) {
        const ::ssize_t got = ::recv(conn.fd.get(), chunk, sizeof(chunk), 0);
        if (got < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            close_connection(worker, conn);
            return;
        }
        if (got == 0) {  // orderly peer close
            close_connection(worker, conn);
            return;
        }
        conn.last_activity = std::chrono::steady_clock::now();
        {
            obs::Span span("net.decode");
            conn.decoder.feed(chunk, static_cast<std::size_t>(got));
        }
        while (auto frame = conn.decoder.next()) {
            service_.metrics().counter("net_frames_rx").increment();
            if (!dispatch(conn, *frame)) {
                conn.close_after_flush = true;
                break;
            }
        }
        if (conn.decoder.error() && !conn.close_after_flush) {
            service_.metrics().counter("net_decode_errors").increment();
            enqueue_reply(conn,
                          encode_error({ErrorCode::BadFrame,
                                        conn.decoder.error_message()}),
                          /*droppable=*/false);
            conn.close_after_flush = true;
        }
        if (conn.close_after_flush) break;
    }
    const int fd = conn.fd.get();
    if (worker.connections.count(fd) == 0) return;  // closed above
    flush_writes(worker, conn);  // may close (and free) conn — recheck by fd
    if (worker.connections.count(fd) != 0 &&
        conn.close_after_flush && conn.unsent() == 0)
        close_connection(worker, conn);
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

bool TuningServer::dispatch(Connection& conn, const Frame& frame) {
    obs::Span span("net.dispatch");
    bool close_after = false;
    std::string reply;
    try {
        reply = make_reply(conn, frame, close_after);
    } catch (const WireError& e) {
        service_.metrics().counter("net_decode_errors").increment();
        reply = encode_error({ErrorCode::BadFrame, e.what()});
        close_after = true;
    } catch (const std::invalid_argument& e) {
        reply = encode_error({ErrorCode::BadRequest, e.what()});
    } catch (const runtime::QuotaExceededError& e) {
        // Typed, non-fatal: the tenant is over its session quota.  The
        // connection stays up — other tenants' sessions are unaffected.
        service_.metrics().counter("net_quota_rejections").increment();
        reply = encode_error({ErrorCode::QuotaExceeded, e.what()});
    } catch (const std::exception& e) {
        reply = encode_error({ErrorCode::Internal, e.what()});
    }
    if (!reply.empty()) {
        const bool droppable =
            frame.type == FrameType::Report && !close_after;
        enqueue_reply(conn, std::move(reply), droppable);
    }
    return !close_after;
}

std::string TuningServer::make_reply(Connection& conn, const Frame& frame,
                                     bool& close_after) {
    obs::Span span("net.encode");
    if (!conn.handshaken) {
        if (frame.type != FrameType::Hello) {
            service_.metrics().counter("net_protocol_errors").increment();
            close_after = true;
            return encode_error({ErrorCode::BadRequest,
                                 "connection must open with Hello"});
        }
        const HelloMsg hello = decode_hello(frame);
        if (hello.version < kMinProtocolVersion) {
            service_.metrics().counter("net_protocol_errors").increment();
            close_after = true;
            return encode_error(
                {ErrorCode::VersionMismatch,
                 "server speaks protocol versions " +
                     std::to_string(kMinProtocolVersion) + ".." +
                     std::to_string(kProtocolVersion) + ", client sent " +
                     std::to_string(hello.version)});
        }
        // A newer client downgrades to us, an older (but >= min) client is
        // served at its own version: we just never send it v2 constructs.
        conn.version = std::min(hello.version, kProtocolVersion);
        conn.handshaken = true;
        return encode_hello_ok({conn.version, options_.server_name});
    }
    switch (frame.type) {
        case FrameType::Recommend: {
            const RecommendMsg msg = decode_recommend(frame);
            // Adopt the client's trace context (when the frame carried the
            // v2 extension) so this span — and the tuner spans begin() opens
            // for a new session — land in the caller's distributed trace.
            obs::ScopedTraceContext trace_scope(msg.trace);
            obs::Span work("server.recommend");
            RecommendationMsg reply{msg.session,
                                    service_.begin(msg.session, msg.features)};
            return encode_recommendation(reply);
        }
        case FrameType::Report: {
            ReportMsg msg = decode_report(frame);
            obs::ScopedTraceContext trace_scope(msg.trace);
            obs::Span work("server.report");
            const std::size_t accepted =
                service_.report_batch(msg.session, msg.batch, msg.features);
            if ((frame.flags & kFlagAckRequested) == 0) return {};
            return encode_report_ok(
                {static_cast<std::uint32_t>(accepted),
                 static_cast<std::uint32_t>(msg.batch.size() - accepted)});
        }
        case FrameType::Health: {
            if (conn.version < 2) {
                service_.metrics().counter("net_protocol_errors").increment();
                close_after = true;
                return encode_error({ErrorCode::BadRequest,
                                     "Health frames need protocol version 2"});
            }
            const HealthMsg msg = decode_health(frame);
            HealthOkMsg reply;
            for (auto& [name, snapshot] : service_.health(msg.session))
                reply.sessions.push_back({name, std::move(snapshot)});
            return encode_health_ok(reply);
        }
        case FrameType::Snapshot: {
            if (!frame.payload.empty())
                throw WireError("wire: Snapshot carries no payload");
            return encode_snapshot_ok({service_.snapshot_payload()});
        }
        case FrameType::Restore: {
            const RestoreMsg msg = decode_restore(frame);
            return encode_restore_ok({service_.restore_payload(msg.payload)});
        }
        case FrameType::Stats: {
            if (!frame.payload.empty())
                throw WireError("wire: Stats carries no payload");
            // The negotiated version picks the StatsOk layout: v4 peers get
            // the eviction/quota counters, older peers the 11-scalar form.
            return encode_stats_ok({service_.stats()}, conn.version);
        }
        case FrameType::PeerHello:
        case FrameType::SnapshotPush:
        case FrameType::SnapshotPull:
        case FrameType::PeerStats: {
            if (conn.version < 4) {
                // Mirrors the Health-below-v2 gate: a peer that negotiated
                // an older version has no business sending v4 frames.
                service_.metrics().counter("net_protocol_errors").increment();
                close_after = true;
                return encode_error({ErrorCode::BadRequest,
                                     "peer frames need protocol version 4"});
            }
            if (!options_.peer_ops.enabled())
                return encode_error(
                    {ErrorCode::BadRequest,
                     "not a fleet node: no peer handlers installed"});
            obs::Span work("server.peer");
            if (frame.type == FrameType::PeerHello)
                return encode_peer_hello_ok(
                    options_.peer_ops.hello(decode_peer_hello(frame)));
            if (frame.type == FrameType::SnapshotPush)
                return encode_snapshot_push_ok(
                    options_.peer_ops.push(decode_snapshot_push(frame)));
            if (frame.type == FrameType::SnapshotPull)
                return encode_snapshot_pull_ok(
                    options_.peer_ops.pull(decode_snapshot_pull(frame)));
            if (!frame.payload.empty())
                throw WireError("wire: PeerStats carries no payload");
            return encode_peer_stats_ok(options_.peer_ops.stats());
        }
        default:
            service_.metrics().counter("net_protocol_errors").increment();
            close_after = true;
            return encode_error({ErrorCode::BadRequest,
                                 std::string("unexpected ") +
                                     frame_type_name(frame.type) +
                                     " frame from a client"});
    }
}

void TuningServer::enqueue_reply(Connection& conn, std::string encoded,
                                 bool droppable) {
    if (droppable && conn.unsent() > options_.write_high_watermark) {
        service_.metrics().counter("net_dropped_reports").increment();
        return;
    }
    if (conn.unsent() + encoded.size() > options_.write_hard_cap) {
        // A peer that stopped reading while requesting non-droppable
        // replies: cut it loose rather than buffer without bound.
        conn.close_after_flush = true;
        service_.metrics().counter("net_overflow_closed").increment();
        return;
    }
    conn.write_buf += encoded;
    service_.metrics().counter("net_frames_tx").increment();
}

} // namespace atk::net

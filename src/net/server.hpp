#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "runtime/service.hpp"

namespace atk::net {

/// Handlers for the v4 peer frame family.  The net layer cannot depend on
/// src/fleet (layering: fleet composes net, never the reverse), so a fleet
/// node injects its replication logic here; a server with no handlers
/// installed refuses peer frames with BadRequest ("not a fleet node").
/// Handlers run on server worker threads and must be thread-safe; throwing
/// std::invalid_argument maps to a BadRequest reply (e.g. ring-geometry
/// mismatch in PeerHello).
struct PeerOps {
    std::function<PeerHelloOkMsg(const PeerHelloMsg&)> hello;
    std::function<SnapshotPushOkMsg(const SnapshotPushMsg&)> push;
    std::function<SnapshotPullOkMsg(const SnapshotPullMsg&)> pull;
    std::function<PeerStatsOkMsg()> stats;

    [[nodiscard]] bool enabled() const noexcept {
        return hello && push && pull && stats;
    }
};

struct ServerOptions {
    /// IPv4 literal to bind; loopback by default — exposing a tuner to a
    /// fleet is an explicit decision.
    std::string bind_address = "127.0.0.1";
    /// 0 = ephemeral; the bound port is available from port() after start().
    std::uint16_t port = 0;
    /// Event-loop worker threads; connections are assigned round-robin at
    /// accept time and never migrate, so each connection's state is only
    /// ever touched by one thread.
    std::size_t worker_threads = 2;
    /// Frame payload cap enforced by every connection's decoder.
    std::size_t max_payload = kDefaultMaxPayload;
    /// Write-buffer high watermark: above this, replies to Report frames
    /// are dropped (and counted in `net_dropped_reports`) instead of
    /// buffered — the wire twin of the bounded queue's drop policy.  A
    /// reader slow enough to trip it has already stopped consuming acks.
    std::size_t write_high_watermark = 256 * 1024;
    /// Absolute write-buffer cap.  Non-droppable replies (snapshots to a
    /// reader that stopped reading) that would exceed it close the
    /// connection — the server never buffers a slow peer unboundedly.
    std::size_t write_hard_cap = 32u << 20;
    /// Connections with no traffic for this long are closed (0 disables).
    std::chrono::milliseconds idle_timeout{30000};
    /// stop() keeps serving already-connected clients for at most this
    /// long: reads continue (in-flight requests complete), no new
    /// connections are accepted, and a connection departs as soon as it is
    /// quiet.  At the deadline the rest are closed.
    std::chrono::milliseconds drain_timeout{2000};
    /// Name returned in HelloOk frames.
    std::string server_name = "atk-serve";
    /// Fleet peer-frame handlers; default-empty = not a fleet node.
    PeerOps peer_ops;
};

/// Serves a TuningService over TCP: one non-blocking acceptor thread plus
/// `worker_threads` epoll event loops.  The wire protocol is the versioned
/// length-prefixed frame format of net/protocol.hpp; every connection must
/// open with Hello and is refused on a version mismatch.
///
/// Threading: each connection lives on exactly one worker; the service's
/// own thread safety covers the actual tuning work, so no lock is held
/// around service calls.  Per-connection counters land in the service's
/// MetricsRegistry (`net_*` instruments) and the decode→dispatch→encode
/// path is span-traced.
///
/// The server borrows `service`; it must outlive the server.
class TuningServer {
public:
    explicit TuningServer(runtime::TuningService& service, ServerOptions options = {});
    ~TuningServer();

    TuningServer(const TuningServer&) = delete;
    TuningServer& operator=(const TuningServer&) = delete;

    /// Binds, listens and spawns the threads.  Throws std::system_error on
    /// bind/listen failure (port taken, privileged port, ...).
    void start();

    /// Graceful drain-then-shutdown (see ServerOptions::drain_timeout);
    /// idempotent, implied by the destructor.
    void stop();

    /// The bound port (useful with options.port = 0); valid after start().
    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    [[nodiscard]] bool running() const noexcept {
        return started_.load(std::memory_order_acquire) &&
               !stopping_.load(std::memory_order_acquire);
    }

    /// Connections currently open across all workers.
    [[nodiscard]] std::size_t active_connections() const;

private:
    struct Connection;
    struct Worker;

    void accept_loop();
    void worker_loop(Worker& worker);
    void adopt_inbox(Worker& worker);
    void handle_readable(Worker& worker, Connection& conn);
    void flush_writes(Worker& worker, Connection& conn);
    void close_connection(Worker& worker, Connection& conn);
    void sweep(Worker& worker, std::chrono::steady_clock::time_point now,
               std::chrono::steady_clock::time_point drain_deadline);

    /// Handles one decoded frame; returns false when the connection must
    /// close after its write buffer drains.
    bool dispatch(Connection& conn, const Frame& frame);
    /// Builds the reply for one request frame (the pure part of dispatch).
    [[nodiscard]] std::string make_reply(Connection& conn, const Frame& frame,
                                         bool& close_after);
    void enqueue_reply(Connection& conn, std::string encoded, bool droppable);
    void update_epoll_interest(Worker& worker, Connection& conn);

    runtime::TuningService& service_;
    ServerOptions options_;
    FdHandle listen_fd_;
    std::uint16_t port_ = 0;
    std::atomic<bool> started_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<std::size_t> active_connections_{0};
    std::vector<std::unique_ptr<Worker>> workers_;
    std::thread acceptor_;
    std::size_t next_worker_ = 0;  ///< round-robin cursor (acceptor thread only)
};

} // namespace atk::net

#pragma once

#include <memory>

#include "core/search/nelder_mead.hpp"
#include "core/tuner.hpp"
#include "raytrace/builder.hpp"
#include "raytrace/renderer.hpp"
#include "support/clock.hpp"

namespace atk::rt {

/// The two-stage rendering pipeline of case study 2: per frame, (1) an SAH
/// kD-tree is constructed by the selected algorithm with the selected
/// configuration, and (2) the frame is rendered through it.  The measured
/// frame time covers both stages — for the Lazy builder this naturally
/// charges on-demand subtree expansion to the frame that triggered it.
class RaytracePipeline {
public:
    RaytracePipeline(Scene scene, int image_width, int image_height,
                     std::size_t threads = 0);

    /// Builds with the given algorithm/config and renders one frame;
    /// returns the frame time in milliseconds.
    Millis render_frame(const KdBuilder& builder, const BuildConfig& config);

    /// Moves the camera along an orbit around the scene center (angle in
    /// radians; 0 restores the scene's own camera pose).  The paper renders
    /// a *static* scene; this models its introduction's point that the
    /// context can vary during runtime — a moving camera changes which
    /// parts of the tree rays traverse, drifting the cost landscape under
    /// the tuner (used by bench_ablation_dynamic_scene).
    void orbit_camera(float radians);

    [[nodiscard]] const Scene& scene() const noexcept { return scene_; }
    [[nodiscard]] ThreadPool& pool() noexcept { return pool_; }
    [[nodiscard]] const Image& last_image() const noexcept { return image_; }
    [[nodiscard]] const RenderStats& last_stats() const noexcept { return stats_; }

private:
    Scene scene_;
    ThreadPool pool_;
    Camera camera_;
    Image image_;
    RenderStats stats_;
    int image_width_;
    int image_height_;
};

/// Wires the four construction algorithms into phase-one tunable algorithms
/// (each with its own space, the hand-crafted default start, and a
/// Nelder-Mead searcher — the paper's choice for this step).
[[nodiscard]] std::vector<TunableAlgorithm> make_tunable_builders(
    const std::vector<std::unique_ptr<KdBuilder>>& builders,
    NelderMeadSearcher::Options nm_options = {});

} // namespace atk::rt

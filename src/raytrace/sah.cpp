#include "raytrace/sah.hpp"

#include <algorithm>
#include <cmath>

#include "support/thread_annotations.hpp"

namespace atk::rt {

float sah_split_cost(const Aabb& node_bounds, int axis, float position,
                     std::size_t n_left, std::size_t n_right, const SahParams& params) {
    Aabb left = node_bounds;
    Aabb right = node_bounds;
    left.hi.component(axis) = position;
    right.lo.component(axis) = position;
    const float area = node_bounds.surface_area();
    if (area <= 0.0f) return std::numeric_limits<float>::max();
    const float p_left = left.surface_area() / area;
    const float p_right = right.surface_area() / area;
    return params.traversal_cost +
           params.intersection_cost * (p_left * static_cast<float>(n_left) +
                                       p_right * static_cast<float>(n_right));
}

int auto_max_depth(std::size_t prim_count) noexcept {
    if (prim_count == 0) return 1;
    return static_cast<int>(
        std::round(8.0 + 1.3 * std::log2(static_cast<double>(prim_count))));
}

namespace {

struct Histogram {
    std::vector<std::uint32_t> starts;  // prims whose bounds begin in bin b
    std::vector<std::uint32_t> ends;    // prims whose bounds end in bin b

    explicit Histogram(int bins) : starts(bins, 0), ends(bins, 0) {}

    void merge(const Histogram& other) {
        for (std::size_t b = 0; b < starts.size(); ++b) {
            starts[b] += other.starts[b];
            ends[b] += other.ends[b];
        }
    }
};

} // namespace

SplitDecision find_best_split_binned(std::span<const std::uint32_t> prims,
                                     std::span<const Aabb> prim_bounds,
                                     const Aabb& node_bounds, const SahParams& params,
                                     int bins, ThreadPool* pool) {
    SplitDecision decision;
    decision.cost = params.intersection_cost * static_cast<float>(prims.size());
    if (prims.size() < 2) return decision;
    bins = std::max(2, bins);

    for (int axis = 0; axis < 3; ++axis) {
        const float lo = node_bounds.lo[axis];
        const float width = node_bounds.hi[axis] - lo;
        if (width <= 0.0f) continue;
        const float inv_bin_width = static_cast<float>(bins) / width;
        auto bin_of = [&](float x) {
            return std::clamp(static_cast<int>((x - lo) * inv_bin_width), 0, bins - 1);
        };

        Histogram histogram(bins);
        auto accumulate = [&](Histogram& h, std::size_t begin, std::size_t end) {
            for (std::size_t k = begin; k < end; ++k) {
                const Aabb& b = prim_bounds[prims[k]];
                h.starts[bin_of(b.lo[axis])] += 1;
                h.ends[bin_of(b.hi[axis])] += 1;
            }
        };
        if (pool != nullptr && prims.size() >= 4096) {
            // Data-parallel binning: per-chunk histograms, merged under a lock.
            Mutex merge_mutex;
            pool->parallel_for(
                0, prims.size(),
                [&](std::size_t begin, std::size_t end) {
                    Histogram local(bins);
                    accumulate(local, begin, end);
                    const MutexLock guard(merge_mutex);
                    histogram.merge(local);
                },
                2048);
        } else {
            accumulate(histogram, 0, prims.size());
        }

        // Sweep the interior bin boundaries. After bin k, the boundary sits
        // at lo + (k+1)/bins * width; prims whose bounds start at or before
        // it overlap the left side, prims ending after it overlap the right.
        std::size_t n_left = 0;
        std::size_t n_ended = 0;
        for (int k = 0; k + 1 < bins; ++k) {
            n_left += histogram.starts[k];
            n_ended += histogram.ends[k];
            const std::size_t n_right = prims.size() - n_ended;
            const float position =
                lo + width * static_cast<float>(k + 1) / static_cast<float>(bins);
            const float cost =
                sah_split_cost(node_bounds, axis, position, n_left, n_right, params);
            if (cost < decision.cost) {
                decision.make_leaf = false;
                decision.axis = axis;
                decision.position = position;
                decision.cost = cost;
            }
        }
    }

    if (!decision.make_leaf) {
        // Snap the plane to the nearest primitive boundary within half a bin
        // width: splits through the middle of axis-aligned geometry duplicate
        // every crossed primitive into both children, while a plane exactly
        // on a boundary separates cleanly (the cheap cousin of Wald-Havran's
        // exact "perfect splits").
        const int axis = decision.axis;
        const float node_lo = node_bounds.lo[axis];
        const float node_hi = node_bounds.hi[axis];
        const float tolerance = (node_hi - node_lo) / (2.0f * static_cast<float>(bins));
        float best_candidate = decision.position;
        float best_distance = tolerance;
        for (const std::uint32_t prim : prims) {
            for (const float edge :
                 {prim_bounds[prim].lo[axis], prim_bounds[prim].hi[axis]}) {
                if (edge <= node_lo || edge >= node_hi) continue;
                const float distance = std::abs(edge - decision.position);
                if (distance < best_distance) {
                    best_distance = distance;
                    best_candidate = edge;
                }
            }
        }
        decision.position = best_candidate;
    }
    return decision;
}

void partition_prims(std::span<const std::uint32_t> prims, std::span<const Aabb> prim_bounds,
                     int axis, float position, std::vector<std::uint32_t>& left,
                     std::vector<std::uint32_t>& right) {
    left.clear();
    right.clear();
    for (const std::uint32_t prim : prims) {
        const Aabb& b = prim_bounds[prim];
        const bool planar = b.lo[axis] == position && b.hi[axis] == position;
        if (b.lo[axis] < position || planar) left.push_back(prim);
        if (b.hi[axis] > position) right.push_back(prim);
    }
}

} // namespace atk::rt

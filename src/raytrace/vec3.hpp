#pragma once

#include <cmath>

namespace atk::rt {

/// Minimal 3-component float vector for the raytracing substrate.
struct Vec3 {
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float x_, float y_, float z_) : x(x_), y(y_), z(z_) {}

    constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    constexpr Vec3& operator+=(const Vec3& o) {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }

    constexpr float operator[](int axis) const { return axis == 0 ? x : axis == 1 ? y : z; }

    float& component(int axis) { return axis == 0 ? x : axis == 1 ? y : z; }
};

constexpr Vec3 operator*(float s, const Vec3& v) { return v * s; }

constexpr float dot(const Vec3& a, const Vec3& b) {
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

constexpr Vec3 cross(const Vec3& a, const Vec3& b) {
    return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

inline float length(const Vec3& v) { return std::sqrt(dot(v, v)); }

inline Vec3 normalize(const Vec3& v) {
    const float len = length(v);
    return len > 0.0f ? v / len : v;
}

constexpr Vec3 min3(const Vec3& a, const Vec3& b) {
    return {a.x < b.x ? a.x : b.x, a.y < b.y ? a.y : b.y, a.z < b.z ? a.z : b.z};
}

constexpr Vec3 max3(const Vec3& a, const Vec3& b) {
    return {a.x > b.x ? a.x : b.x, a.y > b.y ? a.y : b.y, a.z > b.z ? a.z : b.z};
}

} // namespace atk::rt

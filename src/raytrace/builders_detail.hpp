#pragma once

/// Internal machinery shared by the binned construction algorithms
/// (Inplace, Lazy, Nested).  Each algorithm differs only in *how work maps
/// to threads* — exactly the distinction the paper draws — so the recursive
/// SAH build is written once and parameterized:
///
///   Inplace      — data parallelism: the binning pass over primitives is
///                  chunked across the pool; recursion itself is sequential.
///   Nested       — nested task parallelism: each child subtree becomes a
///                  pool task down to `parallel_depth`.
///   Lazy         — like Nested above the eager cutoff; below it, nodes are
///                  emitted as lazy slots expanded on first traversal.
///
/// Builders first construct a pointer-based TempNode tree (subtree tasks
/// can then run without contending on a shared node array) and flatten it
/// into the KdTree's index-based storage afterwards.

#include <memory>
#include <span>
#include <vector>

#include "raytrace/builder.hpp"
#include "raytrace/kdtree.hpp"
#include "raytrace/sah.hpp"

namespace atk::rt::detail {

struct TempNode {
    int axis = -1;  ///< -1: leaf (or lazy)
    float split = 0.0f;
    std::unique_ptr<TempNode> left;
    std::unique_ptr<TempNode> right;
    std::vector<std::uint32_t> prims;  ///< leaf / lazy payload
    bool lazy = false;
    Aabb bounds;  ///< needed by lazy slots
    int depth = 0;
};

struct RecursiveOptions {
    SahParams sah{};
    int bins = 32;
    int max_depth = 20;
    int min_prims = 4;
    int parallel_depth = 0;            ///< spawn subtree tasks above this depth
    bool data_parallel_binning = false;
    bool node_tasks = false;           ///< map tree nodes to pool tasks
    int lazy_cutoff = -1;              ///< emit lazy nodes at this depth (-1: never)
    ThreadPool* pool = nullptr;        ///< required if any parallelism is on
};

/// Recursive binned-SAH construction over the primitive id list.
[[nodiscard]] std::unique_ptr<TempNode> build_recursive(std::vector<std::uint32_t> prims,
                                                        const Aabb& bounds, int depth,
                                                        std::span<const Aabb> prim_bounds,
                                                        const RecursiveOptions& options);

/// Flattens a TempNode tree into `tree` (pre-order; root becomes node 0).
void flatten(KdTree& tree, const TempNode& root);

/// Computes all primitive AABBs.
[[nodiscard]] std::vector<Aabb> compute_prim_bounds(const Scene& scene);

/// Identity primitive id list [0, n).
[[nodiscard]] std::vector<std::uint32_t> all_prims(std::size_t count);

/// Full binned-tree construction used by Inplace/Nested/Lazy.
[[nodiscard]] KdTree build_binned_tree(const Scene& scene, const BuildConfig& config,
                                       ThreadPool& pool, bool data_parallel_binning,
                                       bool node_tasks, bool lazy);

} // namespace atk::rt::detail

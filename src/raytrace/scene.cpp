#include "raytrace/scene.hpp"

#include <cmath>
#include <numbers>

#include "support/rng.hpp"

namespace atk::rt {
namespace {

/// Appends the two triangles of a quad (a,b,c,d counter-clockwise).
void add_quad(std::vector<Triangle>& out, const Vec3& a, const Vec3& b, const Vec3& c,
              const Vec3& d) {
    out.push_back(Triangle{a, b, c});
    out.push_back(Triangle{a, c, d});
}

/// Appends an axis-aligned box (12 triangles).
void add_box(std::vector<Triangle>& out, const Vec3& lo, const Vec3& hi) {
    const Vec3 v000{lo.x, lo.y, lo.z}, v100{hi.x, lo.y, lo.z};
    const Vec3 v010{lo.x, hi.y, lo.z}, v110{hi.x, hi.y, lo.z};
    const Vec3 v001{lo.x, lo.y, hi.z}, v101{hi.x, lo.y, hi.z};
    const Vec3 v011{lo.x, hi.y, hi.z}, v111{hi.x, hi.y, hi.z};
    add_quad(out, v000, v100, v110, v010);  // front  (z = lo)
    add_quad(out, v101, v001, v011, v111);  // back   (z = hi)
    add_quad(out, v001, v000, v010, v011);  // left   (x = lo)
    add_quad(out, v100, v101, v111, v110);  // right  (x = hi)
    add_quad(out, v010, v110, v111, v011);  // top    (y = hi)
    add_quad(out, v001, v101, v100, v000);  // bottom (y = lo)
}

/// Appends a vertical cylinder approximated by `segments` side quads.
void add_column(std::vector<Triangle>& out, const Vec3& base, float radius, float height,
                int segments) {
    const float tau = 2.0f * std::numbers::pi_v<float>;
    for (int s = 0; s < segments; ++s) {
        const float a0 = tau * static_cast<float>(s) / static_cast<float>(segments);
        const float a1 = tau * static_cast<float>(s + 1) / static_cast<float>(segments);
        const Vec3 p0{base.x + radius * std::cos(a0), base.y, base.z + radius * std::sin(a0)};
        const Vec3 p1{base.x + radius * std::cos(a1), base.y, base.z + radius * std::sin(a1)};
        const Vec3 q0{p0.x, base.y + height, p0.z};
        const Vec3 q1{p1.x, base.y + height, p1.z};
        add_quad(out, p0, p1, q1, q0);
    }
}

} // namespace

Aabb Scene::bounds() const {
    Aabb box;
    for (const auto& tri : triangles) box.expand(tri.bounds());
    return box;
}

Scene make_cathedral(const CathedralParams& p) {
    Scene scene;
    auto& tris = scene.triangles;
    const float hw = p.width / 2.0f;
    const float hd = p.depth / 2.0f;

    // Tessellated floor: floor_tiles x floor_tiles*(depth/width) quads.
    const int tiles_x = p.floor_tiles;
    const int tiles_z = std::max(1, static_cast<int>(static_cast<float>(p.floor_tiles) * p.depth / p.width));
    for (int i = 0; i < tiles_x; ++i) {
        for (int j = 0; j < tiles_z; ++j) {
            const float x0 = -hw + p.width * static_cast<float>(i) / static_cast<float>(tiles_x);
            const float x1 = -hw + p.width * static_cast<float>(i + 1) / static_cast<float>(tiles_x);
            const float z0 = -hd + p.depth * static_cast<float>(j) / static_cast<float>(tiles_z);
            const float z1 = -hd + p.depth * static_cast<float>(j + 1) / static_cast<float>(tiles_z);
            add_quad(tris, {x0, 0, z0}, {x1, 0, z0}, {x1, 0, z1}, {x0, 0, z1});
        }
    }

    // Side walls (sparse geometry — two quads each).
    const float wall_h = p.height * 0.7f;
    add_quad(tris, {-hw, 0, -hd}, {-hw, 0, hd}, {-hw, wall_h, hd}, {-hw, wall_h, -hd});
    add_quad(tris, {hw, 0, hd}, {hw, 0, -hd}, {hw, wall_h, -hd}, {hw, wall_h, hd});
    add_quad(tris, {-hw, 0, hd}, {hw, 0, hd}, {hw, wall_h, hd}, {-hw, wall_h, hd});

    // Two rows of columns (dense geometry).
    for (int c = 0; c < p.columns_per_side; ++c) {
        const float z =
            -hd + p.depth * (static_cast<float>(c) + 0.5f) / static_cast<float>(p.columns_per_side);
        add_column(tris, {-hw * 0.55f, 0, z}, 0.45f, wall_h, p.column_segments);
        add_column(tris, {hw * 0.55f, 0, z}, 0.45f, wall_h, p.column_segments);
        // Capitals.
        add_box(tris, {-hw * 0.55f - 0.6f, wall_h, z - 0.6f},
                {-hw * 0.55f + 0.6f, wall_h + 0.3f, z + 0.6f});
        add_box(tris, {hw * 0.55f - 0.6f, wall_h, z - 0.6f},
                {hw * 0.55f + 0.6f, wall_h + 0.3f, z + 0.6f});
    }

    // Vaulted ceiling: half-cylinder along z, tessellated.
    const float tau = std::numbers::pi_v<float>;
    for (int s = 0; s < p.vault_segments; ++s) {
        const float a0 = tau * static_cast<float>(s) / static_cast<float>(p.vault_segments);
        const float a1 = tau * static_cast<float>(s + 1) / static_cast<float>(p.vault_segments);
        const float vault_r = hw;
        const float y0 = wall_h + (p.height - wall_h) * std::sin(a0);
        const float y1 = wall_h + (p.height - wall_h) * std::sin(a1);
        const float x0 = -vault_r * std::cos(a0);
        const float x1 = -vault_r * std::cos(a1);
        for (int j = 0; j < p.vault_segments; ++j) {
            const float z0 = -hd + p.depth * static_cast<float>(j) / static_cast<float>(p.vault_segments);
            const float z1 = -hd + p.depth * static_cast<float>(j + 1) / static_cast<float>(p.vault_segments);
            add_quad(tris, {x0, y0, z0}, {x1, y1, z0}, {x1, y1, z1}, {x0, y0, z1});
        }
    }

    // Clutter: pews / debris boxes, denser toward the middle aisle.
    Rng rng(p.seed);
    for (int k = 0; k < p.clutter; ++k) {
        const float cx = static_cast<float>(rng.uniform_real(-hw * 0.45, hw * 0.45));
        const float cz = static_cast<float>(rng.uniform_real(-hd * 0.9, hd * 0.9));
        const float sx = static_cast<float>(rng.uniform_real(0.3, 1.2));
        const float sy = static_cast<float>(rng.uniform_real(0.3, 0.9));
        const float sz = static_cast<float>(rng.uniform_real(0.3, 1.8));
        add_box(tris, {cx - sx / 2, 0, cz - sz / 2}, {cx + sx / 2, sy, cz + sz / 2});
    }

    scene.light = Vec3{0.0f, p.height * 0.85f, -p.depth * 0.1f};
    scene.camera_position = Vec3{0.0f, p.height * 0.35f, -hd * 0.9f};
    scene.camera_target = Vec3{0.0f, p.height * 0.3f, hd};
    return scene;
}

Scene make_soup(std::size_t triangles, std::uint64_t seed, float extent) {
    Scene scene;
    Rng rng(seed);
    scene.triangles.reserve(triangles);
    for (std::size_t i = 0; i < triangles; ++i) {
        const Vec3 center{static_cast<float>(rng.uniform_real(-extent, extent)),
                          static_cast<float>(rng.uniform_real(-extent, extent)),
                          static_cast<float>(rng.uniform_real(-extent, extent))};
        auto jitter = [&] {
            return Vec3{static_cast<float>(rng.uniform_real(-0.5, 0.5)),
                        static_cast<float>(rng.uniform_real(-0.5, 0.5)),
                        static_cast<float>(rng.uniform_real(-0.5, 0.5))};
        };
        scene.triangles.push_back(
            Triangle{center + jitter(), center + jitter(), center + jitter()});
    }
    scene.light = Vec3{0.0f, extent * 1.5f, 0.0f};
    scene.camera_position = Vec3{0.0f, 0.0f, -extent * 2.5f};
    scene.camera_target = Vec3{0.0f, 0.0f, 0.0f};
    return scene;
}

} // namespace atk::rt

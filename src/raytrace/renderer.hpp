#pragma once

#include <cstdint>
#include <vector>

#include "raytrace/kdtree.hpp"
#include "raytrace/scene.hpp"
#include "support/thread_pool.hpp"

namespace atk::rt {

/// Pinhole camera generating primary rays through pixel centers.
class Camera {
public:
    Camera(const Vec3& position, const Vec3& target, float vertical_fov_deg, int width,
           int height);

    [[nodiscard]] Ray primary_ray(int px, int py) const;
    [[nodiscard]] int width() const noexcept { return width_; }
    [[nodiscard]] int height() const noexcept { return height_; }

private:
    Vec3 position_;
    Vec3 forward_;
    Vec3 right_;
    Vec3 up_;
    float tan_half_fov_;
    float aspect_;
    int width_;
    int height_;
};

/// Grayscale framebuffer; value in [0,1] per pixel.
struct Image {
    int width = 0;
    int height = 0;
    std::vector<float> pixels;

    [[nodiscard]] float at(int x, int y) const {
        return pixels[static_cast<std::size_t>(y) * width + x];
    }

    /// Deterministic content digest for regression tests.
    [[nodiscard]] std::uint64_t checksum() const;

    /// Writes a binary PGM (for eyeballing example output).
    bool write_pgm(const std::string& path) const;
};

/// Statistics of one rendered frame.
struct RenderStats {
    std::size_t primary_rays = 0;
    std::size_t shadow_rays = 0;
    std::size_t primary_hits = 0;
    std::size_t shadowed = 0;
};

/// The second pipeline stage of case study 2: rays are cast from the camera
/// into the scene and tested for intersection; on a hit, a second ray is
/// cast toward the light source to test for occlusion (the paper's ambient
/// occlusion test).  Rows are rendered in parallel on the pool.
///
/// Traversal of a Lazy-built tree expands subtrees on demand, so for the
/// Lazy builder part of the construction cost is charged to rendering —
/// exactly the trade-off that makes the eager cutoff worth tuning.
[[nodiscard]] Image render(const Scene& scene, const KdTree& tree, const Camera& camera,
                           ThreadPool& pool, RenderStats* stats = nullptr);

} // namespace atk::rt

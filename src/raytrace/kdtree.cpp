#include "raytrace/kdtree.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace atk::rt {

std::uint32_t KdTree::add_leaf(std::span<const std::uint32_t> prims) {
    KdNode node;
    node.kind = KdNode::Kind::Leaf;
    node.first = static_cast<std::uint32_t>(prim_indices_.size());
    node.count = static_cast<std::uint32_t>(prims.size());
    prim_indices_.insert(prim_indices_.end(), prims.begin(), prims.end());
    nodes_.push_back(node);
    return static_cast<std::uint32_t>(nodes_.size() - 1);
}

std::uint32_t KdTree::add_interior(int axis, float split, std::uint32_t left,
                                   std::uint32_t right) {
    KdNode node;
    node.kind = KdNode::Kind::Interior;
    node.axis = static_cast<std::uint8_t>(axis);
    node.split = split;
    node.left = left;
    node.right = right;
    nodes_.push_back(node);
    return static_cast<std::uint32_t>(nodes_.size() - 1);
}

std::uint32_t KdTree::add_lazy(std::vector<std::uint32_t> prims, const Aabb& bounds,
                               int depth) {
    auto slot = std::make_unique<LazySlot>();
    slot->prims = std::move(prims);
    slot->bounds = bounds;
    slot->depth = depth;
    slots_.push_back(std::move(slot));

    KdNode node;
    node.kind = KdNode::Kind::Lazy;
    node.lazy_slot = static_cast<std::uint32_t>(slots_.size() - 1);
    nodes_.push_back(node);
    return static_cast<std::uint32_t>(nodes_.size() - 1);
}

std::size_t KdTree::leaf_count() const noexcept {
    std::size_t count = 0;
    for (const auto& node : nodes_)
        if (node.kind == KdNode::Kind::Leaf) ++count;
    return count;
}

std::size_t KdTree::expanded_slot_count() const noexcept {
    std::size_t count = 0;
    for (const auto& slot : slots_)
        if (slot->built.load(std::memory_order_acquire) != nullptr) ++count;
    return count;
}

const KdTree& KdTree::expand(const KdNode& node) const {
    LazySlot& slot = *slots_[node.lazy_slot];
    const KdTree* built = slot.built.load(std::memory_order_acquire);
    if (built != nullptr) return *built;
    const MutexLock guard(slot.build_mutex);
    // Double-checked recheck: the winning expander published with release
    // under this same mutex, which already orders us.  atk-lint: allow(relaxed)
    built = slot.built.load(std::memory_order_relaxed);
    if (built != nullptr) return *built;
    if (!expander_)
        throw std::logic_error("KdTree: lazy node without an installed expander");
    slot.subtree = std::make_unique<KdTree>(
        expander_(std::move(slot.prims), slot.bounds, slot.depth));
    slot.built.store(slot.subtree.get(), std::memory_order_release);
    return *slot.subtree;
}

namespace {

struct StackEntry {
    std::uint32_t node;
    float t_enter;
    float t_exit;
};

} // namespace

Hit KdTree::closest_hit(const Ray& ray, std::span<const Triangle> triangles, float t_min,
                        float t_max) const {
    if (nodes_.empty()) return {};
    const auto clip = bounds_.intersect(ray, t_min, t_max);
    if (!clip) return {};
    return traverse(ray, triangles, clip->first, clip->second, t_min);
}

Hit KdTree::traverse(const Ray& ray, std::span<const Triangle> triangles, float t_enter,
                     float t_exit, float t_min) const {
    Hit best;
    StackEntry stack[64];
    int top = 0;
    stack[top++] = StackEntry{0, t_enter, t_exit};

    while (top > 0) {
        StackEntry entry = stack[--top];
        if (entry.t_enter > best.t) continue;  // already found something closer
        std::uint32_t current = entry.node;
        float near_t = entry.t_enter;
        float far_t = entry.t_exit;

        while (nodes_[current].kind == KdNode::Kind::Interior) {
            const KdNode& node = nodes_[current];
            const int axis = node.axis;
            const float origin = ray.origin[axis];
            const float t_split = (node.split - origin) * ray.inv_direction[axis];
            // Which child does the ray start in?
            const bool left_first =
                origin < node.split ||
                (origin == node.split && ray.direction[axis] <= 0.0f);
            const std::uint32_t near_child = left_first ? node.left : node.right;
            const std::uint32_t far_child = left_first ? node.right : node.left;
            if (std::isnan(t_split) || t_split > far_t || t_split <= 0.0f) {
                current = near_child;
            } else if (t_split < near_t) {
                current = far_child;
            } else {
                if (top < 64) {
                    stack[top++] = StackEntry{far_child, t_split, far_t};
                }
                current = near_child;
                far_t = t_split;
            }
        }

        const KdNode& node = nodes_[current];
        if (node.kind == KdNode::Kind::Leaf) {
            for (std::uint32_t k = 0; k < node.count; ++k) {
                const std::uint32_t prim = prim_indices_[node.first + k];
                if (auto hit = intersect_triangle(ray, triangles[prim], t_min, best.t)) {
                    best = *hit;
                    best.triangle = prim;
                }
            }
        } else {  // lazy
            const KdTree& subtree = expand(node);
            const Hit hit = subtree.traverse(ray, triangles, near_t, far_t, t_min);
            if (hit.valid() && hit.t < best.t) best = hit;
        }
        // Front-to-back order: a hit within the current cell is final.
        if (best.valid() && best.t <= far_t) break;
    }
    return best;
}

bool KdTree::any_hit(const Ray& ray, std::span<const Triangle> triangles, float t_min,
                     float t_max) const {
    if (nodes_.empty()) return false;
    const auto clip = bounds_.intersect(ray, t_min, t_max);
    if (!clip) return false;
    return traverse_any(ray, triangles, clip->first, clip->second, t_min, t_max);
}

bool KdTree::traverse_any(const Ray& ray, std::span<const Triangle> triangles,
                          float t_enter, float t_exit, float t_min, float t_limit) const {
    StackEntry stack[64];
    int top = 0;
    stack[top++] = StackEntry{0, t_enter, t_exit};

    while (top > 0) {
        StackEntry entry = stack[--top];
        std::uint32_t current = entry.node;
        float near_t = entry.t_enter;
        float far_t = entry.t_exit;

        while (nodes_[current].kind == KdNode::Kind::Interior) {
            const KdNode& node = nodes_[current];
            const int axis = node.axis;
            const float origin = ray.origin[axis];
            const float t_split = (node.split - origin) * ray.inv_direction[axis];
            const bool left_first =
                origin < node.split ||
                (origin == node.split && ray.direction[axis] <= 0.0f);
            const std::uint32_t near_child = left_first ? node.left : node.right;
            const std::uint32_t far_child = left_first ? node.right : node.left;
            if (std::isnan(t_split) || t_split > far_t || t_split <= 0.0f) {
                current = near_child;
            } else if (t_split < near_t) {
                current = far_child;
            } else {
                if (top < 64) {
                    stack[top++] = StackEntry{far_child, t_split, far_t};
                }
                current = near_child;
                far_t = t_split;
            }
        }

        const KdNode& node = nodes_[current];
        if (node.kind == KdNode::Kind::Leaf) {
            for (std::uint32_t k = 0; k < node.count; ++k) {
                const std::uint32_t prim = prim_indices_[node.first + k];
                if (intersect_triangle(ray, triangles[prim], t_min, t_limit)) return true;
            }
        } else {  // lazy
            const KdTree& subtree = expand(node);
            if (subtree.traverse_any(ray, triangles, near_t, far_t, t_min, t_limit))
                return true;
        }
    }
    return false;
}

bool KdTree::validate() const {
    if (nodes_.empty()) return true;
    std::vector<bool> visited(nodes_.size(), false);
    std::vector<std::uint32_t> work{0};
    std::size_t reached = 0;
    while (!work.empty()) {
        const std::uint32_t id = work.back();
        work.pop_back();
        if (id >= nodes_.size() || visited[id]) return false;  // bad link or cycle
        visited[id] = true;
        ++reached;
        const KdNode& node = nodes_[id];
        switch (node.kind) {
            case KdNode::Kind::Interior:
                if (node.axis > 2) return false;
                work.push_back(node.left);
                work.push_back(node.right);
                break;
            case KdNode::Kind::Leaf:
                if (static_cast<std::size_t>(node.first) + node.count >
                    prim_indices_.size())
                    return false;
                break;
            case KdNode::Kind::Lazy:
                if (node.lazy_slot >= slots_.size()) return false;
                break;
        }
    }
    return reached == nodes_.size();
}

} // namespace atk::rt

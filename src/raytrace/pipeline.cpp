#include "raytrace/pipeline.hpp"

#include <cmath>

#include "support/clock.hpp"

namespace atk::rt {

RaytracePipeline::RaytracePipeline(Scene scene, int image_width, int image_height,
                                   std::size_t threads)
    : scene_(std::move(scene)),
      pool_(threads),
      camera_(scene_.camera_position, scene_.camera_target, scene_.vertical_fov_deg,
              image_width, image_height),
      image_width_(image_width),
      image_height_(image_height) {}

void RaytracePipeline::orbit_camera(float radians) {
    // Rotate the scene's own camera position around the vertical axis
    // through the look-at target; the target and height stay fixed.
    const Vec3 pivot = scene_.camera_target;
    const Vec3 offset = scene_.camera_position - pivot;
    const float sin_a = std::sin(radians);
    const float cos_a = std::cos(radians);
    const Vec3 rotated{offset.x * cos_a - offset.z * sin_a, offset.y,
                       offset.x * sin_a + offset.z * cos_a};
    camera_ = Camera(pivot + rotated, pivot, scene_.vertical_fov_deg, image_width_,
                     image_height_);
}

Millis RaytracePipeline::render_frame(const KdBuilder& builder,
                                      const BuildConfig& config) {
    Stopwatch watch;
    const KdTree tree = builder.build(scene_, config, pool_);
    image_ = render(scene_, tree, camera_, pool_, &stats_);
    return watch.elapsed_ms();
}

std::vector<TunableAlgorithm> make_tunable_builders(
    const std::vector<std::unique_ptr<KdBuilder>>& builders,
    NelderMeadSearcher::Options nm_options) {
    std::vector<TunableAlgorithm> algorithms;
    algorithms.reserve(builders.size());
    for (const auto& builder : builders) {
        TunableAlgorithm algorithm;
        algorithm.name = builder->name();
        algorithm.space = builder->tuning_space();
        algorithm.initial = builder->default_config();
        algorithm.searcher = std::make_unique<NelderMeadSearcher>(nm_options);
        algorithms.push_back(std::move(algorithm));
    }
    return algorithms;
}

} // namespace atk::rt

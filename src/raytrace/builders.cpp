#include <stdexcept>

#include "raytrace/builders_detail.hpp"
#include "raytrace/wald_havran.hpp"

namespace atk::rt {

SearchSpace KdBuilder::tuning_space() const {
    // The common knobs of all four algorithms (paper Section IV-B):
    // parallelization depth and the SAH heuristic's parameters.
    SearchSpace space;
    space.add(Parameter::ratio("parallel_depth", 0, 8));
    space.add(Parameter::interval("sah_traversal_cost", 1, 60));
    space.add(Parameter::interval("sah_intersection_cost", 1, 60));
    return space;
}

Configuration KdBuilder::default_config() const {
    // Hand-crafted starting point "based on best practices of the relevant
    // literature": moderate task depth, pbrt-style cost ratio.
    return Configuration{{4, 15, 20}};
}

BuildConfig KdBuilder::decode(const Configuration& config) const {
    const SearchSpace space = tuning_space();
    if (config.size() != space.dimension())
        throw std::invalid_argument(name() + ": configuration/space dimension mismatch");
    BuildConfig build;
    auto value = [&](const char* param_name) {
        return config[*space.index_of(param_name)];
    };
    build.parallel_depth = static_cast<int>(value("parallel_depth"));
    build.sah.traversal_cost = static_cast<float>(value("sah_traversal_cost"));
    build.sah.intersection_cost = static_cast<float>(value("sah_intersection_cost"));
    if (space.index_of("sah_bins")) build.sah_bins = static_cast<int>(value("sah_bins"));
    if (space.index_of("eager_cutoff"))
        build.eager_cutoff = static_cast<int>(value("eager_cutoff"));
    return build;
}

namespace {

/// Binned-SAH builders sharing the recursive machinery; they differ in how
/// primitives map to threads (see builders_detail.hpp).
class BinnedBuilderBase : public KdBuilder {
public:
    SearchSpace tuning_space() const override {
        SearchSpace space = KdBuilder::tuning_space();
        space.add(Parameter::ratio("sah_bins", 4, 64, 4));
        return space;
    }

    Configuration default_config() const override { return Configuration{{4, 15, 20, 32}}; }
};

class InplaceBuilder final : public BinnedBuilderBase {
public:
    std::string name() const override { return "Inplace"; }

    KdTree build(const Scene& scene, const BuildConfig& config,
                 ThreadPool& pool) const override {
        return detail::build_binned_tree(scene, config, pool,
                                         /*data_parallel_binning=*/true,
                                         /*node_tasks=*/false, /*lazy=*/false);
    }
};

class NestedBuilder final : public BinnedBuilderBase {
public:
    std::string name() const override { return "Nested"; }

    KdTree build(const Scene& scene, const BuildConfig& config,
                 ThreadPool& pool) const override {
        return detail::build_binned_tree(scene, config, pool,
                                         /*data_parallel_binning=*/false,
                                         /*node_tasks=*/true, /*lazy=*/false);
    }
};

class LazyBuilder final : public BinnedBuilderBase {
public:
    std::string name() const override { return "Lazy"; }

    SearchSpace tuning_space() const override {
        SearchSpace space = BinnedBuilderBase::tuning_space();
        space.add(Parameter::ratio("eager_cutoff", 0, 12));
        return space;
    }

    Configuration default_config() const override {
        return Configuration{{4, 15, 20, 32, 6}};
    }

    KdTree build(const Scene& scene, const BuildConfig& config,
                 ThreadPool& pool) const override {
        return detail::build_binned_tree(scene, config, pool,
                                         /*data_parallel_binning=*/false,
                                         /*node_tasks=*/true, /*lazy=*/true);
    }
};

} // namespace

std::vector<std::unique_ptr<KdBuilder>> make_all_builders() {
    std::vector<std::unique_ptr<KdBuilder>> builders;
    builders.push_back(std::make_unique<InplaceBuilder>());
    builders.push_back(std::make_unique<LazyBuilder>());
    builders.push_back(std::make_unique<NestedBuilder>());
    builders.push_back(std::make_unique<WaldHavranBuilder>());
    return builders;
}

std::unique_ptr<KdBuilder> make_builder(const std::string& name) {
    if (name == "Inplace") return std::make_unique<InplaceBuilder>();
    if (name == "Lazy") return std::make_unique<LazyBuilder>();
    if (name == "Nested") return std::make_unique<NestedBuilder>();
    if (name == "Wald-Havran") return std::make_unique<WaldHavranBuilder>();
    throw std::invalid_argument("make_builder: unknown builder '" + name + "'");
}

} // namespace atk::rt

#pragma once

#include "raytrace/builder.hpp"

namespace atk::rt {

/// The Wald-Havran O(n log n) construction algorithm ("On building fast
/// kd-trees for ray tracing, and on doing that in O(N log N)", 2006).
///
/// Instead of binning, the exact SAH minimum is found by sweeping sorted
/// event lists (the boundaries of every primitive's bounds per axis).  The
/// lists are sorted once at the root; child lists are produced by stable
/// filtering, preserving order — that is what makes the algorithm
/// O(n log n) overall.  Parallelism maps tree nodes to pool tasks down to
/// the tunable parallelization depth, the paper's "tree nodes to OpenMP
/// Tasks" mapping.
///
/// Its tuning space has no bin-count parameter (the sweep is exact), so
/// T_WaldHavran differs from the other builders' spaces — the situation the
/// paper's two-phase formulation is designed for.
class WaldHavranBuilder final : public KdBuilder {
public:
    [[nodiscard]] std::string name() const override { return "Wald-Havran"; }

    [[nodiscard]] KdTree build(const Scene& scene, const BuildConfig& config,
                               ThreadPool& pool) const override;
};

} // namespace atk::rt

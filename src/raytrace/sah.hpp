#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "raytrace/geometry.hpp"
#include "support/thread_pool.hpp"

namespace atk::rt {

/// Parameters of the Surface Area Heuristic, the cost model every builder
/// minimizes.  Both costs are tunable parameters in the case study (the
/// paper: "the parameters of the SAH heuristic are tunable parameters in
/// all algorithms"); only their ratio matters for the tree shape, which
/// makes the pair a gently redundant — and therefore realistic — tuning
/// space.
struct SahParams {
    float traversal_cost = 15.0f;     ///< C_t: cost of one traversal step
    float intersection_cost = 20.0f;  ///< C_i: cost of one ray/prim test
};

/// Outcome of split-plane selection for one node.
struct SplitDecision {
    bool make_leaf = true;
    int axis = -1;
    float position = 0.0f;
    float cost = 0.0f;  ///< estimated SAH cost of the chosen action
};

/// SAH cost of splitting `node_bounds` at (axis, position) with n_left /
/// n_right primitives overlapping each side.
[[nodiscard]] float sah_split_cost(const Aabb& node_bounds, int axis, float position,
                                   std::size_t n_left, std::size_t n_right,
                                   const SahParams& params);

/// Binned SAH split selection (used by the Inplace, Lazy and Nested
/// builders): `bins` equal-width bins per axis; candidate planes are the
/// interior bin boundaries.  Returns make_leaf when no candidate beats the
/// cost of a leaf (C_i * n).
///
/// When `pool` is non-null the binning pass over the primitives runs
/// data-parallel on the pool with per-chunk histograms merged afterwards —
/// this is the Inplace builder's way of mapping primitives to threads.
[[nodiscard]] SplitDecision find_best_split_binned(std::span<const std::uint32_t> prims,
                                                   std::span<const Aabb> prim_bounds,
                                                   const Aabb& node_bounds,
                                                   const SahParams& params, int bins,
                                                   ThreadPool* pool = nullptr);

/// Partitions `prims` by the chosen plane. A primitive goes left if its
/// bounds start strictly below the plane (or lie completely in the plane),
/// right if they end strictly above it; straddling primitives go to both.
void partition_prims(std::span<const std::uint32_t> prims, std::span<const Aabb> prim_bounds,
                     int axis, float position, std::vector<std::uint32_t>& left,
                     std::vector<std::uint32_t>& right);

/// Standard automatic depth limit: 8 + 1.3·log2(n), the rule of thumb the
/// literature (and the original application) uses.
[[nodiscard]] int auto_max_depth(std::size_t prim_count) noexcept;

} // namespace atk::rt

#include "raytrace/renderer.hpp"

#include <atomic>
#include <cmath>
#include <fstream>
#include <numbers>

namespace atk::rt {

Camera::Camera(const Vec3& position, const Vec3& target, float vertical_fov_deg,
               int width, int height)
    : position_(position), width_(width), height_(height) {
    forward_ = normalize(target - position);
    const Vec3 world_up{0.0f, 1.0f, 0.0f};
    // Right-handed viewer basis: for forward +z and up +y this gives
    // right = +x, so screen x grows toward the viewer's right (no mirror).
    right_ = normalize(cross(world_up, forward_));
    if (length(right_) == 0.0f) right_ = Vec3{1.0f, 0.0f, 0.0f};  // looking straight up
    up_ = cross(forward_, right_);
    tan_half_fov_ =
        std::tan(vertical_fov_deg * std::numbers::pi_v<float> / 360.0f);
    aspect_ = static_cast<float>(width) / static_cast<float>(height);
}

Ray Camera::primary_ray(int px, int py) const {
    const float ndc_x = (2.0f * (static_cast<float>(px) + 0.5f) / static_cast<float>(width_) - 1.0f) *
                        tan_half_fov_ * aspect_;
    const float ndc_y =
        (1.0f - 2.0f * (static_cast<float>(py) + 0.5f) / static_cast<float>(height_)) * tan_half_fov_;
    return Ray(position_, normalize(forward_ + right_ * ndc_x + up_ * ndc_y));
}

std::uint64_t Image::checksum() const {
    // FNV-1a over quantized pixels: stable against floating-point noise in
    // the last bits while still catching real image changes.
    std::uint64_t hash = 1469598103934665603ULL;
    for (const float v : pixels) {
        const auto q = static_cast<std::uint16_t>(
            std::clamp(v, 0.0f, 1.0f) * 65535.0f);
        hash ^= q & 0xFF;
        hash *= 1099511628211ULL;
        hash ^= q >> 8;
        hash *= 1099511628211ULL;
    }
    return hash;
}

bool Image::write_pgm(const std::string& path) const {
    std::ofstream file(path, std::ios::binary);
    if (!file) return false;
    file << "P5\n" << width << " " << height << "\n255\n";
    for (const float v : pixels)
        file.put(static_cast<char>(std::clamp(v, 0.0f, 1.0f) * 255.0f));
    return static_cast<bool>(file);
}

Image render(const Scene& scene, const KdTree& tree, const Camera& camera,
             ThreadPool& pool, RenderStats* stats) {
    Image image;
    image.width = camera.width();
    image.height = camera.height();
    image.pixels.assign(static_cast<std::size_t>(image.width) * image.height, 0.0f);

    std::atomic<std::size_t> primary_hits{0};
    std::atomic<std::size_t> shadow_rays{0};
    std::atomic<std::size_t> shadowed{0};

    const std::span<const Triangle> triangles(scene.triangles);
    pool.parallel_for(0, static_cast<std::size_t>(image.height),
                      [&](std::size_t row_begin, std::size_t row_end) {
        std::size_t local_hits = 0;
        std::size_t local_shadow_rays = 0;
        std::size_t local_shadowed = 0;
        for (std::size_t y = row_begin; y < row_end; ++y) {
            for (int x = 0; x < image.width; ++x) {
                const Ray ray = camera.primary_ray(x, static_cast<int>(y));
                const Hit hit = tree.closest_hit(ray, triangles);
                float value = 0.05f;  // background
                if (hit.valid()) {
                    ++local_hits;
                    const Triangle& tri = triangles[hit.triangle];
                    const Vec3 point = ray.origin + ray.direction * hit.t;
                    Vec3 normal = tri.normal();
                    if (dot(normal, ray.direction) > 0.0f) normal = -normal;
                    const Vec3 to_light = scene.light - point;
                    const float light_distance = length(to_light);
                    const Vec3 light_dir = to_light / light_distance;
                    const float lambert = std::max(0.0f, dot(normal, light_dir));
                    // Occlusion ray toward the light (the paper's second
                    // stage "ambient occlusion" test).
                    ++local_shadow_rays;
                    const Ray shadow(point + normal * 1e-3f, light_dir);
                    const bool blocked =
                        tree.any_hit(shadow, triangles, 1e-3f, light_distance);
                    if (blocked) ++local_shadowed;
                    value = blocked ? 0.1f + 0.1f * lambert : 0.15f + 0.85f * lambert;
                }
                image.pixels[y * image.width + x] = value;
            }
        }
        primary_hits += local_hits;
        shadow_rays += local_shadow_rays;
        shadowed += local_shadowed;
    });

    if (stats != nullptr) {
        stats->primary_rays = image.pixels.size();
        stats->primary_hits = primary_hits.load();
        stats->shadow_rays = shadow_rays.load();
        stats->shadowed = shadowed.load();
    }
    return image;
}

} // namespace atk::rt

#include "raytrace/geometry.hpp"

#include <algorithm>
#include <utility>

namespace atk::rt {

std::optional<std::pair<float, float>> Aabb::intersect(const Ray& ray, float t_min,
                                                       float t_max) const {
    for (int axis = 0; axis < 3; ++axis) {
        const float inv = ray.inv_direction[axis];
        float t0 = (lo[axis] - ray.origin[axis]) * inv;
        float t1 = (hi[axis] - ray.origin[axis]) * inv;
        if (inv < 0.0f) std::swap(t0, t1);
        t_min = std::max(t_min, t0);
        t_max = std::min(t_max, t1);
        if (t_min > t_max) return std::nullopt;
    }
    return std::make_pair(t_min, t_max);
}

std::optional<Hit> intersect_triangle(const Ray& ray, const Triangle& tri, float t_min,
                                      float t_max) {
    constexpr float kEpsilon = 1e-9f;
    const Vec3 edge1 = tri.b - tri.a;
    const Vec3 edge2 = tri.c - tri.a;
    const Vec3 pvec = cross(ray.direction, edge2);
    const float det = dot(edge1, pvec);
    if (det > -kEpsilon && det < kEpsilon) return std::nullopt;  // parallel
    const float inv_det = 1.0f / det;
    const Vec3 tvec = ray.origin - tri.a;
    const float u = dot(tvec, pvec) * inv_det;
    if (u < 0.0f || u > 1.0f) return std::nullopt;
    const Vec3 qvec = cross(tvec, edge1);
    const float v = dot(ray.direction, qvec) * inv_det;
    if (v < 0.0f || u + v > 1.0f) return std::nullopt;
    const float t = dot(edge2, qvec) * inv_det;
    if (t <= t_min || t >= t_max) return std::nullopt;
    Hit hit;
    hit.t = t;
    hit.u = u;
    hit.v = v;
    return hit;
}

} // namespace atk::rt

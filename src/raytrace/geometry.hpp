#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "raytrace/vec3.hpp"

namespace atk::rt {

/// A ray with precomputed reciprocal direction for slab tests.
struct Ray {
    Vec3 origin;
    Vec3 direction;       ///< need not be normalized
    Vec3 inv_direction;   ///< 1/direction componentwise (inf where 0)

    Ray(const Vec3& o, const Vec3& d)
        : origin(o),
          direction(d),
          inv_direction{1.0f / d.x, 1.0f / d.y, 1.0f / d.z} {}
};

/// Axis-aligned bounding box.
struct Aabb {
    Vec3 lo{std::numeric_limits<float>::max(), std::numeric_limits<float>::max(),
            std::numeric_limits<float>::max()};
    Vec3 hi{std::numeric_limits<float>::lowest(), std::numeric_limits<float>::lowest(),
            std::numeric_limits<float>::lowest()};

    [[nodiscard]] bool valid() const { return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z; }

    void expand(const Vec3& p) {
        lo = min3(lo, p);
        hi = max3(hi, p);
    }
    void expand(const Aabb& b) {
        lo = min3(lo, b.lo);
        hi = max3(hi, b.hi);
    }

    [[nodiscard]] Vec3 extent() const { return hi - lo; }

    /// Surface area; the quantity the SAH weighs subtree probabilities with.
    [[nodiscard]] float surface_area() const {
        if (!valid()) return 0.0f;
        const Vec3 e = extent();
        return 2.0f * (e.x * e.y + e.y * e.z + e.z * e.x);
    }

    /// Slab test: intersection parameter interval of ray with the box,
    /// clipped to [t_min, t_max]; empty optional when the ray misses.
    [[nodiscard]] std::optional<std::pair<float, float>> intersect(const Ray& ray,
                                                                   float t_min,
                                                                   float t_max) const;
};

/// Triangle primitive.
struct Triangle {
    Vec3 a, b, c;

    [[nodiscard]] Aabb bounds() const {
        Aabb box;
        box.expand(a);
        box.expand(b);
        box.expand(c);
        return box;
    }

    [[nodiscard]] Vec3 centroid() const { return (a + b + c) / 3.0f; }

    [[nodiscard]] Vec3 normal() const { return normalize(cross(b - a, c - a)); }
};

/// Result of a ray/triangle or ray/scene query.
struct Hit {
    float t = std::numeric_limits<float>::max();
    std::uint32_t triangle = std::numeric_limits<std::uint32_t>::max();
    float u = 0.0f;   ///< barycentric
    float v = 0.0f;

    [[nodiscard]] bool valid() const {
        return triangle != std::numeric_limits<std::uint32_t>::max();
    }
};

/// Möller-Trumbore ray/triangle intersection; returns the hit parameter t in
/// (t_min, t_max) or nullopt. Watertight enough for the rendering substrate.
[[nodiscard]] std::optional<Hit> intersect_triangle(const Ray& ray, const Triangle& tri,
                                                    float t_min, float t_max);

} // namespace atk::rt

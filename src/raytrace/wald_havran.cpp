#include "raytrace/wald_havran.hpp"

#include <algorithm>
#include <array>

#include "raytrace/builders_detail.hpp"

namespace atk::rt {
namespace {

/// One boundary of a primitive's bounds on one axis.  End events sort
/// before start events at equal positions so that the sweep sees a
/// primitive leave the right side before new primitives join the left.
struct Event {
    float pos;
    std::uint32_t prim;
    std::uint8_t type;  // 0 = end, 1 = start

    friend bool operator<(const Event& a, const Event& b) {
        if (a.pos != b.pos) return a.pos < b.pos;
        return a.type < b.type;
    }
};

using EventLists = std::array<std::vector<Event>, 3>;

enum : std::uint8_t { kSideNone = 0, kSideLeft = 1, kSideRight = 2, kSideBoth = 3 };

struct WhContext {
    std::span<const Aabb> prim_bounds;
    SahParams sah;
    int max_depth;
    int min_prims;
    int parallel_depth;
    ThreadPool* pool;
};

struct WhSplit {
    bool make_leaf = true;
    int axis = -1;
    float position = 0.0f;
};

/// Exact SAH sweep over the sorted event lists.
WhSplit sweep_best_split(const EventLists& events, const Aabb& bounds, std::size_t n,
                         const WhContext& ctx) {
    WhSplit best;
    float best_cost = ctx.sah.intersection_cost * static_cast<float>(n);
    for (int axis = 0; axis < 3; ++axis) {
        const auto& list = events[axis];
        std::size_t n_left = 0;
        std::size_t n_right = n;
        std::size_t i = 0;
        while (i < list.size()) {
            const float p = list[i].pos;
            std::size_t ends = 0;
            std::size_t starts = 0;
            std::size_t planar = 0;
            while (i < list.size() && list[i].pos == p && list[i].type == 0) {
                const Aabb& b = ctx.prim_bounds[list[i].prim];
                if (b.lo[axis] == b.hi[axis]) ++planar;
                ++ends;
                ++i;
            }
            while (i < list.size() && list[i].pos == p && list[i].type == 1) {
                ++starts;
                ++i;
            }
            n_right -= ends;
            if (p > bounds.lo[axis] && p < bounds.hi[axis]) {
                // Planar primitives exactly at p side with the left child,
                // matching partition_prims' convention.
                const float cost = sah_split_cost(bounds, axis, p, n_left + planar,
                                                  n_right, ctx.sah);
                if (cost < best_cost) {
                    best_cost = cost;
                    best.make_leaf = false;
                    best.axis = axis;
                    best.position = p;
                }
            }
            n_left += starts;
        }
    }
    return best;
}

/// Every primitive contributes exactly one start event per axis, so the
/// axis-0 start events enumerate the node's primitive set.
std::vector<std::uint32_t> prims_of(const EventLists& events) {
    std::vector<std::uint32_t> prims;
    for (const auto& event : events[0])
        if (event.type == 1) prims.push_back(event.prim);
    return prims;
}

/// O(n log n) recursion: classify primitives against the chosen plane, then
/// produce child event lists by stable filtering (order is preserved, so no
/// re-sorting is needed below the root).
std::unique_ptr<detail::TempNode> build_wh(EventLists events, const Aabb& bounds,
                                           int depth, std::size_t n,
                                           const WhContext& ctx,
                                           std::vector<std::uint8_t>& side_scratch) {
    auto node = std::make_unique<detail::TempNode>();
    node->bounds = bounds;
    node->depth = depth;

    if (n <= static_cast<std::size_t>(ctx.min_prims) || depth >= ctx.max_depth) {
        node->prims = prims_of(events);
        return node;
    }
    const WhSplit split = sweep_best_split(events, bounds, n, ctx);
    if (split.make_leaf) {
        node->prims = prims_of(events);
        return node;
    }

    // Classification (same convention as partition_prims).
    std::size_t n_left = 0;
    std::size_t n_right = 0;
    for (const auto& event : events[0]) {
        if (event.type != 1) continue;
        const Aabb& b = ctx.prim_bounds[event.prim];
        const bool planar = b.lo[split.axis] == split.position &&
                            b.hi[split.axis] == split.position;
        std::uint8_t side = kSideNone;
        if (b.lo[split.axis] < split.position || planar) side |= kSideLeft;
        if (b.hi[split.axis] > split.position) side |= kSideRight;
        side_scratch[event.prim] = side;
        if (side & kSideLeft) ++n_left;
        if (side & kSideRight) ++n_right;
    }
    if (n_left == n && n_right == n) {  // split separates nothing
        node->prims = prims_of(events);
        return node;
    }

    EventLists left_events;
    EventLists right_events;
    for (int axis = 0; axis < 3; ++axis) {
        left_events[axis].reserve(events[axis].size() / 2);
        right_events[axis].reserve(events[axis].size() / 2);
        for (const auto& event : events[axis]) {
            const std::uint8_t side = side_scratch[event.prim];
            if (side & kSideLeft) left_events[axis].push_back(event);
            if (side & kSideRight) right_events[axis].push_back(event);
        }
        events[axis].clear();
        events[axis].shrink_to_fit();
    }

    Aabb left_bounds = bounds;
    Aabb right_bounds = bounds;
    left_bounds.hi.component(split.axis) = split.position;
    right_bounds.lo.component(split.axis) = split.position;

    node->axis = split.axis;
    node->split = split.position;

    if (ctx.pool != nullptr && depth < ctx.parallel_depth) {
        // Tree nodes map to tasks (the paper's Wald-Havran parallelization).
        ThreadPool::TaskGroup group(*ctx.pool);
        group.submit([&, le = std::move(left_events), lb = left_bounds]() mutable {
            // A spawned subtree gets its own classification scratch: sibling
            // tasks share straddling primitives and would race otherwise.
            std::vector<std::uint8_t> local_scratch(side_scratch.size(), kSideNone);
            node->left = build_wh(std::move(le), lb, depth + 1, n_left, ctx,
                                  local_scratch);
        });
        node->right = build_wh(std::move(right_events), right_bounds, depth + 1, n_right,
                               ctx, side_scratch);
        group.wait_all();
    } else {
        node->left =
            build_wh(std::move(left_events), left_bounds, depth + 1, n_left, ctx,
                     side_scratch);
        node->right = build_wh(std::move(right_events), right_bounds, depth + 1, n_right,
                               ctx, side_scratch);
    }
    return node;
}

} // namespace

KdTree WaldHavranBuilder::build(const Scene& scene, const BuildConfig& config,
                                ThreadPool& pool) const {
    const auto prim_bounds = detail::compute_prim_bounds(scene);

    Aabb scene_bounds;
    for (const auto& b : prim_bounds) scene_bounds.expand(b);

    // Root event lists, sorted once: O(n log n).
    EventLists events;
    for (int axis = 0; axis < 3; ++axis) {
        auto& list = events[axis];
        list.reserve(prim_bounds.size() * 2);
        for (std::uint32_t prim = 0; prim < prim_bounds.size(); ++prim) {
            list.push_back(Event{prim_bounds[prim].lo[axis], prim, 1});
            list.push_back(Event{prim_bounds[prim].hi[axis], prim, 0});
        }
        std::sort(list.begin(), list.end());
    }

    WhContext ctx{prim_bounds,
                  config.sah,
                  config.max_depth > 0 ? config.max_depth
                                       : auto_max_depth(scene.triangles.size()),
                  config.min_prims,
                  config.parallel_depth,
                  &pool};

    std::vector<std::uint8_t> scratch(scene.triangles.size(), kSideNone);
    auto root = build_wh(std::move(events), scene_bounds, 0, scene.triangles.size(), ctx,
                         scratch);

    KdTree tree;
    tree.set_bounds(scene_bounds);
    detail::flatten(tree, *root);
    return tree;
}

} // namespace atk::rt

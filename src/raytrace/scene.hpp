#pragma once

#include <cstdint>
#include <vector>

#include "raytrace/geometry.hpp"

namespace atk::rt {

/// A renderable scene: triangle soup plus a point light and a camera pose.
struct Scene {
    std::vector<Triangle> triangles;
    Vec3 light{0.0f, 9.0f, 0.0f};
    Vec3 camera_position{0.0f, 3.0f, -14.0f};
    Vec3 camera_target{0.0f, 2.5f, 0.0f};
    float vertical_fov_deg = 60.0f;

    [[nodiscard]] Aabb bounds() const;
};

/// Parameters of the procedural cathedral-interior generator, the stand-in
/// for the paper's Sibenik scene (see DESIGN.md for the substitution
/// rationale): a nave with a tessellated floor, two rows of columns,
/// a vaulted quad-strip ceiling and scattered clutter boxes.  Non-uniform
/// triangle density — dense columns, sparse walls — is what differentiates
/// the SAH builders, so the generator deliberately mixes densities.
struct CathedralParams {
    float width = 16.0f;       ///< x extent of the nave
    float height = 12.0f;      ///< y extent to the vault apex
    float depth = 40.0f;       ///< z extent of the nave
    int floor_tiles = 12;      ///< tessellation of the floor per side
    int columns_per_side = 5;
    int column_segments = 10;  ///< radial tessellation of each column
    int vault_segments = 16;   ///< arches along the ceiling
    int clutter = 24;          ///< random boxes on the floor (pews, debris)
    std::uint64_t seed = 1402; ///< clutter placement
};

/// Builds the cathedral scene; triangle count grows with the tessellation
/// parameters (defaults yield roughly 5-6k triangles).
[[nodiscard]] Scene make_cathedral(const CathedralParams& params = {});

/// Uniform random triangle soup in the unit-ish cube — degenerate workload
/// where all SAH builders behave alike; used by tests and ablations.
[[nodiscard]] Scene make_soup(std::size_t triangles, std::uint64_t seed = 7,
                              float extent = 10.0f);

} // namespace atk::rt

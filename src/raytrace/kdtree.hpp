#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "raytrace/geometry.hpp"
#include "support/thread_annotations.hpp"

namespace atk::rt {

class KdTree;

/// A deferred subtree of the Lazy builder: holds the primitive set and
/// bounds of an unbuilt node.  The subtree is constructed on first traversal
/// contact (double-checked locking; concurrent rendering threads block only
/// while the expansion they need is running).
struct LazySlot {
    // prims/bounds/depth are written during the (single-threaded) build and
    // consumed exactly once by the expansion that owns build_mutex; they are
    // deliberately not annotated as guarded.
    std::vector<std::uint32_t> prims;
    Aabb bounds;
    int depth = 0;

    Mutex build_mutex;
    std::atomic<const KdTree*> built{nullptr};
    std::unique_ptr<KdTree> subtree
        ATK_GUARDED_BY(build_mutex);  // owned storage behind `built`
};

/// One node of the kD-tree; a tagged plain struct (clarity over packing —
/// this is a research codebase, not a production renderer).
struct KdNode {
    enum class Kind : std::uint8_t { Leaf, Interior, Lazy };
    Kind kind = Kind::Leaf;
    std::uint8_t axis = 0;       ///< interior: split axis
    float split = 0.0f;          ///< interior: split position
    std::uint32_t left = 0;      ///< interior: child node ids
    std::uint32_t right = 0;
    std::uint32_t first = 0;     ///< leaf: offset into prim_indices
    std::uint32_t count = 0;     ///< leaf: number of prims
    std::uint32_t lazy_slot = 0; ///< lazy: index into the slot table
};

/// SAH kD-tree: the acceleration structure of case study 2.  Built by one
/// of the four construction algorithms (Inplace, Lazy, Nested, Wald-Havran),
/// traversed by the renderer for closest-hit (primary rays) and any-hit
/// (shadow / ambient-occlusion rays) queries.
///
/// Lazy nodes are expanded during traversal through the expander callback
/// installed by the Lazy builder; expansion mutates internal state behind a
/// per-slot mutex, so traversal is thread-safe but the tree is neither
/// copyable nor assignable.
class KdTree {
public:
    /// Builds subtrees for lazy slots; installed by the Lazy builder.
    using Expander =
        std::function<KdTree(std::vector<std::uint32_t> prims, const Aabb& bounds,
                             int depth)>;

    KdTree() = default;
    KdTree(KdTree&&) noexcept = default;
    KdTree& operator=(KdTree&&) noexcept = default;
    KdTree(const KdTree&) = delete;
    KdTree& operator=(const KdTree&) = delete;

    /// Closest intersection along the ray, or an invalid Hit.
    [[nodiscard]] Hit closest_hit(const Ray& ray, std::span<const Triangle> triangles,
                                  float t_min = 1e-4f,
                                  float t_max = std::numeric_limits<float>::max()) const;

    /// True if anything blocks the ray within (t_min, t_max).
    [[nodiscard]] bool any_hit(const Ray& ray, std::span<const Triangle> triangles,
                               float t_min, float t_max) const;

    [[nodiscard]] const Aabb& bounds() const noexcept { return bounds_; }
    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
    [[nodiscard]] std::size_t leaf_count() const noexcept;
    [[nodiscard]] std::size_t prim_reference_count() const noexcept {
        return prim_indices_.size();
    }
    [[nodiscard]] std::size_t lazy_slot_count() const noexcept { return slots_.size(); }
    [[nodiscard]] std::size_t expanded_slot_count() const noexcept;
    [[nodiscard]] bool empty() const noexcept { return nodes_.empty(); }

    /// Structural validation: every node reachable, child links acyclic,
    /// leaf ranges inside the prim array.  Used by tests.
    [[nodiscard]] bool validate() const;

    // --- Construction interface (used by the builders) ------------------

    void set_bounds(const Aabb& bounds) { bounds_ = bounds; }
    void set_expander(Expander expander) { expander_ = std::move(expander); }

    /// Appends a node and returns its id.
    std::uint32_t add_leaf(std::span<const std::uint32_t> prims);
    std::uint32_t add_interior(int axis, float split, std::uint32_t left,
                               std::uint32_t right);
    /// Pre-order construction support: append the interior node first, then
    /// patch its child links once the children have been appended.
    std::uint32_t add_interior_placeholder(int axis, float split) {
        return add_interior(axis, split, 0, 0);
    }
    void set_children(std::uint32_t id, std::uint32_t left, std::uint32_t right) {
        nodes_.at(id).left = left;
        nodes_.at(id).right = right;
    }
    std::uint32_t add_lazy(std::vector<std::uint32_t> prims, const Aabb& bounds,
                           int depth);

    [[nodiscard]] const KdNode& node(std::size_t i) const { return nodes_.at(i); }
    /// Leaf prim-list entry (introspection for tests/debugging).
    [[nodiscard]] std::uint32_t prim_index(std::size_t i) const {
        return prim_indices_.at(i);
    }

private:
    /// Traversal over [t_enter, t_exit]; `root` selects the subtree entry.
    Hit traverse(const Ray& ray, std::span<const Triangle> triangles, float t_enter,
                 float t_exit, float t_min) const;
    bool traverse_any(const Ray& ray, std::span<const Triangle> triangles, float t_enter,
                      float t_exit, float t_min, float t_limit) const;

    /// Returns the expanded subtree of a lazy node, building it if needed.
    const KdTree& expand(const KdNode& node) const;

    Aabb bounds_;
    std::vector<KdNode> nodes_;
    std::vector<std::uint32_t> prim_indices_;
    // unique_ptr: LazySlot holds a mutex and must stay address-stable.
    std::vector<std::unique_ptr<LazySlot>> slots_;
    Expander expander_;
};

} // namespace atk::rt

#include "raytrace/builders_detail.hpp"

#include <algorithm>

namespace atk::rt::detail {

std::vector<Aabb> compute_prim_bounds(const Scene& scene) {
    std::vector<Aabb> bounds;
    bounds.reserve(scene.triangles.size());
    for (const auto& tri : scene.triangles) bounds.push_back(tri.bounds());
    return bounds;
}

std::vector<std::uint32_t> all_prims(std::size_t count) {
    std::vector<std::uint32_t> prims(count);
    for (std::size_t i = 0; i < count; ++i) prims[i] = static_cast<std::uint32_t>(i);
    return prims;
}

std::unique_ptr<TempNode> build_recursive(std::vector<std::uint32_t> prims,
                                          const Aabb& bounds, int depth,
                                          std::span<const Aabb> prim_bounds,
                                          const RecursiveOptions& options) {
    auto node = std::make_unique<TempNode>();
    node->bounds = bounds;
    node->depth = depth;

    if (options.lazy_cutoff >= 0 && depth >= options.lazy_cutoff &&
        prims.size() > static_cast<std::size_t>(options.min_prims)) {
        node->lazy = true;
        node->prims = std::move(prims);
        return node;
    }

    if (prims.size() <= static_cast<std::size_t>(options.min_prims) ||
        depth >= options.max_depth) {
        node->prims = std::move(prims);
        return node;
    }

    ThreadPool* binning_pool =
        options.data_parallel_binning && depth <= options.parallel_depth ? options.pool
                                                                         : nullptr;
    const SplitDecision split = find_best_split_binned(prims, prim_bounds, bounds,
                                                       options.sah, options.bins,
                                                       binning_pool);
    if (split.make_leaf) {
        node->prims = std::move(prims);
        return node;
    }

    std::vector<std::uint32_t> left_prims;
    std::vector<std::uint32_t> right_prims;
    partition_prims(prims, prim_bounds, split.axis, split.position, left_prims,
                    right_prims);
    // Degenerate split (straddle-heavy node where the plane separates
    // nothing): stop rather than recurse forever on identical sets.
    if (left_prims.size() == prims.size() && right_prims.size() == prims.size()) {
        node->prims = std::move(prims);
        return node;
    }
    prims.clear();
    prims.shrink_to_fit();

    Aabb left_bounds = bounds;
    Aabb right_bounds = bounds;
    left_bounds.hi.component(split.axis) = split.position;
    right_bounds.lo.component(split.axis) = split.position;

    node->axis = split.axis;
    node->split = split.position;

    const bool spawn = options.node_tasks && !options.data_parallel_binning &&
                       options.pool != nullptr && depth < options.parallel_depth;
    if (spawn) {
        // Nested parallelism: each child subtree is a pool task (the
        // Wald-Havran and Nested builders' "tree nodes to tasks" mapping).
        ThreadPool::TaskGroup group(*options.pool);
        group.submit([&, lp = std::move(left_prims), lb = left_bounds]() mutable {
            node->left = build_recursive(std::move(lp), lb, depth + 1, prim_bounds,
                                         options);
        });
        node->right = build_recursive(std::move(right_prims), right_bounds, depth + 1,
                                      prim_bounds, options);
        group.wait_all();
    } else {
        node->left = build_recursive(std::move(left_prims), left_bounds, depth + 1,
                                     prim_bounds, options);
        node->right = build_recursive(std::move(right_prims), right_bounds, depth + 1,
                                      prim_bounds, options);
    }
    return node;
}

namespace {

std::uint32_t flatten_node(KdTree& tree, const TempNode& node) {
    if (node.lazy) {
        return tree.add_lazy(std::vector<std::uint32_t>(node.prims), node.bounds,
                             node.depth);
    }
    if (node.axis < 0) {
        return tree.add_leaf(node.prims);
    }
    const std::uint32_t id = tree.add_interior_placeholder(node.axis, node.split);
    const std::uint32_t left = flatten_node(tree, *node.left);
    const std::uint32_t right = flatten_node(tree, *node.right);
    tree.set_children(id, left, right);
    return id;
}

} // namespace

void flatten(KdTree& tree, const TempNode& root) {
    flatten_node(tree, root);
}

KdTree build_binned_tree(const Scene& scene, const BuildConfig& config, ThreadPool& pool,
                         bool data_parallel_binning, bool node_tasks, bool lazy) {
    auto prim_bounds = std::make_shared<std::vector<Aabb>>(compute_prim_bounds(scene));

    Aabb scene_bounds;
    for (const auto& b : *prim_bounds) scene_bounds.expand(b);

    RecursiveOptions options;
    options.sah = config.sah;
    options.bins = config.sah_bins;
    options.max_depth = config.max_depth > 0 ? config.max_depth
                                             : auto_max_depth(scene.triangles.size());
    options.min_prims = config.min_prims;
    options.parallel_depth = config.parallel_depth;
    options.data_parallel_binning = data_parallel_binning;
    options.node_tasks = node_tasks;
    options.lazy_cutoff = lazy ? config.eager_cutoff : -1;
    options.pool = &pool;

    auto root = build_recursive(all_prims(scene.triangles.size()), scene_bounds, 0,
                                *prim_bounds, options);

    KdTree tree;
    tree.set_bounds(scene_bounds);
    if (lazy) {
        // Expansion during rendering: continue the same recursion, but
        // sequentially (the pool is busy with render rows at that point)
        // and without further laziness.
        RecursiveOptions expand_options = options;
        expand_options.pool = nullptr;
        expand_options.parallel_depth = 0;
        expand_options.data_parallel_binning = false;
        expand_options.lazy_cutoff = -1;
        tree.set_expander([prim_bounds, expand_options](std::vector<std::uint32_t> prims,
                                                        const Aabb& bounds, int depth) {
            auto sub_root =
                build_recursive(std::move(prims), bounds, depth, *prim_bounds,
                                expand_options);
            KdTree subtree;
            subtree.set_bounds(bounds);
            flatten(subtree, *sub_root);
            return subtree;
        });
    }
    flatten(tree, *root);
    return tree;
}

} // namespace atk::rt::detail

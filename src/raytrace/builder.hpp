#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/search_space.hpp"
#include "raytrace/kdtree.hpp"
#include "raytrace/sah.hpp"
#include "raytrace/scene.hpp"
#include "support/thread_pool.hpp"

namespace atk::rt {

/// Decoded build parameters — the phase-one tuning knobs of case study 2.
/// The paper: "The parallelization depth as well as the parameters of the
/// SAH heuristic are tunable parameters in all algorithms. The Lazy
/// algorithm adds another parameter, controlling the eager construction
/// cutoff."
struct BuildConfig {
    int parallel_depth = 4;   ///< tree depth down to which work is parallelized
    SahParams sah{};          ///< traversal/intersection cost (tunable)
    int sah_bins = 32;        ///< split candidates per axis (binned builders)
    int eager_cutoff = 6;     ///< Lazy only: depth where eager construction stops
    int max_depth = 0;        ///< 0 = auto (8 + 1.3 log2 n)
    int min_prims = 4;        ///< leaf threshold
};

/// One SAH kD-tree construction algorithm: Inplace, Lazy, Nested or
/// Wald-Havran.  Each exposes its own tuning space T_A (they differ —
/// Wald-Havran's exact sweep has no bin count; Lazy adds the cutoff), a
/// hand-crafted default configuration ("created based on best practices of
/// the relevant literature", the paper's tuning starting point), and the
/// decode from tuner Configuration to BuildConfig.
class KdBuilder {
public:
    virtual ~KdBuilder() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Builds the tree over the scene using `pool` for parallel work.
    [[nodiscard]] virtual KdTree build(const Scene& scene, const BuildConfig& config,
                                       ThreadPool& pool) const = 0;

    /// The algorithm's tuning parameter space T_A.
    [[nodiscard]] virtual SearchSpace tuning_space() const;

    /// The hand-crafted starting configuration within tuning_space().
    [[nodiscard]] virtual Configuration default_config() const;

    /// Maps a point of tuning_space() onto build parameters.
    [[nodiscard]] virtual BuildConfig decode(const Configuration& config) const;
};

/// The four construction algorithms in the paper's naming order:
/// Inplace, Lazy, Nested, Wald-Havran.
[[nodiscard]] std::vector<std::unique_ptr<KdBuilder>> make_all_builders();

/// Builder by paper name ("Inplace", "Lazy", "Nested", "Wald-Havran");
/// throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<KdBuilder> make_builder(const std::string& name);

} // namespace atk::rt

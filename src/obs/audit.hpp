#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "support/thread_annotations.hpp"

namespace atk::obs {

/// Everything the two-phase tuner knew and decided in one tuning iteration —
/// the record that makes "why did it pick algorithm 2 here?" answerable.
struct Decision {
    std::string session;              ///< owning session name ("" standalone)
    std::size_t iteration = 0;        ///< tuner iteration the trial belongs to
    std::size_t algorithm = 0;        ///< phase-two choice
    std::string algorithm_name;
    bool explored = false;            ///< did the strategy take its exploration roll?
    std::string step_kind;            ///< phase-one step ("reflect", ...; "" = fixed)
    std::string objective;            ///< cost objective label ("mean cost", "p95 cost", ...)
    std::vector<double> weights;      ///< strategy weights() at decision time
    std::vector<double> probabilities;///< weights normalized to sum 1
    std::vector<std::int64_t> config; ///< phase-one configuration values
    std::vector<double> features;     ///< input-feature context ([] = context-blind)
    std::vector<double> scores;       ///< per-arm UCB terms ([] = unscored strategy)
};

/// Normalizes strategy weights into selection probabilities.  Weights are
/// strictly positive by the NominalStrategy contract; a defensive uniform
/// fallback covers degenerate inputs.
[[nodiscard]] std::vector<double> selection_probabilities(
    const std::vector<double>& weights);

/// Bounded log of per-iteration tuning decisions.  Capacity-limited (oldest
/// dropped first) so a long-lived session cannot grow without bound; all
/// methods are thread-safe.
class DecisionAuditTrail {
public:
    explicit DecisionAuditTrail(std::size_t capacity = 1024);

    /// Records one decision; fills `probabilities` from `weights` when the
    /// caller left it empty.
    void record(Decision decision);

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::uint64_t recorded_total() const;  ///< incl. evicted

    /// Decision of a tuner iteration still in the window; nullopt when the
    /// iteration was never recorded or has been evicted.
    [[nodiscard]] std::optional<Decision> find(std::size_t iteration) const;

    /// Oldest-first copy of the current window.
    [[nodiscard]] std::vector<Decision> decisions() const;

    /// Human-readable rendering of one iteration's decision: weights, derived
    /// probabilities, the exploration roll, the chosen algorithm and the
    /// phase-one step.  Explains the eviction/not-recorded case too.
    [[nodiscard]] std::string explain(std::size_t iteration) const;

    /// Appends the current window as JSON Lines (one decision per line).
    /// Doubles are printed with round-trip precision: a loaded decision's
    /// weights/probabilities compare bit-equal to the recorded ones.
    [[nodiscard]] std::string to_jsonl() const;

private:
    const std::size_t capacity_;
    mutable Mutex mutex_;
    std::deque<Decision> window_ ATK_GUARDED_BY(mutex_);
    std::uint64_t recorded_ ATK_GUARDED_BY(mutex_) = 0;
};

/// Renders one decision the way DecisionAuditTrail::explain does.
[[nodiscard]] std::string explain_decision(const Decision& decision);

/// Serializes decisions as JSON Lines (what to_jsonl uses).
[[nodiscard]] std::string decisions_to_jsonl(const std::vector<Decision>& decisions);

/// Appends `text` (typically to_jsonl output) to `path`; false on I/O error.
bool write_audit_file(const std::string& path, const std::string& text,
                      bool append = false);

/// Parses a JSON-Lines audit file written by decisions_to_jsonl.  Returns
/// std::nullopt when the file cannot be read; malformed lines are skipped.
[[nodiscard]] std::optional<std::vector<Decision>> load_audit_file(
    const std::string& path);

} // namespace atk::obs

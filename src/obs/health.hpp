#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "support/streaming_quantile.hpp"
#include "support/thread_annotations.hpp"

namespace atk::obs {

/// Detector thresholds of a TuningHealthMonitor.  The defaults are
/// calibrated against the sim layer's named scenarios (tests/sim/
/// health_gate_test.cpp): the drift detector fires within a bounded number
/// of iterations after the `drift` scenario's phase change and never on
/// `static`; the plateau detector mirrors the `plateau` scenario.
struct HealthOptions {
    /// Trailing selection window for leader share / convergence tracking.
    std::size_t share_window = 50;
    /// Leader share that counts as converged (the paper's 90% criterion).
    double converged_share = 0.9;

    /// Samples an algorithm needs before its Page-Hinkley detector arms —
    /// the running mean must be established before residuals mean anything.
    std::size_t drift_warmup = 15;
    /// PH tolerance: relative cost increases below this are ambient noise.
    double drift_delta = 0.15;
    /// PH alarm threshold on the accumulated (clamped) residual excess.
    double drift_lambda = 2.5;
    /// Per-sample residual cap, so one wild outlier (a cold cache, a page
    /// fault) cannot fire the alarm alone: at least lambda/clamp sustained
    /// elevated samples are required.
    double drift_clamp = 0.5;
    /// EWMA factor of the per-algorithm cost mean once warmup completed.
    /// Slow on purpose: the mean is the drift baseline and must not chase
    /// the very shift it is there to expose.
    double mean_alpha = 0.05;

    /// Samples an algorithm needs before it can win the cheapest-mean
    /// comparison — crossovers between barely-sampled algorithms are noise.
    std::size_t crossover_min_samples = 8;

    /// Trailing per-algorithm cost window for the plateau detector.
    std::size_t plateau_window = 60;
    /// Baseline horizon for the tuning yield: the algorithm's first
    /// `yield_window` costs, before phase-one converges.  Kept short on
    /// purpose — a searcher that converges within a long baseline would
    /// dilute its own earned improvement down to "no yield".
    std::size_t yield_window = 10;
    /// Plateau needs the leader's recent costs this flat (coefficient of
    /// variation) ...
    double plateau_cv = 0.12;
    /// ... while phase-one never earned more than this relative improvement
    /// over the algorithm's own early costs.  A converged searcher that
    /// genuinely optimized (static's winner gains ~65%) stays healthy; a
    /// searcher wandering a flat mesa never clears the bar.
    double plateau_min_yield = 0.30;

    /// Quantile of the all-time cost stream used as the regret baseline.
    double regret_quantile = 0.10;
    /// EWMA factor of the recent-cost estimate regret compares against.
    double regret_alpha = 0.10;
};

/// Signals published to subscribers the moment a detector fires — the bus a
/// future StrategyWizard (ROADMAP: meta-tuning) will switch strategies on.
enum class HealthSignal {
    Converged,  ///< leader share first crossed converged_share
    Drift,      ///< an algorithm's cost mean shifted up (Page-Hinkley alarm)
    Crossover,  ///< the cheapest-mean algorithm changed identity
    Plateau,    ///< leader flat-lined without ever having tuned well
};

[[nodiscard]] const char* health_signal_name(HealthSignal signal) noexcept;

/// Per-algorithm detector state as exposed in snapshots.
struct AlgorithmHealth {
    std::uint64_t samples = 0;
    double mean_cost = 0.0;    ///< running/EWMA mean (the drift baseline)
    double best_cost = 0.0;    ///< 0 until the first sample
    double tuning_yield = 0.0; ///< 1 - best/early_mean: what phase-one earned
    double recent_cv = 0.0;    ///< coefficient of variation over the window
    bool plateau = false;
    std::uint64_t drift_events = 0;
};

/// Point-in-time view of one session's tuning health.
struct HealthSnapshot {
    std::uint64_t samples = 0;
    /// Algorithm leading the trailing selection window; nullopt before the
    /// first sample.
    std::optional<std::size_t> leader;
    double leader_share = 0.0;
    bool converged = false;
    std::uint64_t converged_at = 0;  ///< sample index of first convergence (0 = never)
    std::uint64_t drift_events = 0;
    std::uint64_t last_drift_sample = 0;
    std::uint64_t crossover_events = 0;
    bool plateau = false;
    std::uint64_t plateau_events = 0;  ///< rising edges of the plateau flag
    double regret = 0.0;          ///< recent mean cost minus the baseline (>= 0)
    double recent_cost = 0.0;     ///< EWMA of all ingested costs
    double baseline_cost = 0.0;   ///< streaming regret_quantile estimate
    std::vector<AlgorithmHealth> algorithms;
};

/// Online per-session tuning-health detector stack, fed one measurement per
/// tuning iteration (the aggregator's ingest path):
///
///   - convergence: leader share over a trailing selection window, plus the
///     iteration the 90% criterion was first met;
///   - drift: one-sided Page-Hinkley on each algorithm's relative cost
///     residuals — sustained cost *increases* alarm; decreases are tuning
///     progress by definition and are covered by the crossover detector;
///   - crossover: identity changes of the cheapest-mean algorithm;
///   - plateau: the leader's recent costs are flat while phase-one never
///     achieved real improvement over the algorithm's early costs;
///   - regret: EWMA of recent cost against a streaming low-quantile
///     baseline of everything seen (support/streaming_quantile).
///
/// observe() is O(algorithms) worst case and allocation-free after warmup;
/// snapshot() is safe from any thread (internal mutex).  Subscribers run
/// inline on the observing thread and must be cheap.
class TuningHealthMonitor {
public:
    explicit TuningHealthMonitor(std::size_t algorithm_count,
                                 HealthOptions options = {});

    /// Feeds one measurement: which algorithm ran, what it cost, and how
    /// many tunable dimensions its configuration has (0 = untunable, which
    /// exempts it from the plateau detector — nothing to tune cannot
    /// plateau).  Ignores non-finite or non-positive costs and algorithm
    /// indices out of range.
    void observe(std::size_t algorithm, double cost, std::size_t config_dims);

    [[nodiscard]] HealthSnapshot snapshot() const;

    /// Registers a signal handler (the StrategyWizard bus).  Handlers run
    /// inline under the monitor lock — do not call back into the monitor.
    void subscribe(std::function<void(HealthSignal, const HealthSnapshot&)> handler);

    [[nodiscard]] std::size_t algorithm_count() const noexcept {
        return algorithm_count_;  // fixed at construction; lock-free read
    }

private:
    struct AlgoState {
        std::uint64_t count = 0;
        double mean = 0.0;
        double best = 0.0;
        double early_sum = 0.0;        ///< sum of the first `yield_window` costs
        std::uint64_t early_count = 0;
        double ph_m = 0.0;             ///< Page-Hinkley cumulative residual
        double ph_min = 0.0;           ///< running minimum of ph_m
        std::uint64_t drift_events = 0;
        std::size_t config_dims = 0;
        std::deque<double> recent;     ///< last plateau_window costs
        double recent_sum = 0.0;
        double recent_sq_sum = 0.0;
    };

    [[nodiscard]] HealthSnapshot snapshot_locked() const ATK_REQUIRES(mutex_);
    void emit(HealthSignal signal) ATK_REQUIRES(mutex_);
    [[nodiscard]] std::optional<std::size_t> cheapest_locked() const
        ATK_REQUIRES(mutex_);
    [[nodiscard]] static double yield_of(const AlgoState& algo);
    [[nodiscard]] static double cv_of(const AlgoState& algo);
    [[nodiscard]] bool plateau_of(const AlgoState& algo) const
        ATK_REQUIRES(mutex_);

    mutable Mutex mutex_;
    const std::size_t algorithm_count_;  ///< == algorithms_.size(), lock-free
    HealthOptions options_;  // written only in the constructor, then read-only
    std::vector<AlgoState> algorithms_ ATK_GUARDED_BY(mutex_);
    std::deque<std::size_t> selections_ ATK_GUARDED_BY(mutex_);  ///< trailing share window
    std::vector<std::uint64_t> window_counts_ ATK_GUARDED_BY(mutex_);  ///< per-algorithm count in window
    std::uint64_t samples_ ATK_GUARDED_BY(mutex_) = 0;
    std::uint64_t converged_at_ ATK_GUARDED_BY(mutex_) = 0;
    std::uint64_t drift_events_ ATK_GUARDED_BY(mutex_) = 0;
    std::uint64_t last_drift_sample_ ATK_GUARDED_BY(mutex_) = 0;
    std::uint64_t crossover_events_ ATK_GUARDED_BY(mutex_) = 0;
    std::optional<std::size_t> cheapest_ ATK_GUARDED_BY(mutex_);
    bool plateau_ ATK_GUARDED_BY(mutex_) = false;
    std::uint64_t plateau_events_ ATK_GUARDED_BY(mutex_) = 0;
    double recent_cost_ ATK_GUARDED_BY(mutex_) = 0.0;
    StreamingQuantile baseline_ ATK_GUARDED_BY(mutex_);
    std::vector<std::function<void(HealthSignal, const HealthSnapshot&)>>
        handlers_ ATK_GUARDED_BY(mutex_);
};

/// One session's health snapshot as a single JSON object line — the format
/// `atk_serve --health` writes (one line per session) and
/// `atk_obs_inspect --health` reads back.
[[nodiscard]] std::string health_to_json(const std::string& session,
                                         const HealthSnapshot& snapshot);

/// Parses a health_to_json() line; nullopt on malformed input.
[[nodiscard]] std::optional<std::pair<std::string, HealthSnapshot>>
health_from_json(const std::string& line);

} // namespace atk::obs

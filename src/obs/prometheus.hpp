#pragma once

#include <string>

namespace atk::obs {

/// Sanitizes an internal metric name ("session.batch.selections.0") into a
/// legal Prometheus metric name: every character outside [a-zA-Z0-9_:] maps
/// to '_', a leading digit gets a '_' prefix, and the "atk_" namespace
/// prefix is prepended.
[[nodiscard]] std::string prometheus_metric_name(const std::string& name);

/// One `name value` exposition line check: metric name chars, exactly one
/// space, a parseable number (used by tests and atk_obs_inspect to validate
/// exposition output line-by-line).  `# `-comments and blank lines pass.
[[nodiscard]] bool is_valid_prometheus_line(const std::string& line);

} // namespace atk::obs

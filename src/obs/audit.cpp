#include "obs/audit.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace atk::obs {

std::vector<double> selection_probabilities(const std::vector<double>& weights) {
    double total = 0.0;
    for (const double w : weights) total += w;
    if (!(total > 0.0)) {
        return std::vector<double>(weights.size(),
                                   weights.empty() ? 0.0
                                                   : 1.0 / static_cast<double>(
                                                               weights.size()));
    }
    std::vector<double> probabilities(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i)
        probabilities[i] = weights[i] / total;
    return probabilities;
}

DecisionAuditTrail::DecisionAuditTrail(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

void DecisionAuditTrail::record(Decision decision) {
    if (decision.probabilities.empty() && !decision.weights.empty())
        decision.probabilities = selection_probabilities(decision.weights);
    MutexLock lock(mutex_);
    window_.push_back(std::move(decision));
    if (window_.size() > capacity_) window_.pop_front();
    ++recorded_;
}

std::size_t DecisionAuditTrail::size() const {
    MutexLock lock(mutex_);
    return window_.size();
}

std::uint64_t DecisionAuditTrail::recorded_total() const {
    MutexLock lock(mutex_);
    return recorded_;
}

std::optional<Decision> DecisionAuditTrail::find(std::size_t iteration) const {
    MutexLock lock(mutex_);
    // Iterations are recorded in increasing order; newest are at the back.
    for (auto it = window_.rbegin(); it != window_.rend(); ++it) {
        if (it->iteration == iteration) return *it;
    }
    return std::nullopt;
}

std::vector<Decision> DecisionAuditTrail::decisions() const {
    MutexLock lock(mutex_);
    return {window_.begin(), window_.end()};
}

std::string explain_decision(const Decision& decision) {
    std::ostringstream out;
    char buf[64];
    out << "iteration " << decision.iteration;
    if (!decision.session.empty()) out << " [session " << decision.session << "]";
    out << "\n  chosen algorithm:      #" << decision.algorithm;
    if (!decision.algorithm_name.empty()) out << " (" << decision.algorithm_name << ")";
    out << "\n  exploration roll:      "
        << (decision.explored ? "explore (epsilon branch)" : "exploit (greedy/weighted)");
    if (!decision.step_kind.empty())
        out << "\n  phase-one step:        " << decision.step_kind;
    if (!decision.objective.empty())
        out << "\n  cost objective:        " << decision.objective;
    const auto row = [&](const char* label, const std::vector<double>& values) {
        out << "\n  " << label << "[";
        for (std::size_t i = 0; i < values.size(); ++i) {
            std::snprintf(buf, sizeof buf, "%s%.6f", i ? ", " : "", values[i]);
            out << buf;
        }
        out << "]";
    };
    if (!decision.features.empty())
        row("input features:        ", decision.features);
    row("strategy weights:      ", decision.weights);
    row("selection probability: ", decision.probabilities);
    // Contextual bandits score every arm before choosing; the chosen arm is
    // the one whose confidence bound was smallest at these features.
    if (!decision.scores.empty())
        row("per-arm UCB score:     ", decision.scores);
    if (!decision.config.empty()) {
        out << "\n  configuration:         [";
        for (std::size_t i = 0; i < decision.config.size(); ++i)
            out << (i ? ", " : "") << decision.config[i];
        out << "]";
    }
    out << "\n";
    return out.str();
}

std::string DecisionAuditTrail::explain(std::size_t iteration) const {
    const auto decision = find(iteration);
    if (!decision) {
        std::ostringstream out;
        out << "iteration " << iteration << ": no decision recorded (never audited, "
            << "or evicted from the " << capacity_ << "-entry window)\n";
        return out.str();
    }
    return explain_decision(*decision);
}

namespace {

void append_json_string(std::string& out, const std::string& text) {
    out += '"';
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c; break;
        }
    }
    out += '"';
}

void append_double_array(std::string& out, const std::vector<double>& values) {
    char buf[48];
    out += '[';
    for (std::size_t i = 0; i < values.size(); ++i) {
        // %.17g round-trips every finite double exactly through strtod.
        std::snprintf(buf, sizeof buf, "%s%.17g", i ? "," : "", values[i]);
        out += buf;
    }
    out += ']';
}

} // namespace

std::string decisions_to_jsonl(const std::vector<Decision>& decisions) {
    std::string out;
    char buf[96];
    for (const Decision& d : decisions) {
        out += "{\"session\":";
        append_json_string(out, d.session);
        std::snprintf(buf, sizeof buf, ",\"iteration\":%zu,\"algorithm\":%zu",
                      d.iteration, d.algorithm);
        out += buf;
        out += ",\"algorithm_name\":";
        append_json_string(out, d.algorithm_name);
        out += d.explored ? ",\"explored\":true" : ",\"explored\":false";
        out += ",\"step_kind\":";
        append_json_string(out, d.step_kind);
        out += ",\"objective\":";
        append_json_string(out, d.objective);
        out += ",\"weights\":";
        append_double_array(out, d.weights);
        out += ",\"probabilities\":";
        append_double_array(out, d.probabilities);
        out += ",\"config\":[";
        for (std::size_t i = 0; i < d.config.size(); ++i) {
            std::snprintf(buf, sizeof buf, "%s%lld", i ? "," : "",
                          static_cast<long long>(d.config[i]));
            out += buf;
        }
        out += ']';
        // Context fields are emitted only when present so context-blind
        // audit lines stay byte-identical to what older runs produced.
        if (!d.features.empty()) {
            out += ",\"features\":";
            append_double_array(out, d.features);
        }
        if (!d.scores.empty()) {
            out += ",\"scores\":";
            append_double_array(out, d.scores);
        }
        out += "}\n";
    }
    return out;
}

std::string DecisionAuditTrail::to_jsonl() const { return decisions_to_jsonl(decisions()); }

bool write_audit_file(const std::string& path, const std::string& text, bool append) {
    std::ofstream file(path, std::ios::binary |
                                 (append ? std::ios::app : std::ios::trunc));
    if (!file) return false;
    file << text;
    return static_cast<bool>(file);
}

namespace {

std::string extract_string(const std::string& line, const std::string& key) {
    const std::string needle = "\"" + key + "\":\"";
    const auto at = line.find(needle);
    if (at == std::string::npos) return {};
    std::string value;
    for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
        const char c = line[i];
        if (c == '\\' && i + 1 < line.size()) {
            const char next = line[++i];
            value += next == 'n' ? '\n' : next == 't' ? '\t' : next;
        } else if (c == '"') {
            return value;
        } else {
            value += c;
        }
    }
    return value;
}

std::optional<double> extract_number(const std::string& line, const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const auto at = line.find(needle);
    if (at == std::string::npos) return std::nullopt;
    return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

bool extract_bool(const std::string& line, const std::string& key) {
    return line.find("\"" + key + "\":true") != std::string::npos;
}

std::vector<double> extract_double_array(const std::string& line,
                                         const std::string& key) {
    const std::string needle = "\"" + key + "\":[";
    const auto at = line.find(needle);
    if (at == std::string::npos) return {};
    std::vector<double> values;
    const char* cursor = line.c_str() + at + needle.size();
    while (*cursor != '\0' && *cursor != ']') {
        char* end = nullptr;
        const double value = std::strtod(cursor, &end);
        if (end == cursor) break;
        values.push_back(value);
        cursor = end;
        if (*cursor == ',') ++cursor;
    }
    return values;
}

} // namespace

std::optional<std::vector<Decision>> load_audit_file(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    if (!file) return std::nullopt;
    std::vector<Decision> decisions;
    std::string line;
    while (std::getline(file, line)) {
        const auto iteration = extract_number(line, "iteration");
        const auto algorithm = extract_number(line, "algorithm");
        if (!iteration || !algorithm) continue;
        Decision d;
        d.session = extract_string(line, "session");
        d.iteration = static_cast<std::size_t>(*iteration);
        d.algorithm = static_cast<std::size_t>(*algorithm);
        d.algorithm_name = extract_string(line, "algorithm_name");
        d.explored = extract_bool(line, "explored");
        d.step_kind = extract_string(line, "step_kind");
        d.objective = extract_string(line, "objective");
        d.weights = extract_double_array(line, "weights");
        d.probabilities = extract_double_array(line, "probabilities");
        d.features = extract_double_array(line, "features");
        d.scores = extract_double_array(line, "scores");
        for (const double v : extract_double_array(line, "config"))
            d.config.push_back(static_cast<std::int64_t>(v));
        decisions.push_back(std::move(d));
    }
    return decisions;
}

} // namespace atk::obs

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "support/thread_annotations.hpp"

namespace atk::obs {

struct TelemetryExporterOptions {
    /// Time between background flushes.
    std::chrono::milliseconds interval{1000};
    /// Prometheus text-format file rewritten on every flush ("" disables) —
    /// the file a node-exporter-style textfile collector would scrape.
    std::string metrics_path;
    /// Chrome trace-event JSON snapshot rewritten on every flush ("" disables).
    std::string trace_path;
};

/// Background telemetry flusher: a single thread that periodically writes
/// the metrics registry (Prometheus text format) and the span tracer's
/// current buffer (Chrome trace JSON) to files, so a live TuningService can
/// be inspected without any in-process hook.  Started by the constructor,
/// stopped (with one final flush) by stop()/the destructor.
class TelemetryExporter {
public:
    /// `metrics` may be nullptr when only traces are exported; it must
    /// outlive the exporter otherwise.
    TelemetryExporter(const MetricsRegistry* metrics, TelemetryExporterOptions options);
    ~TelemetryExporter();

    TelemetryExporter(const TelemetryExporter&) = delete;
    TelemetryExporter& operator=(const TelemetryExporter&) = delete;

    /// Runs one export cycle synchronously on the calling thread.
    /// Returns false when any configured target failed to write.
    bool flush_now();

    /// Final flush, then joins the background thread.  Idempotent.
    void stop();

    /// Completed export cycles (background + flush_now).
    [[nodiscard]] std::uint64_t flush_count() const;

private:
    void loop();

    const MetricsRegistry* metrics_;
    TelemetryExporterOptions options_;
    /// Serializes whole stop() calls; without it two concurrent stop()s
    /// could both reach thread_.join() (a double join is UB).  Ordering:
    /// stop_mutex_ is always taken before mutex_, never the reverse.  It
    /// guards a critical section, not data: atk-lint: allow(unguarded-mutex)
    Mutex stop_mutex_;
    mutable Mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ ATK_GUARDED_BY(mutex_) = false;
    std::uint64_t flushes_ ATK_GUARDED_BY(mutex_) = 0;
    std::thread thread_;
};

} // namespace atk::obs

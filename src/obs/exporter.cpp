#include "obs/exporter.hpp"

#include <fstream>

#include "obs/span.hpp"

namespace atk::obs {

TelemetryExporter::TelemetryExporter(const MetricsRegistry* metrics,
                                     TelemetryExporterOptions options)
    : metrics_(metrics), options_(std::move(options)) {
    thread_ = std::thread([this] { loop(); });
}

TelemetryExporter::~TelemetryExporter() { stop(); }

bool TelemetryExporter::flush_now() {
    bool ok = true;
    if (metrics_ != nullptr && !options_.metrics_path.empty()) {
        std::ofstream file(options_.metrics_path, std::ios::binary | std::ios::trunc);
        if (file) {
            file << metrics_->to_prometheus();
        }
        ok = static_cast<bool>(file) && ok;
    }
    if (!options_.trace_path.empty()) {
        ok = write_chrome_trace(options_.trace_path, Tracer::snapshot()) && ok;
    }
    {
        MutexLock lock(mutex_);
        ++flushes_;
    }
    return ok;
}

void TelemetryExporter::loop() {
    for (;;) {
        {
            MutexLock lock(mutex_);
            const auto deadline =
                std::chrono::steady_clock::now() + options_.interval;
            while (!stopping_) {
                if (cv_.wait_until(lock.native(), deadline) ==
                    std::cv_status::timeout)
                    break;
            }
            if (stopping_) return;
        }
        flush_now();
    }
}

void TelemetryExporter::stop() {
    // stop_mutex_ serializes entire stop() calls: two concurrent callers
    // used to be able to both observe thread_ joinable and both call
    // join() — a double join, which is undefined behavior.  The second
    // caller now waits for the first to finish joining and flushing, so
    // "stop() returned" still implies the final state reached the files.
    MutexLock stop_lock(stop_mutex_);
    {
        MutexLock lock(mutex_);
        if (stopping_) return;  // a prior stop() already joined and flushed
        stopping_ = true;
    }
    cv_.notify_all();
    thread_.join();
    flush_now();  // the final state always reaches the files
}

std::uint64_t TelemetryExporter::flush_count() const {
    MutexLock lock(mutex_);
    return flushes_;
}

} // namespace atk::obs

#include "obs/exporter.hpp"

#include <fstream>

#include "obs/span.hpp"

namespace atk::obs {

TelemetryExporter::TelemetryExporter(const MetricsRegistry* metrics,
                                     TelemetryExporterOptions options)
    : metrics_(metrics), options_(std::move(options)) {
    thread_ = std::thread([this] { loop(); });
}

TelemetryExporter::~TelemetryExporter() { stop(); }

bool TelemetryExporter::flush_now() {
    bool ok = true;
    if (metrics_ != nullptr && !options_.metrics_path.empty()) {
        std::ofstream file(options_.metrics_path, std::ios::binary | std::ios::trunc);
        if (file) {
            file << metrics_->to_prometheus();
        }
        ok = static_cast<bool>(file) && ok;
    }
    if (!options_.trace_path.empty()) {
        ok = write_chrome_trace(options_.trace_path, Tracer::snapshot()) && ok;
    }
    {
        std::lock_guard lock(mutex_);
        ++flushes_;
    }
    return ok;
}

void TelemetryExporter::loop() {
    std::unique_lock lock(mutex_);
    while (!stopping_) {
        if (cv_.wait_for(lock, options_.interval, [this] { return stopping_; }))
            break;
        lock.unlock();
        flush_now();
        lock.lock();
    }
}

void TelemetryExporter::stop() {
    {
        std::lock_guard lock(mutex_);
        if (stopping_ && !thread_.joinable()) return;
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
    flush_now();  // the final state always reaches the files
}

std::uint64_t TelemetryExporter::flush_count() const {
    std::lock_guard lock(mutex_);
    return flushes_;
}

} // namespace atk::obs

#include "obs/span.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include "support/thread_annotations.hpp"

namespace atk::obs {

namespace {

[[nodiscard]] std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Single-writer ring of completed spans.  Every field of a slot is an
/// atomic so a concurrent snapshot() can only read a stale or mixed record
/// (which it may drop), never invoke undefined behavior; name pointers are
/// static-storage literals so any value read is printable.
struct SpanRing {
    struct Slot {
        std::atomic<const char*> name{nullptr};
        std::atomic<std::uint64_t> start_ns{0};
        std::atomic<std::uint64_t> end_ns{0};
        std::atomic<std::uint32_t> depth{0};
        std::atomic<std::uint64_t> trace_id{0};
        std::atomic<std::uint64_t> span_id{0};
        std::atomic<std::uint64_t> parent_span_id{0};
    };

    explicit SpanRing(std::size_t capacity, std::uint32_t owner)
        : slots(capacity), thread_id(owner) {}

    std::vector<Slot> slots;
    std::atomic<std::uint64_t> total{0};  ///< spans ever pushed (head)
    const std::uint32_t thread_id;

    void push(const char* name, std::uint64_t start, std::uint64_t end,
              std::uint32_t depth, std::uint64_t trace_id, std::uint64_t span_id,
              std::uint64_t parent_span_id) noexcept {
        // Single-writer ring: the owning thread is the only mutator, and
        // the trailing release-store on `total` publishes the slot fields to
        // snapshot()'s acquire-load.  atk-lint: allow(relaxed)
        const std::uint64_t n = total.load(std::memory_order_relaxed);
        Slot& slot = slots[n % slots.size()];
        slot.name.store(name, std::memory_order_relaxed);            // atk-lint: allow(relaxed)
        slot.start_ns.store(start, std::memory_order_relaxed);       // atk-lint: allow(relaxed)
        slot.end_ns.store(end, std::memory_order_relaxed);           // atk-lint: allow(relaxed)
        slot.depth.store(depth, std::memory_order_relaxed);          // atk-lint: allow(relaxed)
        slot.trace_id.store(trace_id, std::memory_order_relaxed);    // atk-lint: allow(relaxed)
        slot.span_id.store(span_id, std::memory_order_relaxed);      // atk-lint: allow(relaxed)
        slot.parent_span_id.store(parent_span_id, std::memory_order_relaxed);  // atk-lint: allow(relaxed)
        total.store(n + 1, std::memory_order_release);
    }
};

struct Registry {
    Mutex mutex;
    std::vector<std::shared_ptr<SpanRing>> rings
        ATK_GUARDED_BY(mutex);  // survive thread exit
    std::uint32_t next_thread_id ATK_GUARDED_BY(mutex) = 0;
    std::size_t ring_capacity ATK_GUARDED_BY(mutex) = 4096;
};

Registry& registry() {
    // Intentionally leaked: atexit handlers (e.g. the bench harness's
    // ATK_TRACE dump) may snapshot after static destructors have run, so
    // the registry must never be destroyed.  Still reachable via this
    // pointer, so leak checkers stay quiet.
    static Registry* instance = new Registry;  // atk-lint: allow(naked-new)
    return *instance;
}

thread_local SpanRing* tls_ring = nullptr;
thread_local std::uint32_t tls_depth = 0;
thread_local TraceContext tls_context;

/// Best-effort globally unique span ids: a per-thread 32-bit nonce (wall
/// entropy mixed with the TLS slot's address, so two processes — or two
/// threads — starting the same nanosecond still diverge) over a per-thread
/// counter.  Uniqueness is probabilistic, which is all a trace viewer
/// needs; ids are never 0 (0 means "no span").
std::uint64_t next_span_id() noexcept {
    thread_local std::uint64_t counter = 0;
    thread_local const std::uint64_t nonce =
        ((now_ns() * 0x9E3779B97F4A7C15ull) ^
         reinterpret_cast<std::uintptr_t>(&counter)) << 32;
    return nonce | (++counter & 0xFFFFFFFFull);
}

SpanRing& thread_ring() {
    if (tls_ring == nullptr) {
        Registry& reg = registry();
        MutexLock lock(reg.mutex);
        auto ring = std::make_shared<SpanRing>(reg.ring_capacity, reg.next_thread_id++);
        tls_ring = ring.get();
        reg.rings.push_back(std::move(ring));
    }
    return *tls_ring;
}

} // namespace

std::atomic<bool> Tracer::enabled_{false};

void Tracer::enable(bool on) noexcept {
    // A stale enabled flag only delays when tracing starts/stops; no data
    // is published through it.  atk-lint: allow(relaxed)
    enabled_.store(on, std::memory_order_relaxed);
}

void Tracer::set_ring_capacity(std::size_t spans) {
    Registry& reg = registry();
    MutexLock lock(reg.mutex);
    reg.ring_capacity = std::max<std::size_t>(spans, 2);
}

std::size_t Tracer::ring_capacity() noexcept {
    Registry& reg = registry();
    MutexLock lock(reg.mutex);
    return reg.ring_capacity;
}

void Tracer::record(const char* name, std::uint64_t start_ns, std::uint64_t end_ns,
                    std::uint32_t depth, std::uint64_t trace_id,
                    std::uint64_t span_id, std::uint64_t parent_span_id) noexcept {
    thread_ring().push(name, start_ns, end_ns, depth, trace_id, span_id,
                       parent_span_id);
}

TraceContext current_trace_context() noexcept { return tls_context; }

ScopedTraceContext::ScopedTraceContext(TraceContext context) noexcept
    : saved_(tls_context) {
    tls_context = context;
}

ScopedTraceContext::~ScopedTraceContext() { tls_context = saved_; }

std::uint64_t Tracer::thread_span_count() noexcept {
    if (tls_ring == nullptr) return 0;
    // Own thread's counter: no cross-thread ordering.  atk-lint: allow(relaxed)
    return tls_ring->total.load(std::memory_order_relaxed);
}

std::vector<SpanRecord> Tracer::snapshot() {
    std::vector<std::shared_ptr<SpanRing>> rings;
    {
        Registry& reg = registry();
        MutexLock lock(reg.mutex);
        rings = reg.rings;
    }
    std::vector<SpanRecord> spans;
    for (const auto& ring : rings) {
        const std::uint64_t total = ring->total.load(std::memory_order_acquire);
        const std::uint64_t capacity = ring->slots.size();
        const std::uint64_t n = std::min(total, capacity);
        for (std::uint64_t i = total - n; i < total; ++i) {
            const auto& slot = ring->slots[i % capacity];
            // Slot fields below `total`'s acquire fence are settled; a slot
            // racing an overwrite yields a stale-or-mixed record that the
            // sanity checks drop.  atk-lint: allow(relaxed)
            const char* name = slot.name.load(std::memory_order_relaxed);
            if (name == nullptr) continue;  // racing overwrite: drop
            SpanRecord record;
            record.name = name;
            record.start_ns = slot.start_ns.load(std::memory_order_relaxed);  // atk-lint: allow(relaxed)
            record.end_ns = slot.end_ns.load(std::memory_order_relaxed);      // atk-lint: allow(relaxed)
            record.depth = slot.depth.load(std::memory_order_relaxed);        // atk-lint: allow(relaxed)
            record.trace_id = slot.trace_id.load(std::memory_order_relaxed);  // atk-lint: allow(relaxed)
            record.span_id = slot.span_id.load(std::memory_order_relaxed);    // atk-lint: allow(relaxed)
            record.parent_span_id =
                slot.parent_span_id.load(std::memory_order_relaxed);  // atk-lint: allow(relaxed)
            record.thread_id = ring->thread_id;
            if (record.end_ns < record.start_ns) continue;  // mixed slot: drop
            spans.push_back(std::move(record));
        }
    }
    return spans;
}

void Tracer::clear() {
    std::vector<std::shared_ptr<SpanRing>> rings;
    {
        Registry& reg = registry();
        MutexLock lock(reg.mutex);
        rings = reg.rings;
    }
    for (const auto& ring : rings) {
        // A cleared name is the "drop this slot" sentinel snapshot() checks.
        // atk-lint: allow(relaxed)
        for (auto& slot : ring->slots) slot.name.store(nullptr, std::memory_order_relaxed);
        ring->total.store(0, std::memory_order_release);
    }
}

void Span::begin(const char* name) noexcept {
    name_ = name;
    depth_ = tls_depth++;
    // Adopt the thread's current context as the parent (an enclosing Span,
    // a ScopedTraceContext carrying a remote caller, or nothing — in which
    // case this span roots a fresh trace) and install ourselves for any
    // children opened before finish().
    saved_ = tls_context;
    span_id_ = next_span_id();
    trace_id_ = saved_.valid() ? saved_.trace_id : span_id_;
    tls_context = TraceContext{trace_id_, span_id_};
    start_ns_ = now_ns();
}

void Span::finish() noexcept {
    const std::uint64_t end = now_ns();
    --tls_depth;
    tls_context = saved_;
    Tracer::record(name_, start_ns_, end, depth_, trace_id_, span_id_,
                   saved_.span_id);
}

std::vector<SpanStats> span_statistics(const std::vector<SpanRecord>& spans) {
    std::map<std::string, SpanStats> by_name;
    for (const auto& span : spans) {
        const double ms =
            static_cast<double>(span.end_ns - span.start_ns) / 1.0e6;
        auto [it, inserted] = by_name.try_emplace(span.name);
        SpanStats& stats = it->second;
        if (inserted) {
            stats.name = span.name;
            stats.min_ms = ms;
            stats.max_ms = ms;
        }
        ++stats.count;
        stats.total_ms += ms;
        stats.min_ms = std::min(stats.min_ms, ms);
        stats.max_ms = std::max(stats.max_ms, ms);
    }
    std::vector<SpanStats> rows;
    rows.reserve(by_name.size());
    for (auto& [name, stats] : by_name) {
        stats.mean_ms = stats.total_ms / static_cast<double>(stats.count);
        rows.push_back(std::move(stats));
    }
    std::sort(rows.begin(), rows.end(), [](const SpanStats& a, const SpanStats& b) {
        return a.total_ms > b.total_ms;
    });
    return rows;
}

namespace {

void append_json_string(std::string& out, const std::string& text) {
    out += '"';
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c; break;
        }
    }
    out += '"';
}

} // namespace

std::string to_chrome_trace(const std::vector<SpanRecord>& spans) {
    // One event object per line so the file is both valid JSON (an array of
    // "X" complete events, what Perfetto's JSON importer expects) and
    // greppable / parseable line-by-line by load_chrome_trace().
    std::string out = "[\n";
    char buf[320];
    for (std::size_t i = 0; i < spans.size(); ++i) {
        const SpanRecord& span = spans[i];
        out += "{\"name\":";
        append_json_string(out, span.name);
        // Microsecond timestamps with 3 decimals keep full ns precision.
        std::snprintf(buf, sizeof buf,
                      ",\"cat\":\"atk\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                      "\"pid\":%u,\"tid\":%u,\"args\":{\"depth\":%u",
                      static_cast<double>(span.start_ns) / 1.0e3,
                      static_cast<double>(span.end_ns - span.start_ns) / 1.0e3,
                      span.process_id, span.thread_id, span.depth);
        out += buf;
        if (span.span_id != 0) {
            // Ids as hex strings: u64 does not survive a JSON double.
            std::snprintf(buf, sizeof buf,
                          ",\"trace\":\"%016llx\",\"span\":\"%016llx\","
                          "\"parent\":\"%016llx\"",
                          static_cast<unsigned long long>(span.trace_id),
                          static_cast<unsigned long long>(span.span_id),
                          static_cast<unsigned long long>(span.parent_span_id));
            out += buf;
        }
        out += "}}";
        if (i + 1 < spans.size()) out += ',';
        out += '\n';
    }
    out += "]\n";
    return out;
}

bool write_chrome_trace(const std::string& path, const std::vector<SpanRecord>& spans) {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (!file) return false;
    file << to_chrome_trace(spans);
    return static_cast<bool>(file);
}

namespace {

/// Value of `"key":"..."` in a single-line JSON object; empty when absent.
std::string extract_string(const std::string& line, const std::string& key) {
    const std::string needle = "\"" + key + "\":\"";
    const auto at = line.find(needle);
    if (at == std::string::npos) return {};
    std::string value;
    for (std::size_t i = at + needle.size(); i < line.size(); ++i) {
        const char c = line[i];
        if (c == '\\' && i + 1 < line.size()) {
            const char next = line[++i];
            value += next == 'n' ? '\n' : next == 't' ? '\t' : next;
        } else if (c == '"') {
            return value;
        } else {
            value += c;
        }
    }
    return value;
}

/// Value of `"key":<number>`; nullopt when absent.
std::optional<double> extract_number(const std::string& line, const std::string& key) {
    const std::string needle = "\"" + key + "\":";
    const auto at = line.find(needle);
    if (at == std::string::npos) return std::nullopt;
    return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

/// Value of `"key":"<hex>"` as a u64; 0 when absent or unparsable.
std::uint64_t extract_hex(const std::string& line, const std::string& key) {
    const std::string text = extract_string(line, key);
    if (text.empty()) return 0;
    return std::strtoull(text.c_str(), nullptr, 16);
}

} // namespace

std::optional<std::vector<SpanRecord>> load_chrome_trace(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    if (!file) return std::nullopt;
    std::vector<SpanRecord> spans;
    std::string line;
    while (std::getline(file, line)) {
        if (line.find("\"ph\":\"X\"") == std::string::npos) continue;
        const std::string name = extract_string(line, "name");
        const auto ts = extract_number(line, "ts");
        const auto dur = extract_number(line, "dur");
        if (name.empty() || !ts || !dur) continue;
        SpanRecord span;
        span.name = name;
        span.start_ns = static_cast<std::uint64_t>(*ts * 1.0e3 + 0.5);
        span.end_ns = span.start_ns + static_cast<std::uint64_t>(*dur * 1.0e3 + 0.5);
        span.thread_id =
            static_cast<std::uint32_t>(extract_number(line, "tid").value_or(0.0));
        span.depth =
            static_cast<std::uint32_t>(extract_number(line, "depth").value_or(0.0));
        span.process_id =
            static_cast<std::uint32_t>(extract_number(line, "pid").value_or(1.0));
        span.trace_id = extract_hex(line, "trace");
        span.span_id = extract_hex(line, "span");
        span.parent_span_id = extract_hex(line, "parent");
        spans.push_back(std::move(span));
    }
    return spans;
}

void set_process_id(std::vector<SpanRecord>& spans, std::uint32_t process_id) {
    for (SpanRecord& span : spans) span.process_id = process_id;
}

std::vector<SpanRecord> merge_traces(
    const std::vector<std::vector<SpanRecord>>& traces) {
    std::vector<SpanRecord> merged;
    std::size_t total = 0;
    for (const auto& trace : traces) total += trace.size();
    merged.reserve(total);
    for (const auto& trace : traces)
        merged.insert(merged.end(), trace.begin(), trace.end());
    std::sort(merged.begin(), merged.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                  return a.start_ns < b.start_ns;
              });
    return merged;
}

} // namespace atk::obs

#include "obs/health.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace atk::obs {
namespace {

double clamp_unit(double x) { return std::min(std::max(x, 0.0), 1.0); }

} // namespace

const char* health_signal_name(HealthSignal signal) noexcept {
    switch (signal) {
    case HealthSignal::Converged: return "converged";
    case HealthSignal::Drift: return "drift";
    case HealthSignal::Crossover: return "crossover";
    case HealthSignal::Plateau: return "plateau";
    }
    return "unknown";
}

TuningHealthMonitor::TuningHealthMonitor(std::size_t algorithm_count,
                                         HealthOptions options)
    : algorithm_count_(algorithm_count),
      options_(options),
      algorithms_(algorithm_count),
      window_counts_(algorithm_count, 0),
      baseline_(clamp_unit(options.regret_quantile) > 0.0 &&
                        clamp_unit(options.regret_quantile) < 1.0
                    ? options.regret_quantile
                    : 0.10) {
    options_.share_window = std::max<std::size_t>(options_.share_window, 1);
    options_.plateau_window = std::max<std::size_t>(options_.plateau_window, 2);
    options_.yield_window = std::max<std::size_t>(options_.yield_window, 1);
    options_.drift_warmup = std::max<std::size_t>(options_.drift_warmup, 2);
}

void TuningHealthMonitor::observe(std::size_t algorithm, double cost,
                                  std::size_t config_dims) {
    // The bounds check reads the construction-time count, not the guarded
    // vector: observe() must stay cheap to reject before taking the lock.
    if (algorithm >= algorithm_count_) return;
    if (!std::isfinite(cost) || cost <= 0.0) return;

    MutexLock lock(mutex_);
    ++samples_;
    AlgoState& algo = algorithms_[algorithm];
    algo.config_dims = std::max(algo.config_dims, config_dims);
    ++algo.count;

    // --- per-algorithm cost mean: arithmetic during warmup (an unbiased
    // baseline for Page-Hinkley), slow EWMA after (tracks gentle seasonal
    // movement without chasing a genuine shift).
    if (algo.count <= options_.drift_warmup) {
        algo.mean += (cost - algo.mean) / static_cast<double>(algo.count);
    } else {
        algo.mean += options_.mean_alpha * (cost - algo.mean);
    }
    if (algo.best == 0.0 || cost < algo.best) algo.best = cost;
    if (algo.early_count < options_.yield_window) {
        algo.early_sum += cost;
        ++algo.early_count;
    }

    // --- trailing cost window (plateau CV).
    algo.recent.push_back(cost);
    algo.recent_sum += cost;
    algo.recent_sq_sum += cost * cost;
    if (algo.recent.size() > options_.plateau_window) {
        const double old = algo.recent.front();
        algo.recent.pop_front();
        algo.recent_sum -= old;
        algo.recent_sq_sum -= old * old;
    }

    // --- one-sided Page-Hinkley: accumulate relative cost *increases* over
    // the established mean.  Decreases are tuning progress, not drift — a
    // downward crossover is the crossover detector's job.
    if (algo.count > options_.drift_warmup && algo.mean > 0.0) {
        const double residual =
            std::min(cost / algo.mean - 1.0 - options_.drift_delta,
                     options_.drift_clamp);
        algo.ph_m += residual;
        algo.ph_min = std::min(algo.ph_min, algo.ph_m);
        if (algo.ph_m - algo.ph_min > options_.drift_lambda) {
            ++algo.drift_events;
            ++drift_events_;
            last_drift_sample_ = samples_;
            // Re-baseline on the post-shift regime so a second, later shift
            // can alarm again instead of drowning in the old mean.
            algo.mean = algo.recent_sum / static_cast<double>(algo.recent.size());
            algo.ph_m = 0.0;
            algo.ph_min = 0.0;
            emit(HealthSignal::Drift);
        }
    }

    // --- trailing selection window + convergence criterion.
    selections_.push_back(algorithm);
    ++window_counts_[algorithm];
    if (selections_.size() > options_.share_window) {
        --window_counts_[selections_.front()];
        selections_.pop_front();
    }
    if (converged_at_ == 0 && selections_.size() == options_.share_window) {
        const std::uint64_t leader_count =
            *std::max_element(window_counts_.begin(), window_counts_.end());
        const double share = static_cast<double>(leader_count) /
                             static_cast<double>(selections_.size());
        if (share >= options_.converged_share) {
            converged_at_ = samples_;
            emit(HealthSignal::Converged);
        }
    }

    // --- crossover: identity change of the cheapest sufficiently-sampled
    // mean.  The latebloomer overtaking the incumbent in the drift scenario
    // shows up here, not in the (increase-only) drift detector.
    const std::optional<std::size_t> cheapest = cheapest_locked();
    if (cheapest && cheapest_ && *cheapest != *cheapest_) {
        ++crossover_events_;
        cheapest_ = cheapest;
        emit(HealthSignal::Crossover);
    } else if (cheapest) {
        cheapest_ = cheapest;
    }

    // --- plateau: the *current leader* is flat and never tuned well.
    bool plateau_now = false;
    if (!selections_.empty()) {
        const std::size_t leader = static_cast<std::size_t>(
            std::max_element(window_counts_.begin(), window_counts_.end()) -
            window_counts_.begin());
        plateau_now = plateau_of(algorithms_[leader]);
    }
    if (plateau_now && !plateau_) {
        ++plateau_events_;
        plateau_ = true;
        emit(HealthSignal::Plateau);
    } else if (!plateau_now) {
        plateau_ = false;
    }

    // --- streaming regret estimate.
    baseline_.add(cost);
    if (recent_cost_ == 0.0) {
        recent_cost_ = cost;
    } else {
        recent_cost_ += options_.regret_alpha * (cost - recent_cost_);
    }
}

std::optional<std::size_t> TuningHealthMonitor::cheapest_locked() const {
    std::optional<std::size_t> winner;
    for (std::size_t i = 0; i < algorithms_.size(); ++i) {
        const AlgoState& algo = algorithms_[i];
        if (algo.count < options_.crossover_min_samples) continue;
        if (!winner || algo.mean < algorithms_[*winner].mean) winner = i;
    }
    return winner;
}

double TuningHealthMonitor::yield_of(const AlgoState& algo) {
    if (algo.early_count == 0 || algo.best <= 0.0) return 0.0;
    const double early_mean =
        algo.early_sum / static_cast<double>(algo.early_count);
    if (early_mean <= 0.0) return 0.0;
    return std::max(0.0, 1.0 - algo.best / early_mean);
}

double TuningHealthMonitor::cv_of(const AlgoState& algo) {
    const std::size_t n = algo.recent.size();
    if (n < 2) return 0.0;
    const double mean = algo.recent_sum / static_cast<double>(n);
    if (mean <= 0.0) return 0.0;
    const double var = std::max(
        0.0, algo.recent_sq_sum / static_cast<double>(n) - mean * mean);
    return std::sqrt(var) / mean;
}

bool TuningHealthMonitor::plateau_of(const AlgoState& algo) const {
    if (algo.config_dims == 0) return false;  // nothing to tune
    if (algo.recent.size() < options_.plateau_window) return false;
    if (cv_of(algo) > options_.plateau_cv) return false;
    return yield_of(algo) < options_.plateau_min_yield;
}

HealthSnapshot TuningHealthMonitor::snapshot_locked() const {
    HealthSnapshot snap;
    snap.samples = samples_;
    if (!selections_.empty()) {
        const auto leader_it =
            std::max_element(window_counts_.begin(), window_counts_.end());
        snap.leader =
            static_cast<std::size_t>(leader_it - window_counts_.begin());
        snap.leader_share = static_cast<double>(*leader_it) /
                            static_cast<double>(selections_.size());
    }
    snap.converged = converged_at_ != 0;
    snap.converged_at = converged_at_;
    snap.drift_events = drift_events_;
    snap.last_drift_sample = last_drift_sample_;
    snap.crossover_events = crossover_events_;
    snap.plateau = plateau_;
    snap.plateau_events = plateau_events_;
    snap.recent_cost = recent_cost_;
    const double baseline = baseline_.estimate();
    snap.baseline_cost = std::isfinite(baseline) ? baseline : 0.0;
    snap.regret = std::max(0.0, snap.recent_cost - snap.baseline_cost);
    snap.algorithms.reserve(algorithms_.size());
    for (const AlgoState& algo : algorithms_) {
        AlgorithmHealth row;
        row.samples = algo.count;
        row.mean_cost = algo.mean;
        row.best_cost = algo.best;
        row.tuning_yield = yield_of(algo);
        row.recent_cv = cv_of(algo);
        row.plateau = plateau_of(algo);
        row.drift_events = algo.drift_events;
        snap.algorithms.push_back(row);
    }
    return snap;
}

HealthSnapshot TuningHealthMonitor::snapshot() const {
    MutexLock lock(mutex_);
    return snapshot_locked();
}

void TuningHealthMonitor::subscribe(
    std::function<void(HealthSignal, const HealthSnapshot&)> handler) {
    MutexLock lock(mutex_);
    handlers_.push_back(std::move(handler));
}

void TuningHealthMonitor::emit(HealthSignal signal) {
    if (handlers_.empty()) return;
    const HealthSnapshot snap = snapshot_locked();
    for (const auto& handler : handlers_) handler(signal, snap);
}

// ---------------------------------------------------------------------------
// JSON line round-trip.  Same hand-rolled style as the audit trail: %.17g
// doubles so a parse re-serializes bit-identically, flat key space, one
// object per line.

namespace {

void append_escaped(std::string& out, const std::string& value) {
    for (const char c : value) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void append_f64(std::string& out, const char* key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"%s\":%.17g", key, value);
    out += buf;
}

void append_u64(std::string& out, const char* key, std::uint64_t value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", key,
                  static_cast<unsigned long long>(value));
    out += buf;
}

// Minimal extractors over the flat object (keys are unique per line).
bool extract_u64(const std::string& line, const std::string& key,
                 std::uint64_t& out) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos) return false;
    out = std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
    return true;
}

bool extract_f64(const std::string& line, const std::string& key, double& out) {
    const std::string needle = "\"" + key + "\":";
    const std::size_t pos = line.find(needle);
    if (pos == std::string::npos) return false;
    out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
    return true;
}

bool extract_str(const std::string& line, const std::string& key,
                 std::string& out) {
    const std::string needle = "\"" + key + "\":\"";
    const std::size_t start = line.find(needle);
    if (start == std::string::npos) return false;
    std::size_t pos = start + needle.size();
    out.clear();
    while (pos < line.size() && line[pos] != '"') {
        if (line[pos] == '\\' && pos + 1 < line.size()) {
            ++pos;
            switch (line[pos]) {
            case 'n': out += '\n'; break;
            case 't': out += '\t'; break;
            default: out += line[pos];
            }
        } else {
            out += line[pos];
        }
        ++pos;
    }
    return pos < line.size();
}

} // namespace

std::string health_to_json(const std::string& session,
                           const HealthSnapshot& snapshot) {
    std::string out = "{\"session\":\"";
    append_escaped(out, session);
    out += "\"";
    append_u64(out, "samples", snapshot.samples);
    append_u64(out, "leader",
               snapshot.leader ? static_cast<std::uint64_t>(*snapshot.leader)
                               : std::numeric_limits<std::uint64_t>::max());
    append_f64(out, "leader_share", snapshot.leader_share);
    append_u64(out, "converged", snapshot.converged ? 1 : 0);
    append_u64(out, "converged_at", snapshot.converged_at);
    append_u64(out, "drift_events", snapshot.drift_events);
    append_u64(out, "last_drift_sample", snapshot.last_drift_sample);
    append_u64(out, "crossover_events", snapshot.crossover_events);
    append_u64(out, "plateau", snapshot.plateau ? 1 : 0);
    append_u64(out, "plateau_events", snapshot.plateau_events);
    append_f64(out, "regret", snapshot.regret);
    append_f64(out, "recent_cost", snapshot.recent_cost);
    append_f64(out, "baseline_cost", snapshot.baseline_cost);
    out += ",\"algorithms\":[";
    for (std::size_t i = 0; i < snapshot.algorithms.size(); ++i) {
        const AlgorithmHealth& row = snapshot.algorithms[i];
        if (i != 0) out += ",";
        out += "{\"index\":" + std::to_string(i);
        append_u64(out, "samples", row.samples);
        append_f64(out, "mean_cost", row.mean_cost);
        append_f64(out, "best_cost", row.best_cost);
        append_f64(out, "tuning_yield", row.tuning_yield);
        append_f64(out, "recent_cv", row.recent_cv);
        append_u64(out, "plateau", row.plateau ? 1 : 0);
        append_u64(out, "drift_events", row.drift_events);
        out += "}";
    }
    out += "]}";
    return out;
}

std::optional<std::pair<std::string, HealthSnapshot>>
health_from_json(const std::string& line) {
    std::string session;
    if (!extract_str(line, "session", session)) return std::nullopt;
    HealthSnapshot snap;
    // The session-level scalars live before the algorithms array; parse them
    // off the prefix so per-algorithm keys (same names) cannot shadow them.
    const std::size_t array_pos = line.find(",\"algorithms\":[");
    if (array_pos == std::string::npos) return std::nullopt;
    const std::string head = line.substr(0, array_pos);
    std::uint64_t u = 0;
    if (!extract_u64(head, "samples", snap.samples)) return std::nullopt;
    if (extract_u64(head, "leader", u) &&
        u != std::numeric_limits<std::uint64_t>::max()) {
        snap.leader = static_cast<std::size_t>(u);
    }
    extract_f64(head, "leader_share", snap.leader_share);
    if (extract_u64(head, "converged", u)) snap.converged = u != 0;
    extract_u64(head, "converged_at", snap.converged_at);
    extract_u64(head, "drift_events", snap.drift_events);
    extract_u64(head, "last_drift_sample", snap.last_drift_sample);
    extract_u64(head, "crossover_events", snap.crossover_events);
    if (extract_u64(head, "plateau", u)) snap.plateau = u != 0;
    extract_u64(head, "plateau_events", snap.plateau_events);
    extract_f64(head, "regret", snap.regret);
    extract_f64(head, "recent_cost", snap.recent_cost);
    extract_f64(head, "baseline_cost", snap.baseline_cost);

    // Per-algorithm rows: split on "},{" within the array body.
    std::size_t pos = array_pos + std::strlen(",\"algorithms\":[");
    while (pos < line.size() && line[pos] == '{') {
        std::size_t end = line.find('}', pos);
        if (end == std::string::npos) return std::nullopt;
        const std::string obj = line.substr(pos, end - pos + 1);
        AlgorithmHealth row;
        extract_u64(obj, "samples", row.samples);
        extract_f64(obj, "mean_cost", row.mean_cost);
        extract_f64(obj, "best_cost", row.best_cost);
        extract_f64(obj, "tuning_yield", row.tuning_yield);
        extract_f64(obj, "recent_cv", row.recent_cv);
        if (extract_u64(obj, "plateau", u)) row.plateau = u != 0;
        extract_u64(obj, "drift_events", row.drift_events);
        snap.algorithms.push_back(row);
        pos = end + 1;
        if (pos < line.size() && line[pos] == ',') ++pos;
    }
    return std::make_pair(std::move(session), std::move(snap));
}

} // namespace atk::obs

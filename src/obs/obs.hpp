#pragma once

/// Umbrella header for the atk_obs observability layer: scoped span tracing
/// with Chrome-trace export and cross-process trace-context propagation, the
/// per-iteration decision audit trail, the online tuning-health monitor,
/// metric instruments with CSV / table / Prometheus exposition, and the
/// background telemetry exporter.

#include "obs/audit.hpp"
#include "obs/exporter.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/span.hpp"

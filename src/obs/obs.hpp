#pragma once

/// Umbrella header for the atk_obs observability layer: scoped span tracing
/// with Chrome-trace export, the per-iteration decision audit trail, metric
/// instruments with CSV / table / Prometheus exposition, and the background
/// telemetry exporter.

#include "obs/audit.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/span.hpp"

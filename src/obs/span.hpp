#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace atk::obs {

/// One completed span as drained from a thread's ring buffer.  Names are
/// interned string literals on the hot path; the record carries a copy so
/// snapshots survive library unload and file round-trips.
struct SpanRecord {
    std::string name;
    std::uint64_t start_ns = 0;  ///< steady-clock nanoseconds
    std::uint64_t end_ns = 0;
    std::uint32_t thread_id = 0; ///< small dense id assigned per tracing thread
    std::uint32_t depth = 0;     ///< nesting depth at entry (0 = top level)
    std::uint64_t trace_id = 0;  ///< distributed trace this span belongs to
    std::uint64_t span_id = 0;   ///< this span's own id (0 = pre-trace record)
    std::uint64_t parent_span_id = 0;  ///< 0 = root of its trace
    std::uint32_t process_id = 1;      ///< Perfetto pid lane; rewritten on merge
};

/// The identity a span propagates to its children — across threads when
/// installed with ScopedTraceContext, and across processes when carried in a
/// wire frame's trace-context extension (net/protocol.hpp).  trace_id groups
/// every span of one logical request; span_id names the would-be parent.
struct TraceContext {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
    [[nodiscard]] bool valid() const noexcept { return trace_id != 0; }
};

/// The calling thread's active trace context: the innermost live Span (or
/// the installed ScopedTraceContext) while tracing is enabled, invalid
/// otherwise.  This is what a client injects into outgoing frames.
[[nodiscard]] TraceContext current_trace_context() noexcept;

/// Installs a trace context (typically one decoded off the wire) as the
/// calling thread's current parent, so spans opened in scope join the
/// remote caller's trace instead of starting fresh ones.  Restores the
/// previous context on destruction; an invalid context installs "no parent".
class ScopedTraceContext {
public:
    explicit ScopedTraceContext(TraceContext context) noexcept;
    ~ScopedTraceContext();

    ScopedTraceContext(const ScopedTraceContext&) = delete;
    ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

private:
    TraceContext saved_;
};

/// Process-wide span collector.  Each tracing thread owns a fixed-capacity
/// lock-free ring buffer (single writer, racing snapshot readers); when the
/// ring wraps, the oldest spans are overwritten — tracing never blocks and
/// never allocates on the hot path after the first span of a thread.
///
/// Tracing is off by default.  While disabled, constructing a Span costs a
/// single relaxed atomic load and branch (verified by bench_obs_overhead);
/// no ring is touched and no clock is read.
class Tracer {
public:
    /// Turns span recording on/off globally.  Existing buffered spans are
    /// kept; disable() only stops new recordings.
    static void enable(bool on = true) noexcept;
    [[nodiscard]] static bool enabled() noexcept {
        // The disabled-path cost budget (one load + branch) rules out any
        // stronger ordering; see Tracer::enable().  atk-lint: allow(relaxed)
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Capacity (spans per thread) used for rings created after the call;
    /// existing rings keep their size.  Minimum 2.
    static void set_ring_capacity(std::size_t spans);
    [[nodiscard]] static std::size_t ring_capacity() noexcept;

    /// Best-effort snapshot of every thread's buffered spans, oldest first
    /// per thread.  Safe to call while other threads keep tracing: a span
    /// being overwritten concurrently may be dropped, never torn into
    /// undefined behavior.
    [[nodiscard]] static std::vector<SpanRecord> snapshot();

    /// Discards all buffered spans (rings stay registered).
    static void clear();

    /// Spans recorded so far on the calling thread (including overwritten
    /// ones) — monotonically increasing, for wraparound tests.
    [[nodiscard]] static std::uint64_t thread_span_count() noexcept;

private:
    friend class Span;
    static void record(const char* name, std::uint64_t start_ns,
                       std::uint64_t end_ns, std::uint32_t depth,
                       std::uint64_t trace_id, std::uint64_t span_id,
                       std::uint64_t parent_span_id) noexcept;

    static std::atomic<bool> enabled_;
};

/// RAII scoped span.  `name` must be a string with static storage duration
/// (a literal): only the pointer is stored on the hot path.
///
///     void TuningService::process(const Event& event) {
///         obs::Span span("service.ingest");
///         ...
///     }
class Span {
public:
    explicit Span(const char* name) noexcept {
        if (!Tracer::enabled()) return;  // the single disabled-path branch
        begin(name);
    }
    ~Span() {
        if (name_ != nullptr) finish();
    }

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

private:
    void begin(const char* name) noexcept;
    void finish() noexcept;

    const char* name_ = nullptr;
    std::uint64_t start_ns_ = 0;
    std::uint32_t depth_ = 0;
    std::uint64_t trace_id_ = 0;
    std::uint64_t span_id_ = 0;
    TraceContext saved_;  ///< thread context to restore on finish
};

/// Aggregate statistics over all spans sharing a name.
struct SpanStats {
    std::string name;
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double mean_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
};

/// Groups a span snapshot by name; rows sorted by descending total time.
[[nodiscard]] std::vector<SpanStats> span_statistics(
    const std::vector<SpanRecord>& spans);

/// Serializes spans as a Chrome trace-event JSON array ("X" complete
/// events, microsecond timestamps) loadable in Perfetto / chrome://tracing.
/// Each event carries its record's process_id as the Perfetto pid and, when
/// the span belongs to a trace, hex trace/span/parent ids in args — so
/// traces from several processes merge into one timeline keyed by trace_id.
[[nodiscard]] std::string to_chrome_trace(const std::vector<SpanRecord>& spans);

/// Writes to_chrome_trace() of the given spans to `path`; false on I/O error.
bool write_chrome_trace(const std::string& path, const std::vector<SpanRecord>& spans);

/// Parses a Chrome trace-event JSON file produced by write_chrome_trace()
/// (one event object per line).  Returns std::nullopt when the file cannot
/// be read; malformed event lines are skipped.
[[nodiscard]] std::optional<std::vector<SpanRecord>> load_chrome_trace(
    const std::string& path);

/// Stamps every record with `process_id` (its Perfetto pid lane).  Merging
/// traces from N processes = one set_process_id per loaded file (distinct
/// pids), concatenate, export — cross-process spans stay linked by trace_id.
void set_process_id(std::vector<SpanRecord>& spans, std::uint32_t process_id);

/// Concatenates per-process span sets into one merged timeline, sorted by
/// start time.  Each input keeps the process_id already stamped on it.
[[nodiscard]] std::vector<SpanRecord> merge_traces(
    const std::vector<std::vector<SpanRecord>>& traces);

} // namespace atk::obs

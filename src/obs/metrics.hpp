#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/csv.hpp"
#include "support/table.hpp"
#include "support/thread_annotations.hpp"

namespace atk::obs {

/// Monotonically increasing event count (reports ingested, drops, ...).
/// Lock-free; safe to bump from any client thread on the hot path.
class Counter {
public:
    void increment(std::uint64_t delta = 1) noexcept {
        // Pure event count, never used to order other memory.
        value_.fetch_add(delta, std::memory_order_relaxed);  // atk-lint: allow(relaxed)
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);  // atk-lint: allow(relaxed)
    }

private:
    std::atomic<std::uint64_t> value_{0};
};

/// Last-written instantaneous value (queue depth, iteration counts).
class Gauge {
public:
    void set(double value) noexcept {
        // Last-writer-wins scalar, no ordering dependents.
        value_.store(value, std::memory_order_relaxed);  // atk-lint: allow(relaxed)
    }
    [[nodiscard]] double value() const noexcept {
        return value_.load(std::memory_order_relaxed);  // atk-lint: allow(relaxed)
    }

private:
    std::atomic<double> value_{0.0};
};

/// Bucketed distribution (ingestion latency, per-iteration cost).  Buckets
/// are cumulative-style upper bounds; values above the last bound land in
/// an implicit overflow bucket.  Mutex-guarded: histograms are recorded off
/// the client hot path (by the aggregator thread), so contention is nil.
class Histogram {
public:
    /// `bounds` must be strictly increasing and non-empty.
    explicit Histogram(std::vector<double> bounds);

    void observe(double value);

    [[nodiscard]] std::uint64_t count() const;
    [[nodiscard]] double sum() const;
    [[nodiscard]] double min() const;  ///< +inf when empty
    [[nodiscard]] double max() const;  ///< -inf when empty
    [[nodiscard]] double mean() const; ///< 0 when empty

    /// Upper bound of the bucket containing the q-quantile (q in [0, 1]);
    /// the overflow bucket reports the observed max.  0 when empty.
    [[nodiscard]] double quantile(double q) const;

    [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
    /// Per-bucket counts including the trailing overflow bucket.
    [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

private:
    std::vector<double> bounds_;  // immutable after construction, unguarded
    mutable Mutex mutex_;
    std::vector<std::uint64_t> counts_ ATK_GUARDED_BY(mutex_);  // bounds_.size() + 1 (overflow)
    std::uint64_t count_ ATK_GUARDED_BY(mutex_) = 0;
    double sum_ ATK_GUARDED_BY(mutex_) = 0.0;
    double min_ ATK_GUARDED_BY(mutex_);
    double max_ ATK_GUARDED_BY(mutex_);
};

/// Exponential default buckets for millisecond latencies: 0.001 .. ~4000.
[[nodiscard]] std::vector<double> default_latency_buckets_ms();

/// Named metric registry for the tuning runtime.  Lookup creates on first
/// use and returns a stable reference (instruments never move once
/// created), so call sites can cache `Counter&` across the process
/// lifetime.  Export goes through the existing support reporters — CSV for
/// offline analysis, table + sparkline for terminal dashboards — plus the
/// Prometheus text format for scrape-style collection (obs/prometheus.hpp).
class MetricsRegistry {
public:
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    /// Bounds are fixed at first creation.  A later lookup passing different
    /// bounds is a call-site bug (the caller would silently record into
    /// buckets it did not ask for) and throws std::invalid_argument.
    Histogram& histogram(const std::string& name,
                         std::vector<double> bounds = default_latency_buckets_ms());

    /// Long-format export: metric,type,field,value — one row per scalar
    /// field, histogram buckets included.  Rows are grouped by instrument
    /// type (counters, gauges, histograms) and sorted by name within each.
    [[nodiscard]] CsvWriter to_csv() const;

    /// Terminal rendering: one aligned table row per instrument; histograms
    /// additionally show their bucket distribution as a sparkline.
    [[nodiscard]] std::string render() const;

    /// Prometheus text exposition format (# TYPE comments, sanitized metric
    /// names, cumulative histogram buckets).  Implemented in prometheus.cpp.
    [[nodiscard]] std::string to_prometheus() const;

private:
    mutable Mutex mutex_;
    // std::map keeps export order deterministic (sorted by name).  The maps
    // are guarded; the instruments they point to are internally synchronized
    // and never move, which is what lets callers cache references.
    std::map<std::string, std::unique_ptr<Counter>> counters_ ATK_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Gauge>> gauges_ ATK_GUARDED_BY(mutex_);
    std::map<std::string, std::unique_ptr<Histogram>> histograms_ ATK_GUARDED_BY(mutex_);
};

} // namespace atk::obs

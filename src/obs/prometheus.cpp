#include "obs/prometheus.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"

namespace atk::obs {

std::string prometheus_metric_name(const std::string& name) {
    std::string out = "atk_";
    for (const char c : name) {
        const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                           (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += legal ? c : '_';
    }
    return out;
}

namespace {

std::string format_value(double value) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.10g", value);
    return buf;
}

void append_type(std::string& out, const std::string& name, const char* type) {
    out += "# TYPE " + name + " " + type + "\n";
}

} // namespace

std::string MetricsRegistry::to_prometheus() const {
    MutexLock lock(mutex_);
    std::string out;
    for (const auto& [name, counter] : counters_) {
        const std::string prom = prometheus_metric_name(name);
        append_type(out, prom, "counter");
        out += prom + " " + std::to_string(counter->value()) + "\n";
    }
    for (const auto& [name, gauge] : gauges_) {
        const std::string prom = prometheus_metric_name(name);
        append_type(out, prom, "gauge");
        out += prom + " " + format_value(gauge->value()) + "\n";
    }
    for (const auto& [name, histogram] : histograms_) {
        const std::string prom = prometheus_metric_name(name);
        append_type(out, prom, "histogram");
        const auto counts = histogram->bucket_counts();  // per-bucket
        const auto& bounds = histogram->bounds();
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < bounds.size(); ++b) {
            cumulative += counts[b];
            out += prom + "_bucket{le=\"" + format_value(bounds[b]) + "\"} " +
                   std::to_string(cumulative) + "\n";
        }
        cumulative += counts.back();  // overflow bucket
        out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
        out += prom + "_sum " + format_value(histogram->sum()) + "\n";
        out += prom + "_count " + std::to_string(histogram->count()) + "\n";
    }
    return out;
}

bool is_valid_prometheus_line(const std::string& line) {
    if (line.empty()) return true;
    if (line.rfind("# ", 0) == 0) return true;
    const char* cursor = line.c_str();
    // Metric name: [a-zA-Z_:][a-zA-Z0-9_:]*
    auto name_start = [](char c) {
        return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
    };
    auto name_char = [&](char c) {
        return name_start(c) || std::isdigit(static_cast<unsigned char>(c));
    };
    if (!name_start(*cursor)) return false;
    while (name_char(*cursor)) ++cursor;
    // Optional label set {label="value",...}
    if (*cursor == '{') {
        ++cursor;
        while (*cursor != '}') {
            if (!name_start(*cursor)) return false;
            while (name_char(*cursor)) ++cursor;
            if (*cursor != '=') return false;
            ++cursor;
            if (*cursor != '"') return false;
            ++cursor;
            while (*cursor != '\0' && *cursor != '"') {
                if (*cursor == '\\') ++cursor;
                if (*cursor != '\0') ++cursor;
            }
            if (*cursor != '"') return false;
            ++cursor;
            if (*cursor == ',') ++cursor;
        }
        ++cursor;
    }
    if (*cursor != ' ') return false;
    ++cursor;
    // Value: a number strtod fully consumes, or the special IEEE spellings.
    if (std::strcmp(cursor, "+Inf") == 0 || std::strcmp(cursor, "-Inf") == 0 ||
        std::strcmp(cursor, "NaN") == 0)
        return true;
    char* end = nullptr;
    std::strtod(cursor, &end);
    return end != cursor && *end == '\0';
}

} // namespace atk::obs

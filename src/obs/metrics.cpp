#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "support/sparkline.hpp"

namespace atk::obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
    if (bounds_.empty()) throw std::invalid_argument("Histogram: need at least one bound");
    if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
        std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
        throw std::invalid_argument("Histogram: bounds must be strictly increasing");
    counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double value) {
    MutexLock lock(mutex_);
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

std::uint64_t Histogram::count() const {
    MutexLock lock(mutex_);
    return count_;
}

double Histogram::sum() const {
    MutexLock lock(mutex_);
    return sum_;
}

double Histogram::min() const {
    MutexLock lock(mutex_);
    return min_;
}

double Histogram::max() const {
    MutexLock lock(mutex_);
    return max_;
}

double Histogram::mean() const {
    MutexLock lock(mutex_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
    q = std::clamp(q, 0.0, 1.0);
    MutexLock lock(mutex_);
    if (count_ == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        cumulative += counts_[b];
        if (cumulative > target) {
            return b < bounds_.size() ? bounds_[b] : max_;
        }
    }
    return max_;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
    MutexLock lock(mutex_);
    return counts_;
}

std::vector<double> default_latency_buckets_ms() {
    std::vector<double> bounds;
    for (double b = 0.001; b < 5000.0; b *= 4.0) bounds.push_back(b);
    return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
    MutexLock lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
    MutexLock lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
    MutexLock lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) {
        slot = std::make_unique<Histogram>(std::move(bounds));
    } else if (slot->bounds() != bounds) {
        throw std::invalid_argument("MetricsRegistry: histogram '" + name +
                                    "' already exists with different bounds");
    }
    return *slot;
}

CsvWriter MetricsRegistry::to_csv() const {
    MutexLock lock(mutex_);
    CsvWriter csv({"metric", "type", "field", "value"});
    for (const auto& [name, counter] : counters_) {
        csv.add_row({name, "counter", "value", std::to_string(counter->value())});
    }
    for (const auto& [name, gauge] : gauges_) {
        csv.add_row({name, "gauge", "value", format_num(gauge->value(), 6)});
    }
    for (const auto& [name, histogram] : histograms_) {
        csv.add_row({name, "histogram", "count", std::to_string(histogram->count())});
        csv.add_row({name, "histogram", "sum", format_num(histogram->sum(), 6)});
        csv.add_row({name, "histogram", "mean", format_num(histogram->mean(), 6)});
        csv.add_row({name, "histogram", "p50", format_num(histogram->quantile(0.5), 6)});
        csv.add_row({name, "histogram", "p90", format_num(histogram->quantile(0.9), 6)});
        csv.add_row({name, "histogram", "p99", format_num(histogram->quantile(0.99), 6)});
        if (histogram->count() > 0) {
            csv.add_row({name, "histogram", "min", format_num(histogram->min(), 6)});
            csv.add_row({name, "histogram", "max", format_num(histogram->max(), 6)});
        }
        const auto counts = histogram->bucket_counts();
        const auto& bounds = histogram->bounds();
        for (std::size_t b = 0; b < counts.size(); ++b) {
            const std::string field =
                b < bounds.size() ? "le_" + format_num(bounds[b], 3) : "overflow";
            csv.add_row({name, "histogram", field, std::to_string(counts[b])});
        }
    }
    return csv;
}

std::string MetricsRegistry::render() const {
    MutexLock lock(mutex_);
    Table table({"metric", "type", "value", "detail"});
    for (const auto& [name, counter] : counters_) {
        table.row().text(name).text("counter").integer(
            static_cast<long long>(counter->value())).text("");
    }
    for (const auto& [name, gauge] : gauges_) {
        table.row().text(name).text("gauge").num(gauge->value(), 3).text("");
    }
    for (const auto& [name, histogram] : histograms_) {
        const auto counts = histogram->bucket_counts();
        std::vector<double> series(counts.size());
        for (std::size_t b = 0; b < counts.size(); ++b)
            series[b] = static_cast<double>(counts[b]);
        std::string detail = "n=" + std::to_string(histogram->count()) +
                             " p50=" + format_num(histogram->quantile(0.5), 3) +
                             " p90=" + format_num(histogram->quantile(0.9), 3) + " " +
                             sparkline(series);
        table.row().text(name).text("histogram").num(histogram->mean(), 3).text(detail);
    }
    return table.to_string();
}

} // namespace atk::obs

#pragma once

/// Umbrella header for the streaming DSP domain (case study 3): block-based
/// FIR convolution with genuine algorithmic choice — direct time-domain,
/// single-FFT overlap-add and uniformly-partitioned frequency-domain — fed
/// by a deadline-aware stream harness.  The three engines compute identical
/// outputs; they differ in their per-block latency *distribution*, which is
/// what the deadline-aware cost objectives (core/cost_objective.hpp) tune
/// over.

#include "dsp/convolver.hpp"
#include "dsp/fft.hpp"
#include "dsp/stream.hpp"

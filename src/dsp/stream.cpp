#include "dsp/stream.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "core/search/nelder_mead.hpp"
#include "support/statistics.hpp"

namespace atk::dsp {

namespace {

/// Seed-stream separation, same discipline as the simulator: the impulse
/// response and the input signal draw from independent streams of the spec
/// seed, so changing one never perturbs the other.
constexpr std::uint64_t kImpulseStream = 0x6972ULL;      // "ir"
constexpr std::uint64_t kSignalStream = 0x7369676EULL;   // "sign"

double steady_now_ms() {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

// ---------------------------------------------------------------- report

double StreamReport::mean() const {
    return block_ms.empty() ? 0.0 : atk::mean(block_ms);
}

double StreamReport::p50() const {
    return block_ms.empty() ? 0.0 : atk::quantile(block_ms, 0.50);
}

double StreamReport::p95() const {
    return block_ms.empty() ? 0.0 : atk::quantile(block_ms, 0.95);
}

double StreamReport::p99() const {
    return block_ms.empty() ? 0.0 : atk::quantile(block_ms, 0.99);
}

double StreamReport::miss_rate() const {
    return block_ms.empty()
               ? 0.0
               : static_cast<double>(misses) / static_cast<double>(block_ms.size());
}

CostBatch StreamReport::to_batch() const {
    CostBatch batch;
    batch.samples = block_ms;
    batch.deadline = deadline_ms;
    return batch;
}

// --------------------------------------------------------------- harness

StreamHarness::StreamHarness(StreamSpec spec, ClockFn clock)
    : spec_(spec), clock_(clock ? std::move(clock) : ClockFn(steady_now_ms)) {
    if (spec_.ir_length == 0)
        throw std::invalid_argument("StreamHarness: ir_length must be positive");
    if (spec_.deadline_ms < 0.0)
        throw std::invalid_argument("StreamHarness: deadline must be non-negative");
    Rng rng(spec_.seed ^ kImpulseStream);
    impulse_ = make_impulse_response(spec_.ir_length, rng);
}

StreamReport StreamHarness::run(Convolver& convolver, std::size_t blocks) const {
    const std::size_t block = convolver.block_size();
    convolver.reset();
    Rng rng(spec_.seed ^ kSignalStream);
    std::vector<double> in(block);
    std::vector<double> out(block);
    StreamReport report;
    report.deadline_ms = spec_.deadline_ms;
    report.block_ms.reserve(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
        for (double& sample : in) sample = rng.uniform_real(-1.0, 1.0);
        const double start = clock_();
        convolver.process(in, out);
        const double elapsed = clock_() - start;
        report.block_ms.push_back(elapsed);
        if (spec_.deadline_ms > 0.0 && elapsed > spec_.deadline_ms) ++report.misses;
    }
    return report;
}

// ---------------------------------------------------------- test vectors

std::vector<double> make_impulse_response(std::size_t length, Rng& rng) {
    std::vector<double> impulse(length);
    double magnitude = 0.0;
    for (std::size_t i = 0; i < length; ++i) {
        const double envelope =
            std::exp(-3.0 * static_cast<double>(i) / static_cast<double>(length));
        impulse[i] = rng.uniform_real(-1.0, 1.0) * envelope;
        magnitude += std::abs(impulse[i]);
    }
    // Unit L1 norm keeps streamed outputs bounded regardless of length.
    if (magnitude > 0.0)
        for (double& tap : impulse) tap /= magnitude;
    return impulse;
}

std::vector<double> make_signal(std::size_t length, Rng& rng) {
    std::vector<double> signal(length);
    for (double& sample : signal) sample = rng.uniform_real(-1.0, 1.0);
    return signal;
}

// --------------------------------------------------------- tuner bridge

std::vector<TunableAlgorithm> tunable_algorithms() {
    std::vector<TunableAlgorithm> algorithms;

    TunableAlgorithm direct;
    direct.name = "direct";
    direct.space.add(Parameter::ratio("block_log2", kMinBlockLog2, kMaxBlockLog2));
    direct.initial = Configuration{{6}};
    direct.searcher = std::make_unique<NelderMeadSearcher>();
    algorithms.push_back(std::move(direct));

    TunableAlgorithm overlap_add;
    overlap_add.name = "overlap_add";
    overlap_add.space.add(
        Parameter::ratio("block_log2", kMinBlockLog2, kMaxBlockLog2));
    overlap_add.initial = Configuration{{8}};
    overlap_add.searcher = std::make_unique<NelderMeadSearcher>();
    algorithms.push_back(std::move(overlap_add));

    TunableAlgorithm partitioned;
    partitioned.name = "partitioned";
    partitioned.space.add(
        Parameter::ratio("block_log2", kMinBlockLog2, kMaxBlockLog2));
    partitioned.space.add(
        Parameter::ratio("partition_log2", kMinPartitionLog2, kMaxBlockLog2));
    partitioned.initial = Configuration{{8, 6}};
    partitioned.searcher = std::make_unique<NelderMeadSearcher>();
    algorithms.push_back(std::move(partitioned));

    return algorithms;
}

std::size_t block_size_for_trial(const Trial& trial) {
    if (trial.config.empty())
        throw std::invalid_argument("dsp trial carries no block_log2 parameter");
    const std::int64_t log2 = std::clamp(trial.config[0], kMinBlockLog2, kMaxBlockLog2);
    return std::size_t{1} << static_cast<std::size_t>(log2);
}

std::unique_ptr<Convolver> convolver_for_trial(const Trial& trial,
                                               const std::vector<double>& impulse) {
    const std::size_t block = block_size_for_trial(trial);
    switch (static_cast<Algo>(trial.algorithm)) {
    case Algo::Direct:
        return std::make_unique<DirectConvolver>(impulse, block);
    case Algo::OverlapAdd:
        return std::make_unique<OverlapAddConvolver>(impulse, block);
    case Algo::Partitioned: {
        if (trial.config.size() < 2)
            throw std::invalid_argument(
                "partitioned trial carries no partition_log2 parameter");
        const std::int64_t log2 =
            std::clamp(trial.config[1], kMinPartitionLog2, kMaxBlockLog2);
        const std::size_t partition =
            std::min(std::size_t{1} << static_cast<std::size_t>(log2), block);
        return std::make_unique<PartitionedConvolver>(impulse, block, partition);
    }
    }
    throw std::invalid_argument("dsp trial names an unknown algorithm index");
}

} // namespace atk::dsp

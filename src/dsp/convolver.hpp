#pragma once

#include <complex>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace atk::dsp {

/// One streaming FIR convolution engine: push fixed-size blocks of input,
/// receive the same number of output samples per block, with the engine
/// carrying whatever history/overlap state its algorithm needs between
/// blocks.  All three implementations compute the *identical* linear
/// convolution of the input stream with the impulse response (the
/// cross-algorithm equivalence test pins them together to 1e-9) — what
/// differs is the latency *distribution*: per-block cost, its variance and
/// its tail, which is exactly the surface the deadline-aware objectives
/// tune over.
class Convolver {
public:
    virtual ~Convolver() = default;

    [[nodiscard]] virtual const std::string& name() const noexcept = 0;
    [[nodiscard]] virtual std::size_t block_size() const noexcept = 0;
    [[nodiscard]] virtual std::size_t ir_length() const noexcept = 0;

    /// Convolves one block.  in.size() and out.size() must equal
    /// block_size(); throws std::invalid_argument otherwise.
    virtual void process(std::span<const double> in, std::span<double> out) = 0;

    /// Clears all inter-block state (history, overlap tails, delay lines).
    virtual void reset() = 0;
};

/// Direct time-domain FIR: y[n] = Σ_k h[k]·x[n−k] with an explicit input
/// history.  O(B·L) per block — slow for long responses but perfectly
/// smooth: every block costs the same, so its latency tail is flat.
class DirectConvolver final : public Convolver {
public:
    DirectConvolver(std::vector<double> impulse, std::size_t block);

    [[nodiscard]] const std::string& name() const noexcept override { return name_; }
    [[nodiscard]] std::size_t block_size() const noexcept override { return block_; }
    [[nodiscard]] std::size_t ir_length() const noexcept override {
        return impulse_.size();
    }
    void process(std::span<const double> in, std::span<double> out) override;
    void reset() override;

private:
    std::string name_;
    std::vector<double> impulse_;
    std::size_t block_;
    std::vector<double> history_;  ///< last L−1 input samples, oldest first
};

/// Single-FFT overlap-add: each block is zero-padded to N = next_pow2(B+L−1),
/// convolved in the frequency domain, and the tail beyond B is added into
/// the next block.  O(N log N) per block — fast on average, but the whole
/// FFT cost lands on every block at once.
class OverlapAddConvolver final : public Convolver {
public:
    OverlapAddConvolver(std::vector<double> impulse, std::size_t block);

    [[nodiscard]] const std::string& name() const noexcept override { return name_; }
    [[nodiscard]] std::size_t block_size() const noexcept override { return block_; }
    [[nodiscard]] std::size_t ir_length() const noexcept override { return ir_length_; }
    [[nodiscard]] std::size_t fft_size() const noexcept { return fft_size_; }
    void process(std::span<const double> in, std::span<double> out) override;
    void reset() override;

private:
    std::string name_;
    std::size_t ir_length_;
    std::size_t block_;
    std::size_t fft_size_;
    std::vector<std::complex<double>> spectrum_;  ///< FFT of the padded impulse
    std::vector<std::complex<double>> work_;
    std::vector<double> tail_;  ///< carry-over samples [B, N)
};

/// Uniformly-partitioned frequency-domain convolution (overlap-save with a
/// frequency-domain delay line): the impulse response is split into K
/// partitions of P samples; each incoming P-chunk is FFT'd once (size 2P)
/// and combined with all K stored spectra.  Partition size trades FFT cost
/// against spectra count — the classic real-time convolution knob, and this
/// layer's genuinely two-dimensional tuning space.
class PartitionedConvolver final : public Convolver {
public:
    /// `partition` must be a power of two and divide `block` (callers built
    /// through convolver_for_trial() clamp it to <= block, which suffices
    /// because both are powers of two).
    PartitionedConvolver(std::vector<double> impulse, std::size_t block,
                         std::size_t partition);

    [[nodiscard]] const std::string& name() const noexcept override { return name_; }
    [[nodiscard]] std::size_t block_size() const noexcept override { return block_; }
    [[nodiscard]] std::size_t ir_length() const noexcept override { return ir_length_; }
    [[nodiscard]] std::size_t partition_size() const noexcept { return partition_; }
    [[nodiscard]] std::size_t partition_count() const noexcept {
        return spectra_.size();
    }
    void process(std::span<const double> in, std::span<double> out) override;
    void reset() override;

private:
    std::string name_;
    std::size_t ir_length_;
    std::size_t block_;
    std::size_t partition_;
    std::vector<std::vector<std::complex<double>>> spectra_;  ///< H[k], size 2P
    std::vector<std::vector<std::complex<double>>> delay_;    ///< FDL ring, size 2P
    std::size_t head_ = 0;  ///< delay_ slot holding the newest input spectrum
    std::vector<double> prev_;  ///< previous P input samples (overlap-save)
    std::vector<std::complex<double>> work_;
    std::vector<std::complex<double>> accum_;
};

/// Reference full-signal convolution, used by the equivalence tests as the
/// ground truth all streaming engines must reproduce blockwise.
[[nodiscard]] std::vector<double> convolve_reference(std::span<const double> x,
                                                     std::span<const double> h);

} // namespace atk::dsp

#include "dsp/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace atk::dsp {

std::size_t next_pow2(std::size_t n) noexcept {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

void fft(std::span<std::complex<double>> data) {
    const std::size_t n = data.size();
    if (!is_pow2(n)) throw std::invalid_argument("fft: size must be a power of two");
    if (n <= 1) return;

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(data[i], data[j]);
    }

    // Butterfly passes.  Twiddles are recomputed per pass from one root of
    // unity — O(log n) trig calls total, plenty accurate for the 1e-9
    // cross-convolver equivalence budget.
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
        const std::complex<double> wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const std::complex<double> u = data[i + k];
                const std::complex<double> v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
}

void ifft(std::span<std::complex<double>> data) {
    // Conjugate trick: ifft(x) = conj(fft(conj(x))) / n.
    for (auto& c : data) c = std::conj(c);
    fft(data);
    const double inv = 1.0 / static_cast<double>(data.empty() ? 1 : data.size());
    for (auto& c : data) c = std::conj(c) * inv;
}

std::vector<std::complex<double>> real_fft(std::span<const double> x, std::size_t n) {
    if (!is_pow2(n) || n < x.size())
        throw std::invalid_argument("real_fft: n must be a power of two >= x.size()");
    std::vector<std::complex<double>> data(n);
    for (std::size_t i = 0; i < x.size(); ++i) data[i] = std::complex<double>(x[i], 0.0);
    fft(data);
    return data;
}

} // namespace atk::dsp

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/measurement.hpp"
#include "core/tuner.hpp"
#include "dsp/convolver.hpp"
#include "support/rng.hpp"

namespace atk::dsp {

/// Tuning-space bounds shared by the three convolvers.  Blocks and
/// partitions are log2-parameterized so every lattice point is a valid
/// power of two and Nelder-Mead moves in meaningful octave steps.
inline constexpr std::int64_t kMinBlockLog2 = 5;       ///< 32-sample blocks
inline constexpr std::int64_t kMaxBlockLog2 = 10;      ///< 1024-sample blocks
inline constexpr std::int64_t kMinPartitionLog2 = 4;   ///< 16-sample partitions

/// Names the per-algorithm config layout: every algorithm's parameter 0 is
/// block_log2; the partitioned engine adds partition_log2 as parameter 1.
enum class Algo : std::size_t { Direct = 0, OverlapAdd = 1, Partitioned = 2 };

/// What one streaming run measures: the full per-block latency series plus
/// the deadline it was run under.  The accessors are the latency-
/// distribution views the deadline objectives and bench_dsp_stream report.
struct StreamReport {
    std::vector<double> block_ms;  ///< per-block processing latency
    double deadline_ms = 0.0;      ///< budget each block was held to (0 = none)
    std::size_t misses = 0;        ///< blocks with block_ms > deadline_ms

    [[nodiscard]] double mean() const;
    [[nodiscard]] double p50() const;
    [[nodiscard]] double p95() const;
    [[nodiscard]] double p99() const;
    [[nodiscard]] double miss_rate() const;  ///< misses / blocks (0 when empty)

    /// The tuner-side view: the same samples and deadline as a CostBatch,
    /// ready for TwoPhaseTuner::report(trial, batch).
    [[nodiscard]] CostBatch to_batch() const;
};

/// Workload description for a streaming run.
struct StreamSpec {
    std::size_t ir_length = 257;   ///< impulse-response taps
    double deadline_ms = 0.0;      ///< per-block budget (0 = unconstrained)
    std::uint64_t seed = 0x5D5BULL;///< drives the impulse response and signal
};

/// Millisecond clock used to time each block.  Injectable so tests can
/// drive the harness with a deterministic virtual clock; the default reads
/// std::chrono::steady_clock.
using ClockFn = std::function<double()>;

/// Feeds a deterministic noise signal through a convolver block by block,
/// timing every block against the spec's deadline — the DSP analogue of
/// the simulator's evaluate_batch(), but against real engines on a real
/// (or injected) clock.  The same spec and seed always produce the same
/// impulse response and input stream, so two engines run over a harness
/// see bit-identical workloads.
class StreamHarness {
public:
    explicit StreamHarness(StreamSpec spec, ClockFn clock = {});

    [[nodiscard]] const StreamSpec& spec() const noexcept { return spec_; }

    /// The impulse response every convolver under this harness should be
    /// built with (derived deterministically from the spec seed).
    [[nodiscard]] const std::vector<double>& impulse() const noexcept {
        return impulse_;
    }

    /// Streams `blocks` blocks through the convolver and times each one.
    /// The input signal restarts from the spec seed on every call, so
    /// repeated runs measure the same workload.
    [[nodiscard]] StreamReport run(Convolver& convolver, std::size_t blocks) const;

private:
    StreamSpec spec_;
    ClockFn clock_;
    std::vector<double> impulse_;
};

/// Deterministic test vectors: white noise in [-1, 1] with a decaying
/// envelope (impulse) or flat (signal), fully determined by the Rng.
[[nodiscard]] std::vector<double> make_impulse_response(std::size_t length, Rng& rng);
[[nodiscard]] std::vector<double> make_signal(std::size_t length, Rng& rng);

/// The DSP layer's algorithm set for a TwoPhaseTuner: direct (block_log2),
/// overlap_add (block_log2) and partitioned (block_log2, partition_log2),
/// each with a Nelder-Mead phase-one searcher.  Order matches enum Algo.
[[nodiscard]] std::vector<TunableAlgorithm> tunable_algorithms();

/// Materializes the convolver a tuner trial denotes, for the given impulse
/// response.  The partitioned engine's partition is clamped to the block
/// size, so every point of the tuning space is constructible.
[[nodiscard]] std::unique_ptr<Convolver> convolver_for_trial(
    const Trial& trial, const std::vector<double>& impulse);

/// Block size a trial's configuration encodes (2^block_log2).
[[nodiscard]] std::size_t block_size_for_trial(const Trial& trial);

} // namespace atk::dsp

#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace atk::dsp {

/// Power-of-two helpers shared by the FFT convolvers and their tuning
/// spaces (block sizes and partition sizes are log2-parameterized).
[[nodiscard]] constexpr bool is_pow2(std::size_t n) noexcept {
    return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n (n must be >= 1 and representable).
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

/// In-place radix-2 Cooley-Tukey FFT.  data.size() must be a power of two;
/// throws std::invalid_argument otherwise.  Deliberately the plain
/// iterative bit-reversal formulation: the point of this layer is genuine
/// algorithmic choice under a deadline, not peak FLOPs, and the simple
/// kernel keeps the three convolvers bit-comparable.
void fft(std::span<std::complex<double>> data);

/// In-place inverse FFT, including the 1/N scaling (fft followed by ifft
/// reproduces the input up to rounding).
void ifft(std::span<std::complex<double>> data);

/// FFT of a real signal zero-padded to `n` (a power of two, >= x.size()).
[[nodiscard]] std::vector<std::complex<double>> real_fft(std::span<const double> x,
                                                         std::size_t n);

} // namespace atk::dsp

#include "dsp/convolver.hpp"

#include <algorithm>
#include <stdexcept>

#include "dsp/fft.hpp"

namespace atk::dsp {

namespace {

void check_block_args(std::span<const double> in, std::span<double> out,
                      std::size_t block) {
    if (in.size() != block || out.size() != block)
        throw std::invalid_argument("Convolver: block spans must match block_size()");
}

void check_ctor_args(const std::vector<double>& impulse, std::size_t block) {
    if (impulse.empty())
        throw std::invalid_argument("Convolver: impulse response must be non-empty");
    if (block == 0)
        throw std::invalid_argument("Convolver: block size must be positive");
}

} // namespace

// ---------------------------------------------------------------- direct

DirectConvolver::DirectConvolver(std::vector<double> impulse, std::size_t block)
    : name_("direct"), impulse_(std::move(impulse)), block_(block) {
    check_ctor_args(impulse_, block_);
    history_.assign(impulse_.size() - 1, 0.0);
}

void DirectConvolver::process(std::span<const double> in, std::span<double> out) {
    check_block_args(in, out, block_);
    const std::size_t length = impulse_.size();
    for (std::size_t i = 0; i < block_; ++i) {
        double acc = 0.0;
        for (std::size_t k = 0; k < length; ++k) {
            // x[i-k]: from this block when the index is non-negative,
            // otherwise from the history of the previous blocks.
            if (k <= i) {
                acc += impulse_[k] * in[i - k];
            } else {
                const std::size_t back = k - i;  // in [1, L-1]
                acc += impulse_[k] * history_[history_.size() - back];
            }
        }
        out[i] = acc;
    }
    // Slide the history: it always holds the last L-1 input samples.
    if (!history_.empty()) {
        const std::size_t keep =
            history_.size() > block_ ? history_.size() - block_ : 0;
        std::move(history_.end() - static_cast<std::ptrdiff_t>(keep), history_.end(),
                  history_.begin());
        const std::size_t take = history_.size() - keep;
        std::copy(in.end() - static_cast<std::ptrdiff_t>(take), in.end(),
                  history_.begin() + static_cast<std::ptrdiff_t>(keep));
    }
}

void DirectConvolver::reset() { std::fill(history_.begin(), history_.end(), 0.0); }

// ----------------------------------------------------------- overlap-add

OverlapAddConvolver::OverlapAddConvolver(std::vector<double> impulse,
                                         std::size_t block)
    : name_("overlap_add"), ir_length_(impulse.size()), block_(block) {
    check_ctor_args(impulse, block_);
    fft_size_ = next_pow2(block_ + ir_length_ - 1);
    spectrum_ = real_fft(impulse, fft_size_);
    work_.resize(fft_size_);
    tail_.assign(fft_size_ - block_, 0.0);
}

void OverlapAddConvolver::process(std::span<const double> in, std::span<double> out) {
    check_block_args(in, out, block_);
    for (std::size_t i = 0; i < block_; ++i)
        work_[i] = std::complex<double>(in[i], 0.0);
    std::fill(work_.begin() + static_cast<std::ptrdiff_t>(block_), work_.end(),
              std::complex<double>(0.0, 0.0));
    fft(work_);
    for (std::size_t i = 0; i < fft_size_; ++i) work_[i] *= spectrum_[i];
    ifft(work_);
    // Head of this block's convolution plus the previous blocks' tail.
    for (std::size_t i = 0; i < block_; ++i) {
        out[i] = work_[i].real();
        if (i < tail_.size()) out[i] += tail_[i];
    }
    // New tail = this block's samples beyond B, plus whatever of the old
    // tail reached past B.  Ascending j reads tail_[B+j] strictly ahead of
    // the write index j, so the slide is safe in place.
    for (std::size_t j = 0; j < tail_.size(); ++j) {
        double carry = work_[block_ + j].real();
        if (block_ + j < tail_.size()) carry += tail_[block_ + j];
        tail_[j] = carry;
    }
}

void OverlapAddConvolver::reset() { std::fill(tail_.begin(), tail_.end(), 0.0); }

// ----------------------------------------------------------- partitioned

PartitionedConvolver::PartitionedConvolver(std::vector<double> impulse,
                                           std::size_t block, std::size_t partition)
    : name_("partitioned"),
      ir_length_(impulse.size()),
      block_(block),
      partition_(partition) {
    check_ctor_args(impulse, block_);
    if (!is_pow2(partition_))
        throw std::invalid_argument(
            "PartitionedConvolver: partition must be a power of two");
    if (partition_ > block_ || block_ % partition_ != 0)
        throw std::invalid_argument(
            "PartitionedConvolver: partition must divide the block size");
    const std::size_t count = (ir_length_ + partition_ - 1) / partition_;
    spectra_.reserve(count);
    for (std::size_t k = 0; k < count; ++k) {
        const std::size_t begin = k * partition_;
        const std::size_t end = std::min(begin + partition_, ir_length_);
        spectra_.push_back(real_fft(
            std::span<const double>(impulse.data() + begin, end - begin),
            2 * partition_));
    }
    delay_.assign(count,
                  std::vector<std::complex<double>>(2 * partition_,
                                                    std::complex<double>(0.0, 0.0)));
    prev_.assign(partition_, 0.0);
    work_.resize(2 * partition_);
    accum_.resize(2 * partition_);
}

void PartitionedConvolver::process(std::span<const double> in, std::span<double> out) {
    check_block_args(in, out, block_);
    const std::size_t count = spectra_.size();
    for (std::size_t offset = 0; offset < block_; offset += partition_) {
        // Overlap-save input frame: previous chunk then current chunk.
        for (std::size_t i = 0; i < partition_; ++i) {
            work_[i] = std::complex<double>(prev_[i], 0.0);
            work_[partition_ + i] = std::complex<double>(in[offset + i], 0.0);
        }
        fft(work_);
        // Push into the frequency-domain delay line (ring; head = newest).
        head_ = (head_ + count - 1) % count;
        delay_[head_] = work_;
        // Y = Σ_k FDL[k] · H[k], where FDL[k] is the spectrum k chunks ago.
        std::fill(accum_.begin(), accum_.end(), std::complex<double>(0.0, 0.0));
        for (std::size_t k = 0; k < count; ++k) {
            const auto& line = delay_[(head_ + k) % count];
            const auto& spectrum = spectra_[k];
            for (std::size_t i = 0; i < accum_.size(); ++i)
                accum_[i] += line[i] * spectrum[i];
        }
        ifft(accum_);
        // Overlap-save: only the second half of the frame is valid output.
        for (std::size_t i = 0; i < partition_; ++i)
            out[offset + i] = accum_[partition_ + i].real();
        for (std::size_t i = 0; i < partition_; ++i) prev_[i] = in[offset + i];
    }
}

void PartitionedConvolver::reset() {
    for (auto& line : delay_)
        std::fill(line.begin(), line.end(), std::complex<double>(0.0, 0.0));
    std::fill(prev_.begin(), prev_.end(), 0.0);
    head_ = 0;
}

// ------------------------------------------------------------- reference

std::vector<double> convolve_reference(std::span<const double> x,
                                       std::span<const double> h) {
    if (x.empty() || h.empty()) return {};
    std::vector<double> y(x.size() + h.size() - 1, 0.0);
    for (std::size_t i = 0; i < x.size(); ++i)
        for (std::size_t k = 0; k < h.size(); ++k) y[i + k] += x[i] * h[k];
    return y;
}

} // namespace atk::dsp

#pragma once

#include <string>
#include <string_view>

#include "core/feature_model.hpp"

namespace atk::runtime {

/// Derives a stable session name from a workload's FeatureVector.
///
/// The paper's context K (input size, pattern length, hardware load) is
/// what the feature-model baseline describes with numeric features; the
/// runtime reuses the same vectors to *key sessions*: workloads that fall
/// into the same feature buckets share one tuner (and therefore amortize
/// each other's exploration), while workloads in different regimes tune
/// independently instead of fighting over one set of weights.
///
/// Each feature is discretized to its power-of-two bucket
/// (floor(log2(value)); values <= 0 map to a dedicated bucket), which
/// matches how the case-study features behave: matcher choice flips with
/// the *order of magnitude* of pattern length, not with ±1 characters.
///
///     context_key("match", {8, 4'000'000}) == "match/3/21"
[[nodiscard]] std::string context_key(std::string_view prefix,
                                      const FeatureVector& features);

} // namespace atk::runtime

#include "runtime/context.hpp"

#include <cmath>

namespace atk::runtime {

std::string context_key(std::string_view prefix, const FeatureVector& features) {
    std::string key(prefix);
    for (const double feature : features) {
        key += '/';
        if (!(feature > 0.0) || !std::isfinite(feature)) {
            key += '_';  // zero/negative/NaN: one shared out-of-domain bucket
        } else {
            key += std::to_string(static_cast<long>(std::floor(std::log2(feature))));
        }
    }
    return key;
}

} // namespace atk::runtime

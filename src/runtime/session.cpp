#include "runtime/session.hpp"

#include <stdexcept>

#include "core/state_io.hpp"
#include "obs/span.hpp"

namespace atk::runtime {

TuningSession::TuningSession(std::string name, std::unique_ptr<TwoPhaseTuner> tuner,
                             std::size_t audit_capacity,
                             std::optional<obs::HealthOptions> health)
    : name_(std::move(name)), tuner_(std::move(tuner)) {
    if (!tuner_) throw std::invalid_argument("TuningSession: null tuner");
    if (health) {
        health_ = std::make_unique<obs::TuningHealthMonitor>(
            tuner_->algorithm_count(), *health);
    }
    if (audit_capacity > 0) {
        audit_ = std::make_unique<obs::DecisionAuditTrail>(audit_capacity);
        // The hook runs on whichever thread drives tuner_->next() — always
        // under this session's mutex (constructor, ingest, restore), while
        // the trail is additionally synchronized for lock-free readers.
        tuner_->set_decision_hook([this](const DecisionEvent& event) {
            obs::Decision decision;
            decision.session = name_;
            decision.iteration = event.iteration;
            decision.algorithm = event.algorithm;
            decision.algorithm_name = event.algorithm_name;
            decision.explored = event.explored;
            decision.step_kind = event.step_kind;
            decision.objective = event.objective;
            decision.weights = event.weights;
            decision.config.reserve(event.config.size());
            for (std::size_t i = 0; i < event.config.size(); ++i)
                decision.config.push_back(event.config[i]);
            decision.features = event.features;
            decision.scores = event.scores;
            audit_->record(std::move(decision));
        });
    }
    recommendation_ = tuner_->next();
    sequence_ = 1;
}

Ticket TuningSession::begin() const {
    MutexLock lock(mutex_);
    return Ticket{sequence_, recommendation_};
}

Ticket TuningSession::begin(const FeatureVector& features) {
    MutexLock lock(mutex_);
    context_ = features;
    return Ticket{sequence_, recommendation_};
}

IngestResult TuningSession::ingest(const Ticket& ticket, Cost cost) {
    return ingest(ticket, cost, FeatureVector{});
}

IngestResult TuningSession::ingest(const Ticket& ticket, Cost cost,
                                   const FeatureVector& features) {
    obs::Span span("session.ingest");
    MutexLock lock(mutex_);
    IngestResult result;
    result.algorithm = ticket.trial.algorithm;
    const Cost previous_best = tuner_->best_cost();
    const bool had_best = previous_best > 0.0;
    if (ticket.sequence == sequence_) {
        // First measurement of the current generation: complete the strict
        // next()/report() cycle (the tuner pairs the cost with its pending
        // trial's features) and open the next recommendation under the
        // latest context the clients have announced.
        tuner_->report(recommendation_, cost);
        recommendation_ = tuner_->next(context_);
        ++sequence_;
        result.fresh = true;
    } else {
        // A concurrent client raced us, or the report arrived late: the
        // sample is still a valid measurement of (algorithm, config) —
        // taken under the features the reporting client announced.
        tuner_->observe(ticket.trial, cost, features);
    }
    result.improved = !had_best || tuner_->best_cost() < previous_best;
    result.iteration = tuner_->iteration();
    if (health_) {
        // The monitor's mutex nests strictly inside the session mutex; its
        // subscribers run inline here and must not call back into the session.
        health_->observe(ticket.trial.algorithm, cost,
                         ticket.trial.config.size());
    }
    return result;
}

bool TuningSession::install(std::size_t algorithm, Configuration config, Cost cost) {
    MutexLock lock(mutex_);
    if (algorithm >= tuner_->algorithm_count() || cost <= 0.0 ||
        !tuner_->algorithm(algorithm).space.contains(config))
        return false;
    tuner_->observe(Trial{algorithm, std::move(config)}, cost);
    return true;
}

std::vector<double> TuningSession::strategy_weights() const {
    MutexLock lock(mutex_);
    return tuner_->strategy().weights();
}

std::size_t TuningSession::iterations() const {
    MutexLock lock(mutex_);
    return tuner_->iteration();
}

bool TuningSession::has_best() const {
    MutexLock lock(mutex_);
    // Costs are strictly positive, so a zero best marks "nothing reported".
    return tuner_->best_cost() > 0.0;
}

Cost TuningSession::best_cost() const {
    MutexLock lock(mutex_);
    return tuner_->best_cost();
}

Trial TuningSession::best_trial() const {
    MutexLock lock(mutex_);
    return tuner_->best_trial();
}

std::size_t TuningSession::algorithm_count() const {
    MutexLock lock(mutex_);
    return tuner_->algorithm_count();
}

void TuningSession::save_state(StateWriter& out) const {
    MutexLock lock(mutex_);
    out.put_u64(sequence_);
    tuner_->save_state(out);
}

void TuningSession::restore_state(StateReader& in, std::uint64_t tuner_format) {
    MutexLock lock(mutex_);
    sequence_ = in.get_u64();
    tuner_->restore_state(in, tuner_format);
    // The session context is reconstructed from the pending trial's
    // features (format >= 3 archives carry them; older ones restore as
    // context-blind, which is what they were).
    context_ = tuner_->pending_features();
    if (tuner_->awaiting_report()) {
        recommendation_ = tuner_->pending_trial();
    } else {
        // Snapshot of a quiescent tuner (e.g. hand-built): open a fresh
        // recommendation so begin() has something to hand out.
        recommendation_ = tuner_->next();
        ++sequence_;
    }
}

} // namespace atk::runtime

#pragma once

/// Compatibility shim: the metric instruments moved to the observability
/// layer (obs/metrics.hpp, namespace atk::obs) so that span tracing, the
/// Prometheus exposition and the telemetry exporter can share them without
/// depending on the runtime.  Runtime code and existing call sites keep
/// using the atk::runtime names.

#include "obs/metrics.hpp"

namespace atk::runtime {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::default_latency_buckets_ms;

} // namespace atk::runtime

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/measurement.hpp"
#include "core/state_io.hpp"

namespace atk::runtime {

/// On-disk snapshot format, versioned so future layout changes can refuse
/// (or migrate) old files instead of mis-reading them.
///
/// A snapshot archive is a StateWriter token stream:
///
///     s atk-runtime-snapshot        magic
///     u <version>                   currently 3
///     u <session count>
///       per session: s <name> followed by TuningSession::save_state()
///     u <install count>
///       per install: InstallRecord (see below)
///
/// Install records carry *offline-tuned* best configurations (the
/// FFTW/ATLAS install-time scenario, produced by examples/offline_install)
/// into the online runtime: at restore they are fed to the session as
/// observed measurements, warm-starting both the phase-two strategy and the
/// best-known configuration without fabricating tuner-internal state.
/// Version history:
///   1  original layout; tuner state ends after the searcher states
///   2  tuner state additionally carries the cost objective (id + state);
///      version-1 archives still restore — their tuners keep the objective
///      they were constructed with (mean time, the only pre-2 behavior)
///   3  tuner state additionally carries the pending trial's feature vector
///      (contextual tuning); version-1/2 archives still restore — their
///      sessions come back context-blind, which is what they were
inline constexpr char kSnapshotMagic[] = "atk-runtime-snapshot";
inline constexpr std::uint64_t kSnapshotVersion = 3;
inline constexpr std::uint64_t kSnapshotMinVersion = 1;

/// One offline-installed seed measurement for a named session.
struct InstallRecord {
    std::string session;
    std::size_t algorithm = 0;
    Configuration config;
    Cost cost = 0.0;
};

/// Archive header helpers; read_snapshot_header throws
/// std::invalid_argument on a wrong magic or unsupported version.
void write_snapshot_header(StateWriter& out, std::uint64_t session_count,
                           std::uint64_t install_count);
struct SnapshotHeader {
    std::uint64_t version = 0;
    std::uint64_t session_count = 0;
    std::uint64_t install_count = 0;
};
[[nodiscard]] SnapshotHeader read_snapshot_header(StateReader& in);

void write_install_record(StateWriter& out, const InstallRecord& record);
[[nodiscard]] InstallRecord read_install_record(StateReader& in);

/// Writes `payload` to `path` via a sibling temp file + rename, so a crash
/// mid-write never leaves a truncated snapshot where a good one was.
/// Returns false on I/O failure.
bool write_state_file(const std::string& path, const std::string& payload);

/// Whole-file read; nullopt when the file cannot be opened.
[[nodiscard]] std::optional<std::string> read_state_file(const std::string& path);

/// Convenience for offline installers: a snapshot containing no sessions,
/// only install records (see examples/offline_install.cpp).
bool write_install_snapshot(const std::string& path,
                            const std::vector<InstallRecord>& records);

} // namespace atk::runtime

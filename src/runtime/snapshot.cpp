#include "runtime/snapshot.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace atk::runtime {

void write_snapshot_header(StateWriter& out, std::uint64_t session_count,
                           std::uint64_t install_count) {
    out.put_str(kSnapshotMagic);
    out.put_u64(kSnapshotVersion);
    out.put_u64(session_count);
    out.put_u64(install_count);
}

SnapshotHeader read_snapshot_header(StateReader& in) {
    const std::string magic = in.get_str();
    if (magic != kSnapshotMagic)
        throw std::invalid_argument("snapshot: bad magic '" + magic + "'");
    SnapshotHeader header;
    header.version = in.get_u64();
    if (header.version < kSnapshotMinVersion || header.version > kSnapshotVersion)
        throw std::invalid_argument("snapshot: unsupported version " +
                                    std::to_string(header.version));
    header.session_count = in.get_u64();
    header.install_count = in.get_u64();
    return header;
}

void write_install_record(StateWriter& out, const InstallRecord& record) {
    out.put_str(record.session);
    out.put_u64(record.algorithm);
    out.put_u64(record.config.size());
    for (std::size_t i = 0; i < record.config.size(); ++i) out.put_i64(record.config[i]);
    out.put_f64(record.cost);
}

InstallRecord read_install_record(StateReader& in) {
    InstallRecord record;
    record.session = in.get_str();
    record.algorithm = static_cast<std::size_t>(in.get_u64());
    std::vector<std::int64_t> values(in.get_count());
    for (auto& value : values) value = in.get_i64();
    record.config = Configuration(std::move(values));
    record.cost = in.get_f64();
    return record;
}

bool write_state_file(const std::string& path, const std::string& payload) {
    const std::string temp = path + ".tmp";
    {
        std::ofstream out(temp, std::ios::binary | std::ios::trunc);
        if (!out) return false;
        out << payload;
        if (!out.flush()) {
            std::remove(temp.c_str());
            return false;
        }
    }
    if (std::rename(temp.c_str(), path.c_str()) != 0) {
        std::remove(temp.c_str());
        return false;
    }
    return true;
}

std::optional<std::string> read_state_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

bool write_install_snapshot(const std::string& path,
                            const std::vector<InstallRecord>& records) {
    StateWriter out;
    write_snapshot_header(out, 0, records.size());
    for (const auto& record : records) write_install_record(out, record);
    return write_state_file(path, out.str());
}

} // namespace atk::runtime

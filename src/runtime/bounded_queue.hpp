#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <optional>
#include <stdexcept>
#include <utility>

#include "support/contracts.hpp"
#include "support/thread_annotations.hpp"

namespace atk::runtime {

/// Bounded multi-producer / single-consumer (MPSC by use, MPMC by
/// construction) queue carrying completed measurements from client threads
/// to the aggregator.
///
/// The bound is the backpressure mechanism of the tuning runtime: a full
/// queue means the aggregator cannot keep up with measurement traffic, and
/// the producer chooses between try_push() (drop the measurement — tuning
/// quality degrades gracefully, the hot path never stalls) and push()
/// (block — no sample loss, hot path pays the wait).
///
/// close() wakes everyone: producers fail fast, the consumer drains what is
/// left and then sees end-of-stream (nullopt).
template <typename T>
class BoundedQueue {
public:
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
        if (capacity == 0)
            throw std::invalid_argument("BoundedQueue: capacity must be positive");
    }

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    /// Non-blocking producer; false when full or closed.
    bool try_push(T value) {
        {
            MutexLock lock(mutex_);
            if (closed_ || items_.size() >= capacity_) return false;
            items_.push_back(std::move(value));
            ATK_ASSERT(items_.size() <= capacity_, "bounded queue overflowed its capacity");
        }
        not_empty_.notify_one();
        return true;
    }

    /// Blocking producer; waits for space. False when the queue is closed
    /// (the value is discarded).
    bool push(T value) {
        {
            MutexLock lock(mutex_);
            while (!closed_ && items_.size() >= capacity_)
                not_full_.wait(lock.native());
            if (closed_) return false;
            items_.push_back(std::move(value));
            ATK_ASSERT(items_.size() <= capacity_, "bounded queue overflowed its capacity");
        }
        not_empty_.notify_one();
        return true;
    }

    /// Blocking consumer; nullopt once the queue is closed and drained.
    std::optional<T> pop() {
        std::optional<T> value;
        {
            MutexLock lock(mutex_);
            while (!closed_ && items_.empty()) not_empty_.wait(lock.native());
            if (items_.empty()) return std::nullopt;  // closed and drained
            value.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        not_full_.notify_one();
        return value;
    }

    /// Non-blocking consumer.
    std::optional<T> try_pop() {
        std::optional<T> value;
        {
            MutexLock lock(mutex_);
            if (items_.empty()) return std::nullopt;
            value.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        not_full_.notify_one();
        return value;
    }

    /// Ends the stream: producers fail, the consumer drains then stops.
    void close() {
        {
            MutexLock lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] bool closed() const {
        MutexLock lock(mutex_);
        return closed_;
    }

    [[nodiscard]] std::size_t size() const {
        MutexLock lock(mutex_);
        return items_.size();
    }

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
    const std::size_t capacity_;
    mutable Mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_ ATK_GUARDED_BY(mutex_);
    bool closed_ ATK_GUARDED_BY(mutex_) = false;
};

} // namespace atk::runtime

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/tuner.hpp"
#include "obs/audit.hpp"
#include "obs/health.hpp"
#include "support/thread_annotations.hpp"

namespace atk::runtime {

/// What a client holds between begin() and report(): the recommendation it
/// was handed plus the generation it was issued under.  Tickets are plain
/// values — they survive the session moving on to newer recommendations,
/// and a late report is still attributed to the trial that actually ran.
struct Ticket {
    std::uint64_t sequence = 0;  ///< recommendation generation at issue time
    Trial trial;                 ///< the (algorithm, configuration) the client ran
};

/// How the aggregator classified one ingested measurement.
struct IngestResult {
    bool fresh = false;       ///< closed the current recommendation (full
                              ///  next()/report() cycle: searcher + strategy)
    bool improved = false;    ///< established a new session-best cost
    std::size_t iteration = 0;///< tuner iteration after ingestion
    std::size_t algorithm = 0;///< algorithm the measurement belongs to
};

/// One named tuning session: a TwoPhaseTuner plus the concurrency protocol
/// that lets many clients share it.
///
/// The core tuner is deliberately single-threaded with a strict
/// next()/report() alternation; the session bridges that to N concurrent
/// clients with a *recommendation generation* scheme: the tuner always has
/// exactly one outstanding trial (the current recommendation), every
/// begin() hands that trial out, and the first measurement that comes back
/// for the current generation closes the cycle (tuner.report + tuner.next
/// → new generation).  Measurements from superseded generations are still
/// learned from via TwoPhaseTuner::observe() — phase-two strategy and
/// best-known tracking — so concurrent clients never poison the searcher
/// protocol and never lose their samples.
///
/// All methods are thread-safe; the per-session mutex is the unit of
/// sharding in TuningService, so independent sessions never contend.
class TuningSession {
public:
    /// Takes ownership of a freshly constructed tuner and immediately opens
    /// the first recommendation.  `audit_capacity` > 0 attaches a decision
    /// audit trail of that many entries before the first recommendation is
    /// drawn, so even iteration 0 is explained; 0 disables auditing (no
    /// per-decision weights copy).  A `health` options block attaches an
    /// online obs::TuningHealthMonitor fed by every ingested measurement.
    TuningSession(std::string name, std::unique_ptr<TwoPhaseTuner> tuner,
                  std::size_t audit_capacity = 0,
                  std::optional<obs::HealthOptions> health = std::nullopt);

    TuningSession(const TuningSession&) = delete;
    TuningSession& operator=(const TuningSession&) = delete;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    /// Current recommendation; cheap (one uncontended lock, no tuner work).
    [[nodiscard]] Ticket begin() const;

    /// Context-aware begin(): records `features` as the session's current
    /// workload context.  The recommendation handed back was drawn under
    /// the previous context (it is shared across clients and generations);
    /// the new features steer the NEXT generation — the one opened when the
    /// current recommendation's first measurement lands.
    [[nodiscard]] Ticket begin(const FeatureVector& features);

    /// Feeds one completed measurement back (aggregator side).
    IngestResult ingest(const Ticket& ticket, Cost cost);

    /// Context-aware ingest(): `features` describe the workload the
    /// measurement was taken under.  Fresh measurements close the cycle as
    /// usual (the tuner pairs the cost with the features of its pending
    /// trial); stale ones train the contextual strategy out-of-band with
    /// exactly these features.
    IngestResult ingest(const Ticket& ticket, Cost cost,
                        const FeatureVector& features);

    /// Warm-start seed: records (algorithm, config, cost) as an observed
    /// measurement, e.g. from an offline install snapshot.  Seeds are
    /// advisory, not state — one that does not fit this session's tuner
    /// (algorithm out of range, config outside the space, cost <= 0) is
    /// rejected (returns false) instead of poisoning the session.
    bool install(std::size_t algorithm, Configuration config, Cost cost);

    /// The session's decision audit trail; nullptr when auditing is off.
    /// The trail is internally synchronized and owned by the session.
    [[nodiscard]] const obs::DecisionAuditTrail* audit() const noexcept {
        return audit_.get();
    }

    /// The session's online health monitor; nullptr when disabled.  The
    /// monitor is internally synchronized — snapshot() from any thread,
    /// subscribe() for the drift/plateau/crossover signal bus.
    [[nodiscard]] obs::TuningHealthMonitor* health() const noexcept {
        return health_.get();
    }

    // ---- introspection (each takes the session lock briefly) ----
    [[nodiscard]] std::vector<double> strategy_weights() const;
    [[nodiscard]] std::size_t iterations() const;
    [[nodiscard]] bool has_best() const;
    [[nodiscard]] Cost best_cost() const;
    [[nodiscard]] Trial best_trial() const;  ///< throws before first sample
    [[nodiscard]] std::size_t algorithm_count() const;

    /// Serializes sequence number + full tuner state (strategy weights,
    /// simplex, RNG stream, pending recommendation).
    void save_state(StateWriter& out) const;

    /// Restores onto a session whose tuner was constructed identically.
    /// `tuner_format` is the TwoPhaseTuner state-stream layout the snapshot
    /// carries (kTunerStateFormatV1 for version-1 archives, which predate
    /// the cost objective).
    void restore_state(StateReader& in,
                       std::uint64_t tuner_format = kTunerStateFormat);

private:
    const std::string name_;
    mutable Mutex mutex_;
    // audit_/health_ are internally synchronized (set once in the
    // constructor, never reseated) — only the tuner and the recommendation
    // protocol live under the session mutex.
    std::unique_ptr<obs::DecisionAuditTrail> audit_;  // before tuner_: hook target
    std::unique_ptr<obs::TuningHealthMonitor> health_;
    std::unique_ptr<TwoPhaseTuner> tuner_ ATK_GUARDED_BY(mutex_);
    std::uint64_t sequence_ ATK_GUARDED_BY(mutex_) = 0;
    Trial recommendation_ ATK_GUARDED_BY(mutex_);
    FeatureVector context_ ATK_GUARDED_BY(mutex_);  ///< latest begin() features
};

} // namespace atk::runtime

#include "runtime/service.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/state_io.hpp"
#include "obs/span.hpp"

namespace atk::runtime {

std::string session_tenant(const std::string& session) {
    const std::size_t slash = session.find('/');
    return slash == std::string::npos ? session : session.substr(0, slash);
}

TuningService::TuningService(TunerFactory factory, ServiceOptions options)
    : factory_(std::move(factory)),
      options_(std::move(options)),
      queue_(options_.queue_capacity),
      aggregator_pool_(1) {
    if (!factory_) throw std::invalid_argument("TuningService: null factory");
    if (options_.shard_count == 0)
        throw std::invalid_argument("TuningService: shard_count must be positive");
    shards_.reserve(options_.shard_count);
    for (std::size_t s = 0; s < options_.shard_count; ++s)
        shards_.push_back(std::make_unique<Shard>());
    drain_group_ = std::make_unique<ThreadPool::TaskGroup>(aggregator_pool_);
    drain_group_->submit([this] { drain_loop(); });
}

TuningService::~TuningService() { stop(); }

void TuningService::stop() {
    {
        MutexLock lock(flush_mutex_);
        if (stopped_) return;
        stopped_ = true;
    }
    queue_.close();
    drain_group_->wait_all();
}

TuningService::Shard& TuningService::shard_for(const std::string& name) const {
    const std::size_t hash = std::hash<std::string>{}(name);
    return *shards_[hash % shards_.size()];
}

std::shared_ptr<TuningSession> TuningService::session(const std::string& name) {
    auto created = materialize(name, /*resurrect_only=*/false);
    enforce_session_cap(name);
    return created;
}

std::shared_ptr<TuningSession> TuningService::materialize(const std::string& name,
                                                          bool resurrect_only) {
    Shard& shard = shard_for(name);
    MutexLock lock(shard.mutex);
    auto it = shard.sessions.find(name);
    if (it != shard.sessions.end()) {
        touch_lru(name);
        return it->second;
    }
    if (resurrect_only) {
        MutexLock lru_lock(lru_.mutex);
        if (lru_.evicted.find(name) == lru_.evicted.end()) return nullptr;
    }
    // Admission (quota check, eviction-blob claim, LRU/tenant registration)
    // happens under the shard lock so two racing creators cannot both claim
    // the same parked blob or double-count a tenant name.
    Admission admission = admit(name);
    const bool from_eviction = admission.blob.has_value();
    if (!admission.blob && options_.hydrator) {
        obs::Span span("service.hydrate");
        admission.blob = options_.hydrator(name);
    }
    std::unique_ptr<TwoPhaseTuner> tuner;
    try {
        tuner = factory_(name);
        if (!tuner)
            throw std::invalid_argument("TuningService: factory returned null tuner");
    } catch (...) {
        unadmit(name, admission);
        throw;
    }
    auto created = std::make_shared<TuningSession>(
        name, std::move(tuner), options_.audit_capacity,
        options_.health_enabled ? std::optional<obs::HealthOptions>(options_.health)
                                : std::nullopt);
    if (admission.blob) {
        try {
            restore_single(*created, name, *admission.blob);
            metrics_.counter("sessions_rehydrated").increment();
        } catch (...) {
            if (from_eviction) {
                // An evicted session's parked state is authoritative; losing
                // it is a bug worth failing loudly over, and the name must
                // not come back as a silently fresh session.
                unadmit(name, admission);
                throw;
            }
            // Hydrator blobs (peer replicas) are advisory warm starts: a
            // mismatched or corrupt one degrades to a fresh session.
            metrics_.counter("rehydrations_rejected").increment();
        }
    }
    shard.sessions.emplace(name, created);
    metrics_.counter("sessions_created").increment();
    return created;
}

TuningService::Admission TuningService::admit(const std::string& name) {
    Admission admission;
    admission.tenant = session_tenant(name);
    bool spilled = false;
    {
        MutexLock lock(lru_.mutex);
        const auto evicted_it = lru_.evicted.find(name);
        const bool known =
            evicted_it != lru_.evicted.end() || lru_.where.count(name) != 0;
        if (!known && options_.tenant_quota != 0) {
            const auto tenant_it = lru_.tenant_names.find(admission.tenant);
            if (tenant_it != lru_.tenant_names.end() &&
                tenant_it->second >= options_.tenant_quota) {
                metrics_.counter("quota_rejected").increment();
                throw QuotaExceededError(admission.tenant, options_.tenant_quota);
            }
        }
        if (!known) {
            ++lru_.tenant_names[admission.tenant];
            admission.counted_new_name = true;
        }
        if (evicted_it != lru_.evicted.end()) {
            if (evicted_it->second.empty()) {
                spilled = true;
            } else {
                admission.blob = std::move(evicted_it->second);
            }
            lru_.evicted.erase(evicted_it);
        }
        if (lru_.where.count(name) == 0) {
            lru_.order.push_back(name);
            lru_.where[name] = std::prev(lru_.order.end());
        }
    }
    if (spilled) {
        // The blob lives in a spill file; read it outside the LRU lock.  A
        // missing/unreadable file — or a claim that raced the evictor before
        // it finished spilling — degrades to a fresh session (counted).
        if (!options_.spill_dir.empty())
            admission.blob = read_state_file(spill_path(name));
        if (!admission.blob) metrics_.counter("evictions_lost").increment();
    }
    return admission;
}

void TuningService::unadmit(const std::string& name, const Admission& admission) {
    MutexLock lock(lru_.mutex);
    const auto it = lru_.where.find(name);
    if (it != lru_.where.end()) {
        lru_.order.erase(it->second);
        lru_.where.erase(it);
    }
    if (admission.counted_new_name) {
        const auto tenant_it = lru_.tenant_names.find(admission.tenant);
        if (tenant_it != lru_.tenant_names.end() && --tenant_it->second == 0)
            lru_.tenant_names.erase(tenant_it);
    }
}

void TuningService::touch_lru(const std::string& name) {
    if (options_.max_sessions == 0) return;  // tracking only matters for caps
    MutexLock lock(lru_.mutex);
    const auto it = lru_.where.find(name);
    // Absent = mid-eviction (the evictor already unlinked it); the next
    // materialize() re-registers, so approximate recency is preserved.
    if (it == lru_.where.end()) return;
    lru_.order.splice(lru_.order.end(), lru_.order, it->second);
}

void TuningService::enforce_session_cap(const std::string& protect) {
    if (options_.max_sessions == 0) return;
    for (;;) {
        std::string victim;
        {
            MutexLock lock(lru_.mutex);
            if (lru_.order.size() <= options_.max_sessions) return;
            for (const std::string& candidate : lru_.order) {
                if (candidate != protect) {
                    victim = candidate;
                    break;
                }
            }
            if (victim.empty()) return;
            const auto it = lru_.where.find(victim);
            lru_.order.erase(it->second);
            lru_.where.erase(it);
            // Park a placeholder in the same critical section: the victim is
            // never in neither map, so a concurrent admit() always sees it
            // as known (no tenant double-count, no quota re-check).
            lru_.evicted.emplace(victim, std::string());
        }
        evict_session(victim);
    }
}

void TuningService::evict_session(const std::string& name) {
    obs::Span span("service.evict");
    std::string blob;
    if (const auto session_ptr = find(name)) {
        StateWriter out;
        write_snapshot_header(out, 1, 0);
        out.put_str(name);
        session_ptr->save_state(out);
        blob = out.str();
    }
    drop_session(name);
    if (!options_.spill_dir.empty() && !blob.empty() &&
        write_state_file(spill_path(name), blob)) {
        blob.clear();  // "" marks the state as living in the spill file
    }
    {
        MutexLock lock(lru_.mutex);
        const auto it = lru_.evicted.find(name);
        // A concurrent materialize() may have claimed the placeholder and
        // revived the name as a live session; in that case the snapshot is
        // stale — discard it instead of parking state for a live session.
        if (it != lru_.evicted.end() && it->second.empty())
            it->second = std::move(blob);
    }
    metrics_.counter("sessions_evicted").increment();
}

std::string TuningService::spill_path(const std::string& name) const {
    // Hash-keyed file name: session names carry '/', which must not become
    // directory structure under spill_dir.
    std::uint64_t hash = 1469598103934665603ull;  // FNV-1a 64
    for (const unsigned char c : name) {
        hash ^= c;
        hash *= 1099511628211ull;
    }
    std::ostringstream path;
    path << options_.spill_dir << "/atk-evict-" << std::hex << hash << ".state";
    return path.str();
}

void TuningService::restore_single(TuningSession& session, const std::string& name,
                                   const std::string& blob) {
    StateReader in(blob);
    const SnapshotHeader header = read_snapshot_header(in);
    if (header.session_count != 1 || header.install_count != 0)
        throw std::invalid_argument(
            "TuningService: not a single-session snapshot");
    const std::string stored = in.get_str();
    if (stored != name)
        throw std::invalid_argument("TuningService: snapshot names session '" +
                                    stored + "', expected '" + name + "'");
    session.restore_state(in,
                          std::min<std::uint64_t>(header.version, kTunerStateFormat));
    if (!in.at_end())
        throw std::invalid_argument(
            "TuningService: trailing data after single-session snapshot");
}

std::optional<std::string> TuningService::session_snapshot(const std::string& name) {
    if (const auto session_ptr = find(name)) {
        StateWriter out;
        write_snapshot_header(out, 1, 0);
        out.put_str(name);
        session_ptr->save_state(out);
        return out.str();
    }
    bool spilled = false;
    {
        MutexLock lock(lru_.mutex);
        const auto it = lru_.evicted.find(name);
        if (it == lru_.evicted.end()) return std::nullopt;
        if (!it->second.empty()) return it->second;
        spilled = true;
    }
    if (!spilled || options_.spill_dir.empty()) return std::nullopt;
    return read_state_file(spill_path(name));
}

void TuningService::drop_session(const std::string& name) {
    Shard& shard = shard_for(name);
    MutexLock lock(shard.mutex);
    shard.sessions.erase(name);
}

std::shared_ptr<TuningSession> TuningService::find(const std::string& name) const {
    const Shard& shard = shard_for(name);
    MutexLock lock(shard.mutex);
    const auto it = shard.sessions.find(name);
    return it == shard.sessions.end() ? nullptr : it->second;
}

std::vector<std::string> TuningService::session_names() const {
    std::vector<std::string> names;
    for (const auto& shard : shards_) {
        MutexLock lock(shard->mutex);
        for (const auto& [name, unused] : shard->sessions) names.push_back(name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

std::size_t TuningService::session_count() const {
    std::size_t count = 0;
    for (const auto& shard : shards_) {
        MutexLock lock(shard->mutex);
        count += shard->sessions.size();
    }
    return count;
}

Ticket TuningService::begin(const std::string& session_name) {
    return session(session_name)->begin();
}

Ticket TuningService::begin(const std::string& session_name,
                            const FeatureVector& features) {
    return session(session_name)->begin(features);
}

bool TuningService::report(const std::string& session_name, const Ticket& ticket,
                           Cost cost) {
    return report(session_name, ticket, cost, FeatureVector{});
}

bool TuningService::report(const std::string& session_name, const Ticket& ticket,
                           Cost cost, const FeatureVector& features) {
    Event event{session_name, ticket, cost, features,
                std::chrono::steady_clock::now(), obs::current_trace_context()};
    // Relaxed is enough for the enqueue counter: flush() compares it against
    // processed_ under flush_mutex_, and the queue push/pop pair orders the
    // count against the event it counts.  atk-lint: allow(relaxed)
    enqueued_.fetch_add(1, std::memory_order_relaxed);
    const bool accepted =
        options_.block_when_full ? queue_.push(std::move(event))
                                 : queue_.try_push(std::move(event));
    if (!accepted) {
        enqueued_.fetch_sub(1, std::memory_order_relaxed);  // atk-lint: allow(relaxed)
        metrics_.counter("reports_dropped").increment();
        return false;
    }
    metrics_.counter("reports_enqueued").increment();
    metrics_.gauge("queue_depth").set(static_cast<double>(queue_.size()));
    return true;
}

std::size_t TuningService::report_batch(const std::string& session_name,
                                        const std::vector<BatchedMeasurement>& batch,
                                        const FeatureVector& features) {
    std::size_t accepted = 0;
    const obs::TraceContext trace = obs::current_trace_context();
    for (const BatchedMeasurement& m : batch) {
        Event event{session_name, m.ticket, m.cost, features,
                    std::chrono::steady_clock::now(), trace};
        // Same counter discipline as report().  atk-lint: allow(relaxed)
        enqueued_.fetch_add(1, std::memory_order_relaxed);
        const bool ok = options_.block_when_full ? queue_.push(std::move(event))
                                                 : queue_.try_push(std::move(event));
        if (ok) {
            ++accepted;
        } else {
            enqueued_.fetch_sub(1, std::memory_order_relaxed);  // atk-lint: allow(relaxed)
        }
    }
    if (accepted != 0) metrics_.counter("reports_enqueued").increment(accepted);
    if (accepted != batch.size())
        metrics_.counter("reports_dropped").increment(batch.size() - accepted);
    metrics_.gauge("queue_depth").set(static_cast<double>(queue_.size()));
    return accepted;
}

ServiceStats TuningService::stats() {
    ServiceStats s;
    s.sessions = session_count();
    s.queue_depth = queue_.size();
    s.queue_capacity = options_.queue_capacity;
    s.reports_enqueued = metrics_.counter("reports_enqueued").value();
    s.reports_dropped = metrics_.counter("reports_dropped").value();
    s.reports_orphaned = metrics_.counter("reports_orphaned").value();
    s.reports_fresh = metrics_.counter("reports_fresh").value();
    s.reports_stale = metrics_.counter("reports_stale").value();
    s.installs_applied = metrics_.counter("installs_applied").value();
    s.installs_rejected = metrics_.counter("installs_rejected").value();
    s.snapshots_restored = metrics_.counter("snapshots_restored").value();
    s.sessions_evicted = metrics_.counter("sessions_evicted").value();
    s.sessions_rehydrated = metrics_.counter("sessions_rehydrated").value();
    s.quota_rejected = metrics_.counter("quota_rejected").value();
    {
        MutexLock lock(lru_.mutex);
        s.evicted_held = lru_.evicted.size();
    }
    return s;
}

void TuningService::flush() {
    MutexLock lock(flush_mutex_);
    // atk-lint: allow(relaxed) — see the enqueue-side comment in report().
    while (processed_ < enqueued_.load(std::memory_order_relaxed) && !stopped_)
        flush_cv_.wait(lock.native());
}

void TuningService::drain_loop() {
    while (auto event = queue_.pop()) {
        obs::Span span("service.drain");
        if (options_.ingest_hook) options_.ingest_hook();
        process(*event);
        {
            MutexLock lock(flush_mutex_);
            ++processed_;
        }
        flush_cv_.notify_all();
    }
    // Queue closed: wake flush() waiters unconditionally.
    flush_cv_.notify_all();
}

void TuningService::process(const Event& event) {
    // Rejoin the reporting thread's distributed trace (a remote client's,
    // when the event came in over the wire) before opening our own spans.
    obs::ScopedTraceContext trace_scope(event.trace);
    obs::Span span("service.ingest");
    metrics_.gauge("queue_depth").set(static_cast<double>(queue_.size()));
    auto session_ptr = find(event.session);
    if (!session_ptr) {
        // The session may have been LRU-evicted after this event was queued:
        // restore it lazily so the measurement still lands (its ticket is
        // from the parked generation, so it classifies exactly as it would
        // have).  Names with no parked state stay orphaned — possible only
        // for hand-built tickets, since begin() always creates.
        session_ptr = materialize(event.session, /*resurrect_only=*/true);
        if (session_ptr) enforce_session_cap(event.session);
    } else {
        // A processed measurement is activity: it must refresh recency, or a
        // session that only ever reports (begin long past) looks idle to the
        // evictor while it is the hottest name on the node.
        touch_lru(event.session);
    }
    if (!session_ptr) {
        metrics_.counter("reports_orphaned").increment();
        return;
    }
    const IngestResult result =
        session_ptr->ingest(event.ticket, event.cost, event.features);
    metrics_.counter(result.fresh ? "reports_fresh" : "reports_stale").increment();
    metrics_.counter("session." + event.session + ".selections." +
                     std::to_string(result.algorithm))
        .increment();
    metrics_.gauge("session." + event.session + ".iterations")
        .set(static_cast<double>(result.iteration));
    if (result.improved) {
        // "Convergence iteration" proxy: the last iteration that still
        // improved the session best — flat afterwards means converged.
        metrics_.gauge("session." + event.session + ".last_improvement_iteration")
            .set(static_cast<double>(result.iteration));
    }
    const auto waited = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - event.enqueued)
                            .count();
    metrics_.histogram("ingest_latency_ms").observe(waited);

    if (const obs::TuningHealthMonitor* monitor = session_ptr->health()) {
        const obs::HealthSnapshot h = monitor->snapshot();
        const std::string prefix = "session." + event.session + ".health.";
        metrics_.gauge(prefix + "leader_share").set(h.leader_share);
        metrics_.gauge(prefix + "converged").set(h.converged ? 1.0 : 0.0);
        metrics_.gauge(prefix + "converged_at")
            .set(static_cast<double>(h.converged_at));
        metrics_.gauge(prefix + "drift_events")
            .set(static_cast<double>(h.drift_events));
        metrics_.gauge(prefix + "crossover_events")
            .set(static_cast<double>(h.crossover_events));
        metrics_.gauge(prefix + "plateau").set(h.plateau ? 1.0 : 0.0);
        metrics_.gauge(prefix + "regret").set(h.regret);
    }
}

std::vector<std::pair<std::string, obs::HealthSnapshot>>
TuningService::health(const std::string& filter) {
    flush();
    std::vector<std::pair<std::string, obs::HealthSnapshot>> out;
    const auto collect = [&](const std::string& name) {
        const auto session_ptr = find(name);
        if (!session_ptr) return;
        if (const obs::TuningHealthMonitor* monitor = session_ptr->health())
            out.emplace_back(name, monitor->snapshot());
    };
    if (!filter.empty()) {
        collect(filter);
    } else {
        for (const auto& name : session_names()) collect(name);
    }
    return out;
}

bool TuningService::write_health_json(const std::string& path) {
    if (!options_.health_enabled) return false;
    std::string out;
    for (const auto& [name, snapshot] : health()) {
        out += obs::health_to_json(name, snapshot);
        out += '\n';
    }
    return obs::write_audit_file(path, out);
}

bool TuningService::write_audit_jsonl(const std::string& path) {
    flush();
    if (options_.audit_capacity == 0) return false;
    std::string out;
    for (const auto& name : session_names()) {
        // find() can return null: a concurrent restore_payload() that hits
        // corrupt state drops the session between the name scan and here.
        const auto session_ptr = find(name);
        if (!session_ptr) continue;
        if (const obs::DecisionAuditTrail* trail = session_ptr->audit())
            out += trail->to_jsonl();
    }
    return obs::write_audit_file(path, out);
}

bool TuningService::install(const InstallRecord& record) {
    const bool applied =
        session(record.session)->install(record.algorithm, record.config, record.cost);
    metrics_.counter(applied ? "installs_applied" : "installs_rejected").increment();
    return applied;
}

std::string TuningService::snapshot_payload() {
    flush();
    obs::Span span("service.snapshot");
    // Pin every session before writing the header: a session dropped
    // concurrently (restore_payload() discarding corrupt state) would
    // otherwise null-deref here *and* desync the header's session count
    // from the records that follow.
    std::vector<std::pair<std::string, std::shared_ptr<TuningSession>>> pinned;
    for (const auto& name : session_names()) {
        if (auto session_ptr = find(name))
            pinned.emplace_back(name, std::move(session_ptr));
    }
    StateWriter out;
    write_snapshot_header(out, pinned.size(), 0);
    for (const auto& [name, session_ptr] : pinned) {
        out.put_str(name);
        session_ptr->save_state(out);
    }
    return out.str();
}

bool TuningService::snapshot_to(const std::string& path) {
    return write_state_file(path, snapshot_payload());
}

std::size_t TuningService::restore_from(const std::string& path) {
    const auto payload = read_state_file(path);
    if (!payload)
        throw std::invalid_argument("TuningService: cannot read snapshot '" + path + "'");
    return restore_payload(*payload);
}

std::size_t TuningService::restore_payload(const std::string& payload) {
    StateReader in(payload);
    const SnapshotHeader header = read_snapshot_header(in);
    // Snapshot version maps 1:1 onto the tuner state-stream format it was
    // written with: v1 predates the cost objective, v2 predates the pending
    // feature vector.  Newer-than-known versions were already rejected by
    // read_snapshot_header().
    const std::uint64_t tuner_format =
        std::min<std::uint64_t>(header.version, kTunerStateFormat);
    for (std::uint64_t s = 0; s < header.session_count; ++s) {
        const std::string name = in.get_str();
        try {
            session(name)->restore_state(in, tuner_format);
        } catch (...) {
            // A corrupt or truncated snapshot must not leave a half-restored
            // tuner serving traffic: discard the damaged session (the next
            // access recreates it fresh through the factory) and fail loudly.
            drop_session(name);
            throw;
        }
    }
    for (std::uint64_t r = 0; r < header.install_count; ++r) {
        install(read_install_record(in));
    }
    if (!in.at_end())
        throw std::invalid_argument(
            "TuningService: trailing data after snapshot payload");
    metrics_.counter("snapshots_restored").increment();
    return static_cast<std::size_t>(header.session_count);
}

} // namespace atk::runtime

#pragma once

/// Umbrella header for the atk_runtime serving layer: multi-session
/// concurrent tuning service, async measurement ingestion, warm-start
/// snapshot persistence, context keying and runtime metrics.

#include "runtime/bounded_queue.hpp"
#include "runtime/context.hpp"
#include "runtime/metrics.hpp"
#include "runtime/service.hpp"
#include "runtime/session.hpp"
#include "runtime/snapshot.hpp"

#pragma once

/// Umbrella header for the atk_runtime serving layer: multi-session
/// concurrent tuning service, async measurement ingestion, warm-start
/// snapshot persistence, context keying and runtime metrics.  The
/// observability layer (span tracing, decision audit, Prometheus
/// exposition, telemetry export) comes along via obs/obs.hpp.

#include "obs/obs.hpp"
#include "runtime/bounded_queue.hpp"
#include "runtime/context.hpp"
#include "runtime/metrics.hpp"
#include "runtime/service.hpp"
#include "runtime/session.hpp"
#include "runtime/snapshot.hpp"

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/span.hpp"
#include "runtime/bounded_queue.hpp"
#include "runtime/metrics.hpp"
#include "runtime/session.hpp"
#include "runtime/snapshot.hpp"
#include "support/thread_annotations.hpp"
#include "support/thread_pool.hpp"

namespace atk::runtime {

/// Builds the tuner for a newly created session.  Called with the session
/// name so the factory can vary algorithms/strategy per workload context;
/// must return a fresh, non-null TwoPhaseTuner.  For snapshots to restore,
/// the factory must be deterministic per name (same strategy type and
/// configuration, same algorithm list) across process runs.
using TunerFactory =
    std::function<std::unique_ptr<TwoPhaseTuner>(const std::string& session)>;

/// External warm-start source consulted when a never-seen session is first
/// touched: given the session name, returns a single-session snapshot blob
/// (the bytes TuningService::session_snapshot() produces) or nullopt.  The
/// fleet layer plugs a peer-replica store in here so a failed-over session
/// resumes from its replicated state instead of re-exploring.  Called with
/// a shard lock held — the hydrator must not call back into the service.
using SessionHydrator =
    std::function<std::optional<std::string>(const std::string& session)>;

/// Thrown by session-creating entry points (begin/report/session) when a
/// tenant is at its `ServiceOptions::tenant_quota` of distinct session
/// names.  Typed so the net layer can map it to a dedicated wire error
/// instead of a generic bad-request.
class QuotaExceededError : public std::runtime_error {
public:
    QuotaExceededError(std::string tenant, std::size_t quota)
        : std::runtime_error("TuningService: tenant '" + tenant +
                             "' is at its session quota of " +
                             std::to_string(quota)),
          tenant_(std::move(tenant)),
          quota_(quota) {}

    [[nodiscard]] const std::string& tenant() const noexcept { return tenant_; }
    [[nodiscard]] std::size_t quota() const noexcept { return quota_; }

private:
    std::string tenant_;
    std::size_t quota_;
};

/// The tenant of a session name: the prefix up to the first '/', or the
/// whole name when it has no '/'.  "stringmatch/8/21" → "stringmatch".
[[nodiscard]] std::string session_tenant(const std::string& session);

struct ServiceOptions {
    /// Bound of the measurement queue — the backpressure knob.
    std::size_t queue_capacity = 1024;
    /// Number of independent session-map shards; sessions hashing to
    /// different shards never contend on lookup.
    std::size_t shard_count = 8;
    /// Full-queue policy: true → report() blocks until the aggregator frees
    /// space (no sample loss); false → report() drops the measurement,
    /// bumps `reports_dropped` and returns false (hot path never stalls).
    bool block_when_full = false;
    /// Decision-audit window per session: every tuning iteration's strategy
    /// weights, selection probabilities, exploration roll and phase-one step
    /// are kept for the last `audit_capacity` iterations (see obs/audit.hpp,
    /// TuningService::write_audit_jsonl).  0 disables auditing, which also
    /// skips the per-decision weights() copy on the aggregator path.
    std::size_t audit_capacity = 0;
    /// Attaches an online obs::TuningHealthMonitor to every session, fed by
    /// the aggregator: convergence / drift / crossover / plateau detectors
    /// plus a streaming regret estimate, exported per session as
    /// `session.<name>.health.*` gauges and served over the net layer's
    /// Health frame.  Off by default — enabling it adds a per-ingest
    /// detector update and health-gauge refresh on the aggregator thread.
    bool health_enabled = false;
    /// Detector thresholds used when health_enabled is set.
    obs::HealthOptions health;
    /// Test hook: runs on the aggregator thread before each event is
    /// processed.  Lets tests stall ingestion deterministically to exercise
    /// backpressure; leave empty in production.
    std::function<void()> ingest_hook;
    /// Ceiling on concurrently *live* sessions (0 = unbounded).  When a new
    /// session would exceed it, the least-recently-touched live session is
    /// evicted: its state is snapshotted (to `spill_dir` when set, in-memory
    /// otherwise) and the object dropped.  The next touch of an evicted name
    /// restores it byte-identically — eviction trades latency for memory,
    /// never tuning progress.  This is how one node survives millions of
    /// named sessions.
    std::size_t max_sessions = 0;
    /// Cap on distinct session names per tenant (0 = none), where the
    /// tenant is the name prefix before the first '/'.  Exceeding it throws
    /// QuotaExceededError from the creating call.  Evicted sessions still
    /// count — the quota bounds state held on behalf of a tenant, not just
    /// live objects.
    std::size_t tenant_quota = 0;
    /// Directory evicted-session snapshots spill to; "" keeps the blobs in
    /// memory (still a large saving: a snapshot is far smaller than a live
    /// tuner + audit trail + metrics, and spilling makes it disk-priced).
    std::string spill_dir;
    /// Warm-start hook for never-seen sessions; see SessionHydrator.
    SessionHydrator hydrator;
};

/// Point-in-time view of the service's health, cheap enough to poll: the
/// scalar counters a dashboard (or the net layer's `Stats` frame) needs
/// without walking the MetricsRegistry.  Counters are monotonically
/// increasing; queue_depth is instantaneous.
struct ServiceStats {
    std::size_t sessions = 0;
    std::size_t queue_depth = 0;
    std::size_t queue_capacity = 0;
    std::uint64_t reports_enqueued = 0;
    std::uint64_t reports_dropped = 0;
    std::uint64_t reports_orphaned = 0;
    std::uint64_t reports_fresh = 0;
    std::uint64_t reports_stale = 0;
    std::uint64_t installs_applied = 0;
    std::uint64_t installs_rejected = 0;
    std::uint64_t snapshots_restored = 0;
    // Eviction/quota counters (0 on services without caps).  Wire note:
    // protocol v4 appends these to the StatsOk frame; v3 peers never see
    // them (see net/protocol.hpp).
    std::uint64_t sessions_evicted = 0;    ///< LRU evictions performed
    std::uint64_t sessions_rehydrated = 0; ///< evicted/replica restores
    std::uint64_t quota_rejected = 0;      ///< creations refused by quota
    std::uint64_t evicted_held = 0;        ///< evicted names currently parked
};

/// One measurement of a report_batch() call: the ticket the client ran plus
/// the cost it measured.  A batch shares one session name — the common case
/// for a remote worker streaming results of a single workload context.
struct BatchedMeasurement {
    Ticket ticket;
    Cost cost = 0.0;
};

/// The serving core of the tuning runtime: owns many named TuningSessions
/// behind a sharded mutex map, a bounded MPSC measurement queue, and one
/// background aggregator (running on a support/thread_pool) that performs
/// all tuner bookkeeping off the clients' hot path.
///
/// Client protocol, from any number of threads:
///
///     TuningService service(factory);
///     auto ticket = service.begin("stringmatch/8/21");   // pick trial
///     run(ticket.trial);                                  // the operation
///     service.report("stringmatch/8/21", ticket, elapsed_ms);
///
/// begin() is one uncontended mutex acquisition; report() is one bounded
/// queue push.  Neither touches strategy weights, simplex state or metrics
/// histograms — the aggregator does, serialized per session.
///
/// Tuning progress requires clients to *see* updated recommendations: a
/// client that reports and immediately begins again may still get the
/// recommendation it just measured if the aggregator has not processed the
/// measurement yet.  That is by design — with real workloads the time spent
/// running the trial dwarfs aggregation, so recommendations stay fresh.  A
/// client whose workload is near-free (benchmarks, tests) can outrun the
/// aggregator indefinitely, turning every report into a stale observation of
/// generation one; such clients should pace themselves with flush().
///
/// snapshot_to()/restore_from() persist every session's tuner state (and
/// accept offline InstallRecords) so a restarted process warm-starts with
/// identical strategy weights instead of re-exploring.
class TuningService {
public:
    explicit TuningService(TunerFactory factory, ServiceOptions options = {});
    ~TuningService();

    TuningService(const TuningService&) = delete;
    TuningService& operator=(const TuningService&) = delete;

    /// Current recommendation of `session`, creating the session on first
    /// use via the factory.
    Ticket begin(const std::string& session);

    /// Context-aware begin(): additionally announces the client's current
    /// workload features to the session (steers the next recommendation
    /// generation; see TuningSession::begin(features)).
    Ticket begin(const std::string& session, const FeatureVector& features);

    /// Enqueues a completed measurement (cost > 0, in ms or any positive
    /// unit).  Returns false when the measurement was dropped: full queue
    /// under the drop policy, or stopped service.  A ticket for a session
    /// name that was never begun is accepted here but discarded by the
    /// aggregator (counted as `reports_orphaned`).
    bool report(const std::string& session, const Ticket& ticket, Cost cost);

    /// Context-aware report(): `features` describe the workload the
    /// measurement was taken under; they ride the event queue to the
    /// aggregator and train contextual strategies (see
    /// TuningSession::ingest(ticket, cost, features)).
    bool report(const std::string& session, const Ticket& ticket, Cost cost,
                const FeatureVector& features);

    /// Batched ingest: enqueues every measurement of `batch` for one
    /// session and returns how many were accepted (the rest were dropped by
    /// the full-queue policy or the stopped service).  One gauge update for
    /// the whole batch instead of one per measurement — this is the path
    /// the net layer's batched `Report` frames land on.  `features` (may be
    /// empty) apply to every measurement of the batch: a batch is one
    /// workload context by construction.
    std::size_t report_batch(const std::string& session,
                             const std::vector<BatchedMeasurement>& batch,
                             const FeatureVector& features = {});

    /// Blocks until every measurement enqueued so far has been processed.
    void flush();

    /// Closes the queue and joins the aggregator after it drained the
    /// backlog.  Idempotent; implied by the destructor.  After stop(),
    /// report() returns false and begin() keeps serving recommendations.
    void stop();

    /// Session lookup; nullptr when the name was never begun/restored (or
    /// is currently evicted — find() never resurrects, session() does).
    [[nodiscard]] std::shared_ptr<TuningSession> find(const std::string& name) const;

    /// Find-or-create (what begin() uses internally).  Restores an evicted
    /// session from its parked snapshot, consults the hydrator for
    /// never-seen names, and enforces the tenant quota (throws
    /// QuotaExceededError) and the live-session cap (evicting the LRU
    /// victim) when configured.
    std::shared_ptr<TuningSession> session(const std::string& name);

    /// Serializes one session into a standalone single-session snapshot
    /// (same header/format as snapshot_payload(), session count 1) — the
    /// unit of eviction spill, peer replication, and lazy rehydration.
    /// Works for live *and* currently evicted sessions; nullopt when the
    /// name is unknown.  Does not flush(): the blob reflects measurements
    /// processed so far, which is what a warm-start consumer wants.
    [[nodiscard]] std::optional<std::string> session_snapshot(const std::string& name);

    [[nodiscard]] std::vector<std::string> session_names() const;
    [[nodiscard]] std::size_t session_count() const;

    [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }
    [[nodiscard]] const MetricsRegistry& metrics() const noexcept { return metrics_; }

    /// Scalar health snapshot (session count, queue depth, drop counters).
    /// Instruments are created on first access, so a freshly built service
    /// reports zeros rather than missing fields.
    [[nodiscard]] ServiceStats stats();

    /// Per-session tuning-health snapshots, name-sorted.  `filter` narrows
    /// to one session ("" = all); unknown names and disabled monitors yield
    /// an empty vector.  flush()es first so the snapshot reflects every
    /// measurement already reported.
    [[nodiscard]] std::vector<std::pair<std::string, obs::HealthSnapshot>>
    health(const std::string& filter = "");

    /// flush() + writes every monitored session's health as JSON Lines (one
    /// obs::health_to_json object per session, name order) — the file
    /// `atk_obs_inspect --health` consumes.  Returns false on I/O failure
    /// or when health monitoring is disabled.
    bool write_health_json(const std::string& path);

    /// Applies an offline-tuned seed measurement (creates the session if
    /// needed).  Returns false — and bumps `installs_rejected` — when the
    /// record does not fit the session's tuner; seeds are advisory, so a
    /// snapshot written against a different factory degrades to a warning
    /// counter instead of failing the restore.  See snapshot.hpp.
    bool install(const InstallRecord& record);

    /// flush() + atomically writes all sessions to `path`.
    /// Returns false on I/O failure.
    bool snapshot_to(const std::string& path);

    /// flush() + serializes every session into an in-memory snapshot
    /// payload (the exact bytes snapshot_to() writes) — the form the net
    /// layer ships over a `Snapshot` frame.
    [[nodiscard]] std::string snapshot_payload();

    /// Restores sessions from an in-memory payload produced by
    /// snapshot_payload() (or read from a snapshot_to() file).  Same
    /// contract as restore_from(): returns the number of sessions restored,
    /// throws std::invalid_argument on malformed or mismatched state, and
    /// drops any half-restored session before the exception propagates.
    std::size_t restore_payload(const std::string& payload);

    /// flush() + writes every audited session's decision window as JSON
    /// Lines (one decision per line, sessions in name order) — the file
    /// `atk_obs_inspect --audit` consumes.  Returns false on I/O failure or
    /// when auditing is disabled (audit_capacity == 0).
    bool write_audit_jsonl(const std::string& path);

    /// Restores sessions (and applies install records) from a snapshot
    /// written by snapshot_to() or write_install_snapshot().  Sessions are
    /// created through the factory, then overwritten with the persisted
    /// state.  Returns the number of sessions restored; throws
    /// std::invalid_argument on a malformed or mismatched snapshot.
    ///
    /// Corruption safety: a session whose persisted state turns out to be
    /// truncated or corrupt mid-restore is dropped from the service before
    /// the exception propagates, so no half-restored tuner ever serves
    /// traffic — the next access recreates it fresh through the factory.
    /// Call restore_from() at startup, before session handles are given
    /// out; handles obtained earlier keep the old object alive.
    std::size_t restore_from(const std::string& path);

private:
    struct Shard {
        mutable Mutex mutex;
        std::unordered_map<std::string, std::shared_ptr<TuningSession>> sessions
            ATK_GUARDED_BY(mutex);
    };

    struct Event {
        std::string session;
        Ticket ticket;
        Cost cost = 0.0;
        /// Workload features the measurement was taken under (empty =
        /// context-blind client); forwarded to the session's ingest.
        FeatureVector features;
        std::chrono::steady_clock::time_point enqueued;
        /// Distributed-trace identity captured at enqueue (the reporting
        /// thread's context, e.g. a server worker's remote parent), so the
        /// aggregator's ingest spans join the originating trace.
        obs::TraceContext trace;
    };

    /// LRU + eviction bookkeeping, one lock for all shards (touches are a
    /// list splice; creation/eviction are rare).  Lock ordering: a shard
    /// mutex may be held when taking lru_.mutex, never the reverse.
    struct Lru {
        mutable Mutex mutex;
        /// Live sessions, least-recently-touched first.
        std::list<std::string> order ATK_GUARDED_BY(mutex);
        std::unordered_map<std::string, std::list<std::string>::iterator> where
            ATK_GUARDED_BY(mutex);
        /// Evicted name → parked snapshot blob ("" = spilled to disk).
        std::unordered_map<std::string, std::string> evicted ATK_GUARDED_BY(mutex);
        /// Distinct session names (live + evicted) per tenant.
        std::unordered_map<std::string, std::size_t> tenant_names
            ATK_GUARDED_BY(mutex);
    };

    /// What admit() decided, so a failed creation can be rolled back.
    struct Admission {
        std::optional<std::string> blob;  ///< parked state to restore from
        bool counted_new_name = false;    ///< tenant accounting was bumped
        std::string tenant;
    };

    [[nodiscard]] Shard& shard_for(const std::string& name) const;
    void drop_session(const std::string& name);
    void drain_loop();
    void process(const Event& event);

    /// Find-or-create with the shard lock held throughout creation; the
    /// heart of session().  `resurrect_only` = only proceed for names with
    /// parked evicted state (the aggregator's lazy-restore path, which must
    /// keep orphaning never-seen names).
    std::shared_ptr<TuningSession> materialize(const std::string& name,
                                               bool resurrect_only);
    /// Quota check + eviction-blob claim + LRU/tenant registration for a
    /// new live session.  Throws QuotaExceededError.
    Admission admit(const std::string& name);
    void unadmit(const std::string& name, const Admission& admission);
    void touch_lru(const std::string& name);
    /// Evicts least-recently-touched sessions (never `protect`) until the
    /// live count is back under max_sessions.
    void enforce_session_cap(const std::string& protect);
    void evict_session(const std::string& name);
    [[nodiscard]] std::string spill_path(const std::string& name) const;
    static void restore_single(TuningSession& session, const std::string& name,
                               const std::string& blob);

    TunerFactory factory_;
    ServiceOptions options_;
    MetricsRegistry metrics_;
    std::vector<std::unique_ptr<Shard>> shards_;
    Lru lru_;

    BoundedQueue<Event> queue_;

    // flush() coordination: producers count enqueues, the aggregator
    // publishes its progress under flush_mutex_.
    std::atomic<std::uint64_t> enqueued_{0};
    Mutex flush_mutex_;
    std::condition_variable flush_cv_;
    std::uint64_t processed_ ATK_GUARDED_BY(flush_mutex_) = 0;

    bool stopped_ ATK_GUARDED_BY(flush_mutex_) = false;

    // Declared last so the pool outlives nothing it needs; the aggregator
    // task is joined explicitly in stop() before members are destroyed.
    ThreadPool aggregator_pool_;
    std::unique_ptr<ThreadPool::TaskGroup> drain_group_;
};

} // namespace atk::runtime

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/measurement.hpp"
#include "core/nominal/strategy.hpp"
#include "core/search/searcher.hpp"
#include "core/trace.hpp"
#include "support/rng.hpp"

namespace atk {

class StateWriter;
class StateReader;

/// One tunable algorithm A ∈ 𝒜: its own parameter space T_A, the phase-one
/// searcher that explores T_A, and the starting configuration (the paper's
/// raytracer starts every builder from a hand-crafted best-practice config).
struct TunableAlgorithm {
    std::string name;
    SearchSpace space;                   ///< may be empty (no tunable params)
    Configuration initial;               ///< must be valid in `space`
    std::unique_ptr<Searcher> searcher;  ///< nullptr selects FixedSearcher

    static TunableAlgorithm untunable(std::string name);
};

/// A phase-two + phase-one decision for one tuning iteration.
struct Trial {
    std::size_t algorithm = 0;
    Configuration config;
};

/// Everything next() decided in one tuning iteration, delivered to the
/// decision hook the moment the trial is formed — the raw material of the
/// observability layer's audit trail.  Reference members alias tuner
/// internals and are only valid for the duration of the hook call.
struct DecisionEvent {
    std::size_t iteration = 0;           ///< iteration this trial belongs to
    std::size_t algorithm = 0;           ///< phase-two choice
    const std::string& algorithm_name;
    bool explored = false;               ///< strategy's exploration roll
    std::string step_kind;               ///< phase-one step label ("" = none)
    std::vector<double> weights;         ///< strategy weights() at decision time
    const Configuration& config;         ///< phase-one proposal
};

/// The paper's two-phase online tuner (Section III).
///
/// In every tuning iteration i the tuner first selects an algorithm A with
/// one of the phase-two nominal strategies, then asks A's phase-one searcher
/// for a configuration C_i ∈ T_A.  After the application has executed A with
/// C_i, report() feeds the runtime sample m_{A,i} back into both phases.
/// This interleaving runs indefinitely or until a user-defined criterion —
/// exactly the loop of an online-autotuned application.
///
/// Usage:
///
///     TwoPhaseTuner tuner(std::make_unique<EpsilonGreedy>(0.10),
///                         std::move(algorithms), /*seed=*/42);
///     for (;;) {                       // the application's hot loop
///       const Trial trial = tuner.next();
///       Stopwatch watch;
///       run(trial);                    // the repeated operation
///       tuner.report(trial, watch.elapsed_ms());
///     }
class TwoPhaseTuner {
public:
    TwoPhaseTuner(std::unique_ptr<NominalStrategy> strategy,
                  std::vector<TunableAlgorithm> algorithms,
                  std::uint64_t seed = 0x243F6A8885A308D3ULL);

    /// Phase-two selection followed by phase-one proposal.
    [[nodiscard]] Trial next();

    /// Reports the measured cost (> 0) of the trial returned by the last
    /// next(). next()/report() must strictly alternate.
    void report(const Trial& trial, Cost cost);

    /// Out-of-band observation: feeds a completed measurement of any
    /// (algorithm, configuration) pair into the phase-two strategy, the
    /// best-known tracking and the trace WITHOUT the next()/report()
    /// pairing.  The phase-one searcher is deliberately not updated — its
    /// ask-tell protocol owns which configuration is pending.
    ///
    /// This is what lets a concurrent runtime ingest late measurements
    /// (clients that ran a recommendation the tuner has since moved past)
    /// and warm-start seeds from offline installs instead of dropping them.
    /// Callable at any time, including between next() and report().
    void observe(const Trial& trial, Cost cost);

    /// Convenience: runs `iterations` complete tuning iterations against a
    /// measurement function and returns the recorded trace.
    TuningTrace run(const std::function<Cost(const Trial&)>& measure,
                    std::size_t iterations);

    [[nodiscard]] std::size_t iteration() const noexcept { return iteration_; }
    [[nodiscard]] std::size_t algorithm_count() const noexcept { return algorithms_.size(); }
    [[nodiscard]] const TunableAlgorithm& algorithm(std::size_t i) const {
        return algorithms_.at(i);
    }
    [[nodiscard]] const NominalStrategy& strategy() const noexcept { return *strategy_; }

    /// Best trial observed so far (throws std::logic_error before the first
    /// report).
    [[nodiscard]] const Trial& best_trial() const;
    [[nodiscard]] Cost best_cost() const noexcept { return best_cost_; }

    /// Full record of all iterations so far.
    [[nodiscard]] const TuningTrace& trace() const noexcept { return trace_; }

    /// Installs (or clears, with nullptr) the observer called by every
    /// next() with the decision's full context: strategy weights, the
    /// exploration roll, the chosen algorithm and the phase-one step kind.
    /// Costs nothing when unset beyond a null check; weights() is only
    /// copied while a hook is installed.  The hook runs synchronously on
    /// the thread calling next() and must not re-enter the tuner.
    void set_decision_hook(std::function<void(const DecisionEvent&)> hook) {
        decision_hook_ = std::move(hook);
    }

    /// True between next() and report() — the tuner has an outstanding
    /// trial that has not been measured yet.
    [[nodiscard]] bool awaiting_report() const noexcept { return awaiting_report_; }

    /// The outstanding trial (valid only while awaiting_report()).
    [[nodiscard]] const Trial& pending_trial() const noexcept { return pending_; }

    /// Serializes the complete tuning state — RNG stream, iteration count,
    /// pending trial, best-known trial, phase-two strategy state and each
    /// algorithm's phase-one searcher state — so a restarted process resumes
    /// with identical strategy weights and search position.  The trace is
    /// NOT serialized (it grows without bound and is re-derivable from
    /// logged measurements); a restored tuner starts with an empty trace
    /// but a non-zero iteration().  May be called while awaiting_report().
    void save_state(StateWriter& out) const;

    /// Restores state written by save_state() on a tuner constructed with
    /// the same strategy type/configuration and the same algorithm list.
    /// Throws std::invalid_argument on shape mismatch.
    void restore_state(StateReader& in);

private:
    std::unique_ptr<NominalStrategy> strategy_;
    std::vector<TunableAlgorithm> algorithms_;
    std::function<void(const DecisionEvent&)> decision_hook_;
    Rng rng_;
    std::size_t iteration_ = 0;
    bool awaiting_report_ = false;
    Trial pending_;
    Trial best_trial_;
    Cost best_cost_ = 0.0;
    bool has_best_ = false;
    TuningTrace trace_;
};

} // namespace atk

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/measurement.hpp"
#include "core/nominal/strategy.hpp"
#include "core/search/searcher.hpp"
#include "core/trace.hpp"
#include "support/rng.hpp"

namespace atk {

/// One tunable algorithm A ∈ 𝒜: its own parameter space T_A, the phase-one
/// searcher that explores T_A, and the starting configuration (the paper's
/// raytracer starts every builder from a hand-crafted best-practice config).
struct TunableAlgorithm {
    std::string name;
    SearchSpace space;                   ///< may be empty (no tunable params)
    Configuration initial;               ///< must be valid in `space`
    std::unique_ptr<Searcher> searcher;  ///< nullptr selects FixedSearcher

    static TunableAlgorithm untunable(std::string name);
};

/// A phase-two + phase-one decision for one tuning iteration.
struct Trial {
    std::size_t algorithm = 0;
    Configuration config;
};

/// The paper's two-phase online tuner (Section III).
///
/// In every tuning iteration i the tuner first selects an algorithm A with
/// one of the phase-two nominal strategies, then asks A's phase-one searcher
/// for a configuration C_i ∈ T_A.  After the application has executed A with
/// C_i, report() feeds the runtime sample m_{A,i} back into both phases.
/// This interleaving runs indefinitely or until a user-defined criterion —
/// exactly the loop of an online-autotuned application.
///
/// Usage:
///
///     TwoPhaseTuner tuner(std::make_unique<EpsilonGreedy>(0.10),
///                         std::move(algorithms), /*seed=*/42);
///     for (;;) {                       // the application's hot loop
///       const Trial trial = tuner.next();
///       Stopwatch watch;
///       run(trial);                    // the repeated operation
///       tuner.report(trial, watch.elapsed_ms());
///     }
class TwoPhaseTuner {
public:
    TwoPhaseTuner(std::unique_ptr<NominalStrategy> strategy,
                  std::vector<TunableAlgorithm> algorithms,
                  std::uint64_t seed = 0x243F6A8885A308D3ULL);

    /// Phase-two selection followed by phase-one proposal.
    [[nodiscard]] Trial next();

    /// Reports the measured cost (> 0) of the trial returned by the last
    /// next(). next()/report() must strictly alternate.
    void report(const Trial& trial, Cost cost);

    /// Convenience: runs `iterations` complete tuning iterations against a
    /// measurement function and returns the recorded trace.
    TuningTrace run(const std::function<Cost(const Trial&)>& measure,
                    std::size_t iterations);

    [[nodiscard]] std::size_t iteration() const noexcept { return iteration_; }
    [[nodiscard]] std::size_t algorithm_count() const noexcept { return algorithms_.size(); }
    [[nodiscard]] const TunableAlgorithm& algorithm(std::size_t i) const {
        return algorithms_.at(i);
    }
    [[nodiscard]] const NominalStrategy& strategy() const noexcept { return *strategy_; }

    /// Best trial observed so far (throws std::logic_error before the first
    /// report).
    [[nodiscard]] const Trial& best_trial() const;
    [[nodiscard]] Cost best_cost() const noexcept { return best_cost_; }

    /// Full record of all iterations so far.
    [[nodiscard]] const TuningTrace& trace() const noexcept { return trace_; }

private:
    std::unique_ptr<NominalStrategy> strategy_;
    std::vector<TunableAlgorithm> algorithms_;
    Rng rng_;
    std::size_t iteration_ = 0;
    bool awaiting_report_ = false;
    Trial pending_;
    Trial best_trial_;
    Cost best_cost_ = 0.0;
    bool has_best_ = false;
    TuningTrace trace_;
};

} // namespace atk

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/cost_objective.hpp"
#include "core/measurement.hpp"
#include "core/nominal/strategy.hpp"
#include "core/search/searcher.hpp"
#include "core/trace.hpp"
#include "support/rng.hpp"

namespace atk {

class StateWriter;
class StateReader;

/// One tunable algorithm A ∈ 𝒜: its own parameter space T_A, the phase-one
/// searcher that explores T_A, and the starting configuration (the paper's
/// raytracer starts every builder from a hand-crafted best-practice config).
struct TunableAlgorithm {
    std::string name;
    SearchSpace space;                   ///< may be empty (no tunable params)
    Configuration initial;               ///< must be valid in `space`
    std::unique_ptr<Searcher> searcher;  ///< nullptr selects FixedSearcher

    static TunableAlgorithm untunable(std::string name);
};

/// A phase-two + phase-one decision for one tuning iteration.
struct Trial {
    std::size_t algorithm = 0;
    Configuration config;
};

/// save_state() stream layout versions.  Format 1 (pre-CostObjective) ends
/// after the per-algorithm searcher states; format 2 appends the cost
/// objective's id and state; format 3 appends the pending trial's feature
/// vector.  restore_state() with an older format keeps the absent fields at
/// their constructed values — old snapshots restore as the context-blind
/// mean-time tuners they were saved from.  save_state() can write any
/// supported format, which is how snapshot tests produce genuine v2 streams.
inline constexpr std::uint64_t kTunerStateFormatV1 = 1;
inline constexpr std::uint64_t kTunerStateFormatV2 = 2;
inline constexpr std::uint64_t kTunerStateFormat = 3;

/// Everything next() decided in one tuning iteration, delivered to the
/// decision hook the moment the trial is formed — the raw material of the
/// observability layer's audit trail.  Reference members alias tuner
/// internals and are only valid for the duration of the hook call.
struct DecisionEvent {
    std::size_t iteration = 0;           ///< iteration this trial belongs to
    std::size_t algorithm = 0;           ///< phase-two choice
    const std::string& algorithm_name;
    bool explored = false;               ///< strategy's exploration roll
    std::string step_kind;               ///< phase-one step label ("" = none)
    std::vector<double> weights;         ///< strategy weights() at decision time
    const Configuration& config;         ///< phase-one proposal
    const std::string& objective;        ///< CostObjective::describe() label
    const FeatureVector& features;       ///< context of this iteration ([] = none)
    std::vector<double> scores;          ///< strategy last_scores() ([] = unscored)
};

/// The paper's two-phase online tuner (Section III).
///
/// In every tuning iteration i the tuner first selects an algorithm A with
/// one of the phase-two nominal strategies, then asks A's phase-one searcher
/// for a configuration C_i ∈ T_A.  After the application has executed A with
/// C_i, report() feeds the runtime sample m_{A,i} back into both phases.
/// This interleaving runs indefinitely or until a user-defined criterion —
/// exactly the loop of an online-autotuned application.
///
/// Usage:
///
///     TwoPhaseTuner tuner(std::make_unique<EpsilonGreedy>(0.10),
///                         std::move(algorithms), /*seed=*/42);
///     for (;;) {                       // the application's hot loop
///       const Trial trial = tuner.next();
///       Stopwatch watch;
///       run(trial);                    // the repeated operation
///       tuner.report(trial, watch.elapsed_ms());
///     }
class TwoPhaseTuner {
public:
    /// `objective` folds multi-sample measurements into the scalar the
    /// strategies consume; nullptr selects MeanCost (the paper's setting).
    TwoPhaseTuner(std::unique_ptr<NominalStrategy> strategy,
                  std::vector<TunableAlgorithm> algorithms,
                  std::uint64_t seed = 0x243F6A8885A308D3ULL,
                  std::unique_ptr<CostObjective> objective = nullptr);

    /// Phase-two selection followed by phase-one proposal.
    [[nodiscard]] Trial next();

    /// Context-aware form: `features` describe the workload the trial will
    /// run against (paper Section II-B).  Context-blind strategies ignore
    /// them — with such a strategy this is bit-identical to plain next().
    /// The features are retained as the pending context: report() hands
    /// them back to the strategy alongside the measured cost.
    [[nodiscard]] Trial next(const FeatureVector& features);

    /// Reports the measured cost (> 0) of the trial returned by the last
    /// next(). next()/report() must strictly alternate.
    void report(const Trial& trial, Cost cost);

    /// Batch form: scores the per-operation samples with the tuner's
    /// CostObjective and reports the resulting scalar.  A one-sample batch
    /// without a deadline is equivalent to the scalar overload under every
    /// shipped objective.
    void report(const Trial& trial, const CostBatch& batch);

    /// Out-of-band observation: feeds a completed measurement of any
    /// (algorithm, configuration) pair into the phase-two strategy, the
    /// best-known tracking and the trace WITHOUT the next()/report()
    /// pairing.  The phase-one searcher is deliberately not updated — its
    /// ask-tell protocol owns which configuration is pending.
    ///
    /// This is what lets a concurrent runtime ingest late measurements
    /// (clients that ran a recommendation the tuner has since moved past)
    /// and warm-start seeds from offline installs instead of dropping them.
    /// Callable at any time, including between next() and report().
    void observe(const Trial& trial, Cost cost);

    /// Batch form of observe(): scores with the CostObjective first.
    void observe(const Trial& trial, const CostBatch& batch);

    /// Context-aware observe(): also hands the features the measurement was
    /// taken under to the phase-two strategy, so late or out-of-band
    /// measurements still train a contextual model.
    void observe(const Trial& trial, Cost cost, const FeatureVector& features);

    /// Convenience: runs `iterations` complete tuning iterations against a
    /// measurement function and returns the recorded trace.
    TuningTrace run(const std::function<Cost(const Trial&)>& measure,
                    std::size_t iterations);

    [[nodiscard]] std::size_t iteration() const noexcept { return iteration_; }
    [[nodiscard]] std::size_t algorithm_count() const noexcept { return algorithms_.size(); }
    [[nodiscard]] const TunableAlgorithm& algorithm(std::size_t i) const {
        return algorithms_.at(i);
    }
    [[nodiscard]] const NominalStrategy& strategy() const noexcept { return *strategy_; }
    [[nodiscard]] const CostObjective& objective() const noexcept { return *objective_; }

    /// Best trial observed so far (throws std::logic_error before the first
    /// report).
    [[nodiscard]] const Trial& best_trial() const;
    [[nodiscard]] Cost best_cost() const noexcept { return best_cost_; }

    /// Full record of all iterations so far.
    [[nodiscard]] const TuningTrace& trace() const noexcept { return trace_; }

    /// Installs (or clears, with nullptr) the observer called by every
    /// next() with the decision's full context: strategy weights, the
    /// exploration roll, the chosen algorithm and the phase-one step kind.
    /// Costs nothing when unset beyond a null check; weights() is only
    /// copied while a hook is installed.  The hook runs synchronously on
    /// the thread calling next() and must not re-enter the tuner.
    void set_decision_hook(std::function<void(const DecisionEvent&)> hook) {
        decision_hook_ = std::move(hook);
    }

    /// True between next() and report() — the tuner has an outstanding
    /// trial that has not been measured yet.
    [[nodiscard]] bool awaiting_report() const noexcept { return awaiting_report_; }

    /// The outstanding trial (valid only while awaiting_report()).
    [[nodiscard]] const Trial& pending_trial() const noexcept { return pending_; }

    /// Features the outstanding trial was selected under (empty when the
    /// last next() was context-blind; valid only while awaiting_report()).
    [[nodiscard]] const FeatureVector& pending_features() const noexcept {
        return pending_features_;
    }

    /// Serializes the complete tuning state — RNG stream, iteration count,
    /// pending trial, best-known trial, phase-two strategy state and each
    /// algorithm's phase-one searcher state — so a restarted process resumes
    /// with identical strategy weights and search position.  The trace is
    /// NOT serialized (it grows without bound and is re-derivable from
    /// logged measurements); a restored tuner starts with an empty trace
    /// but a non-zero iteration().  May be called while awaiting_report().
    /// `format` selects the stream layout (older formats drop the fields
    /// they predate — format 2 omits the pending feature vector); writing
    /// anything but the current format is for compatibility tests.
    void save_state(StateWriter& out,
                    std::uint64_t format = kTunerStateFormat) const;

    /// Restores state written by save_state() on a tuner constructed with
    /// the same strategy type/configuration and the same algorithm list.
    /// `format` is the stream layout the snapshot was written with
    /// (kTunerStateFormatV1 streams carry no objective tokens and leave the
    /// constructed objective in place).  Throws std::invalid_argument on
    /// shape, objective or format mismatch.
    void restore_state(StateReader& in,
                       std::uint64_t format = kTunerStateFormat);

private:
    std::unique_ptr<NominalStrategy> strategy_;
    std::unique_ptr<CostObjective> objective_;
    std::string objective_label_;  ///< cached describe(); DecisionEvent aliases it
    std::vector<TunableAlgorithm> algorithms_;
    std::function<void(const DecisionEvent&)> decision_hook_;
    Rng rng_;
    std::size_t iteration_ = 0;
    bool awaiting_report_ = false;
    Trial pending_;
    FeatureVector pending_features_;
    Trial best_trial_;
    Cost best_cost_ = 0.0;
    bool has_best_ = false;
    TuningTrace trace_;
};

} // namespace atk

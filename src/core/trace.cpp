#include "core/trace.hpp"

namespace atk {

std::vector<double> TuningTrace::costs() const {
    std::vector<double> out;
    out.reserve(entries_.size());
    for (const auto& entry : entries_) out.push_back(entry.cost);
    return out;
}

std::vector<std::size_t> TuningTrace::choice_counts(std::size_t algorithms) const {
    std::vector<std::size_t> counts(algorithms, 0);
    for (const auto& entry : entries_) counts.at(entry.algorithm) += 1;
    return counts;
}

std::vector<double> TuningTrace::costs_of(std::size_t algorithm) const {
    std::vector<double> out;
    for (const auto& entry : entries_)
        if (entry.algorithm == algorithm) out.push_back(entry.cost);
    return out;
}

} // namespace atk

#include "core/state_io.hpp"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace atk {

namespace {

[[noreturn]] void malformed(const std::string& what) {
    throw std::invalid_argument("StateReader: " + what);
}

} // namespace

void StateWriter::put_u64(std::uint64_t value) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "u %" PRIu64 "\n", value);
    out_ += buffer;
}

void StateWriter::put_i64(std::int64_t value) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "i %" PRId64 "\n", value);
    out_ += buffer;
}

void StateWriter::put_f64(double value) {
    // %a is exact for every finite double and prints inf/nan symbolically,
    // both of which strtod() parses back bit-identically.
    char buffer[48];
    std::snprintf(buffer, sizeof buffer, "f %a\n", value);
    out_ += buffer;
}

void StateWriter::put_str(const std::string& value) {
    if (value.find('\n') != std::string::npos || value.find('\r') != std::string::npos)
        throw std::invalid_argument("StateWriter: string tokens must be single-line");
    out_ += "s ";
    out_ += value;
    out_ += '\n';
}

StateReader::StateReader(std::string text) : text_(std::move(text)) {}

std::string StateReader::next_line(char expected_tag) {
    if (at_end()) malformed("unexpected end of state stream");
    std::size_t eol = text_.find('\n', pos_);
    if (eol == std::string::npos) eol = text_.size();
    const std::string line = text_.substr(pos_, eol - pos_);
    pos_ = eol + 1;
    if (line.size() < 2 || line[1] != ' ')
        malformed("malformed token line '" + line + "'");
    if (line[0] != expected_tag)
        malformed(std::string("expected token '") + expected_tag + "' but found '" +
                  line[0] + "'");
    return line.substr(2);
}

std::uint64_t StateReader::get_u64() {
    const std::string payload = next_line('u');
    errno = 0;
    char* end = nullptr;
    const std::uint64_t value = std::strtoull(payload.c_str(), &end, 10);
    if (errno != 0 || end == payload.c_str() || *end != '\0')
        malformed("bad u64 payload '" + payload + "'");
    return value;
}

std::int64_t StateReader::get_i64() {
    const std::string payload = next_line('i');
    errno = 0;
    char* end = nullptr;
    const std::int64_t value = std::strtoll(payload.c_str(), &end, 10);
    if (errno != 0 || end == payload.c_str() || *end != '\0')
        malformed("bad i64 payload '" + payload + "'");
    return value;
}

double StateReader::get_f64() {
    const std::string payload = next_line('f');
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(payload.c_str(), &end);
    if (end == payload.c_str() || *end != '\0')
        malformed("bad f64 payload '" + payload + "'");
    return value;
}

std::string StateReader::get_str() { return next_line('s'); }

std::size_t StateReader::get_count() {
    const std::uint64_t value = get_u64();
    const std::size_t remaining = pos_ < text_.size() ? text_.size() - pos_ : 0;
    if (value > remaining / 3 + 1)
        malformed("element count " + std::to_string(value) +
                  " exceeds what the remaining input could hold");
    return static_cast<std::size_t>(value);
}

} // namespace atk

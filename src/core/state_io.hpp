#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace atk {

/// Tagged-token serialization for tuner state snapshots.
///
/// The runtime layer persists per-session tuner state (strategy histories,
/// phase-one simplex state, best-known configurations) so a restarted
/// process warm-starts instead of re-exploring.  The format is line-based
/// text with one tagged token per line:
///
///     u <decimal>        unsigned 64-bit
///     i <decimal>        signed 64-bit
///     f <hexfloat>       double, written as C99 hexfloat (exact round-trip,
///                        including inf; no decimal rounding drift)
///     s <bytes>          string, rest of line verbatim (no newlines)
///
/// Tags are checked on read: a reader that expects a different token kind
/// than the writer produced throws std::invalid_argument immediately, which
/// turns version/layout drift between writer and reader into a loud error
/// instead of silently mis-assigned state.
class StateWriter {
public:
    void put_u64(std::uint64_t value);
    void put_i64(std::int64_t value);
    void put_f64(double value);
    /// `value` must not contain '\n' or '\r'; throws std::invalid_argument.
    void put_str(const std::string& value);

    /// The serialized token stream so far.
    [[nodiscard]] const std::string& str() const noexcept { return out_; }

private:
    std::string out_;
};

/// Sequential reader over a StateWriter token stream.  get_*() throws
/// std::invalid_argument on tag mismatch, malformed payload, or exhausted
/// input — state restoration is all-or-nothing.
class StateReader {
public:
    explicit StateReader(std::string text);

    [[nodiscard]] std::uint64_t get_u64();
    [[nodiscard]] std::int64_t get_i64();
    [[nodiscard]] double get_f64();
    [[nodiscard]] std::string get_str();

    /// Reads a u64 that declares how many elements follow, validated
    /// against the remaining input: every element needs at least one token
    /// line ("s \n" — 3 bytes — is the shortest), so a count the rest of
    /// the stream cannot possibly hold is corruption.  Restore paths size
    /// their vectors with this instead of a raw get_u64(), which turns a
    /// flipped length byte into a clean std::invalid_argument instead of a
    /// multi-gigabyte allocation.
    [[nodiscard]] std::size_t get_count();

    /// True when every token has been consumed.
    [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }

private:
    /// Returns the payload of the next line after checking its tag.
    std::string next_line(char expected_tag);

    std::string text_;
    std::size_t pos_ = 0;
};

} // namespace atk

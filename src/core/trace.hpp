#pragma once

#include <cstddef>
#include <vector>

#include "core/measurement.hpp"

namespace atk {

/// One tuning-loop iteration as recorded by the TwoPhaseTuner.
struct TraceEntry {
    std::size_t iteration = 0;
    std::size_t algorithm = 0;   ///< phase-two choice
    Configuration config;        ///< phase-one configuration that ran
    Cost cost = 0.0;             ///< measured m_{A,i}
};

/// Record of a complete tuning run.  The bench harnesses aggregate many
/// traces (one per experiment repetition) into the paper's per-iteration
/// median/mean curves and choice histograms.
class TuningTrace {
public:
    void record(TraceEntry entry) { entries_.push_back(std::move(entry)); }

    [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
    [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
    /// Checked access, deliberately: traces are aggregated across
    /// repetitions by the bench harnesses, where a silent out-of-bounds read
    /// would corrupt figure data. Unlike std::vector::operator[], indexing
    /// past size() throws std::out_of_range (hence the signature is not
    /// noexcept); it never returns a dangling reference.
    [[nodiscard]] const TraceEntry& operator[](std::size_t i) const { return entries_.at(i); }
    [[nodiscard]] const std::vector<TraceEntry>& entries() const noexcept { return entries_; }

    /// Cost of each iteration, in order — one row of a figure-2/3 style plot.
    [[nodiscard]] std::vector<double> costs() const;

    /// How often each of `algorithms` choices was selected (figure 4/8 data).
    [[nodiscard]] std::vector<std::size_t> choice_counts(std::size_t algorithms) const;

    /// Samples of one algorithm only, in iteration order.
    [[nodiscard]] std::vector<double> costs_of(std::size_t algorithm) const;

private:
    std::vector<TraceEntry> entries_;
};

} // namespace atk

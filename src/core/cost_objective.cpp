#include "core/cost_objective.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "core/state_io.hpp"
#include "support/statistics.hpp"

namespace atk {

namespace {

void require_samples(const CostBatch& batch, const char* who) {
    if (batch.samples.empty())
        throw std::invalid_argument(std::string(who) + ": empty cost batch");
}

std::string format_parameter(double value) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", value);
    return buf;
}

} // namespace

void CostObjective::save_state(StateWriter&) const {}
void CostObjective::restore_state(StateReader&) {}

Cost MeanCost::score(const CostBatch& batch) const {
    require_samples(batch, "MeanCost");
    return mean(batch.samples);
}

QuantileCost::QuantileCost(double q) : q_(q) {
    if (!(q > 0.0) || !(q < 1.0))
        throw std::invalid_argument("QuantileCost: q must be in (0, 1)");
}

std::string QuantileCost::id() const { return "quantile:" + format_parameter(q_); }

std::string QuantileCost::describe() const {
    // Built up in place: `"p" + std::string&&` trips gcc 12's -Wrestrict
    // false positive (PR 105651) under -Werror.
    std::string out = "p";
    out += format_parameter(q_ * 100.0);
    out += " cost";
    return out;
}

Cost QuantileCost::score(const CostBatch& batch) const {
    require_samples(batch, "QuantileCost");
    return quantile(batch.samples, q_);
}

DeadlineCost::DeadlineCost(double penalty) : penalty_(penalty) {
    if (!(penalty > 0.0) || !std::isfinite(penalty))
        throw std::invalid_argument("DeadlineCost: penalty must be positive");
}

std::string DeadlineCost::id() const {
    return "deadline:" + format_parameter(penalty_);
}

std::string DeadlineCost::describe() const {
    return "deadline miss rate (mean tiebreak)";
}

Cost DeadlineCost::score(const CostBatch& batch) const {
    require_samples(batch, "DeadlineCost");
    std::size_t misses = 0;
    if (batch.deadline > 0.0)
        for (const double sample : batch.samples)
            if (sample > batch.deadline) ++misses;
    const double miss_rate =
        static_cast<double>(misses) / static_cast<double>(batch.samples.size());
    return penalty_ * miss_rate + mean(batch.samples);
}

std::unique_ptr<CostObjective> make_cost_objective(const std::string& id) {
    if (id == "mean") return std::make_unique<MeanCost>();
    const auto parameter_of = [&id](const std::string& prefix) {
        char* end = nullptr;
        const double value = std::strtod(id.c_str() + prefix.size(), &end);
        if (end == nullptr || *end != '\0')
            throw std::invalid_argument("make_cost_objective: malformed id '" +
                                        id + "'");
        return value;
    };
    if (id.rfind("quantile:", 0) == 0)
        return std::make_unique<QuantileCost>(parameter_of("quantile:"));
    if (id == "deadline") return std::make_unique<DeadlineCost>();
    if (id.rfind("deadline:", 0) == 0)
        return std::make_unique<DeadlineCost>(parameter_of("deadline:"));
    throw std::invalid_argument(
        "make_cost_objective: unknown id '" + id +
        "' (have: mean, quantile:<q>, deadline[:<penalty>])");
}

} // namespace atk

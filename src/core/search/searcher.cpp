#include "core/search/searcher.hpp"

#include <stdexcept>

namespace atk {

void Searcher::reset(const SearchSpace& space, const Configuration& initial) {
    validate_space(space);
    if (!space.contains(initial))
        throw std::invalid_argument(name() + ": initial configuration not in search space");
    space_ = &space;
    initial_ = initial;
    best_ = initial;
    best_cost_ = std::numeric_limits<Cost>::infinity();
    evaluations_ = 0;
    has_best_ = false;
    awaiting_feedback_ = false;
    do_reset();
}

Configuration Searcher::propose(Rng& rng) {
    if (space_ == nullptr) throw std::logic_error(name() + ": propose() before reset()");
    if (awaiting_feedback_)
        throw std::logic_error(name() + ": propose() called twice without feedback()");
    awaiting_feedback_ = true;
    if (space_->empty()) return Configuration{};
    if (converged()) return best();
    return do_propose(rng);
}

void Searcher::feedback(const Configuration& config, Cost cost) {
    if (space_ == nullptr) throw std::logic_error(name() + ": feedback() before reset()");
    if (!awaiting_feedback_)
        throw std::logic_error(name() + ": feedback() without a pending propose()");
    awaiting_feedback_ = false;
    ++evaluations_;
    if (!has_best_ || cost < best_cost_) {
        best_ = config;
        best_cost_ = cost;
        has_best_ = true;
    }
    if (!space_->empty() && !do_converged()) do_feedback(config, cost);
}

bool Searcher::converged() const {
    if (space_ == nullptr) return false;
    if (space_->empty()) return true;
    return do_converged();
}

const Configuration& Searcher::best() const {
    if (!has_best_ && space_ != nullptr) return initial_;
    return best_;
}

void Searcher::validate_space(const SearchSpace&) const {}

const SearchSpace& Searcher::space() const {
    if (space_ == nullptr) throw std::logic_error(name() + ": no space; call reset() first");
    return *space_;
}

} // namespace atk

#include "core/search/searcher.hpp"

#include <stdexcept>

#include "core/state_io.hpp"

namespace atk {

void Searcher::reset(const SearchSpace& space, const Configuration& initial) {
    validate_space(space);
    if (!space.contains(initial))
        throw std::invalid_argument(name() + ": initial configuration not in search space");
    space_ = &space;
    initial_ = initial;
    best_ = initial;
    best_cost_ = std::numeric_limits<Cost>::infinity();
    evaluations_ = 0;
    has_best_ = false;
    awaiting_feedback_ = false;
    do_reset();
}

Configuration Searcher::propose(Rng& rng) {
    if (space_ == nullptr) throw std::logic_error(name() + ": propose() before reset()");
    if (awaiting_feedback_)
        throw std::logic_error(name() + ": propose() called twice without feedback()");
    awaiting_feedback_ = true;
    if (space_->empty()) return Configuration{};
    if (converged()) return best();
    return do_propose(rng);
}

void Searcher::feedback(const Configuration& config, Cost cost) {
    if (space_ == nullptr) throw std::logic_error(name() + ": feedback() before reset()");
    if (!awaiting_feedback_)
        throw std::logic_error(name() + ": feedback() without a pending propose()");
    awaiting_feedback_ = false;
    ++evaluations_;
    if (!has_best_ || cost < best_cost_) {
        best_ = config;
        best_cost_ = cost;
        has_best_ = true;
    }
    if (!space_->empty() && !do_converged()) do_feedback(config, cost);
}

bool Searcher::converged() const {
    if (space_ == nullptr) return false;
    if (space_->empty()) return true;
    return do_converged();
}

const Configuration& Searcher::best() const {
    if (!has_best_ && space_ != nullptr) return initial_;
    return best_;
}

void Searcher::save_state(StateWriter& out) const {
    out.put_u64(evaluations_);
    out.put_u64(has_best_ ? 1 : 0);
    out.put_u64(awaiting_feedback_ ? 1 : 0);
    out.put_f64(best_cost_);
    out.put_u64(best_.size());
    for (std::size_t i = 0; i < best_.size(); ++i) out.put_i64(best_[i]);
    do_save_state(out);
}

void Searcher::restore_state(StateReader& in) {
    if (space_ == nullptr)
        throw std::logic_error(name() + ": restore_state() before reset()");
    evaluations_ = static_cast<std::size_t>(in.get_u64());
    has_best_ = in.get_u64() != 0;
    awaiting_feedback_ = in.get_u64() != 0;
    best_cost_ = in.get_f64();
    const std::size_t dimension = in.get_count();
    std::vector<std::int64_t> values(dimension);
    for (auto& value : values) value = in.get_i64();
    best_ = Configuration(std::move(values));
    if (has_best_ && !space_->empty() && !space_->contains(best_))
        throw std::invalid_argument(name() + ": snapshot best not in search space");
    do_restore_state(in);
}

void Searcher::validate_space(const SearchSpace&) const {}

const SearchSpace& Searcher::space() const {
    if (space_ == nullptr) throw std::logic_error(name() + ": no space; call reset() first");
    return *space_;
}

} // namespace atk

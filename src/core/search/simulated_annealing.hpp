#pragma once

#include "core/search/searcher.hpp"

namespace atk {

/// Simulated annealing (paper Section II-A.6): hill climbing with a
/// temperature-controlled chance of accepting a worse neighbor, reducing the
/// probability of getting stuck in a local minimum.
///
/// Acceptance uses the *relative* cost increase so the schedule is
/// scale-free: P(accept worse) = exp(-((f' - f)/max(f, ε)) / T).
/// Requires ordered parameters, like hill climbing.
class SimulatedAnnealingSearcher final : public Searcher {
public:
    struct Options {
        double initial_temperature = 1.0;
        double cooling_rate = 0.95;       ///< multiplied in after every step
        double min_temperature = 1e-3;    ///< converged below this
        std::size_t max_evaluations = 0;  ///< 0 = unbounded
    };

    SimulatedAnnealingSearcher() = default;
    explicit SimulatedAnnealingSearcher(Options options) : options_(options) {}

    [[nodiscard]] std::string name() const override { return "SimulatedAnnealing"; }

protected:
    void validate_space(const SearchSpace& space) const override;
    void do_reset() override;
    Configuration do_propose(Rng& rng) override;
    void do_feedback(const Configuration& config, Cost cost) override;
    [[nodiscard]] bool do_converged() const override;

private:
    Options options_;
    Configuration current_;
    Cost current_cost_ = 0.0;
    bool have_current_ = false;
    double temperature_ = 1.0;
    double accept_roll_ = 0.0;  // uniform draw made at propose time
};

} // namespace atk

#pragma once

#include <vector>

#include "core/search/searcher.hpp"

namespace atk {

/// Particle swarm optimization (paper Section II-A.3, Kennedy & Eberhart).
/// A set of candidate solutions ("particles") moves through the unit cube;
/// each particle is pulled toward its personal best and the global best by
/// an individual velocity.  One particle is evaluated per tuning iteration.
///
/// Requires distances on all parameters (velocity is a difference vector).
class ParticleSwarmSearcher final : public Searcher {
public:
    struct Options {
        std::size_t particles = 0;  ///< 0 selects min(10, 4 + 2*J)
        double inertia = 0.7;
        double cognitive = 1.4;     ///< pull toward personal best
        double social = 1.4;        ///< pull toward global best
        double max_velocity = 0.5;  ///< per-axis velocity clamp (unit cube)
        /// Converged after this many full sweeps without global-best
        /// improvement (relative improvement below 1e-4 counts as none).
        std::size_t stale_sweeps = 5;
        std::size_t max_evaluations = 0;  ///< 0 = unbounded
    };

    ParticleSwarmSearcher() = default;
    explicit ParticleSwarmSearcher(Options options) : options_(options) {}

    [[nodiscard]] std::string name() const override { return "ParticleSwarm"; }

protected:
    void validate_space(const SearchSpace& space) const override;
    void do_reset() override;
    Configuration do_propose(Rng& rng) override;
    void do_feedback(const Configuration& config, Cost cost) override;
    [[nodiscard]] bool do_converged() const override;

private:
    struct Particle {
        std::vector<double> position;
        std::vector<double> velocity;
        std::vector<double> best_position;
        Cost best_cost = 0.0;
        bool evaluated = false;
    };

    void advance_swarm(Rng& rng);

    Options options_;
    std::vector<Particle> swarm_;
    std::vector<double> global_best_;
    Cost global_best_cost_ = 0.0;
    bool have_global_best_ = false;
    std::size_t cursor_ = 0;          // particle being evaluated
    bool initialized_ = false;
    std::size_t stale_count_ = 0;
    bool improved_this_sweep_ = false;
    bool needs_advance_ = false;
};

} // namespace atk

#pragma once

#include <span>
#include <vector>

#include "core/search_space.hpp"

namespace atk {

/// Helpers for searchers that operate geometrically: configurations are
/// mapped into the unit cube [0,1]^J (one axis per parameter), searched in
/// continuous space, and snapped back onto the parameter lattice when a
/// trial configuration is proposed.  Requires every parameter to have a
/// distance (Interval or Ratio) — callers enforce this in validate_space().
[[nodiscard]] std::vector<double> config_to_unit(const SearchSpace& space,
                                                 const Configuration& config);

/// Inverse mapping; components outside [0,1] are clamped.
[[nodiscard]] Configuration unit_to_config(const SearchSpace& space,
                                           std::span<const double> point);

} // namespace atk

#include "core/search/exhaustive.hpp"

namespace atk {

void ExhaustiveSearcher::do_reset() {
    cursor_ = space().lowest();
    done_ = false;
}

Configuration ExhaustiveSearcher::do_propose(Rng&) {
    return *cursor_;  // non-empty space guaranteed by the base class
}

void ExhaustiveSearcher::do_feedback(const Configuration&, Cost) {
    cursor_ = space().next_lexicographic(*cursor_);
    if (!cursor_) done_ = true;
}

bool ExhaustiveSearcher::do_converged() const {
    return done_;
}

} // namespace atk

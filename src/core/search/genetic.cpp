#include "core/search/genetic.hpp"

#include <algorithm>
#include <cmath>

namespace atk {

void GeneticSearcher::do_reset() {
    population_.clear();
    pending_.clear();
    cursor_ = 0;
    initialized_ = false;
    stale_count_ = 0;
}

Configuration GeneticSearcher::do_propose(Rng& rng) {
    if (!initialized_) {
        pending_.clear();
        pending_.push_back(initial());
        while (pending_.size() < std::max<std::size_t>(2, options_.population))
            pending_.push_back(space().random(rng));
        cursor_ = 0;
        initialized_ = true;
    }
    if (cursor_ >= pending_.size()) breed_next_generation(rng);
    return pending_[cursor_];
}

void GeneticSearcher::do_feedback(const Configuration& config, Cost cost) {
    population_.push_back(Individual{config, cost});
    ++cursor_;
}

const GeneticSearcher::Individual& GeneticSearcher::tournament_pick(Rng& rng) const {
    const Individual* winner = &population_[rng.index(population_.size())];
    for (std::size_t round = 1; round < options_.tournament; ++round) {
        const Individual& challenger = population_[rng.index(population_.size())];
        if (challenger.cost < winner->cost) winner = &challenger;
    }
    return *winner;
}

Configuration GeneticSearcher::crossover(const Configuration& a, const Configuration& b,
                                         Rng& rng) const {
    // Single random crossover point, as described in the paper: the child
    // interleaves the two parents at that point.
    const std::size_t d = a.size();
    if (d <= 1) return rng.chance(0.5) ? a : b;
    const std::size_t point = 1 + rng.index(d - 1);
    std::vector<std::int64_t> genes(d);
    for (std::size_t i = 0; i < d; ++i) genes[i] = i < point ? a[i] : b[i];
    return Configuration(std::move(genes));
}

void GeneticSearcher::mutate(Configuration& genome, Rng& rng) const {
    for (std::size_t i = 0; i < genome.size(); ++i) {
        if (!rng.chance(options_.mutation_rate)) continue;
        const auto& p = space().param(i);
        const auto steps = static_cast<std::int64_t>(p.cardinality()) - 1;
        genome[i] = p.min_value() + rng.uniform_int(0, steps) * p.step();
    }
}

void GeneticSearcher::breed_next_generation(Rng& rng) {
    // Keep only the most recent generation for selection pressure.
    std::stable_sort(population_.begin(), population_.end(),
                     [](const Individual& x, const Individual& y) { return x.cost < y.cost; });
    const Cost new_best = population_.front().cost;
    if (stale_count_ == 0 && generation_best_ == 0.0) {
        generation_best_ = new_best;  // first generation
    } else if (new_best < generation_best_ - 1e-4 * std::abs(generation_best_)) {
        generation_best_ = new_best;
        stale_count_ = 0;
    } else {
        ++stale_count_;
    }

    pending_.clear();
    const std::size_t size = std::max<std::size_t>(2, options_.population);
    const std::size_t elites = std::min(options_.elites, population_.size());
    for (std::size_t e = 0; e < elites && pending_.size() < size; ++e)
        pending_.push_back(population_[e].genome);
    while (pending_.size() < size) {
        Configuration child = rng.chance(options_.crossover_rate)
                                  ? crossover(tournament_pick(rng).genome,
                                              tournament_pick(rng).genome, rng)
                                  : tournament_pick(rng).genome;
        mutate(child, rng);
        pending_.push_back(std::move(child));
    }
    population_.clear();
    cursor_ = 0;
}

bool GeneticSearcher::do_converged() const {
    if (options_.max_evaluations != 0 && evaluations() >= options_.max_evaluations)
        return true;
    return stale_count_ >= options_.stale_generations;
}

} // namespace atk

#include "core/search/simulated_annealing.hpp"

#include <cmath>
#include <stdexcept>

namespace atk {

void SimulatedAnnealingSearcher::validate_space(const SearchSpace& space) const {
    if (!space.all_have_order())
        throw std::invalid_argument(
            "SimulatedAnnealing requires ordered parameters: Nominal parameters "
            "define no neighborhood to anneal through");
}

void SimulatedAnnealingSearcher::do_reset() {
    current_ = initial();
    have_current_ = false;
    temperature_ = options_.initial_temperature;
}

Configuration SimulatedAnnealingSearcher::do_propose(Rng& rng) {
    if (!have_current_) return current_;
    auto neighborhood = space().neighbors(current_);
    if (neighborhood.empty()) return current_;
    accept_roll_ = rng.uniform_real();
    return neighborhood[rng.index(neighborhood.size())];
}

void SimulatedAnnealingSearcher::do_feedback(const Configuration& config, Cost cost) {
    if (!have_current_) {
        current_cost_ = cost;
        have_current_ = true;
        return;
    }
    const double relative_delta =
        (cost - current_cost_) / std::max(std::abs(current_cost_), 1e-12);
    const bool accept =
        relative_delta <= 0.0 ||
        accept_roll_ < std::exp(-relative_delta / std::max(temperature_, 1e-12));
    if (accept) {
        current_ = config;
        current_cost_ = cost;
    }
    temperature_ *= options_.cooling_rate;
}

bool SimulatedAnnealingSearcher::do_converged() const {
    if (options_.max_evaluations != 0 && evaluations() >= options_.max_evaluations)
        return true;
    return temperature_ < options_.min_temperature;
}

} // namespace atk

#pragma once

#include <vector>

#include "core/search/searcher.hpp"

namespace atk {

/// Generational genetic algorithm (paper Section II-A.4).  New
/// configurations are obtained through mutation (randomly re-drawing one or
/// more parameter values) or crossover (interleaving two parents at a random
/// crossover point), with tournament selection and elitism.
///
/// This is the only classic technique that can manipulate Nominal
/// parameters — mutation and crossover need neither order nor distance —
/// which is why the paper singles it out in Section II-B.  (It also notes
/// that with algorithmic choice as the *single* parameter a GA decays to
/// random search; see GeneticSearcher's behavior on 1-dimensional nominal
/// spaces, which is exactly that.)
class GeneticSearcher final : public Searcher {
public:
    struct Options {
        std::size_t population = 12;
        std::size_t tournament = 3;     ///< tournament size for parent selection
        double crossover_rate = 0.9;    ///< probability of crossover vs. cloning
        double mutation_rate = 0.15;    ///< per-gene probability of re-drawing
        std::size_t elites = 1;         ///< best individuals copied verbatim
        /// Converged after this many generations without best improvement.
        std::size_t stale_generations = 5;
        std::size_t max_evaluations = 0;  ///< 0 = unbounded
    };

    GeneticSearcher() = default;
    explicit GeneticSearcher(Options options) : options_(options) {}

    [[nodiscard]] std::string name() const override { return "Genetic"; }

protected:
    // Accepts every parameter class, including Nominal.
    void do_reset() override;
    Configuration do_propose(Rng& rng) override;
    void do_feedback(const Configuration& config, Cost cost) override;
    [[nodiscard]] bool do_converged() const override;

private:
    struct Individual {
        Configuration genome;
        Cost cost = 0.0;
    };

    void breed_next_generation(Rng& rng);
    [[nodiscard]] const Individual& tournament_pick(Rng& rng) const;
    [[nodiscard]] Configuration crossover(const Configuration& a, const Configuration& b,
                                          Rng& rng) const;
    void mutate(Configuration& genome, Rng& rng) const;

    Options options_;
    std::vector<Individual> population_;   // evaluated individuals
    std::vector<Configuration> pending_;   // genomes awaiting evaluation
    std::size_t cursor_ = 0;
    bool initialized_ = false;
    Cost generation_best_ = 0.0;
    std::size_t stale_count_ = 0;
};

} // namespace atk

#pragma once

#include <limits>
#include <memory>
#include <string>

#include "core/measurement.hpp"
#include "core/search_space.hpp"
#include "support/rng.hpp"

namespace atk {

class StateWriter;
class StateReader;

/// Phase-one search strategy: approximates Copt,A = argmin_{C ∈ T_A} m_A(C)
/// for a single algorithm's parameter space (paper Section III).
///
/// Searchers use an ask-tell protocol so that the *online* tuning loop stays
/// in control of execution: the application asks for a configuration
/// (propose), runs its operation, and tells the searcher the measured cost
/// (feedback).  propose/feedback must strictly alternate.
///
/// Each searcher validates the parameter classes it can manipulate when
/// reset() is called — e.g. Nelder-Mead requires a notion of distance and
/// therefore rejects spaces containing Nominal parameters.  This mirrors the
/// paper's analysis of why classic techniques cannot tune algorithmic
/// choice.
///
/// The SearchSpace passed to reset() must outlive all subsequent calls.
class Searcher {
public:
    virtual ~Searcher() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Label of the search step the last propose() performed ("reflect",
    /// "expand", ... for Nelder-Mead; "" for searchers without named steps).
    /// Consumed by the decision audit trail — purely observational.
    [[nodiscard]] virtual std::string step_kind() const { return {}; }

    /// Starts (or restarts) a search over `space` from `initial`.
    /// Throws std::invalid_argument if the space contains parameter classes
    /// the searcher cannot manipulate, or if `initial` is not in the space.
    void reset(const SearchSpace& space, const Configuration& initial);

    /// Next configuration to evaluate.  After convergence, keeps proposing
    /// the best-known configuration — an online tuner never stops measuring.
    Configuration propose(Rng& rng);

    /// Reports the cost of the configuration returned by the last propose().
    void feedback(const Configuration& config, Cost cost);

    /// True once the searcher's termination criterion is met.  A converged
    /// searcher still accepts propose/feedback (pure exploitation).
    [[nodiscard]] bool converged() const;

    [[nodiscard]] bool has_best() const noexcept { return has_best_; }
    [[nodiscard]] const Configuration& best() const;
    [[nodiscard]] Cost best_cost() const noexcept { return best_cost_; }
    [[nodiscard]] std::size_t evaluations() const noexcept { return evaluations_; }

    /// True between propose() and feedback() — the ask-tell cycle is open.
    [[nodiscard]] bool awaiting_feedback() const noexcept { return awaiting_feedback_; }

    /// Serializes the search progress (best-known configuration, evaluation
    /// count, ask-tell phase) plus whatever internal state the concrete
    /// searcher exports via do_save_state().  Searchers that do not override
    /// the do_*_state() hooks restore to a *warm* start: the best-known
    /// configuration and cost survive the round-trip, the internal search
    /// trajectory restarts from reset() — a degraded but always-consistent
    /// resume.  NelderMeadSearcher (the paper's phase-one workhorse)
    /// round-trips its full simplex.
    void save_state(StateWriter& out) const;

    /// Restores state written by save_state().  reset() must have been
    /// called with the same space/initial before restoring.
    void restore_state(StateReader& in);

protected:
    virtual void do_reset() = 0;
    virtual Configuration do_propose(Rng& rng) = 0;
    virtual void do_feedback(const Configuration& config, Cost cost) = 0;
    [[nodiscard]] virtual bool do_converged() const = 0;

    /// Default accepts any space; subclasses override to enforce the
    /// parameter-class requirements of their search geometry.
    virtual void validate_space(const SearchSpace& space) const;

    /// Subclass state hooks for save_state()/restore_state(); the defaults
    /// persist nothing beyond the base bookkeeping.
    virtual void do_save_state(StateWriter&) const {}
    virtual void do_restore_state(StateReader&) {}

    [[nodiscard]] const SearchSpace& space() const;
    [[nodiscard]] const Configuration& initial() const noexcept { return initial_; }

private:
    const SearchSpace* space_ = nullptr;
    Configuration initial_;
    Configuration best_;
    Cost best_cost_ = std::numeric_limits<Cost>::infinity();
    std::size_t evaluations_ = 0;
    bool has_best_ = false;
    bool awaiting_feedback_ = false;
};

/// Degenerate searcher for algorithms without tunable parameters (the
/// string matchers of case study 1): always proposes the initial
/// configuration and reports itself converged immediately.
class FixedSearcher final : public Searcher {
public:
    [[nodiscard]] std::string name() const override { return "Fixed"; }

protected:
    void do_reset() override {}
    Configuration do_propose(Rng&) override { return initial(); }
    void do_feedback(const Configuration&, Cost) override {}
    [[nodiscard]] bool do_converged() const override { return true; }
};

} // namespace atk

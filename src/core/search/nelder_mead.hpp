#pragma once

#include <cstddef>
#include <vector>

#include "core/search/searcher.hpp"

namespace atk {

/// Nelder-Mead downhill simplex (the paper's phase-one workhorse, used in
/// both case studies).
///
/// Operates on the unit cube [0,1]^J; every proposed vertex is snapped onto
/// the parameter lattice before evaluation.  The usual reflect / expand /
/// contract / shrink transitions are implemented as an ask-tell state
/// machine so the online tuning loop drives one evaluation per iteration.
///
/// Requires all parameters to have distance (Interval or Ratio); rejects
/// Nominal and Ordinal parameters at reset() — the inadequacy the paper's
/// Section II-B describes.
class NelderMeadSearcher final : public Searcher {
public:
    struct Options {
        double alpha = 1.0;        ///< reflection coefficient
        double gamma = 2.0;        ///< expansion coefficient
        double rho = 0.5;          ///< contraction coefficient
        double sigma = 0.5;        ///< shrink coefficient
        double initial_step = 0.25;///< offset of the initial simplex vertices
        /// Converged when the relative cost spread across the simplex AND
        /// the simplex extent both drop below these tolerances.
        double cost_tolerance = 1e-3;
        double extent_tolerance = 1e-3;
        std::size_t max_evaluations = 0;  ///< 0 = unbounded
    };

    NelderMeadSearcher() = default;
    explicit NelderMeadSearcher(Options options) : options_(options) {}

    [[nodiscard]] std::string name() const override { return "NelderMead"; }

    /// Current simplex transition: "build-simplex", "reflect", "expand",
    /// "contract-outside", "contract-inside" or "shrink".
    [[nodiscard]] std::string step_kind() const override;

protected:
    void validate_space(const SearchSpace& space) const override;
    void do_reset() override;
    Configuration do_propose(Rng& rng) override;
    void do_feedback(const Configuration& config, Cost cost) override;
    [[nodiscard]] bool do_converged() const override;

    /// Round-trips the entire ask-tell state machine — simplex vertices and
    /// costs, centroid, phase, pending/reflected points — so a restored
    /// tuner continues the simplex walk exactly where the snapshot left it.
    void do_save_state(StateWriter& out) const override;
    void do_restore_state(StateReader& in) override;

private:
    enum class Phase { BuildSimplex, Reflect, Expand, ContractOutside, ContractInside, Shrink };

    struct Vertex {
        std::vector<double> point;
        Cost cost = 0.0;
    };

    void order_simplex();
    void begin_iteration();
    [[nodiscard]] std::vector<double> affine(const std::vector<double>& from,
                                             const std::vector<double>& to,
                                             double t) const;
    void accept_worst_replacement(std::vector<double> point, Cost cost);
    void check_convergence();

    Options options_;
    std::vector<Vertex> simplex_;
    std::vector<double> centroid_;   // of all vertices but the worst
    std::vector<double> pending_;    // continuous point awaiting feedback
    Cost reflected_cost_ = 0.0;
    std::vector<double> reflected_point_;
    Phase phase_ = Phase::BuildSimplex;
    std::size_t build_index_ = 0;    // next simplex vertex to evaluate
    std::size_t shrink_index_ = 0;   // next shrunk vertex to evaluate
    bool converged_flag_ = false;
};

} // namespace atk

#pragma once

#include <optional>

#include "core/search/searcher.hpp"

namespace atk {

/// Exhaustive search (paper Section II-A.7): systematically tries every
/// configuration in lexicographic lattice order, then exploits the best.
/// Handles every parameter class — the paper's "obvious first choice" for
/// purely nominal spaces — but, as Section II-B argues, always pays for the
/// worst configuration too, which is what makes it inadequate online.
class ExhaustiveSearcher final : public Searcher {
public:
    [[nodiscard]] std::string name() const override { return "Exhaustive"; }

protected:
    void do_reset() override;
    Configuration do_propose(Rng& rng) override;
    void do_feedback(const Configuration& config, Cost cost) override;
    [[nodiscard]] bool do_converged() const override;

private:
    std::optional<Configuration> cursor_;
    bool done_ = false;
};

/// Random search (paper Section II-A.7): independently samples a uniform
/// configuration every iteration, forever.  Never reports convergence.
class RandomSearcher final : public Searcher {
public:
    [[nodiscard]] std::string name() const override { return "Random"; }

protected:
    void do_reset() override {}
    Configuration do_propose(Rng& rng) override { return space().random(rng); }
    void do_feedback(const Configuration&, Cost) override {}
    [[nodiscard]] bool do_converged() const override { return false; }
};

} // namespace atk

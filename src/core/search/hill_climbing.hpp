#pragma once

#include <vector>

#include "core/search/searcher.hpp"

namespace atk {

/// Greedy hill climbing (paper Section II-A.1): evaluates all lattice
/// neighbors of the current configuration and moves to the best strictly
/// improving one; converges when no neighbor improves.
///
/// Requires an order on every parameter (Ordinal or better) to define the
/// neighborhood; rejects Nominal parameters at reset().
class HillClimbingSearcher final : public Searcher {
public:
    struct Options {
        std::size_t max_evaluations = 0;  ///< 0 = unbounded
    };

    HillClimbingSearcher() = default;
    explicit HillClimbingSearcher(Options options) : options_(options) {}

    [[nodiscard]] std::string name() const override { return "HillClimbing"; }

protected:
    void validate_space(const SearchSpace& space) const override;
    void do_reset() override;
    Configuration do_propose(Rng& rng) override;
    void do_feedback(const Configuration& config, Cost cost) override;
    [[nodiscard]] bool do_converged() const override;

private:
    void open_neighborhood();

    Options options_;
    Configuration current_;
    Cost current_cost_ = 0.0;
    bool have_current_ = false;
    std::vector<Configuration> frontier_;  // neighbors awaiting evaluation
    std::size_t frontier_index_ = 0;
    Configuration best_neighbor_;
    Cost best_neighbor_cost_ = 0.0;
    bool have_best_neighbor_ = false;
    bool converged_flag_ = false;
};

} // namespace atk

#include "core/search/differential_evolution.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/search/unit_space.hpp"

namespace atk {

void DifferentialEvolutionSearcher::validate_space(const SearchSpace& space) const {
    if (!space.all_have_distance())
        throw std::invalid_argument(
            "DifferentialEvolution requires Interval/Ratio parameters: agent "
            "updates are built from coordinate differences, undefined for "
            "Nominal/Ordinal parameters");
}

void DifferentialEvolutionSearcher::do_reset() {
    agents_.clear();
    trial_.clear();
    cursor_ = 0;
    initialized_ = false;
    in_initial_eval_ = true;
    have_pass_best_ = false;
    improved_this_pass_ = false;
    stale_count_ = 0;
}

Configuration DifferentialEvolutionSearcher::do_propose(Rng& rng) {
    const std::size_t d = space().dimension();
    if (!initialized_) {
        const std::size_t count = std::max<std::size_t>(4, options_.population);
        agents_.resize(count);
        agents_[0].position = config_to_unit(space(), initial());
        for (std::size_t a = 1; a < count; ++a)
            agents_[a].position = config_to_unit(space(), space().random(rng));
        initialized_ = true;
        cursor_ = 0;
        in_initial_eval_ = true;
    }
    if (in_initial_eval_) {
        trial_ = agents_[cursor_].position;
        return unit_to_config(space(), trial_);
    }
    // DE/rand/1/bin: mutant v = a + F * (b - c) from three distinct agents
    // (all different from the current one), then binomial crossover.
    std::size_t ia, ib, ic;
    do { ia = rng.index(agents_.size()); } while (ia == cursor_);
    do { ib = rng.index(agents_.size()); } while (ib == cursor_ || ib == ia);
    do { ic = rng.index(agents_.size()); } while (ic == cursor_ || ic == ia || ic == ib);
    const auto& a = agents_[ia].position;
    const auto& b = agents_[ib].position;
    const auto& c = agents_[ic].position;
    trial_ = agents_[cursor_].position;
    const std::size_t forced = rng.index(d);  // at least one mutant coordinate
    for (std::size_t i = 0; i < d; ++i) {
        if (i == forced || rng.chance(options_.crossover_probability)) {
            trial_[i] = std::clamp(a[i] + options_.differential_weight * (b[i] - c[i]),
                                   0.0, 1.0);
        }
    }
    return unit_to_config(space(), trial_);
}

void DifferentialEvolutionSearcher::do_feedback(const Configuration&, Cost cost) {
    auto& agent = agents_[cursor_];
    if (in_initial_eval_) {
        agent.cost = cost;
    } else if (cost <= agent.cost) {
        agent.position = trial_;
        agent.cost = cost;
    }
    if (!have_pass_best_ || cost < pass_best_ - 1e-4 * std::abs(pass_best_))
        improved_this_pass_ = true;
    if (!have_pass_best_ || cost < pass_best_) {
        pass_best_ = cost;
        have_pass_best_ = true;
    }
    ++cursor_;
    if (cursor_ == agents_.size()) {
        cursor_ = 0;
        in_initial_eval_ = false;
        if (improved_this_pass_) {
            stale_count_ = 0;
        } else {
            ++stale_count_;
        }
        improved_this_pass_ = false;
    }
}

bool DifferentialEvolutionSearcher::do_converged() const {
    if (options_.max_evaluations != 0 && evaluations() >= options_.max_evaluations)
        return true;
    return stale_count_ >= options_.stale_passes;
}

} // namespace atk

#include "core/search/particle_swarm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/search/unit_space.hpp"

namespace atk {

void ParticleSwarmSearcher::validate_space(const SearchSpace& space) const {
    if (!space.all_have_distance())
        throw std::invalid_argument(
            "ParticleSwarm requires Interval/Ratio parameters: particle velocity "
            "is a difference vector, undefined for Nominal/Ordinal parameters");
}

void ParticleSwarmSearcher::do_reset() {
    swarm_.clear();
    global_best_.clear();
    have_global_best_ = false;
    cursor_ = 0;
    initialized_ = false;
    stale_count_ = 0;
    improved_this_sweep_ = false;
    needs_advance_ = false;
}

Configuration ParticleSwarmSearcher::do_propose(Rng& rng) {
    if (!initialized_) {
        const std::size_t d = space().dimension();
        std::size_t count = options_.particles;
        if (count == 0) count = std::min<std::size_t>(10, 4 + 2 * d);
        count = std::max<std::size_t>(2, count);
        swarm_.resize(count);
        for (std::size_t p = 0; p < count; ++p) {
            auto& particle = swarm_[p];
            // Particle 0 starts at the caller's initial configuration so the
            // hand-crafted default is always part of the swarm.
            particle.position = p == 0 ? config_to_unit(space(), initial())
                                       : config_to_unit(space(), space().random(rng));
            particle.velocity.assign(d, 0.0);
            for (double& v : particle.velocity)
                v = rng.uniform_real(-options_.max_velocity / 2, options_.max_velocity / 2);
            particle.best_position = particle.position;
        }
        initialized_ = true;
        cursor_ = 0;
    }
    if (needs_advance_) {
        advance_swarm(rng);
        needs_advance_ = false;
    }
    return unit_to_config(space(), swarm_[cursor_].position);
}

void ParticleSwarmSearcher::advance_swarm(Rng& rng) {
    for (auto& particle : swarm_) {
        for (std::size_t i = 0; i < particle.position.size(); ++i) {
            const double r1 = rng.uniform_real();
            const double r2 = rng.uniform_real();
            double v = options_.inertia * particle.velocity[i] +
                       options_.cognitive * r1 *
                           (particle.best_position[i] - particle.position[i]) +
                       options_.social * r2 * (global_best_[i] - particle.position[i]);
            v = std::clamp(v, -options_.max_velocity, options_.max_velocity);
            particle.velocity[i] = v;
            particle.position[i] = std::clamp(particle.position[i] + v, 0.0, 1.0);
        }
    }
    if (!improved_this_sweep_) {
        ++stale_count_;
    } else {
        stale_count_ = 0;
    }
    improved_this_sweep_ = false;
}

void ParticleSwarmSearcher::do_feedback(const Configuration&, Cost cost) {
    auto& particle = swarm_[cursor_];
    if (!particle.evaluated || cost < particle.best_cost) {
        particle.best_cost = cost;
        particle.best_position = particle.position;
        particle.evaluated = true;
    }
    if (!have_global_best_ ||
        cost < global_best_cost_ - 1e-4 * std::abs(global_best_cost_)) {
        improved_this_sweep_ = true;
    }
    if (!have_global_best_ || cost < global_best_cost_) {
        global_best_cost_ = cost;
        global_best_ = particle.position;
        have_global_best_ = true;
    }
    ++cursor_;
    if (cursor_ == swarm_.size()) {
        cursor_ = 0;
        needs_advance_ = true;  // swarm update happens at the next propose(),
                                // which is where the caller's Rng is available
    }
}

bool ParticleSwarmSearcher::do_converged() const {
    if (options_.max_evaluations != 0 && evaluations() >= options_.max_evaluations)
        return true;
    return initialized_ && stale_count_ >= options_.stale_sweeps;
}

} // namespace atk

#include "core/search/hill_climbing.hpp"

#include <stdexcept>

namespace atk {

void HillClimbingSearcher::validate_space(const SearchSpace& space) const {
    if (!space.all_have_order())
        throw std::invalid_argument(
            "HillClimbing requires ordered parameters: Nominal parameters define "
            "no neighborhood to climb through");
}

void HillClimbingSearcher::do_reset() {
    current_ = initial();
    have_current_ = false;
    frontier_.clear();
    frontier_index_ = 0;
    have_best_neighbor_ = false;
    converged_flag_ = false;
}

void HillClimbingSearcher::open_neighborhood() {
    frontier_ = space().neighbors(current_);
    frontier_index_ = 0;
    have_best_neighbor_ = false;
    if (frontier_.empty()) converged_flag_ = true;  // isolated point
}

Configuration HillClimbingSearcher::do_propose(Rng&) {
    if (!have_current_) return current_;
    return frontier_.at(frontier_index_);
}

void HillClimbingSearcher::do_feedback(const Configuration& config, Cost cost) {
    if (options_.max_evaluations != 0 && evaluations() >= options_.max_evaluations) {
        converged_flag_ = true;
        return;
    }
    if (!have_current_) {
        current_cost_ = cost;
        have_current_ = true;
        open_neighborhood();
        return;
    }
    if (!have_best_neighbor_ || cost < best_neighbor_cost_) {
        best_neighbor_ = config;
        best_neighbor_cost_ = cost;
        have_best_neighbor_ = true;
    }
    ++frontier_index_;
    if (frontier_index_ < frontier_.size()) return;
    // Neighborhood fully evaluated: greedily move, or stop at a local optimum.
    if (have_best_neighbor_ && best_neighbor_cost_ < current_cost_) {
        current_ = best_neighbor_;
        current_cost_ = best_neighbor_cost_;
        open_neighborhood();
    } else {
        converged_flag_ = true;
    }
}

bool HillClimbingSearcher::do_converged() const {
    return converged_flag_;
}

} // namespace atk

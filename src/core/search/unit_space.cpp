#include "core/search/unit_space.hpp"

#include <stdexcept>

namespace atk {

std::vector<double> config_to_unit(const SearchSpace& space, const Configuration& config) {
    if (config.size() != space.dimension())
        throw std::invalid_argument("config_to_unit: dimension mismatch");
    std::vector<double> point(config.size());
    for (std::size_t i = 0; i < config.size(); ++i)
        point[i] = space.param(i).to_unit(config[i]);
    return point;
}

Configuration unit_to_config(const SearchSpace& space, std::span<const double> point) {
    if (point.size() != space.dimension())
        throw std::invalid_argument("unit_to_config: dimension mismatch");
    std::vector<std::int64_t> values(point.size());
    for (std::size_t i = 0; i < point.size(); ++i)
        values[i] = space.param(i).from_unit(point[i]);
    return Configuration(std::move(values));
}

} // namespace atk

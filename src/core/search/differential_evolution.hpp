#pragma once

#include <vector>

#include "core/search/searcher.hpp"

namespace atk {

/// Differential evolution, DE/rand/1/bin (paper Section II-A.5, Storn &
/// Price).  Each agent is updated from the difference of three randomly
/// selected other agents; every dimension is probabilistically taken from
/// the mutant vector.
///
/// Requires distances on all parameters — agent updates are built from
/// coordinate differences, which Nominal/Ordinal parameters do not define.
class DifferentialEvolutionSearcher final : public Searcher {
public:
    struct Options {
        std::size_t population = 10;       ///< >= 4 agents required by rand/1
        double differential_weight = 0.7;  ///< F
        double crossover_probability = 0.9;///< CR
        /// Converged after this many full passes without best improvement.
        std::size_t stale_passes = 5;
        std::size_t max_evaluations = 0;   ///< 0 = unbounded
    };

    DifferentialEvolutionSearcher() = default;
    explicit DifferentialEvolutionSearcher(Options options) : options_(options) {}

    [[nodiscard]] std::string name() const override { return "DifferentialEvolution"; }

protected:
    void validate_space(const SearchSpace& space) const override;
    void do_reset() override;
    Configuration do_propose(Rng& rng) override;
    void do_feedback(const Configuration& config, Cost cost) override;
    [[nodiscard]] bool do_converged() const override;

private:
    struct Agent {
        std::vector<double> position;
        Cost cost = 0.0;
    };

    Options options_;
    std::vector<Agent> agents_;
    std::vector<double> trial_;   // candidate awaiting evaluation
    std::size_t cursor_ = 0;      // agent being challenged
    bool initialized_ = false;
    bool in_initial_eval_ = true; // first pass evaluates the seed population
    Cost pass_best_ = 0.0;
    bool have_pass_best_ = false;
    bool improved_this_pass_ = false;
    std::size_t stale_count_ = 0;
};

} // namespace atk

#include "core/search/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/invariants.hpp"
#include "core/search/unit_space.hpp"
#include "core/state_io.hpp"

namespace atk {

void NelderMeadSearcher::validate_space(const SearchSpace& space) const {
    if (!space.all_have_distance())
        throw std::invalid_argument(
            "NelderMead requires Interval/Ratio parameters: the simplex geometry "
            "needs a notion of distance, which Nominal/Ordinal parameters lack");
}

std::string NelderMeadSearcher::step_kind() const {
    switch (phase_) {
        case Phase::BuildSimplex: return "build-simplex";
        case Phase::Reflect: return "reflect";
        case Phase::Expand: return "expand";
        case Phase::ContractOutside: return "contract-outside";
        case Phase::ContractInside: return "contract-inside";
        case Phase::Shrink: return "shrink";
    }
    return {};
}

void NelderMeadSearcher::do_reset() {
    simplex_.clear();
    centroid_.clear();
    pending_.clear();
    reflected_point_.clear();
    phase_ = Phase::BuildSimplex;
    build_index_ = 0;
    shrink_index_ = 0;
    converged_flag_ = false;
}

std::vector<double> NelderMeadSearcher::affine(const std::vector<double>& from,
                                               const std::vector<double>& to,
                                               double t) const {
    std::vector<double> out(from.size());
    for (std::size_t i = 0; i < from.size(); ++i) {
        out[i] = std::clamp(from[i] + t * (to[i] - from[i]), 0.0, 1.0);
    }
    return out;
}

void NelderMeadSearcher::order_simplex() {
    std::stable_sort(simplex_.begin(), simplex_.end(),
                     [](const Vertex& a, const Vertex& b) { return a.cost < b.cost; });
}

void NelderMeadSearcher::begin_iteration() {
    invariants::check_simplex(simplex_, space().dimension());
    order_simplex();
    check_convergence();
    if (converged_flag_) return;
    const std::size_t d = space().dimension();
    centroid_.assign(d, 0.0);
    for (std::size_t v = 0; v + 1 < simplex_.size(); ++v)
        for (std::size_t i = 0; i < d; ++i) centroid_[i] += simplex_[v].point[i];
    for (double& c : centroid_) c /= static_cast<double>(simplex_.size() - 1);
    phase_ = Phase::Reflect;
}

void NelderMeadSearcher::check_convergence() {
    if (options_.max_evaluations != 0 && evaluations() >= options_.max_evaluations) {
        converged_flag_ = true;
        return;
    }
    if (simplex_.size() < 2) return;
    const Cost best = simplex_.front().cost;
    const Cost worst = simplex_.back().cost;
    const double spread = std::abs(worst - best) /
                          std::max(1e-12, std::abs(best));
    double extent = 0.0;
    for (const auto& v : simplex_)
        for (std::size_t i = 0; i < v.point.size(); ++i)
            extent = std::max(extent, std::abs(v.point[i] - simplex_.front().point[i]));
    if (spread < options_.cost_tolerance && extent < options_.extent_tolerance)
        converged_flag_ = true;
}

Configuration NelderMeadSearcher::do_propose(Rng&) {
    const std::size_t d = space().dimension();
    switch (phase_) {
        case Phase::BuildSimplex: {
            std::vector<double> point = config_to_unit(space(), initial());
            if (build_index_ > 0) {
                const std::size_t axis = build_index_ - 1;
                point[axis] += options_.initial_step;
                if (point[axis] > 1.0) point[axis] -= 2.0 * options_.initial_step;
                point[axis] = std::clamp(point[axis], 0.0, 1.0);
            }
            pending_ = std::move(point);
            break;
        }
        case Phase::Reflect:
            pending_ = affine(simplex_.back().point, centroid_, 1.0 + options_.alpha);
            break;
        case Phase::Expand:
            pending_ = affine(centroid_, reflected_point_, options_.gamma);
            break;
        case Phase::ContractOutside:
            pending_ = affine(centroid_, reflected_point_, options_.rho);
            break;
        case Phase::ContractInside:
            pending_ = affine(centroid_, simplex_.back().point, options_.rho);
            break;
        case Phase::Shrink: {
            const auto& best_point = simplex_.front().point;
            pending_ = affine(best_point, simplex_[shrink_index_].point, options_.sigma);
            break;
        }
    }
    if (pending_.size() != d) throw std::logic_error("NelderMead: internal state corrupt");
    return unit_to_config(space(), pending_);
}

void NelderMeadSearcher::accept_worst_replacement(std::vector<double> point, Cost cost) {
    simplex_.back() = Vertex{std::move(point), cost};
    begin_iteration();
}

void NelderMeadSearcher::do_feedback(const Configuration&, Cost cost) {
    switch (phase_) {
        case Phase::BuildSimplex: {
            simplex_.push_back(Vertex{pending_, cost});
            ++build_index_;
            if (simplex_.size() == space().dimension() + 1) begin_iteration();
            return;
        }
        case Phase::Reflect: {
            reflected_point_ = pending_;
            reflected_cost_ = cost;
            const Cost best = simplex_.front().cost;
            const Cost second_worst = simplex_[simplex_.size() - 2].cost;
            const Cost worst = simplex_.back().cost;
            if (cost < best) {
                phase_ = Phase::Expand;
            } else if (cost < second_worst) {
                accept_worst_replacement(std::move(reflected_point_), cost);
            } else if (cost < worst) {
                phase_ = Phase::ContractOutside;
            } else {
                phase_ = Phase::ContractInside;
            }
            return;
        }
        case Phase::Expand: {
            if (cost < reflected_cost_) {
                accept_worst_replacement(pending_, cost);
            } else {
                accept_worst_replacement(std::move(reflected_point_), reflected_cost_);
            }
            return;
        }
        case Phase::ContractOutside: {
            if (cost <= reflected_cost_) {
                accept_worst_replacement(pending_, cost);
            } else {
                phase_ = Phase::Shrink;
                shrink_index_ = 1;
            }
            return;
        }
        case Phase::ContractInside: {
            if (cost < simplex_.back().cost) {
                accept_worst_replacement(pending_, cost);
            } else {
                phase_ = Phase::Shrink;
                shrink_index_ = 1;
            }
            return;
        }
        case Phase::Shrink: {
            simplex_[shrink_index_] = Vertex{pending_, cost};
            ++shrink_index_;
            if (shrink_index_ == simplex_.size()) begin_iteration();
            return;
        }
    }
}

namespace {

void save_unit_vector(StateWriter& out, const std::vector<double>& v) {
    out.put_u64(v.size());
    for (const double x : v) out.put_f64(x);
}

std::vector<double> restore_unit_vector(StateReader& in) {
    std::vector<double> v(in.get_count());
    for (auto& x : v) x = in.get_f64();
    return v;
}

} // namespace

void NelderMeadSearcher::do_save_state(StateWriter& out) const {
    out.put_u64(static_cast<std::uint64_t>(phase_));
    out.put_u64(build_index_);
    out.put_u64(shrink_index_);
    out.put_u64(converged_flag_ ? 1 : 0);
    out.put_f64(reflected_cost_);
    save_unit_vector(out, centroid_);
    save_unit_vector(out, pending_);
    save_unit_vector(out, reflected_point_);
    out.put_u64(simplex_.size());
    for (const auto& vertex : simplex_) {
        save_unit_vector(out, vertex.point);
        out.put_f64(vertex.cost);
    }
}

void NelderMeadSearcher::do_restore_state(StateReader& in) {
    const std::uint64_t phase = in.get_u64();
    if (phase > static_cast<std::uint64_t>(Phase::Shrink))
        throw std::invalid_argument("NelderMead: snapshot has invalid phase");
    phase_ = static_cast<Phase>(phase);
    build_index_ = static_cast<std::size_t>(in.get_u64());
    shrink_index_ = static_cast<std::size_t>(in.get_u64());
    converged_flag_ = in.get_u64() != 0;
    reflected_cost_ = in.get_f64();
    centroid_ = restore_unit_vector(in);
    pending_ = restore_unit_vector(in);
    reflected_point_ = restore_unit_vector(in);
    simplex_.clear();
    const std::uint64_t vertices = in.get_count();
    if (vertices > space().dimension() + 1)
        throw std::invalid_argument("NelderMead: snapshot simplex larger than space");
    simplex_.reserve(vertices);
    for (std::uint64_t v = 0; v < vertices; ++v) {
        Vertex vertex;
        vertex.point = restore_unit_vector(in);
        if (vertex.point.size() != space().dimension())
            throw std::invalid_argument("NelderMead: snapshot vertex dimension mismatch");
        // Untrusted input is validated with throws (not contracts): every
        // legitimately saved coordinate is clamped into [0, 1] and every
        // cost is a finite measurement.
        for (const double x : vertex.point)
            if (!std::isfinite(x) || x < 0.0 || x > 1.0)
                throw std::invalid_argument(
                    "NelderMead: snapshot vertex coordinate outside unit space");
        vertex.cost = in.get_f64();
        if (!std::isfinite(vertex.cost))
            throw std::invalid_argument("NelderMead: snapshot vertex cost not finite");
        simplex_.push_back(std::move(vertex));
    }
    // Shape validation: every phase past BuildSimplex walks the complete
    // simplex and indexes the auxiliary vectors, so a corrupt snapshot that
    // passed the token checks must still be rejected before it can cause an
    // out-of-bounds access in the next propose()/feedback().
    const std::size_t d = space().dimension();
    auto dimensioned = [d](const std::vector<double>& v) {
        return v.empty() || v.size() == d;
    };
    if (!dimensioned(centroid_) || !dimensioned(pending_) || !dimensioned(reflected_point_))
        throw std::invalid_argument("NelderMead: snapshot auxiliary vector dimension mismatch");
    if (phase_ == Phase::BuildSimplex) {
        // While building, the cursor tracks the vertices built so far; the
        // next propose() steps along axis build_index_ - 1, so a corrupt
        // cursor is an out-of-bounds write.  build_index_ == d + 1 is
        // legitimate only when convergence interrupted the build.
        if (build_index_ != simplex_.size() ||
            (build_index_ > d && !(build_index_ == d + 1 && converged_flag_)))
            throw std::invalid_argument(
                "NelderMead: snapshot build cursor out of range");
    } else {
        if (simplex_.size() != d + 1)
            throw std::invalid_argument(
                "NelderMead: snapshot phase requires a complete simplex");
        if (centroid_.size() != d)
            throw std::invalid_argument("NelderMead: snapshot centroid missing");
        if ((phase_ == Phase::Expand || phase_ == Phase::ContractOutside) &&
            reflected_point_.size() != d)
            throw std::invalid_argument("NelderMead: snapshot reflected point missing");
        // shrink_index_ == simplex_.size() is legitimate only when the
        // searcher converged mid-shrink (begin_iteration() bailed before
        // advancing the phase); any feedback would otherwise write past the
        // simplex.
        if (phase_ == Phase::Shrink &&
            (shrink_index_ == 0 || shrink_index_ > simplex_.size() ||
             (shrink_index_ == simplex_.size() && !converged_flag_)))
            throw std::invalid_argument("NelderMead: snapshot shrink cursor out of range");
    }
    // A snapshot taken mid-build legitimately holds a partial simplex; a
    // complete one must satisfy the full geometric invariant.
    if (simplex_.size() == d + 1) invariants::check_simplex(simplex_, d);
}

bool NelderMeadSearcher::do_converged() const {
    if (options_.max_evaluations != 0 && evaluations() >= options_.max_evaluations)
        return true;
    return converged_flag_;
}

} // namespace atk

#include "core/tuner.hpp"

#include <stdexcept>

namespace atk {

TunableAlgorithm TunableAlgorithm::untunable(std::string name) {
    TunableAlgorithm algorithm;
    algorithm.name = std::move(name);
    algorithm.initial = Configuration{};
    algorithm.searcher = std::make_unique<FixedSearcher>();
    return algorithm;
}

TwoPhaseTuner::TwoPhaseTuner(std::unique_ptr<NominalStrategy> strategy,
                             std::vector<TunableAlgorithm> algorithms,
                             std::uint64_t seed)
    : strategy_(std::move(strategy)), algorithms_(std::move(algorithms)), rng_(seed) {
    if (!strategy_) throw std::invalid_argument("TwoPhaseTuner: null strategy");
    if (algorithms_.empty())
        throw std::invalid_argument("TwoPhaseTuner: need at least one algorithm");
    for (auto& algorithm : algorithms_) {
        if (!algorithm.searcher) algorithm.searcher = std::make_unique<FixedSearcher>();
        // reset() validates that the searcher can manipulate the space's
        // parameter classes and that the initial configuration is valid.
        algorithm.searcher->reset(algorithm.space, algorithm.initial);
    }
    strategy_->reset(algorithms_.size());
}

Trial TwoPhaseTuner::next() {
    if (awaiting_report_)
        throw std::logic_error("TwoPhaseTuner: next() called twice without report()");
    awaiting_report_ = true;
    // Phase two: nominal selection of the algorithm.
    const std::size_t choice = strategy_->select(rng_);
    // Phase one: configuration proposal inside the chosen algorithm's space.
    pending_ = Trial{choice, algorithms_.at(choice).searcher->propose(rng_)};
    return pending_;
}

void TwoPhaseTuner::report(const Trial& trial, Cost cost) {
    if (!awaiting_report_)
        throw std::logic_error("TwoPhaseTuner: report() without a pending next()");
    if (trial.algorithm != pending_.algorithm || !(trial.config == pending_.config))
        throw std::invalid_argument("TwoPhaseTuner: report() for a different trial");
    if (!(cost > 0.0))
        throw std::invalid_argument("TwoPhaseTuner: cost must be positive");
    awaiting_report_ = false;

    algorithms_.at(trial.algorithm).searcher->feedback(trial.config, cost);
    strategy_->report(trial.algorithm, cost);

    if (!has_best_ || cost < best_cost_) {
        best_trial_ = trial;
        best_cost_ = cost;
        has_best_ = true;
    }
    trace_.record(TraceEntry{iteration_, trial.algorithm, trial.config, cost});
    ++iteration_;
}

TuningTrace TwoPhaseTuner::run(const std::function<Cost(const Trial&)>& measure,
                               std::size_t iterations) {
    const std::size_t start = trace_.size();
    for (std::size_t i = 0; i < iterations; ++i) {
        const Trial trial = next();
        report(trial, measure(trial));
    }
    TuningTrace slice;
    for (std::size_t i = start; i < trace_.size(); ++i) slice.record(trace_[i]);
    return slice;
}

const Trial& TwoPhaseTuner::best_trial() const {
    if (!has_best_) throw std::logic_error("TwoPhaseTuner: no samples reported yet");
    return best_trial_;
}

} // namespace atk

#include "core/tuner.hpp"

#include <array>
#include <stdexcept>

#include "core/state_io.hpp"
#include "obs/span.hpp"

namespace atk {

TunableAlgorithm TunableAlgorithm::untunable(std::string name) {
    TunableAlgorithm algorithm;
    algorithm.name = std::move(name);
    algorithm.initial = Configuration{};
    algorithm.searcher = std::make_unique<FixedSearcher>();
    return algorithm;
}

TwoPhaseTuner::TwoPhaseTuner(std::unique_ptr<NominalStrategy> strategy,
                             std::vector<TunableAlgorithm> algorithms,
                             std::uint64_t seed,
                             std::unique_ptr<CostObjective> objective)
    : strategy_(std::move(strategy)),
      objective_(objective ? std::move(objective) : std::make_unique<MeanCost>()),
      objective_label_(objective_->describe()),
      algorithms_(std::move(algorithms)),
      rng_(seed) {
    if (!strategy_) throw std::invalid_argument("TwoPhaseTuner: null strategy");
    if (algorithms_.empty())
        throw std::invalid_argument("TwoPhaseTuner: need at least one algorithm");
    for (auto& algorithm : algorithms_) {
        if (!algorithm.searcher) algorithm.searcher = std::make_unique<FixedSearcher>();
        // reset() validates that the searcher can manipulate the space's
        // parameter classes and that the initial configuration is valid.
        algorithm.searcher->reset(algorithm.space, algorithm.initial);
    }
    strategy_->reset(algorithms_.size());
}

Trial TwoPhaseTuner::next() { return next(FeatureVector{}); }

Trial TwoPhaseTuner::next(const FeatureVector& features) {
    if (awaiting_report_)
        throw std::logic_error("TwoPhaseTuner: next() called twice without report()");
    awaiting_report_ = true;
    pending_features_ = features;
    std::size_t choice;
    {
        // Phase two: nominal selection of the algorithm.  The contextual
        // overload defaults to the context-blind select(), so classic
        // strategies draw exactly the same RNG stream they always did.
        obs::Span span("tuner.phase2_select");
        choice = strategy_->select(rng_, pending_features_);
    }
    {
        // Phase one: configuration proposal inside the chosen algorithm's space.
        obs::Span span("tuner.phase1_propose");
        pending_ = Trial{choice, algorithms_.at(choice).searcher->propose(rng_)};
    }
    if (decision_hook_) {
        const TunableAlgorithm& algorithm = algorithms_[choice];
        decision_hook_(DecisionEvent{iteration_, choice, algorithm.name,
                                     strategy_->last_select_explored(),
                                     algorithm.searcher->step_kind(),
                                     strategy_->weights(), pending_.config,
                                     objective_label_, pending_features_,
                                     strategy_->last_scores()});
    }
    return pending_;
}

void TwoPhaseTuner::report(const Trial& trial, Cost cost) {
    if (!awaiting_report_)
        throw std::logic_error("TwoPhaseTuner: report() without a pending next()");
    if (trial.algorithm != pending_.algorithm || !(trial.config == pending_.config))
        throw std::invalid_argument("TwoPhaseTuner: report() for a different trial");
    if (!(cost > 0.0))
        throw std::invalid_argument("TwoPhaseTuner: cost must be positive");
    awaiting_report_ = false;

    obs::Span span("tuner.report");
    algorithms_.at(trial.algorithm).searcher->feedback(trial.config, cost);
    strategy_->report(trial.algorithm, cost, pending_features_);

    if (!has_best_ || cost < best_cost_) {
        best_trial_ = trial;
        best_cost_ = cost;
        has_best_ = true;
    }
    trace_.record(TraceEntry{iteration_, trial.algorithm, trial.config, cost});
    ++iteration_;
}

void TwoPhaseTuner::report(const Trial& trial, const CostBatch& batch) {
    report(trial, objective_->score(batch));
}

void TwoPhaseTuner::observe(const Trial& trial, Cost cost) {
    observe(trial, cost, FeatureVector{});
}

void TwoPhaseTuner::observe(const Trial& trial, Cost cost,
                            const FeatureVector& features) {
    if (trial.algorithm >= algorithms_.size())
        throw std::invalid_argument("TwoPhaseTuner: observe() of unknown algorithm");
    if (!(cost > 0.0))
        throw std::invalid_argument("TwoPhaseTuner: cost must be positive");
    obs::Span span("tuner.observe");
    strategy_->report(trial.algorithm, cost, features);
    if (!has_best_ || cost < best_cost_) {
        best_trial_ = trial;
        best_cost_ = cost;
        has_best_ = true;
    }
    trace_.record(TraceEntry{iteration_, trial.algorithm, trial.config, cost});
    ++iteration_;
}

void TwoPhaseTuner::observe(const Trial& trial, const CostBatch& batch) {
    observe(trial, objective_->score(batch));
}

namespace {

void save_trial(StateWriter& out, const Trial& trial) {
    out.put_u64(trial.algorithm);
    out.put_u64(trial.config.size());
    for (std::size_t i = 0; i < trial.config.size(); ++i) out.put_i64(trial.config[i]);
}

Trial restore_trial(StateReader& in, std::size_t algorithm_count) {
    Trial trial;
    trial.algorithm = static_cast<std::size_t>(in.get_u64());
    if (trial.algorithm >= algorithm_count)
        throw std::invalid_argument("TwoPhaseTuner: snapshot trial algorithm out of range");
    std::vector<std::int64_t> values(in.get_count());
    for (auto& value : values) value = in.get_i64();
    trial.config = Configuration(std::move(values));
    return trial;
}

} // namespace

void TwoPhaseTuner::save_state(StateWriter& out, std::uint64_t format) const {
    if (format < kTunerStateFormatV1 || format > kTunerStateFormat)
        throw std::invalid_argument("TwoPhaseTuner: unsupported state format " +
                                    std::to_string(format));
    for (const std::uint64_t word : rng_.state()) out.put_u64(word);
    out.put_u64(iteration_);
    out.put_u64(awaiting_report_ ? 1 : 0);
    save_trial(out, pending_);
    out.put_u64(has_best_ ? 1 : 0);
    out.put_f64(best_cost_);
    save_trial(out, best_trial_);
    out.put_str(strategy_->name());
    strategy_->save_state(out);
    out.put_u64(algorithms_.size());
    for (const auto& algorithm : algorithms_) {
        out.put_str(algorithm.name);
        algorithm.searcher->save_state(out);
    }
    // Each format appends its fields after the previous format's last token,
    // so an old reader stops cleanly before them: format 2 adds the cost
    // objective, format 3 the pending feature vector.
    if (format >= kTunerStateFormatV2) {
        out.put_str(objective_->id());
        objective_->save_state(out);
    }
    if (format >= kTunerStateFormat) {
        out.put_u64(pending_features_.size());
        for (const double value : pending_features_) out.put_f64(value);
    }
}

void TwoPhaseTuner::restore_state(StateReader& in, std::uint64_t format) {
    if (format < kTunerStateFormatV1 || format > kTunerStateFormat)
        throw std::invalid_argument("TwoPhaseTuner: unsupported state format " +
                                    std::to_string(format));
    std::array<std::uint64_t, 4> rng_state;
    for (auto& word : rng_state) word = in.get_u64();
    const auto iteration = static_cast<std::size_t>(in.get_u64());
    const bool awaiting = in.get_u64() != 0;
    Trial pending = restore_trial(in, algorithms_.size());
    const bool has_best = in.get_u64() != 0;
    const Cost best_cost = in.get_f64();
    Trial best_trial = restore_trial(in, algorithms_.size());
    const std::string strategy_name = in.get_str();
    if (strategy_name != strategy_->name())
        throw std::invalid_argument("TwoPhaseTuner: snapshot strategy is '" +
                                    strategy_name + "', tuner has '" +
                                    strategy_->name() + "'");
    strategy_->restore_state(in);
    if (in.get_u64() != algorithms_.size())
        throw std::invalid_argument("TwoPhaseTuner: snapshot algorithm count mismatch");
    for (auto& algorithm : algorithms_) {
        const std::string algorithm_name = in.get_str();
        if (algorithm_name != algorithm.name)
            throw std::invalid_argument("TwoPhaseTuner: snapshot algorithm '" +
                                        algorithm_name + "' does not match '" +
                                        algorithm.name + "'");
        algorithm.searcher->restore_state(in);
    }
    if (format >= kTunerStateFormatV2) {
        const std::string objective_id = in.get_str();
        if (objective_id != objective_->id())
            throw std::invalid_argument("TwoPhaseTuner: snapshot objective is '" +
                                        objective_id + "', tuner has '" +
                                        objective_->id() + "'");
        objective_->restore_state(in);
    }
    FeatureVector pending_features;
    if (format >= kTunerStateFormat) {
        pending_features.resize(in.get_count());
        for (auto& value : pending_features) value = in.get_f64();
    }
    // Cross-field consistency: exactly the pending trial's searcher may have
    // an open ask-tell cycle, and only while the tuner itself awaits a
    // report.  A snapshot that desyncs the two flags would make the next
    // next()/report() throw logic_error deep inside a searcher instead of
    // failing the restore.
    for (std::size_t a = 0; a < algorithms_.size(); ++a) {
        const bool should_wait = awaiting && pending.algorithm == a;
        if (algorithms_[a].searcher->awaiting_feedback() != should_wait)
            throw std::invalid_argument(
                "TwoPhaseTuner: snapshot searcher ask-tell state inconsistent "
                "with the pending trial");
    }
    rng_.set_state(rng_state);
    iteration_ = iteration;
    awaiting_report_ = awaiting;
    pending_ = std::move(pending);
    pending_features_ = std::move(pending_features);
    has_best_ = has_best;
    best_cost_ = best_cost;
    best_trial_ = std::move(best_trial);
}

TuningTrace TwoPhaseTuner::run(const std::function<Cost(const Trial&)>& measure,
                               std::size_t iterations) {
    const std::size_t start = trace_.size();
    for (std::size_t i = 0; i < iterations; ++i) {
        const Trial trial = next();
        report(trial, measure(trial));
    }
    TuningTrace slice;
    for (std::size_t i = start; i < trace_.size(); ++i) slice.record(trace_[i]);
    return slice;
}

const Trial& TwoPhaseTuner::best_trial() const {
    if (!has_best_) throw std::logic_error("TwoPhaseTuner: no samples reported yet");
    return best_trial_;
}

} // namespace atk

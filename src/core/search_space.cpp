#include "core/search_space.hpp"

#include <limits>
#include <stdexcept>

namespace atk {

SearchSpace& SearchSpace::add(Parameter param) {
    if (index_of(param.name()))
        throw std::invalid_argument("SearchSpace::add: duplicate parameter '" +
                                    param.name() + "'");
    params_.push_back(std::move(param));
    return *this;
}

std::optional<std::size_t> SearchSpace::index_of(const std::string& name) const noexcept {
    for (std::size_t i = 0; i < params_.size(); ++i)
        if (params_[i].name() == name) return i;
    return std::nullopt;
}

std::uint64_t SearchSpace::cardinality() const noexcept {
    std::uint64_t total = 1;
    for (const auto& p : params_) {
        const std::uint64_t card = p.cardinality();
        if (total > std::numeric_limits<std::uint64_t>::max() / card)
            return std::numeric_limits<std::uint64_t>::max();
        total *= card;
    }
    return total;
}

bool SearchSpace::has_nominal() const noexcept {
    for (const auto& p : params_)
        if (p.cls() == ParamClass::Nominal) return true;
    return false;
}

bool SearchSpace::all_have_distance() const noexcept {
    for (const auto& p : params_)
        if (!p.has_distance()) return false;
    return true;
}

bool SearchSpace::all_have_order() const noexcept {
    for (const auto& p : params_)
        if (!p.has_order()) return false;
    return true;
}

bool SearchSpace::contains(const Configuration& config) const noexcept {
    if (config.size() != params_.size()) return false;
    for (std::size_t i = 0; i < params_.size(); ++i)
        if (!params_[i].contains(config[i])) return false;
    return true;
}

Configuration SearchSpace::clamp(Configuration config) const {
    if (config.size() != params_.size())
        throw std::invalid_argument("SearchSpace::clamp: dimension mismatch");
    for (std::size_t i = 0; i < params_.size(); ++i)
        config[i] = params_[i].clamp(config[i]);
    return config;
}

Configuration SearchSpace::lowest() const {
    std::vector<std::int64_t> values(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i) values[i] = params_[i].min_value();
    return Configuration(std::move(values));
}

Configuration SearchSpace::midpoint() const {
    std::vector<std::int64_t> values(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i) {
        const auto& p = params_[i];
        values[i] = p.clamp(p.min_value() + (p.max_value() - p.min_value()) / 2);
    }
    return Configuration(std::move(values));
}

Configuration SearchSpace::random(Rng& rng) const {
    std::vector<std::int64_t> values(params_.size());
    for (std::size_t i = 0; i < params_.size(); ++i) {
        const auto& p = params_[i];
        const auto steps = static_cast<std::int64_t>(p.cardinality()) - 1;
        values[i] = p.min_value() + rng.uniform_int(0, steps) * p.step();
    }
    return Configuration(std::move(values));
}

std::vector<Configuration> SearchSpace::neighbors(const Configuration& config) const {
    if (config.size() != params_.size())
        throw std::invalid_argument("SearchSpace::neighbors: dimension mismatch");
    std::vector<Configuration> result;
    for (std::size_t i = 0; i < params_.size(); ++i) {
        const auto& p = params_[i];
        if (!p.has_order()) continue;
        if (config[i] - p.step() >= p.min_value()) {
            Configuration down = config;
            down[i] -= p.step();
            result.push_back(std::move(down));
        }
        if (config[i] + p.step() <= p.max_value()) {
            Configuration up = config;
            up[i] += p.step();
            result.push_back(std::move(up));
        }
    }
    return result;
}

std::optional<Configuration> SearchSpace::next_lexicographic(Configuration config) const {
    if (config.size() != params_.size())
        throw std::invalid_argument("SearchSpace::next_lexicographic: dimension mismatch");
    for (std::size_t i = params_.size(); i-- > 0;) {
        const auto& p = params_[i];
        if (config[i] + p.step() <= p.max_value()) {
            config[i] += p.step();
            return config;
        }
        config[i] = p.min_value();
    }
    return std::nullopt;  // wrapped around: config was the last one
}

std::string SearchSpace::describe(const Configuration& config) const {
    if (config.size() != params_.size())
        throw std::invalid_argument("SearchSpace::describe: dimension mismatch");
    if (params_.empty()) return "{}";
    std::string out = "{";
    for (std::size_t i = 0; i < params_.size(); ++i) {
        if (i > 0) out += ", ";
        out += params_[i].name() + "=" + params_[i].label(config[i]);
    }
    out += "}";
    return out;
}

} // namespace atk

#include "core/offline.hpp"

#include <stdexcept>

namespace atk {

OfflineTuner::OfflineTuner(std::unique_ptr<Searcher> searcher)
    : OfflineTuner(std::move(searcher), Options{}) {}

OfflineTuner::OfflineTuner(std::unique_ptr<Searcher> searcher, Options options)
    : searcher_(std::move(searcher)), options_(options) {
    if (!searcher_) throw std::invalid_argument("OfflineTuner: null searcher");
    if (options_.max_evaluations == 0)
        throw std::invalid_argument("OfflineTuner: zero evaluation budget");
}

OfflineTuner::Result OfflineTuner::minimize(const SearchSpace& space,
                                            const Configuration& initial,
                                            const MeasurementFunction& measure) {
    Rng rng(options_.seed);
    Result result;
    result.best = initial;
    result.best_cost = std::numeric_limits<Cost>::infinity();

    Configuration start = initial;
    for (std::size_t attempt = 0; attempt <= options_.restarts; ++attempt) {
        searcher_->reset(space, start);
        std::size_t attempt_evaluations = 0;
        // Even an immediately-converged searcher (empty space, Fixed) must
        // measure its one configuration, otherwise the result is vacuous.
        while (result.evaluations < options_.max_evaluations &&
               (attempt_evaluations == 0 || !searcher_->converged())) {
            const Configuration config = searcher_->propose(rng);
            const Cost cost = measure(config);
            searcher_->feedback(config, cost);
            ++result.evaluations;
            ++attempt_evaluations;
            if (cost < result.best_cost) {
                result.best_cost = cost;
                result.best = config;
            }
        }
        result.converged = searcher_->converged();
        if (result.evaluations >= options_.max_evaluations) break;
        if (attempt < options_.restarts) {
            start = space.random(rng);
            ++result.restarts_used;
        }
    }
    return result;
}

OfflineAlgorithmResult offline_two_phase_minimize(
    const std::vector<OfflineAlgorithm>& algorithms,
    const std::function<std::unique_ptr<Searcher>()>& make_searcher,
    const std::function<Cost(std::size_t, const Configuration&)>& measure,
    OfflineTuner::Options options) {
    if (algorithms.empty())
        throw std::invalid_argument("offline_two_phase_minimize: no algorithms");
    OfflineAlgorithmResult best;
    best.cost = std::numeric_limits<Cost>::infinity();
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
        OfflineTuner tuner(make_searcher(), options);
        const OfflineTuner::Result result = tuner.minimize(
            algorithms[a].space, algorithms[a].initial,
            [&](const Configuration& config) { return measure(a, config); });
        if (result.best_cost < best.cost) {
            best.algorithm = a;
            best.config = result.best;
            best.cost = result.best_cost;
        }
    }
    return best;
}

} // namespace atk

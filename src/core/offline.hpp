#pragma once

#include <memory>

#include "core/measurement.hpp"
#include "core/search/searcher.hpp"
#include "core/tuner.hpp"

namespace atk {

/// Offline tuning driver (paper Section II-A: "the technique we develop
/// here is applicable to offline tuning as well" — the FFTW/ATLAS
/// install-time scenario).
///
/// Unlike the online TwoPhaseTuner, the driver owns the measurement loop:
/// it evaluates configurations until the searcher converges or a budget is
/// exhausted, optionally restarting from random points to escape local
/// minima.  Restarts matter offline because there is no amortization
/// pressure — wasted evaluations only cost installation time.
class OfflineTuner {
public:
    struct Options {
        std::size_t max_evaluations = 1000;  ///< total budget across restarts
        std::size_t restarts = 0;            ///< additional random restarts
        std::uint64_t seed = 0x5EEDBA5EULL;
    };

    struct Result {
        Configuration best;
        Cost best_cost = 0.0;
        std::size_t evaluations = 0;   ///< measurements actually spent
        std::size_t restarts_used = 0; ///< restarts actually performed
        bool converged = false;        ///< final searcher state
    };

    explicit OfflineTuner(std::unique_ptr<Searcher> searcher);
    OfflineTuner(std::unique_ptr<Searcher> searcher, Options options);

    /// Minimizes `measure` over `space` starting from `initial`.
    /// Throws std::invalid_argument for an invalid initial configuration or
    /// a space the searcher cannot manipulate.
    Result minimize(const SearchSpace& space, const Configuration& initial,
                    const MeasurementFunction& measure);

private:
    std::unique_ptr<Searcher> searcher_;
    Options options_;
};

/// Offline variant of the paper's full two-phase problem: exhaustively
/// tries every algorithm (offline has no amortization constraint, making
/// exhaustive phase-two optimal per Section II-B) and minimizes each
/// algorithm's own space with a fresh copy of the searcher.
struct OfflineAlgorithmResult {
    std::size_t algorithm = 0;
    Configuration config;
    Cost cost = 0.0;
};

/// Per-algorithm description for offline two-phase tuning.
struct OfflineAlgorithm {
    std::string name;
    SearchSpace space;
    Configuration initial;
};

/// Minimizes over algorithms x configurations; `make_searcher` supplies a
/// fresh phase-one searcher per algorithm; `measure(algorithm, config)` is
/// the two-phase measurement function m_A(C).
[[nodiscard]] OfflineAlgorithmResult offline_two_phase_minimize(
    const std::vector<OfflineAlgorithm>& algorithms,
    const std::function<std::unique_ptr<Searcher>()>& make_searcher,
    const std::function<Cost(std::size_t, const Configuration&)>& measure,
    OfflineTuner::Options options = {});

} // namespace atk

#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

#include "support/contracts.hpp"

/// Executable statements of the paper's core invariants, shared between the
/// strategy/searcher implementations (which call them after every mutation
/// in checked builds) and the contract tests (which violate them on purpose
/// to prove the contracts fire).
///
/// The helpers are `static inline` deliberately: each translation unit gets
/// its own copy whose checking follows that TU's ATK_CONTRACTS_ENABLED
/// setting, so a contracts-enabled test TU observes real checks even when
/// the library was compiled with contracts off (and there is no ODR
/// mismatch between the two).  Bodies are guarded so unchecked builds pay
/// nothing — not even the traversal.

namespace atk::invariants {

/// Paper Section III: every phase-two strategy must keep all selection
/// weights strictly positive and finite — no algorithm is ever excluded.
static inline void check_weights_positive(const std::vector<double>& weights) {
#if defined(ATK_CONTRACTS_ENABLED)
    ATK_ASSERT(!weights.empty(), "strategy weights must cover >= 1 choice");
    for (const double w : weights) {
        ATK_ASSERT(std::isfinite(w), "strategy weight must be finite");
        ATK_ASSERT(w > 0.0, "strategy weight must be strictly positive");
    }
#else
    (void)weights;
#endif
}

/// P_A = w_A / Σ w_{A'} must form a probability distribution.  Takes the
/// raw weights, normalizes, and checks the result sums to 1 within
/// floating-point tolerance — exactly what Rng::weighted_index samples.
/// Individual weights may be zero (ε-Greedy with ε = 0 is pure greedy);
/// the strictly-positive guarantee is the weighted family's and is checked
/// separately by check_weights_positive().
static inline void check_selection_distribution(const std::vector<double>& weights) {
#if defined(ATK_CONTRACTS_ENABLED)
    ATK_ASSERT(!weights.empty(), "selection distribution must cover >= 1 choice");
    double sum = 0.0;
    for (const double w : weights) {
        ATK_ASSERT(std::isfinite(w) && w >= 0.0, "selection weight must be finite and >= 0");
        sum += w;
    }
    ATK_ASSERT(std::isfinite(sum) && sum > 0.0, "weight sum must be positive and finite");
    double probability_sum = 0.0;
    for (const double w : weights) {
        const double p = w / sum;
        ATK_ASSERT(p >= 0.0 && p <= 1.0 + 1e-9, "selection probability must be in [0, 1]");
        probability_sum += p;
    }
    ATK_ASSERT(std::abs(probability_sum - 1.0) < 1e-9,
               "selection probabilities must sum to 1");
#else
    (void)weights;
#endif
}

/// A complete Nelder-Mead simplex over a d-dimensional unit space: exactly
/// d+1 vertices, every coordinate finite and inside [0, 1], every cost
/// finite (degenerate geometry shows up as NaN/inf propagation first).
/// `Simplex` is any range of vertices with `.point` and `.cost` members.
template <typename Simplex>
static inline void check_simplex(const Simplex& simplex, std::size_t dimension) {
#if defined(ATK_CONTRACTS_ENABLED)
    ATK_ASSERT(simplex.size() == dimension + 1,
               "Nelder-Mead simplex must have dimension+1 vertices");
    for (const auto& vertex : simplex) {
        ATK_ASSERT(vertex.point.size() == dimension,
                   "simplex vertex dimension mismatch");
        for (const double x : vertex.point) {
            ATK_ASSERT(std::isfinite(x), "simplex coordinate must be finite");
            ATK_ASSERT(x >= 0.0 && x <= 1.0, "simplex coordinate must be in unit space");
        }
        ATK_ASSERT(std::isfinite(vertex.cost), "simplex vertex cost must be finite");
    }
#else
    (void)simplex;
    (void)dimension;
#endif
}

} // namespace atk::invariants

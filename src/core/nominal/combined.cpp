#include "core/nominal/combined.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "core/invariants.hpp"
#include "core/state_io.hpp"

namespace atk {

// ---- GradientGreedy -------------------------------------------------------

GradientGreedy::GradientGreedy(double epsilon, std::size_t window_size)
    : epsilon_(epsilon), gradient_(window_size) {
    if (epsilon < 0.0 || epsilon > 1.0)
        throw std::invalid_argument("GradientGreedy: epsilon must be in [0, 1]");
}

std::string GradientGreedy::name() const {
    char buf[48];
    std::snprintf(buf, sizeof buf, "Gradient-Greedy (%g%%)", epsilon_ * 100.0);
    return buf;
}

void GradientGreedy::reset(std::size_t choices) {
    if (choices == 0)
        throw std::invalid_argument("GradientGreedy: need at least one choice");
    gradient_.reset(choices);
    best_cost_.assign(choices, std::numeric_limits<Cost>::infinity());
    init_cursor_ = 0;
    exploring_ = false;
}

std::size_t GradientGreedy::best_choice() const {
    return static_cast<std::size_t>(
        std::min_element(best_cost_.begin(), best_cost_.end()) - best_cost_.begin());
}

std::size_t GradientGreedy::select(Rng& rng) {
    if (best_cost_.empty()) throw std::logic_error("GradientGreedy: select() before reset()");
    exploring_ = rng.chance(epsilon_);
    if (exploring_) {
        // Exploration follows the gradient weights: prefer algorithms whose
        // phase-one tuning still improves.
        return rng.weighted_index(gradient_.weights());
    }
    if (init_cursor_ < best_cost_.size()) return init_cursor_;
    return best_choice();
}

void GradientGreedy::report(std::size_t choice, Cost cost) {
    best_cost_.at(choice) = std::min(best_cost_.at(choice), cost);
    gradient_.report(choice, cost);
    if (!exploring_ && init_cursor_ < best_cost_.size() && choice == init_cursor_)
        ++init_cursor_;
}

std::vector<double> GradientGreedy::weights() const {
    auto w = gradient_.weights();
    double total = 0.0;
    for (const double x : w) total += x;
    for (double& x : w) x = epsilon_ * x / total;
    const std::size_t greedy =
        init_cursor_ < best_cost_.size() ? init_cursor_ : best_choice();
    w[greedy] += 1.0 - epsilon_;
    invariants::check_selection_distribution(w);
    return w;
}

void GradientGreedy::save_state(StateWriter& out) const {
    out.put_u64(best_cost_.size());
    out.put_u64(init_cursor_);
    out.put_u64(exploring_ ? 1 : 0);
    for (const Cost cost : best_cost_) out.put_f64(cost);
    gradient_.save_state(out);
}

void GradientGreedy::restore_state(StateReader& in) {
    if (in.get_u64() != best_cost_.size())
        throw std::invalid_argument("GradientGreedy: snapshot choice count mismatch");
    init_cursor_ = static_cast<std::size_t>(in.get_u64());
    exploring_ = in.get_u64() != 0;
    for (auto& cost : best_cost_) cost = in.get_f64();
    gradient_.restore_state(in);
}

// ---- DecayingEpsilonGreedy -----------------------------------------------

DecayingEpsilonGreedy::DecayingEpsilonGreedy(double initial_epsilon, double decay_rate)
    : initial_epsilon_(initial_epsilon), decay_rate_(decay_rate) {
    if (initial_epsilon < 0.0 || initial_epsilon > 1.0)
        throw std::invalid_argument("DecayingEpsilonGreedy: epsilon must be in [0, 1]");
    if (decay_rate < 0.0)
        throw std::invalid_argument("DecayingEpsilonGreedy: decay rate must be >= 0");
}

std::string DecayingEpsilonGreedy::name() const {
    char buf[64];
    std::snprintf(buf, sizeof buf, "Decaying e-Greedy (%g%%, %g)",
                  initial_epsilon_ * 100.0, decay_rate_);
    return buf;
}

double DecayingEpsilonGreedy::current_epsilon() const noexcept {
    return initial_epsilon_ / (1.0 + static_cast<double>(iteration_) * decay_rate_);
}

void DecayingEpsilonGreedy::reset(std::size_t choices) {
    if (choices == 0)
        throw std::invalid_argument("DecayingEpsilonGreedy: need at least one choice");
    best_cost_.assign(choices, std::numeric_limits<Cost>::infinity());
    init_cursor_ = 0;
    iteration_ = 0;
    exploring_ = false;
}

std::size_t DecayingEpsilonGreedy::best_choice() const {
    return static_cast<std::size_t>(
        std::min_element(best_cost_.begin(), best_cost_.end()) - best_cost_.begin());
}

std::size_t DecayingEpsilonGreedy::select(Rng& rng) {
    if (best_cost_.empty())
        throw std::logic_error("DecayingEpsilonGreedy: select() before reset()");
    exploring_ = rng.chance(current_epsilon());
    if (exploring_) return rng.index(best_cost_.size());
    if (init_cursor_ < best_cost_.size()) return init_cursor_;
    return best_choice();
}

void DecayingEpsilonGreedy::report(std::size_t choice, Cost cost) {
    best_cost_.at(choice) = std::min(best_cost_.at(choice), cost);
    if (!exploring_ && init_cursor_ < best_cost_.size() && choice == init_cursor_)
        ++init_cursor_;
    ++iteration_;
}

void DecayingEpsilonGreedy::save_state(StateWriter& out) const {
    out.put_u64(best_cost_.size());
    out.put_u64(init_cursor_);
    out.put_u64(iteration_);
    out.put_u64(exploring_ ? 1 : 0);
    for (const Cost cost : best_cost_) out.put_f64(cost);
}

void DecayingEpsilonGreedy::restore_state(StateReader& in) {
    if (in.get_u64() != best_cost_.size())
        throw std::invalid_argument(
            "DecayingEpsilonGreedy: snapshot choice count mismatch");
    init_cursor_ = static_cast<std::size_t>(in.get_u64());
    iteration_ = static_cast<std::size_t>(in.get_u64());
    exploring_ = in.get_u64() != 0;
    for (auto& cost : best_cost_) cost = in.get_f64();
}

std::vector<double> DecayingEpsilonGreedy::weights() const {
    const std::size_t n = best_cost_.size();
    const double epsilon = current_epsilon();
    std::vector<double> w(n, epsilon / static_cast<double>(n));
    const std::size_t greedy = init_cursor_ < n ? init_cursor_ : best_choice();
    w[greedy] += 1.0 - epsilon;
    invariants::check_selection_distribution(w);
    return w;
}

} // namespace atk

#include "core/nominal/bucketed.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/state_io.hpp"

namespace atk {

FeatureBucketizer::FeatureBucketizer(std::vector<std::vector<double>> edges)
    : edges_(std::move(edges)) {
    for (const auto& dimension : edges_) {
        for (std::size_t i = 0; i < dimension.size(); ++i) {
            if (!std::isfinite(dimension[i]))
                throw std::invalid_argument("FeatureBucketizer: edge not finite");
            if (i > 0 && !(dimension[i - 1] < dimension[i]))
                throw std::invalid_argument(
                    "FeatureBucketizer: edges must be strictly increasing");
        }
    }
}

std::size_t FeatureBucketizer::bucket_count() const noexcept {
    std::size_t count = 1;
    for (const auto& dimension : edges_) count *= dimension.size() + 1;
    return count;
}

std::size_t FeatureBucketizer::bucket_of(const FeatureVector& features) const {
    std::size_t id = 0;
    for (std::size_t d = 0; d < edges_.size(); ++d) {
        double value = d < features.size() ? features[d] : 0.0;
        if (!std::isfinite(value)) value = 0.0;
        const auto& dimension = edges_[d];
        const std::size_t interval = static_cast<std::size_t>(
            std::lower_bound(dimension.begin(), dimension.end(), value) -
            dimension.begin());
        id = id * (dimension.size() + 1) + interval;
    }
    return id;
}

BucketedStrategy::BucketedStrategy(InnerFactory factory,
                                   FeatureBucketizer bucketizer)
    : factory_(std::move(factory)), bucketizer_(std::move(bucketizer)) {
    if (!factory_)
        throw std::invalid_argument("BucketedStrategy: null inner factory");
    const auto prototype = factory_();
    if (!prototype)
        throw std::invalid_argument("BucketedStrategy: factory returned nullptr");
    inner_name_ = prototype->name();
}

std::string BucketedStrategy::name() const {
    char buf[160];
    std::snprintf(buf, sizeof buf, "Bucketed[%zu](%s)",
                  bucketizer_.bucket_count(), inner_name_.c_str());
    return buf;
}

void BucketedStrategy::reset(std::size_t choices) {
    if (choices == 0)
        throw std::invalid_argument("BucketedStrategy: need at least one choice");
    choices_ = choices;
    buckets_.clear();
    last_bucket_ = 0;
}

NominalStrategy& BucketedStrategy::bucket(std::size_t id) {
    auto it = buckets_.find(id);
    if (it == buckets_.end()) {
        auto inner = factory_();
        if (!inner)
            throw std::logic_error("BucketedStrategy: factory returned nullptr");
        inner->reset(choices_);
        it = buckets_.emplace(id, std::move(inner)).first;
    }
    return *it->second;
}

const NominalStrategy* BucketedStrategy::current() const {
    const auto it = buckets_.find(last_bucket_);
    return it == buckets_.end() ? nullptr : it->second.get();
}

std::size_t BucketedStrategy::select(Rng& rng) {
    return select(rng, FeatureVector{});
}

std::size_t BucketedStrategy::select(Rng& rng, const FeatureVector& features) {
    if (choices_ == 0)
        throw std::logic_error("BucketedStrategy: select() before reset()");
    last_bucket_ = bucketizer_.bucket_of(features);
    // Features are forwarded so a contextual inner strategy (LinUCB per
    // bucket) still sees the within-bucket variation.
    return bucket(last_bucket_).select(rng, features);
}

void BucketedStrategy::report(std::size_t choice, Cost cost) {
    if (choices_ == 0)
        throw std::logic_error("BucketedStrategy: report() before reset()");
    bucket(last_bucket_).report(choice, cost);
}

void BucketedStrategy::report(std::size_t choice, Cost cost,
                              const FeatureVector& features) {
    if (choices_ == 0)
        throw std::logic_error("BucketedStrategy: report() before reset()");
    // Routed by the features the measurement was taken under, not by the
    // last select() — out-of-band observe() traffic trains the right bucket.
    bucket(bucketizer_.bucket_of(features)).report(choice, cost, features);
}

std::vector<double> BucketedStrategy::weights() const {
    if (const NominalStrategy* inner = current()) return inner->weights();
    return std::vector<double>(choices_, 1.0 / static_cast<double>(choices_));
}

bool BucketedStrategy::last_select_explored() const noexcept {
    const NominalStrategy* inner = current();
    return inner != nullptr && inner->last_select_explored();
}

std::vector<double> BucketedStrategy::last_scores() const {
    if (const NominalStrategy* inner = current()) return inner->last_scores();
    return {};
}

void BucketedStrategy::save_state(StateWriter& out) const {
    out.put_u64(choices_);
    out.put_u64(last_bucket_);
    out.put_u64(buckets_.size());
    // std::map iteration is id-ordered, so the layout is deterministic.
    for (const auto& [id, inner] : buckets_) {
        out.put_u64(id);
        inner->save_state(out);
    }
}

void BucketedStrategy::restore_state(StateReader& in) {
    if (in.get_u64() != choices_)
        throw std::invalid_argument("BucketedStrategy: snapshot choice count mismatch");
    const auto last = static_cast<std::size_t>(in.get_u64());
    if (last >= bucketizer_.bucket_count())
        throw std::invalid_argument("BucketedStrategy: snapshot bucket out of range");
    const std::uint64_t count = in.get_u64();
    std::map<std::size_t, std::unique_ptr<NominalStrategy>> restored;
    for (std::uint64_t i = 0; i < count; ++i) {
        const auto id = static_cast<std::size_t>(in.get_u64());
        if (id >= bucketizer_.bucket_count())
            throw std::invalid_argument(
                "BucketedStrategy: snapshot bucket out of range");
        if (restored.count(id) != 0)
            throw std::invalid_argument("BucketedStrategy: duplicate snapshot bucket");
        auto inner = factory_();
        inner->reset(choices_);
        inner->restore_state(in);
        restored.emplace(id, std::move(inner));
    }
    buckets_ = std::move(restored);
    last_bucket_ = last;
}

} // namespace atk

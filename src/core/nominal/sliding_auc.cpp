#include "core/nominal/sliding_auc.hpp"

#include <stdexcept>

namespace atk {

SlidingWindowAuc::SlidingWindowAuc(std::size_t window_size) : window_size_(window_size) {
    if (window_size == 0)
        throw std::invalid_argument("SlidingWindowAuc: window must hold >= 1 sample");
}

double SlidingWindowAuc::weight_of(std::size_t choice) const {
    const auto& all = samples(choice);
    const std::size_t first = all.size() > window_size_ ? all.size() - window_size_ : 0;
    double area = 0.0;
    for (std::size_t i = first; i < all.size(); ++i) area += 1.0 / all[i].cost;
    return area / static_cast<double>(all.size() - first);
}

} // namespace atk

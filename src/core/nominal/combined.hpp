#pragma once

#include <memory>

#include "core/nominal/gradient_weighted.hpp"
#include "core/nominal/strategy.hpp"

namespace atk {

/// The combination the paper's Section IV-C anticipates as future work:
/// ε-Greedy convergence speed with Gradient-Weighted crossover detection.
///
/// With probability 1-ε the strategy exploits the best-known algorithm,
/// exactly like ε-Greedy.  The ε exploration mass, however, is not spread
/// uniformly but proportionally to the Gradient-Weighted weights, so
/// exploration prefers algorithms whose phase-one tuning is still making
/// progress — the ones that could overtake the current best.  When all
/// gradients are flat the exploration term degenerates to uniform and the
/// strategy behaves exactly like classic ε-Greedy.
class GradientGreedy final : public NominalStrategy {
public:
    GradientGreedy(double epsilon = 0.10, std::size_t window_size = 16);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] double epsilon() const noexcept { return epsilon_; }

    void reset(std::size_t choices) override;
    std::size_t select(Rng& rng) override;
    void report(std::size_t choice, Cost cost) override;
    [[nodiscard]] std::vector<double> weights() const override;
    void save_state(StateWriter& out) const override;
    void restore_state(StateReader& in) override;

private:
    [[nodiscard]] std::size_t best_choice() const;

    double epsilon_;
    GradientWeighted gradient_;         // supplies the exploration weights
    std::vector<Cost> best_cost_;
    std::size_t init_cursor_ = 0;
    bool exploring_ = false;
};

/// ε-Greedy with a decaying exploration rate: ε_i = ε0 / (1 + i·rate).
///
/// Online tuning must amortize the cost of exploration (paper Section
/// II-B); once the tuning of all algorithms has converged, continued
/// uniform exploration is pure overhead.  Decay schedules are the standard
/// bandit remedy, at the price of slower reaction to late crossovers.
class DecayingEpsilonGreedy final : public NominalStrategy {
public:
    DecayingEpsilonGreedy(double initial_epsilon = 0.20, double decay_rate = 0.02);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] double current_epsilon() const noexcept;

    void reset(std::size_t choices) override;
    std::size_t select(Rng& rng) override;
    void report(std::size_t choice, Cost cost) override;
    [[nodiscard]] std::vector<double> weights() const override;
    void save_state(StateWriter& out) const override;
    void restore_state(StateReader& in) override;

private:
    [[nodiscard]] std::size_t best_choice() const;

    double initial_epsilon_;
    double decay_rate_;
    std::vector<Cost> best_cost_;
    std::size_t init_cursor_ = 0;
    std::size_t iteration_ = 0;
    bool exploring_ = false;
};

} // namespace atk

#pragma once

#include <cstddef>
#include <vector>

#include "core/nominal/strategy.hpp"

namespace atk {

/// Online contextual bandit over the algorithmic choice: disjoint-arm
/// LinUCB (Li et al., "A Contextual-Bandit Approach to Personalized News
/// Article Recommendation") specialized to cost minimization.
///
/// Each arm a keeps a ridge regression of observed cost against the input
/// features x (plus a bias term): A_a = ridge·I + Σ x xᵀ, b_a = Σ cost·x,
/// θ_a = A_a⁻¹ b_a.  select() picks the arm with the smallest *lower*
/// confidence bound  θ_aᵀx − alpha·√(xᵀA_a⁻¹x)  — optimism under
/// uncertainty, mirrored for minimization.  An untried arm's bound is
/// −alpha·√(xᵀA⁻¹x) < 0 < any real cost, so every arm is tried before the
/// model is trusted.
///
/// This is the online answer to the offline FeatureModel baseline (paper
/// Section II-B): it learns the feature→algorithm map *during* the run,
/// needs no training phase, and keeps adapting when the workload leaves
/// the distribution any offline model was fitted on.
///
/// An ε exploration floor keeps the paper's no-exclusion invariant honest:
/// every arm retains a genuinely positive selection probability at every
/// decision, so a drifting cost surface can always be re-detected.
class LinUcb final : public NominalStrategy {
public:
    /// `dimension` = number of input features consumed (shorter feature
    /// vectors are zero-padded, longer ones truncated; a bias term is
    /// always appended internally).  `alpha` scales the confidence bonus,
    /// `ridge` the regularization, `epsilon` the uniform exploration floor.
    /// `gamma` < 1 selects the discounted variant (D-LinUCB, Russac et
    /// al.): every report decays all arms' statistics toward the ridge
    /// prior, so stale estimates fade and a drifting cost surface is
    /// re-detected instead of being pinned by early history.  γ = 1 is the
    /// classic stationary bandit.
    explicit LinUcb(std::size_t dimension, double alpha = 1.0,
                    double ridge = 1.0, double epsilon = 0.02,
                    double gamma = 1.0);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }
    [[nodiscard]] double alpha() const noexcept { return alpha_; }
    [[nodiscard]] double epsilon() const noexcept { return epsilon_; }
    [[nodiscard]] double gamma() const noexcept { return gamma_; }

    void reset(std::size_t choices) override;
    std::size_t select(Rng& rng) override;
    std::size_t select(Rng& rng, const FeatureVector& features) override;
    void report(std::size_t choice, Cost cost) override;
    void report(std::size_t choice, Cost cost,
                const FeatureVector& features) override;

    /// ε/n exploration floor plus (1−ε) distributed by a softmax over the
    /// negated arm scores of the most recent select() — strictly positive
    /// everywhere, and peaked on the arm the model currently believes in.
    [[nodiscard]] std::vector<double> weights() const override;

    [[nodiscard]] bool contextual() const noexcept override { return true; }
    [[nodiscard]] bool last_select_explored() const noexcept override {
        return exploring_;
    }

    /// Per-arm lower-confidence-bound scores of the most recent select()
    /// (smaller = more attractive); what explain() renders as UCB terms.
    [[nodiscard]] std::vector<double> last_scores() const override {
        return last_scores_;
    }

    /// Persists every arm's A matrix, b vector and pull count plus the
    /// last-decision diagnostics; weights() round-trips bit-exactly.
    void save_state(StateWriter& out) const override;
    void restore_state(StateReader& in) override;

private:
    struct Arm {
        std::vector<double> a;  ///< (dim+1)² ridge Gram matrix, row-major
        std::vector<double> b;  ///< dim+1 response vector
        std::size_t pulls = 0;
    };

    [[nodiscard]] std::size_t padded() const noexcept { return dimension_ + 1; }
    [[nodiscard]] std::vector<double> embed(const FeatureVector& features) const;
    void score_arms(const std::vector<double>& x);

    std::size_t dimension_;
    double alpha_;
    double ridge_;
    double epsilon_;
    double gamma_;
    std::vector<Arm> arms_;
    std::vector<double> last_scores_;
    bool exploring_ = false;
};

} // namespace atk

#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "core/nominal/strategy.hpp"

namespace atk {

/// Maps a feature vector to a discrete bucket id via per-dimension sorted
/// edge lists (mixed-radix over the per-dimension intervals).  A dimension
/// with edges {e0 < e1 < ...} splits into len+1 intervals:
/// (-inf, e0], (e0, e1], ..., (e_last, +inf).  Missing or non-finite
/// feature entries count as 0.  A default-constructed bucketizer has no
/// edges and maps everything to bucket 0.
class FeatureBucketizer {
public:
    FeatureBucketizer() = default;

    /// `edges[d]` are the cut points for feature dimension d; each list
    /// must be strictly increasing (throws std::invalid_argument otherwise).
    explicit FeatureBucketizer(std::vector<std::vector<double>> edges);

    [[nodiscard]] std::size_t bucket_count() const noexcept;
    [[nodiscard]] std::size_t bucket_of(const FeatureVector& features) const;
    [[nodiscard]] const std::vector<std::vector<double>>& edges() const noexcept {
        return edges_;
    }

private:
    std::vector<std::vector<double>> edges_;
};

/// Per-feature-bucket phase-two wrapper: partitions the context space with
/// a FeatureBucketizer and runs an independent instance of the wrapped
/// strategy inside every bucket.  This is the cheapest road from a
/// context-blind strategy to a contextual one — ε-Greedy that keeps a
/// separate best-ever table per input-size regime no longer forgets the
/// small-input winner when the large inputs arrive (the sweep scenario's
/// standing failure mode).
///
/// Inner instances are created lazily on the first decision or report that
/// lands in their bucket, with no RNG involved, so instantiation order
/// cannot perturb determinism.  Snapshots persist exactly the instantiated
/// buckets.
class BucketedStrategy final : public NominalStrategy {
public:
    using InnerFactory = std::function<std::unique_ptr<NominalStrategy>()>;

    /// `factory` builds one identically-configured inner strategy per
    /// bucket (must be deterministic and never return nullptr).
    BucketedStrategy(InnerFactory factory, FeatureBucketizer bucketizer);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] const FeatureBucketizer& bucketizer() const noexcept {
        return bucketizer_;
    }
    /// Buckets that have actually been instantiated so far.
    [[nodiscard]] std::size_t active_buckets() const noexcept {
        return buckets_.size();
    }

    void reset(std::size_t choices) override;
    std::size_t select(Rng& rng) override;
    std::size_t select(Rng& rng, const FeatureVector& features) override;
    void report(std::size_t choice, Cost cost) override;
    void report(std::size_t choice, Cost cost,
                const FeatureVector& features) override;

    /// The current bucket's inner weights (uniform before any decision).
    [[nodiscard]] std::vector<double> weights() const override;

    [[nodiscard]] bool contextual() const noexcept override { return true; }
    [[nodiscard]] bool last_select_explored() const noexcept override;
    [[nodiscard]] std::vector<double> last_scores() const override;

    /// Persists the set of instantiated buckets (id + inner state) and the
    /// current bucket cursor.
    void save_state(StateWriter& out) const override;
    void restore_state(StateReader& in) override;

private:
    [[nodiscard]] NominalStrategy& bucket(std::size_t id);
    [[nodiscard]] const NominalStrategy* current() const;

    InnerFactory factory_;
    FeatureBucketizer bucketizer_;
    std::string inner_name_;
    std::size_t choices_ = 0;
    std::map<std::size_t, std::unique_ptr<NominalStrategy>> buckets_;
    std::size_t last_bucket_ = 0;
};

} // namespace atk

#include "core/nominal/linucb.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "core/invariants.hpp"
#include "core/state_io.hpp"

namespace atk {

namespace {

/// Solves A·y = rhs for the small (dim ≤ ~10) SPD ridge Gram matrices this
/// strategy builds, via Gaussian elimination with partial pivoting on a
/// copy.  A (near-)singular system — only reachable through a corrupted
/// snapshot, since ridge > 0 keeps live matrices positive definite —
/// degrades to the zero vector instead of dividing by zero.
std::vector<double> solve(std::vector<double> a, std::vector<double> rhs) {
    const std::size_t n = rhs.size();
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < n; ++row)
            if (std::fabs(a[row * n + col]) > std::fabs(a[pivot * n + col]))
                pivot = row;
        if (std::fabs(a[pivot * n + col]) < 1e-300)
            return std::vector<double>(n, 0.0);
        if (pivot != col) {
            for (std::size_t k = col; k < n; ++k)
                std::swap(a[col * n + k], a[pivot * n + k]);
            std::swap(rhs[col], rhs[pivot]);
        }
        for (std::size_t row = col + 1; row < n; ++row) {
            const double factor = a[row * n + col] / a[col * n + col];
            if (factor == 0.0) continue;
            for (std::size_t k = col; k < n; ++k)
                a[row * n + k] -= factor * a[col * n + k];
            rhs[row] -= factor * rhs[col];
        }
    }
    std::vector<double> y(n, 0.0);
    for (std::size_t row = n; row-- > 0;) {
        double sum = rhs[row];
        for (std::size_t k = row + 1; k < n; ++k) sum -= a[row * n + k] * y[k];
        y[row] = sum / a[row * n + row];
    }
    return y;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
    return sum;
}

} // namespace

LinUcb::LinUcb(std::size_t dimension, double alpha, double ridge, double epsilon,
               double gamma)
    : dimension_(dimension), alpha_(alpha), ridge_(ridge), epsilon_(epsilon),
      gamma_(gamma) {
    if (!(alpha >= 0.0) || !std::isfinite(alpha))
        throw std::invalid_argument("LinUcb: alpha must be finite and >= 0");
    if (!(ridge > 0.0) || !std::isfinite(ridge))
        throw std::invalid_argument("LinUcb: ridge must be finite and > 0");
    if (epsilon < 0.0 || epsilon > 1.0)
        throw std::invalid_argument("LinUcb: epsilon must be in [0, 1]");
    if (!(gamma > 0.0) || gamma > 1.0)
        throw std::invalid_argument("LinUcb: gamma must be in (0, 1]");
}

std::string LinUcb::name() const {
    char buf[96];
    if (gamma_ < 1.0) {
        std::snprintf(buf, sizeof buf, "LinUCB (d=%zu, a=%g, e=%g%%, g=%g)",
                      dimension_, alpha_, epsilon_ * 100.0, gamma_);
    } else {
        std::snprintf(buf, sizeof buf, "LinUCB (d=%zu, a=%g, e=%g%%)", dimension_,
                      alpha_, epsilon_ * 100.0);
    }
    return buf;
}

void LinUcb::reset(std::size_t choices) {
    if (choices == 0) throw std::invalid_argument("LinUcb: need at least one choice");
    const std::size_t d = padded();
    arms_.assign(choices, Arm{});
    for (auto& arm : arms_) {
        arm.a.assign(d * d, 0.0);
        for (std::size_t i = 0; i < d; ++i) arm.a[i * d + i] = ridge_;
        arm.b.assign(d, 0.0);
    }
    last_scores_.clear();
    exploring_ = false;
}

std::vector<double> LinUcb::embed(const FeatureVector& features) const {
    std::vector<double> x(padded(), 0.0);
    x[0] = 1.0;  // bias: an all-zero context still trains the intercept
    for (std::size_t i = 0; i < dimension_; ++i) {
        const double value = i < features.size() ? features[i] : 0.0;
        x[i + 1] = std::isfinite(value) ? value : 0.0;
    }
    return x;
}

void LinUcb::score_arms(const std::vector<double>& x) {
    last_scores_.assign(arms_.size(), 0.0);
    for (std::size_t c = 0; c < arms_.size(); ++c) {
        const Arm& arm = arms_[c];
        const std::vector<double> theta = solve(arm.a, arm.b);
        const std::vector<double> inv_x = solve(arm.a, x);
        const double variance = std::max(0.0, dot(x, inv_x));
        // Lower confidence bound: predicted cost minus the optimism bonus.
        last_scores_[c] = dot(theta, x) - alpha_ * std::sqrt(variance);
    }
}

std::size_t LinUcb::select(Rng& rng) { return select(rng, FeatureVector{}); }

std::size_t LinUcb::select(Rng& rng, const FeatureVector& features) {
    if (arms_.empty()) throw std::logic_error("LinUcb: select() before reset()");
    score_arms(embed(features));
    exploring_ = rng.chance(epsilon_);
    if (exploring_) return rng.index(arms_.size());
    std::size_t best = 0;
    for (std::size_t c = 1; c < arms_.size(); ++c)
        if (last_scores_[c] < last_scores_[best]) best = c;
    return best;
}

void LinUcb::report(std::size_t choice, Cost cost) {
    report(choice, cost, FeatureVector{});
}

void LinUcb::report(std::size_t choice, Cost cost,
                    const FeatureVector& features) {
    Arm& chosen = arms_.at(choice);
    const std::vector<double> x = embed(features);
    const std::size_t d = padded();
    if (gamma_ < 1.0) {
        // Discounted variant: one global decay step per report, every arm.
        // The Gram matrix relaxes toward the ridge prior and the response
        // vector toward zero, so an arm that stops being played drifts back
        // to "unknown" (θ→0, variance up) and gets re-explored — the
        // mechanism that re-detects a shifted cost surface.
        for (Arm& arm : arms_) {
            for (std::size_t i = 0; i < d; ++i) {
                for (std::size_t j = 0; j < d; ++j) {
                    const double prior = i == j ? ridge_ : 0.0;
                    arm.a[i * d + j] =
                        prior + gamma_ * (arm.a[i * d + j] - prior);
                }
                arm.b[i] *= gamma_;
            }
        }
    }
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j < d; ++j) chosen.a[i * d + j] += x[i] * x[j];
        chosen.b[i] += cost * x[i];
    }
    ++chosen.pulls;
}

std::vector<double> LinUcb::weights() const {
    const std::size_t n = arms_.size();
    std::vector<double> w(n, 1.0 / static_cast<double>(n));
    if (last_scores_.size() != n) return w;  // before the first select()
    // Softmax over negated scores, shifted so the best arm's exponent is 0
    // and clamped so no arm's mass underflows to zero — the no-exclusion
    // invariant must hold in the weights as well as in the ε floor.
    const double best = *std::min_element(last_scores_.begin(), last_scores_.end());
    double mass = 0.0;
    std::vector<double> soft(n, 0.0);
    for (std::size_t c = 0; c < n; ++c) {
        const double exponent = std::max(-30.0, best - last_scores_[c]);
        soft[c] = std::exp(exponent);
        mass += soft[c];
    }
    const double floor = epsilon_ / static_cast<double>(n);
    for (std::size_t c = 0; c < n; ++c)
        w[c] = floor + (1.0 - epsilon_) * soft[c] / mass;
    invariants::check_selection_distribution(w);
    return w;
}

void LinUcb::save_state(StateWriter& out) const {
    const std::size_t d = padded();
    out.put_u64(arms_.size());
    out.put_u64(d);
    out.put_u64(exploring_ ? 1 : 0);
    out.put_u64(last_scores_.size());
    for (const double score : last_scores_) out.put_f64(score);
    for (const Arm& arm : arms_) {
        out.put_u64(arm.pulls);
        for (const double value : arm.a) out.put_f64(value);
        for (const double value : arm.b) out.put_f64(value);
    }
}

void LinUcb::restore_state(StateReader& in) {
    const std::size_t d = padded();
    if (in.get_u64() != arms_.size())
        throw std::invalid_argument("LinUcb: snapshot choice count mismatch");
    if (in.get_u64() != d)
        throw std::invalid_argument("LinUcb: snapshot dimension mismatch");
    exploring_ = in.get_u64() != 0;
    const std::uint64_t score_count = in.get_u64();
    if (score_count != 0 && score_count != arms_.size())
        throw std::invalid_argument("LinUcb: snapshot score count mismatch");
    last_scores_.assign(score_count, 0.0);
    for (auto& score : last_scores_) {
        score = in.get_f64();
        if (!std::isfinite(score))
            throw std::invalid_argument("LinUcb: snapshot score not finite");
    }
    for (Arm& arm : arms_) {
        arm.pulls = static_cast<std::size_t>(in.get_u64());
        for (auto& value : arm.a) {
            value = in.get_f64();
            if (!std::isfinite(value))
                throw std::invalid_argument("LinUcb: snapshot matrix not finite");
        }
        for (auto& value : arm.b) {
            value = in.get_f64();
            if (!std::isfinite(value))
                throw std::invalid_argument("LinUcb: snapshot vector not finite");
        }
    }
}

} // namespace atk

#include "core/nominal/optimum_weighted.hpp"

#include <algorithm>

namespace atk {

double OptimumWeighted::weight_of(std::size_t choice) const {
    double best_inverse = 0.0;
    for (const auto& sample : samples(choice))
        best_inverse = std::max(best_inverse, 1.0 / sample.cost);
    return best_inverse;
}

} // namespace atk

#include "core/nominal/epsilon_greedy.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <stdexcept>

#include "core/invariants.hpp"
#include "core/state_io.hpp"

namespace atk {

EpsilonGreedy::EpsilonGreedy(double epsilon, std::size_t best_window)
    : epsilon_(epsilon), best_window_(best_window) {
    if (epsilon < 0.0 || epsilon > 1.0)
        throw std::invalid_argument("EpsilonGreedy: epsilon must be in [0, 1]");
}

std::string EpsilonGreedy::name() const {
    char buf[64];
    if (best_window_ == 0) {
        std::snprintf(buf, sizeof buf, "e-Greedy (%g%%)", epsilon_ * 100.0);
    } else {
        std::snprintf(buf, sizeof buf, "e-Greedy (%g%%, w=%zu)", epsilon_ * 100.0,
                      best_window_);
    }
    return buf;
}

void EpsilonGreedy::reset(std::size_t choices) {
    if (choices == 0) throw std::invalid_argument("EpsilonGreedy: need at least one choice");
    best_cost_.assign(choices, std::numeric_limits<Cost>::infinity());
    recent_.assign(choices, {});
    recent_next_.assign(choices, 0);
    tried_.assign(choices, false);
    init_cursor_ = 0;
    exploring_ = false;
}

bool EpsilonGreedy::initializing() const noexcept {
    return init_cursor_ < tried_.size();
}

Cost EpsilonGreedy::best_estimate(std::size_t choice) const {
    if (best_window_ == 0) return best_cost_[choice];
    const auto& ring = recent_[choice];
    if (ring.empty()) return std::numeric_limits<Cost>::infinity();
    return *std::min_element(ring.begin(), ring.end());
}

std::size_t EpsilonGreedy::best_choice() const {
    std::size_t best = 0;
    Cost best_cost = std::numeric_limits<Cost>::infinity();
    for (std::size_t c = 0; c < tried_.size(); ++c) {
        const Cost estimate = best_estimate(c);
        if (estimate < best_cost) {
            best_cost = estimate;
            best = c;
        }
    }
    return best;
}

std::size_t EpsilonGreedy::select(Rng& rng) {
    if (tried_.empty()) throw std::logic_error("EpsilonGreedy: select() before reset()");
    exploring_ = rng.chance(epsilon_);
    if (exploring_) return rng.index(tried_.size());
    if (initializing()) return init_cursor_;
    return best_choice();
}

void EpsilonGreedy::report(std::size_t choice, Cost cost) {
    best_cost_.at(choice) = std::min(best_cost_.at(choice), cost);
    if (best_window_ > 0) {
        auto& ring = recent_.at(choice);
        if (ring.size() < best_window_) {
            ring.push_back(cost);
        } else {
            ring[recent_next_[choice]] = cost;
            recent_next_[choice] = (recent_next_[choice] + 1) % best_window_;
        }
    }
    tried_.at(choice) = true;
    // The deterministic initialization order advances only when its own pick
    // was executed, so every algorithm is tried (at least) once in order.
    if (!exploring_ && initializing() && choice == init_cursor_) ++init_cursor_;
}

void EpsilonGreedy::save_state(StateWriter& out) const {
    out.put_u64(tried_.size());
    out.put_u64(init_cursor_);
    out.put_u64(exploring_ ? 1 : 0);
    for (std::size_t c = 0; c < tried_.size(); ++c) {
        out.put_u64(tried_[c] ? 1 : 0);
        out.put_f64(best_cost_[c]);
        out.put_u64(recent_next_[c]);
        out.put_u64(recent_[c].size());
        for (const Cost cost : recent_[c]) out.put_f64(cost);
    }
}

void EpsilonGreedy::restore_state(StateReader& in) {
    const std::uint64_t choices = in.get_u64();
    if (choices != tried_.size())
        throw std::invalid_argument("EpsilonGreedy: snapshot choice count mismatch");
    init_cursor_ = static_cast<std::size_t>(in.get_u64());
    exploring_ = in.get_u64() != 0;
    for (std::size_t c = 0; c < tried_.size(); ++c) {
        tried_[c] = in.get_u64() != 0;
        best_cost_[c] = in.get_f64();
        recent_next_[c] = static_cast<std::size_t>(in.get_u64());
        // The ring cursor indexes recent_[c] once the ring is full; a corrupt
        // cursor would be an out-of-bounds write on the next report().
        if (best_window_ > 0 && recent_next_[c] >= best_window_)
            throw std::invalid_argument("EpsilonGreedy: snapshot ring cursor out of range");
        const std::uint64_t ring_size = in.get_u64();
        if (ring_size > best_window_)
            throw std::invalid_argument("EpsilonGreedy: snapshot window mismatch");
        recent_[c].assign(ring_size, 0.0);
        for (auto& cost : recent_[c]) cost = in.get_f64();
    }
}

std::vector<double> EpsilonGreedy::weights() const {
    const std::size_t n = tried_.size();
    std::vector<double> w(n, epsilon_ / static_cast<double>(n));
    const std::size_t greedy = initializing() ? init_cursor_ : best_choice();
    w[greedy] += 1.0 - epsilon_;
    // ε-Greedy weights ARE the selection probabilities: ε/n everywhere plus
    // the greedy mass — they must already be normalized.
    invariants::check_selection_distribution(w);
    return w;
}

} // namespace atk

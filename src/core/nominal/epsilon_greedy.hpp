#pragma once

#include <vector>

#include "core/nominal/strategy.hpp"

namespace atk {

/// The ε-Greedy strategy (paper Section III-A).
///
/// With probability 1-ε selects the currently best performing algorithm
/// (smallest observed cost); otherwise explores an algorithm uniformly at
/// random.  Initialization tries every algorithm exactly once in
/// deterministic order — "although this is still subject to the
/// ε-randomness" — which is visible as the staircase in the first |𝒜|
/// samples of the paper's Figure 2.
///
/// The paper evaluates ε ∈ {5 %, 10 %, 20 %}.
class EpsilonGreedy final : public NominalStrategy {
public:
    /// `best_window` controls the "currently best performing" estimate:
    /// 0 (the paper's behavior) means the best cost *ever* observed per
    /// algorithm; a positive value restricts the estimate to each
    /// algorithm's most recent `best_window` samples, which lets the
    /// strategy adapt when the context K changes mid-run (input size,
    /// system load) and stale best-ever values would otherwise pin the
    /// greedy arm forever.
    explicit EpsilonGreedy(double epsilon, std::size_t best_window = 0);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] double epsilon() const noexcept { return epsilon_; }
    [[nodiscard]] std::size_t best_window() const noexcept { return best_window_; }

    void reset(std::size_t choices) override;
    std::size_t select(Rng& rng) override;
    void report(std::size_t choice, Cost cost) override;

    /// 1-ε mass on the current best (split over ties), ε spread uniformly.
    [[nodiscard]] std::vector<double> weights() const override;

    /// Persists the per-choice best estimates, recency rings and the
    /// initialization cursor (everything select() depends on).
    void save_state(StateWriter& out) const override;
    void restore_state(StateReader& in) override;

    /// True while the deterministic round-robin initialization is running.
    [[nodiscard]] bool initializing() const noexcept;

    /// Whether the last select() took the ε branch (uniform exploration).
    [[nodiscard]] bool last_select_explored() const noexcept override {
        return exploring_;
    }

private:
    [[nodiscard]] std::size_t best_choice() const;
    [[nodiscard]] Cost best_estimate(std::size_t choice) const;

    double epsilon_;
    std::size_t best_window_;
    std::vector<Cost> best_cost_;               // best-ever (window == 0)
    std::vector<std::vector<Cost>> recent_;     // ring buffers (window > 0)
    std::vector<std::size_t> recent_next_;      // ring cursor per choice
    std::vector<bool> tried_;     // visited during initialization
    std::size_t init_cursor_ = 0; // next algorithm in the deterministic order
    bool exploring_ = false;      // did the last select() take the ε branch?
};

} // namespace atk

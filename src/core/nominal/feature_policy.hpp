#pragma once

#include <cstddef>
#include <vector>

#include "core/feature_model.hpp"
#include "core/nominal/strategy.hpp"

namespace atk {

/// The offline baseline as a phase-two strategy: wraps a trained
/// FeatureModel (paper Section II-B, the Nitro/PetaBricks philosophy) and
/// always plays whatever algorithm the model predicts for the current
/// features.  It never learns online — report() is a no-op — which makes
/// it exactly the contender the three-way race needs: instant on inputs it
/// was trained for, blind to everything its training distribution missed.
///
/// weights() carries a small ε floor so the audit-trail invariant (every
/// algorithm keeps positive mass) holds even though the policy itself is
/// deterministic.
class FeatureModelPolicy final : public NominalStrategy {
public:
    /// `model` must be trained (at least one sample); throws otherwise.
    explicit FeatureModelPolicy(FeatureModel model, double floor = 0.02);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] const FeatureModel& model() const noexcept { return model_; }

    void reset(std::size_t choices) override;
    std::size_t select(Rng& rng) override;
    std::size_t select(Rng& rng, const FeatureVector& features) override;
    void report(std::size_t, Cost) override {}  // offline: never learns

    /// 1−ε mass on the predicted algorithm, ε spread uniformly.
    [[nodiscard]] std::vector<double> weights() const override;

    [[nodiscard]] bool contextual() const noexcept override { return true; }

    /// Persists the last prediction (what weights() reflects); the model
    /// itself is construction state and is not serialized.
    void save_state(StateWriter& out) const override;
    void restore_state(StateReader& in) override;

private:
    FeatureModel model_;
    double floor_;
    std::size_t choices_ = 0;
    std::size_t last_choice_ = 0;
};

} // namespace atk

#include "core/nominal/feature_policy.hpp"

#include <cmath>
#include <stdexcept>

#include "core/invariants.hpp"
#include "core/state_io.hpp"

namespace atk {

FeatureModelPolicy::FeatureModelPolicy(FeatureModel model, double floor)
    : model_(std::move(model)), floor_(floor) {
    if (model_.sample_count() == 0)
        throw std::invalid_argument("FeatureModelPolicy: model is untrained");
    // Strictly positive: the no-exclusion invariant is checked on weights(),
    // so even this deterministic policy must leave mass on every arm.
    if (!(floor > 0.0) || floor >= 1.0)
        throw std::invalid_argument("FeatureModelPolicy: floor must be in (0, 1)");
}

std::string FeatureModelPolicy::name() const { return "FeatureModel policy"; }

void FeatureModelPolicy::reset(std::size_t choices) {
    if (choices == 0)
        throw std::invalid_argument("FeatureModelPolicy: need at least one choice");
    choices_ = choices;
    last_choice_ = 0;
}

std::size_t FeatureModelPolicy::select(Rng& rng) {
    return select(rng, FeatureVector{});
}

std::size_t FeatureModelPolicy::select(Rng&, const FeatureVector& features) {
    if (choices_ == 0)
        throw std::logic_error("FeatureModelPolicy: select() before reset()");
    // The model has a fixed training dimensionality; pad or truncate the
    // incoming context so an off-shape vector degrades instead of throwing.
    FeatureVector query(model_.dimension(), 0.0);
    for (std::size_t i = 0; i < query.size() && i < features.size(); ++i)
        query[i] = std::isfinite(features[i]) ? features[i] : 0.0;
    const std::size_t predicted = model_.predict(query);
    // A model trained with more algorithms than this tuner has clamps to
    // the available range rather than crashing the decision loop.
    last_choice_ = predicted < choices_ ? predicted : choices_ - 1;
    return last_choice_;
}

std::vector<double> FeatureModelPolicy::weights() const {
    const std::size_t n = choices_;
    std::vector<double> w(n, floor_ / static_cast<double>(n));
    w[last_choice_] += 1.0 - floor_;
    invariants::check_selection_distribution(w);
    return w;
}

void FeatureModelPolicy::save_state(StateWriter& out) const {
    out.put_u64(last_choice_);
}

void FeatureModelPolicy::restore_state(StateReader& in) {
    const auto last = static_cast<std::size_t>(in.get_u64());
    if (last >= choices_)
        throw std::invalid_argument("FeatureModelPolicy: snapshot choice out of range");
    last_choice_ = last;
}

} // namespace atk

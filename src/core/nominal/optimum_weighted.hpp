#pragma once

#include "core/nominal/strategy.hpp"

namespace atk {

/// The Optimum-Weighted strategy (paper Section III-C).
///
/// Chooses algorithm A with probability relative to its best observed
/// performance: w_A = max_i 1/m_{A,i}.  The weight is strictly positive,
/// so no algorithm is ever excluded; algorithms whose best time is close to
/// the overall best are selected with nearly equal frequency — the effect
/// the paper observes in Figures 4 and 8.
class OptimumWeighted final : public WeightedStrategyBase {
public:
    [[nodiscard]] std::string name() const override { return "Optimum Weighted"; }

protected:
    [[nodiscard]] double weight_of(std::size_t choice) const override;
};

} // namespace atk

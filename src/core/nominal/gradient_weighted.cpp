#include "core/nominal/gradient_weighted.hpp"

#include <stdexcept>

namespace atk {

GradientWeighted::GradientWeighted(std::size_t window_size) : window_size_(window_size) {
    if (window_size < 2)
        throw std::invalid_argument("GradientWeighted: window must hold >= 2 samples");
}

double GradientWeighted::weight_of(std::size_t choice) const {
    const auto& all = samples(choice);
    double gradient = 0.0;
    if (all.size() >= 2) {
        const std::size_t first =
            all.size() > window_size_ ? all.size() - window_size_ : 0;
        const auto& s0 = all[first];
        const auto& s1 = all.back();
        const double span = static_cast<double>(s1.iteration - s0.iteration);
        if (span > 0.0) gradient = (1.0 / s1.cost - 1.0 / s0.cost) / span;
    }
    return gradient >= -1.0 ? gradient + 2.0 : -1.0 / gradient;
}

} // namespace atk

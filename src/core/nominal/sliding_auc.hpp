#pragma once

#include "core/nominal/strategy.hpp"

namespace atk {

/// The Sliding-Window Area-Under-The-Curve strategy (paper Section III-D),
/// motivated by the AUC Bandit meta-heuristic of OpenTuner.
///
/// The weight is the area under the algorithm's (inverse) performance curve
/// within a sliding window of its latest samples:
///
///     w_A = ( Σ_{i=i0}^{i1} m⁻¹_{A,i} ) / (i1 − i0)
///
/// i.e. the average inverse runtime over the window.  Like the other
/// weighted strategies, w_A > 0 always, and P_A = w_A / Σ w_{A'}.
class SlidingWindowAuc final : public WeightedStrategyBase {
public:
    /// The paper's case studies use a window size of 16.
    explicit SlidingWindowAuc(std::size_t window_size = 16);

    [[nodiscard]] std::string name() const override { return "Sliding-Window AUC"; }
    [[nodiscard]] std::size_t window_size() const noexcept { return window_size_; }

protected:
    [[nodiscard]] double weight_of(std::size_t choice) const override;

private:
    std::size_t window_size_;
};

} // namespace atk

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/measurement.hpp"
#include "support/rng.hpp"

namespace atk {

class StateWriter;
class StateReader;

/// Phase-two strategy: selects which algorithm A ∈ 𝒜 runs in each tuning
/// iteration (paper Section III).  The algorithmic choice is a Nominal
/// parameter — labels without order, distance or zero — so none of the
/// classic searchers apply; these strategies are the paper's contribution.
///
/// Protocol per tuning iteration i:
///   1. select() returns the chosen algorithm index;
///   2. the tuner runs that algorithm (with its phase-one configuration);
///   3. report() feeds back the measured cost m_{A,i}.
class NominalStrategy {
public:
    virtual ~NominalStrategy() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Prepares for `choices` alternatives (>= 1); clears all history.
    virtual void reset(std::size_t choices) = 0;

    /// Chooses the algorithm for this iteration.
    virtual std::size_t select(Rng& rng) = 0;

    /// Context-aware selection: chooses the algorithm given the input
    /// features of the workload about to run.  Context-blind strategies
    /// keep the default, which ignores the features — so the tuner can
    /// always pass whatever context it has without changing behaviour
    /// (or RNG consumption) of the classic strategies.
    virtual std::size_t select(Rng& rng, const FeatureVector& features) {
        (void)features;
        return select(rng);
    }

    /// Reports the cost observed for `choice` in the iteration it was selected.
    virtual void report(std::size_t choice, Cost cost) = 0;

    /// Context-aware report: the features `choice` was selected under.
    /// Context-blind strategies keep the default (drops the features).
    virtual void report(std::size_t choice, Cost cost,
                        const FeatureVector& features) {
        (void)features;
        report(choice, cost);
    }

    /// True for strategies whose decisions depend on the feature vector.
    /// Consumed by the audit trail (to know whether to record features)
    /// and by tests.
    [[nodiscard]] virtual bool contextual() const noexcept { return false; }

    /// Per-arm diagnostic scores behind the most recent select() — for
    /// LinUCB the lower-confidence-bound value of each arm (smaller is
    /// better).  Empty for strategies that do not score arms; consumed by
    /// the decision audit trail's explain().
    [[nodiscard]] virtual std::vector<double> last_scores() const { return {}; }

    /// Current selection weights (uniform for strategies without weights);
    /// exposed for tests and the bench harnesses. All entries are > 0 —
    /// the paper's invariant that no algorithm is ever excluded.
    [[nodiscard]] virtual std::vector<double> weights() const = 0;

    /// True when the most recent select() took an explicit exploration
    /// branch (ε-Greedy's ε-roll).  Strategies whose selection is inherently
    /// stochastic-weighted (Softmax, the weighted family) or deterministic
    /// keep the default `false`.  Consumed by the decision audit trail.
    [[nodiscard]] virtual bool last_select_explored() const noexcept { return false; }

    /// Serializes the strategy's mutable state (sample histories, cursors)
    /// so a runtime snapshot can warm-start a restarted process.  The
    /// default is empty: a strategy whose behaviour is fully determined by
    /// reset() (e.g. RandomChoice) has nothing to persist.  Configuration
    /// constants (ε, window sizes) are NOT serialized — they belong to
    /// construction, and save/restore must happen between identically
    /// constructed instances.
    virtual void save_state(StateWriter&) const {}

    /// Restores state written by save_state() on an identically constructed
    /// and reset() strategy.  Throws std::invalid_argument when the stream
    /// does not match this strategy's shape (e.g. different choice count).
    virtual void restore_state(StateReader&) {}
};

/// Shared bookkeeping for the weight-based strategies (Gradient-Weighted,
/// Optimum-Weighted, Sliding-Window AUC): a per-choice history of observed
/// costs, selection proportional to per-choice weights, and the paper's
/// convention that the very first iteration deterministically runs
/// algorithm 0 ("they start with a deterministic configuration").
///
/// Untried algorithms cannot have a data-derived weight; they optimistically
/// receive the maximum weight over the tried algorithms, which keeps every
/// weight strictly positive and guarantees eventual exploration.
class WeightedStrategyBase : public NominalStrategy {
public:
    void reset(std::size_t choices) override;
    std::size_t select(Rng& rng) override;
    void report(std::size_t choice, Cost cost) override;
    [[nodiscard]] std::vector<double> weights() const override;

    /// Persists the full per-choice sample history, which is what every
    /// weighted strategy derives its weights from — round-tripping it
    /// reproduces weights() exactly.
    void save_state(StateWriter& out) const override;
    void restore_state(StateReader& in) override;

protected:
    struct TimedSample {
        std::size_t iteration;  ///< global tuning iteration of the observation
        Cost cost;
    };

    /// Weight of one choice from its sample history; called only for
    /// choices with at least one sample. Must return a value > 0.
    [[nodiscard]] virtual double weight_of(std::size_t choice) const = 0;

    [[nodiscard]] const std::vector<TimedSample>& samples(std::size_t choice) const {
        return history_.at(choice);
    }
    [[nodiscard]] std::size_t choices() const noexcept { return history_.size(); }
    [[nodiscard]] std::size_t iterations() const noexcept { return iteration_; }

private:
    std::vector<std::vector<TimedSample>> history_;
    std::size_t iteration_ = 0;
};

/// Uniform random choice every iteration; the baseline a genetic algorithm
/// decays to when algorithmic choice is the single parameter (Section III-E).
class RandomChoice final : public NominalStrategy {
public:
    [[nodiscard]] std::string name() const override { return "Random"; }
    void reset(std::size_t choices) override;
    std::size_t select(Rng& rng) override;
    void report(std::size_t, Cost) override {}
    [[nodiscard]] std::vector<double> weights() const override;

private:
    std::size_t choices_ = 0;
};

/// Tries every algorithm once in order, then always exploits the best —
/// exhaustive search specialized to a purely nominal space (Section II-B).
class ExhaustiveChoice final : public NominalStrategy {
public:
    [[nodiscard]] std::string name() const override { return "Exhaustive"; }
    void reset(std::size_t choices) override;
    std::size_t select(Rng& rng) override;
    void report(std::size_t choice, Cost cost) override;
    [[nodiscard]] std::vector<double> weights() const override;
    void save_state(StateWriter& out) const override;
    void restore_state(StateReader& in) override;

private:
    std::vector<Cost> best_;
    std::size_t cursor_ = 0;
};

} // namespace atk

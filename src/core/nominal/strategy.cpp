#include "core/nominal/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/invariants.hpp"
#include "core/state_io.hpp"

namespace atk {

void WeightedStrategyBase::reset(std::size_t choices) {
    if (choices == 0)
        throw std::invalid_argument(name() + ": need at least one choice");
    history_.assign(choices, {});
    iteration_ = 0;
}

std::vector<double> WeightedStrategyBase::weights() const {
    std::vector<double> w(history_.size(), 0.0);
    double max_tried = 0.0;
    for (std::size_t c = 0; c < history_.size(); ++c) {
        if (!history_[c].empty()) {
            w[c] = weight_of(c);
            max_tried = std::max(max_tried, w[c]);
        }
    }
    // Optimistic initialization: untried choices get the largest tried
    // weight, or 1 when nothing has been tried yet. Keeps all weights > 0.
    const double untried = max_tried > 0.0 ? max_tried : 1.0;
    for (std::size_t c = 0; c < history_.size(); ++c)
        if (history_[c].empty()) w[c] = untried;
    invariants::check_weights_positive(w);
    return w;
}

std::size_t WeightedStrategyBase::select(Rng& rng) {
    if (history_.empty()) throw std::logic_error(name() + ": select() before reset()");
    if (iteration_ == 0) return 0;  // deterministic start, as in the paper
    const auto w = weights();
    invariants::check_selection_distribution(w);
    return rng.weighted_index(w);
}

void WeightedStrategyBase::report(std::size_t choice, Cost cost) {
    if (cost <= 0.0)
        throw std::invalid_argument(name() + ": cost must be positive (it is a runtime)");
    history_.at(choice).push_back(TimedSample{iteration_, cost});
    ++iteration_;
}

void WeightedStrategyBase::save_state(StateWriter& out) const {
    out.put_u64(iteration_);
    out.put_u64(history_.size());
    for (const auto& samples : history_) {
        out.put_u64(samples.size());
        for (const auto& sample : samples) {
            out.put_u64(sample.iteration);
            out.put_f64(sample.cost);
        }
    }
}

void WeightedStrategyBase::restore_state(StateReader& in) {
    const std::uint64_t iteration = in.get_u64();
    const std::uint64_t choices = in.get_u64();
    if (choices != history_.size())
        throw std::invalid_argument(name() + ": snapshot has " + std::to_string(choices) +
                                    " choices, strategy has " +
                                    std::to_string(history_.size()));
    for (auto& samples : history_) {
        samples.clear();
        const std::size_t count = in.get_count();
        samples.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) {
            TimedSample sample;
            sample.iteration = static_cast<std::size_t>(in.get_u64());
            sample.cost = in.get_f64();
            // Mirror report()'s preconditions on the untrusted payload: every
            // sample was a positive finite runtime recorded at a strictly
            // increasing iteration before the saved iteration counter.  The
            // weight formulas divide by these costs and iteration spans, so a
            // corrupt sample would surface as inf/NaN weights — violating the
            // strictly-positive-weights invariant — instead of a clean error.
            if (!std::isfinite(sample.cost) || sample.cost <= 0.0)
                throw std::invalid_argument(
                    name() + ": snapshot sample cost must be a positive runtime");
            if (!samples.empty() && sample.iteration <= samples.back().iteration)
                throw std::invalid_argument(
                    name() + ": snapshot sample iterations must increase");
            if (sample.iteration >= iteration)
                throw std::invalid_argument(
                    name() + ": snapshot sample beyond the iteration counter");
            samples.push_back(sample);
        }
    }
    iteration_ = static_cast<std::size_t>(iteration);
}

void RandomChoice::reset(std::size_t choices) {
    if (choices == 0) throw std::invalid_argument("RandomChoice: need at least one choice");
    choices_ = choices;
}

std::size_t RandomChoice::select(Rng& rng) {
    if (choices_ == 0) throw std::logic_error("RandomChoice: select() before reset()");
    return rng.index(choices_);
}

std::vector<double> RandomChoice::weights() const {
    return std::vector<double>(choices_, 1.0);
}

void ExhaustiveChoice::reset(std::size_t choices) {
    if (choices == 0) throw std::invalid_argument("ExhaustiveChoice: need at least one choice");
    best_.assign(choices, std::numeric_limits<Cost>::infinity());
    cursor_ = 0;
}

std::size_t ExhaustiveChoice::select(Rng&) {
    if (best_.empty()) throw std::logic_error("ExhaustiveChoice: select() before reset()");
    if (cursor_ < best_.size()) return cursor_;
    return static_cast<std::size_t>(
        std::min_element(best_.begin(), best_.end()) - best_.begin());
}

void ExhaustiveChoice::report(std::size_t choice, Cost cost) {
    best_.at(choice) = std::min(best_.at(choice), cost);
    if (cursor_ < best_.size() && choice == cursor_) ++cursor_;
}

std::vector<double> ExhaustiveChoice::weights() const {
    return std::vector<double>(best_.size(), 1.0);
}

void ExhaustiveChoice::save_state(StateWriter& out) const {
    out.put_u64(cursor_);
    out.put_u64(best_.size());
    for (const Cost cost : best_) out.put_f64(cost);
}

void ExhaustiveChoice::restore_state(StateReader& in) {
    const std::uint64_t cursor = in.get_u64();
    const std::uint64_t choices = in.get_u64();
    if (choices != best_.size())
        throw std::invalid_argument("ExhaustiveChoice: snapshot choice count mismatch");
    for (auto& cost : best_) cost = in.get_f64();
    cursor_ = static_cast<std::size_t>(cursor);
}

} // namespace atk

#include "core/nominal/softmax.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace atk {

Softmax::Softmax(double temperature) : temperature_(temperature) {
    if (temperature <= 0.0)
        throw std::invalid_argument("Softmax: temperature must be > 0");
}

std::string Softmax::name() const {
    char buf[32];
    std::snprintf(buf, sizeof buf, "Softmax (t=%g)", temperature_);
    return buf;
}

double Softmax::weight_of(std::size_t choice) const {
    // Normalize by the best inverse runtime over all tried algorithms so the
    // exponent is scale-free: the overall best algorithm has q = 1.
    double overall_best = 0.0;
    for (std::size_t c = 0; c < choices(); ++c)
        for (const auto& sample : samples(c))
            overall_best = std::max(overall_best, 1.0 / sample.cost);
    double my_best = 0.0;
    for (const auto& sample : samples(choice))
        my_best = std::max(my_best, 1.0 / sample.cost);
    const double q = overall_best > 0.0 ? my_best / overall_best : 0.0;
    return std::exp(q / temperature_);
}

} // namespace atk

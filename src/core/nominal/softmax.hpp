#pragma once

#include "core/nominal/strategy.hpp"

namespace atk {

/// Soft-max (Gibbs/Boltzmann) action selection, the Reinforcement-Learning
/// alternative to ε-Greedy the paper discusses in Section III-A.
///
/// The probability of choosing algorithm A is
///
///     P_A ∝ exp( q_A / τ ),   q_A = best observed inverse runtime of A
///                                   normalized to the overall best,
///
/// with temperature τ controlling exploration.  The paper deliberately does
/// NOT use it in the case studies — soft-max avoids bad actions, while the
/// two-phase tuner wants bad algorithms to keep getting (rare) chances so
/// phase-one tuning can improve them — but it is provided here as the
/// natural extension point and for the ablation benches.
class Softmax final : public WeightedStrategyBase {
public:
    explicit Softmax(double temperature = 0.2);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] double temperature() const noexcept { return temperature_; }

protected:
    [[nodiscard]] double weight_of(std::size_t choice) const override;

private:
    double temperature_;
};

} // namespace atk

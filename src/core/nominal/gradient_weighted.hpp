#pragma once

#include "core/nominal/strategy.hpp"

namespace atk {

/// The Gradient-Weighted strategy (paper Section III-B).
///
/// Chooses algorithm A with probability proportional to a weight derived
/// from the performance *gradient* over A's latest window of samples
/// [i0, i1]:
///
///     G_A = (m⁻¹_{A,i1} − m⁻¹_{A,i0}) / (i1 − i0)
///     w_A = G_A + 2      if G_A ≥ −1
///         = −1 / G_A     otherwise
///
/// Performance is interpreted inversely to the measured time (bigger is
/// better), so a *positive* gradient means the algorithm has been getting
/// faster — this strategy prefers algorithms that still make tuning
/// progress, which the paper proposes as a complement to ε-Greedy around
/// crossover points.  w_A is always positive, so no algorithm is excluded.
///
/// The window [i0, i1] spans the algorithm's own most recent `window_size`
/// samples; i0/i1 are the global tuning iterations at which those samples
/// were observed.  With fewer than two samples the gradient is defined as 0
/// (w = 2), which also reproduces the paper's observation that with no
/// tunable parameters (zero gradient everywhere) the strategy degenerates to
/// uniform random selection.
class GradientWeighted final : public WeightedStrategyBase {
public:
    /// The paper's case studies use an iteration window of 16.
    explicit GradientWeighted(std::size_t window_size = 16);

    [[nodiscard]] std::string name() const override { return "Gradient Weighted"; }
    [[nodiscard]] std::size_t window_size() const noexcept { return window_size_; }

protected:
    [[nodiscard]] double weight_of(std::size_t choice) const override;

private:
    std::size_t window_size_;
};

} // namespace atk

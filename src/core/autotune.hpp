#pragma once

/// Umbrella header for the algotune autotuning library: include this to get
/// the complete public API — parameter typology, search spaces, phase-one
/// searchers, phase-two nominal strategies, and the two-phase online tuner.

#include "core/cost_objective.hpp"
#include "core/feature_model.hpp"
#include "core/measurement.hpp"
#include "core/nominal/bucketed.hpp"
#include "core/nominal/combined.hpp"
#include "core/nominal/epsilon_greedy.hpp"
#include "core/nominal/feature_policy.hpp"
#include "core/nominal/gradient_weighted.hpp"
#include "core/nominal/linucb.hpp"
#include "core/nominal/optimum_weighted.hpp"
#include "core/nominal/sliding_auc.hpp"
#include "core/nominal/softmax.hpp"
#include "core/nominal/strategy.hpp"
#include "core/parameter.hpp"
#include "core/search/differential_evolution.hpp"
#include "core/search/exhaustive.hpp"
#include "core/search/genetic.hpp"
#include "core/search/hill_climbing.hpp"
#include "core/search/nelder_mead.hpp"
#include "core/search/particle_swarm.hpp"
#include "core/search/searcher.hpp"
#include "core/search/simulated_annealing.hpp"
#include "core/offline.hpp"
#include "core/search_space.hpp"
#include "core/state_io.hpp"
#include "core/trace.hpp"
#include "core/tuner.hpp"

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/parameter.hpp"
#include "support/rng.hpp"

namespace atk {

class SearchSpace;

/// A point in a search space: one value per parameter, in parameter order.
///
/// Configurations are plain value types; they do not hold a reference to
/// their space.  All space-dependent operations (validation, printing,
/// neighbor enumeration) live on SearchSpace.
class Configuration {
public:
    Configuration() = default;
    explicit Configuration(std::vector<std::int64_t> values)
        : values_(std::move(values)) {}

    [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
    [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

    [[nodiscard]] std::int64_t operator[](std::size_t i) const { return values_.at(i); }
    std::int64_t& operator[](std::size_t i) { return values_.at(i); }

    [[nodiscard]] const std::vector<std::int64_t>& values() const noexcept {
        return values_;
    }

    friend bool operator==(const Configuration&, const Configuration&) = default;

private:
    std::vector<std::int64_t> values_;
};

/// The cartesian product T = τ₀ × τ₁ × … × τ_{J-1} of tuning parameters, as
/// defined in the paper's Section II-A.  A space may be empty (J = 0), which
/// models algorithms without tunable parameters — the string matchers of
/// case study 1.
class SearchSpace {
public:
    SearchSpace() = default;

    /// Appends a parameter; names must be unique within the space.
    SearchSpace& add(Parameter param);

    [[nodiscard]] std::size_t dimension() const noexcept { return params_.size(); }
    [[nodiscard]] bool empty() const noexcept { return params_.empty(); }

    [[nodiscard]] const Parameter& param(std::size_t i) const { return params_.at(i); }
    [[nodiscard]] const std::vector<Parameter>& params() const noexcept { return params_; }

    /// Index of the parameter with the given name, if any.
    [[nodiscard]] std::optional<std::size_t> index_of(const std::string& name) const noexcept;

    /// Total number of configurations (product of parameter cardinalities);
    /// saturates at uint64 max. 1 for the empty space.
    [[nodiscard]] std::uint64_t cardinality() const noexcept;

    /// True if any parameter lacks an order (i.e. is Nominal).
    [[nodiscard]] bool has_nominal() const noexcept;
    /// True if every parameter has a distance (Interval or Ratio).
    [[nodiscard]] bool all_have_distance() const noexcept;
    /// True if every parameter has an order (no Nominal parameters).
    [[nodiscard]] bool all_have_order() const noexcept;

    /// True if the configuration has one valid value per parameter.
    [[nodiscard]] bool contains(const Configuration& config) const noexcept;

    /// Snaps every component to the nearest valid value.
    /// Throws std::invalid_argument on dimension mismatch.
    [[nodiscard]] Configuration clamp(Configuration config) const;

    /// Configuration with every parameter at its minimum value.
    [[nodiscard]] Configuration lowest() const;
    /// Configuration with every parameter at the midpoint of its domain.
    [[nodiscard]] Configuration midpoint() const;

    /// Uniformly random valid configuration.
    [[nodiscard]] Configuration random(Rng& rng) const;

    /// All lattice neighbors of `config`: for each *ordered* parameter, the
    /// value one step up and one step down (when in range).  Nominal
    /// parameters contribute no neighbors — they have no notion of
    /// adjacency, which is exactly why neighborhood-based searchers cannot
    /// manipulate them.
    [[nodiscard]] std::vector<Configuration> neighbors(const Configuration& config) const;

    /// Lexicographic successor over the value lattice, or nullopt when
    /// `config` is the last configuration. Basis of exhaustive search.
    [[nodiscard]] std::optional<Configuration> next_lexicographic(Configuration config) const;

    /// "name=value" list, using labels for labeled parameters.
    [[nodiscard]] std::string describe(const Configuration& config) const;

private:
    std::vector<Parameter> params_;
};

} // namespace atk

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "core/search_space.hpp"

namespace atk {

/// A measurement value m_K(C): the paper assumes time in milliseconds, but
/// any cost to be minimized works (energy, failure rate, ...).
using Cost = double;

/// Input features describing one tuning context K (paper Section II-B):
/// problem size, sparsity, alphabet size — whatever lets a context-aware
/// strategy tell workloads apart.  Empty means "no context": every
/// consumer treats a missing vector as context-blind operation.
using FeatureVector = std::vector<double>;

/// The measurement function m_K: T → R for a fixed context K. In online
/// tuning this is "run the operation with configuration C and time it"; in
/// tests it is a synthetic function.
using MeasurementFunction = std::function<Cost(const Configuration&)>;

/// One observed sample of the tuning loop.
struct Sample {
    std::size_t iteration = 0;
    Configuration config;
    Cost cost = 0.0;
};

/// Every per-operation cost one trial produced while holding a single
/// configuration — e.g. the per-block latencies of a streaming convolver —
/// plus the deadline each operation had to meet (0 = none).  A CostObjective
/// folds a batch into the scalar Cost the strategies and searchers consume;
/// a batch of one sample with no deadline is equivalent to a scalar report.
struct CostBatch {
    std::vector<double> samples;  ///< strictly positive per-operation costs
    double deadline = 0.0;        ///< per-operation budget in cost units
};

} // namespace atk

#pragma once

#include <cstddef>
#include <functional>

#include "core/search_space.hpp"

namespace atk {

/// A measurement value m_K(C): the paper assumes time in milliseconds, but
/// any cost to be minimized works (energy, failure rate, ...).
using Cost = double;

/// The measurement function m_K: T → R for a fixed context K. In online
/// tuning this is "run the operation with configuration C and time it"; in
/// tests it is a synthetic function.
using MeasurementFunction = std::function<Cost(const Configuration&)>;

/// One observed sample of the tuning loop.
struct Sample {
    std::size_t iteration = 0;
    Configuration config;
    Cost cost = 0.0;
};

} // namespace atk

#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/measurement.hpp"

namespace atk {

// FeatureVector — the workload description for input-sensitive algorithm
// selection (pattern length, matrix sparsity, ...) — lives in
// core/measurement.hpp so strategies can consume it without this header.

/// The state-of-the-art baseline the paper positions itself against:
/// an offline-trained input-feature classifier (k-nearest-neighbor over
/// normalized features, majority vote) that predicts the best algorithm
/// for an unseen input.
///
/// Strengths and weaknesses relative to the paper's online tuner are
/// exactly the published ones: the model adapts instantly to *input*
/// changes it was trained for, but needs an offline training phase, user
/// feature engineering, and cannot react to contexts outside its training
/// distribution — while the online tuner needs none of that but pays
/// exploration cost at runtime (benchmarked in
/// bench_baseline_feature_model).
class FeatureModel {
public:
    /// k = neighbors consulted for the majority vote.
    explicit FeatureModel(std::size_t k = 3);

    /// Adds one labeled training sample: for this feature vector,
    /// `algorithm` was (measured to be) the best choice.
    /// All samples must share the same dimensionality; throws otherwise.
    void add_sample(FeatureVector features, std::size_t algorithm);

    [[nodiscard]] std::size_t sample_count() const noexcept { return samples_.size(); }
    [[nodiscard]] std::size_t dimension() const noexcept { return dimension_; }

    /// Predicts the best algorithm for an unseen input.
    /// Throws std::logic_error when untrained or on dimension mismatch.
    [[nodiscard]] std::size_t predict(const FeatureVector& features) const;

    /// Leave-one-out training accuracy — a quick self-check that the
    /// features actually separate the labels.
    [[nodiscard]] double self_accuracy() const;

private:
    struct Sample {
        FeatureVector features;
        std::size_t algorithm;
    };

    [[nodiscard]] double distance(const FeatureVector& a, const FeatureVector& b) const;
    [[nodiscard]] std::size_t vote(const FeatureVector& features,
                                   std::size_t exclude_index) const;

    std::size_t k_;
    std::size_t dimension_ = 0;
    std::vector<Sample> samples_;
    // Per-dimension min/max for normalization, maintained incrementally.
    FeatureVector feature_min_;
    FeatureVector feature_max_;
};

/// One training workload: its features plus a way to run any algorithm on
/// it and obtain a cost.
struct TrainingWorkload {
    FeatureVector features;
    std::function<Cost(std::size_t algorithm)> measure;
};

/// Offline training à la Nitro: measures every algorithm on every training
/// workload (optionally multiple repetitions, best-of), labels each
/// workload with its fastest algorithm, and returns the fitted model.
[[nodiscard]] FeatureModel train_feature_model(
    const std::vector<TrainingWorkload>& workloads, std::size_t algorithm_count,
    std::size_t k = 3, std::size_t repetitions = 1);

} // namespace atk

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace atk {

/// Stevens' typology of scales, as used by the paper (Table I) to classify
/// tuning parameters.  Each class subsumes the properties of all previous
/// classes:
///
///   Nominal  — labels only                       (e.g. choice of algorithm)
///   Ordinal  — adds order                        (e.g. small/medium/large)
///   Interval — adds distance                     (e.g. % of a buffer size)
///   Ratio    — adds a natural zero               (e.g. number of threads)
enum class ParamClass : std::uint8_t { Nominal, Ordinal, Interval, Ratio };

/// Name of a parameter class ("Nominal", ...).
const char* to_string(ParamClass cls) noexcept;

/// One tunable parameter: a named, finite domain with a measurement class.
///
/// Values are represented as int64 throughout the tuner:
///  - Nominal/Ordinal parameters store a label index in [0, labels).
///  - Interval/Ratio parameters store the actual value in [min, max],
///    restricted to min + k*step.
///
/// The class predicates (has_order / has_distance / has_natural_zero) are
/// what the search strategies check: distance-based searchers such as
/// Nelder-Mead refuse spaces with parameters lacking distance, which is the
/// paper's central observation about why algorithmic choice needs dedicated
/// strategies.
class Parameter {
public:
    /// Unordered, label-only parameter (e.g. the algorithmic choice itself).
    static Parameter nominal(std::string name, std::vector<std::string> labels);

    /// Ordered labels without meaningful distances.
    static Parameter ordinal(std::string name, std::vector<std::string> ordered_labels);

    /// Numeric parameter with distances but no natural zero.
    static Parameter interval(std::string name, std::int64_t min, std::int64_t max,
                              std::int64_t step = 1);

    /// Numeric parameter with a natural zero (counts, sizes, thread numbers).
    static Parameter ratio(std::string name, std::int64_t min, std::int64_t max,
                           std::int64_t step = 1);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] ParamClass cls() const noexcept { return cls_; }

    [[nodiscard]] bool has_order() const noexcept { return cls_ != ParamClass::Nominal; }
    [[nodiscard]] bool has_distance() const noexcept {
        return cls_ == ParamClass::Interval || cls_ == ParamClass::Ratio;
    }
    [[nodiscard]] bool has_natural_zero() const noexcept {
        return cls_ == ParamClass::Ratio;
    }

    /// Smallest representable value (0 for labeled classes).
    [[nodiscard]] std::int64_t min_value() const noexcept { return min_; }
    /// Largest representable value (labels-1 for labeled classes).
    [[nodiscard]] std::int64_t max_value() const noexcept { return max_; }
    /// Lattice step between adjacent values (1 for labeled classes).
    [[nodiscard]] std::int64_t step() const noexcept { return step_; }

    /// Number of distinct values.
    [[nodiscard]] std::uint64_t cardinality() const noexcept;

    /// True if v lies in [min, max] and on the step lattice.
    [[nodiscard]] bool contains(std::int64_t v) const noexcept;

    /// Nearest valid value: clamps to [min, max] and snaps to the lattice.
    [[nodiscard]] std::int64_t clamp(std::int64_t v) const noexcept;

    /// Label text for a labeled parameter value; the numeral otherwise.
    [[nodiscard]] std::string label(std::int64_t v) const;

    /// Maps a valid value onto [0, 1] (requires has_distance()).
    [[nodiscard]] double to_unit(std::int64_t v) const;
    /// Maps u in [0, 1] (clamped) back onto the nearest valid value
    /// (requires has_distance()).
    [[nodiscard]] std::int64_t from_unit(double u) const;

private:
    Parameter(std::string name, ParamClass cls, std::int64_t min, std::int64_t max,
              std::int64_t step, std::vector<std::string> labels);

    std::string name_;
    ParamClass cls_;
    std::int64_t min_;
    std::int64_t max_;
    std::int64_t step_;
    std::vector<std::string> labels_;  // empty for numeric classes
};

} // namespace atk

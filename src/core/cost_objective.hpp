#pragma once

#include <memory>
#include <string>

#include "core/measurement.hpp"

namespace atk {

class StateWriter;
class StateReader;

/// Credit-assignment policy of the tuner: folds a CostBatch (the
/// per-operation costs one trial produced, plus the deadline they ran
/// under) into the scalar Cost > 0 that phase-one searchers and phase-two
/// strategies consume.
///
/// The paper hard-codes mean time; latency-SLO workloads such as the
/// streaming DSP substrate (src/dsp) care about tail latency and deadline
/// misses, where the mean actively misleads — a fast-on-average algorithm
/// with a heavy spike tail wins on mean and loses the SLO.  Keeping the
/// fold pluggable (the adaptive-operator-selection framing) lets the same
/// two-phase tuner optimize either.
///
/// Objectives carry a stable `id()` string ("mean", "quantile:0.95", ...)
/// that snapshots embed: restoring onto a tuner constructed with a
/// different objective fails loudly instead of silently re-scoring history.
class CostObjective {
public:
    virtual ~CostObjective() = default;

    /// Stable identity for serialization and factory lookup.
    [[nodiscard]] virtual std::string id() const = 0;

    /// Human-readable label for the decision audit trail ("p95 cost", ...).
    [[nodiscard]] virtual std::string describe() const = 0;

    /// Scores one batch; must return a positive finite Cost.  Throws
    /// std::invalid_argument on an empty batch.
    [[nodiscard]] virtual Cost score(const CostBatch& batch) const = 0;

    /// Objectives are stateless by default; stateful ones override both.
    virtual void save_state(StateWriter& out) const;
    virtual void restore_state(StateReader& in);
};

/// The paper's objective: arithmetic mean of the batch.  A single-sample
/// batch scores as the sample itself, so scalar report() paths are
/// objective-independent.
class MeanCost final : public CostObjective {
public:
    [[nodiscard]] std::string id() const override { return "mean"; }
    [[nodiscard]] std::string describe() const override { return "mean cost"; }
    [[nodiscard]] Cost score(const CostBatch& batch) const override;
};

/// Tail objective: the q-quantile (type-7 interpolation) of the batch —
/// p95/p99 latency when the samples are per-block times.
class QuantileCost final : public CostObjective {
public:
    /// `q` must lie inside (0, 1); throws std::invalid_argument.
    explicit QuantileCost(double q);
    [[nodiscard]] std::string id() const override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] Cost score(const CostBatch& batch) const override;
    [[nodiscard]] double q() const noexcept { return q_; }

private:
    double q_;
};

/// SLO objective: deadline-miss rate with a mean-latency tiebreak,
///
///     score = penalty · (misses / samples) + mean(samples)
///
/// so two algorithms that both always meet the deadline are still ordered
/// by latency, and any miss rate difference dominates (`penalty` should
/// exceed the plausible mean latency).  With no deadline in the batch the
/// miss term vanishes and the objective degrades to mean cost.
class DeadlineCost final : public CostObjective {
public:
    explicit DeadlineCost(double penalty = 1000.0);
    [[nodiscard]] std::string id() const override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] Cost score(const CostBatch& batch) const override;
    [[nodiscard]] double penalty() const noexcept { return penalty_; }

private:
    double penalty_;
};

/// Builds an objective from its id(): "mean", "quantile:<q>",
/// "deadline" / "deadline:<penalty>".  Throws std::invalid_argument on an
/// unknown or malformed id — the inverse of CostObjective::id(), used by
/// snapshot tooling and CLIs.
[[nodiscard]] std::unique_ptr<CostObjective> make_cost_objective(
    const std::string& id);

} // namespace atk

#include "core/feature_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace atk {

FeatureModel::FeatureModel(std::size_t k) : k_(k) {
    if (k == 0) throw std::invalid_argument("FeatureModel: k must be >= 1");
}

void FeatureModel::add_sample(FeatureVector features, std::size_t algorithm) {
    if (samples_.empty()) {
        dimension_ = features.size();
        feature_min_ = features;
        feature_max_ = features;
    }
    if (features.size() != dimension_)
        throw std::invalid_argument("FeatureModel: feature dimension mismatch");
    for (std::size_t d = 0; d < dimension_; ++d) {
        feature_min_[d] = std::min(feature_min_[d], features[d]);
        feature_max_[d] = std::max(feature_max_[d], features[d]);
    }
    samples_.push_back(Sample{std::move(features), algorithm});
}

double FeatureModel::distance(const FeatureVector& a, const FeatureVector& b) const {
    // Euclidean distance over min-max normalized features so no dimension
    // dominates by scale (pattern length vs. alphabet size, say).
    double sum = 0.0;
    for (std::size_t d = 0; d < dimension_; ++d) {
        const double range = feature_max_[d] - feature_min_[d];
        const double delta = range > 0.0 ? (a[d] - b[d]) / range : 0.0;
        sum += delta * delta;
    }
    return std::sqrt(sum);
}

std::size_t FeatureModel::vote(const FeatureVector& features,
                               std::size_t exclude_index) const {
    // Partial sort of sample indices by distance; k is tiny, samples few.
    std::vector<std::size_t> order;
    order.reserve(samples_.size());
    for (std::size_t i = 0; i < samples_.size(); ++i)
        if (i != exclude_index) order.push_back(i);
    const std::size_t take = std::min(k_, order.size());
    std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(take),
                      order.end(), [&](std::size_t x, std::size_t y) {
                          return distance(features, samples_[x].features) <
                                 distance(features, samples_[y].features);
                      });

    std::vector<std::size_t> votes;
    for (std::size_t i = 0; i < take; ++i) {
        const std::size_t label = samples_[order[i]].algorithm;
        if (votes.size() <= label) votes.resize(label + 1, 0);
        ++votes[label];
    }
    return static_cast<std::size_t>(std::max_element(votes.begin(), votes.end()) -
                                    votes.begin());
}

std::size_t FeatureModel::predict(const FeatureVector& features) const {
    if (samples_.empty()) throw std::logic_error("FeatureModel: predict() untrained");
    if (features.size() != dimension_)
        throw std::logic_error("FeatureModel: feature dimension mismatch");
    return vote(features, samples_.size());  // exclude nothing
}

double FeatureModel::self_accuracy() const {
    if (samples_.size() < 2) return 1.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < samples_.size(); ++i)
        if (vote(samples_[i].features, i) == samples_[i].algorithm) ++correct;
    return static_cast<double>(correct) / static_cast<double>(samples_.size());
}

FeatureModel train_feature_model(const std::vector<TrainingWorkload>& workloads,
                                 std::size_t algorithm_count, std::size_t k,
                                 std::size_t repetitions) {
    if (algorithm_count == 0)
        throw std::invalid_argument("train_feature_model: no algorithms");
    if (repetitions == 0)
        throw std::invalid_argument("train_feature_model: zero repetitions");
    FeatureModel model(k);
    for (const auto& workload : workloads) {
        std::size_t best = 0;
        Cost best_cost = std::numeric_limits<Cost>::infinity();
        for (std::size_t a = 0; a < algorithm_count; ++a) {
            Cost cost = std::numeric_limits<Cost>::infinity();
            for (std::size_t rep = 0; rep < repetitions; ++rep)
                cost = std::min(cost, workload.measure(a));
            if (cost < best_cost) {
                best_cost = cost;
                best = a;
            }
        }
        model.add_sample(workload.features, best);
    }
    return model;
}

} // namespace atk

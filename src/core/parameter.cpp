#include "core/parameter.hpp"

#include <cmath>
#include <stdexcept>

namespace atk {

const char* to_string(ParamClass cls) noexcept {
    switch (cls) {
        case ParamClass::Nominal: return "Nominal";
        case ParamClass::Ordinal: return "Ordinal";
        case ParamClass::Interval: return "Interval";
        case ParamClass::Ratio: return "Ratio";
    }
    return "?";
}

Parameter::Parameter(std::string name, ParamClass cls, std::int64_t min, std::int64_t max,
                     std::int64_t step, std::vector<std::string> labels)
    : name_(std::move(name)),
      cls_(cls),
      min_(min),
      max_(max),
      step_(step),
      labels_(std::move(labels)) {
    if (name_.empty()) throw std::invalid_argument("Parameter: empty name");
    if (min_ > max_) throw std::invalid_argument("Parameter '" + name_ + "': min > max");
    if (step_ <= 0) throw std::invalid_argument("Parameter '" + name_ + "': step must be > 0");
}

Parameter Parameter::nominal(std::string name, std::vector<std::string> labels) {
    if (labels.empty())
        throw std::invalid_argument("Parameter::nominal('" + name + "'): no labels");
    const auto count = static_cast<std::int64_t>(labels.size());
    return Parameter(std::move(name), ParamClass::Nominal, 0, count - 1, 1,
                     std::move(labels));
}

Parameter Parameter::ordinal(std::string name, std::vector<std::string> ordered_labels) {
    if (ordered_labels.empty())
        throw std::invalid_argument("Parameter::ordinal('" + name + "'): no labels");
    const auto count = static_cast<std::int64_t>(ordered_labels.size());
    return Parameter(std::move(name), ParamClass::Ordinal, 0, count - 1, 1,
                     std::move(ordered_labels));
}

Parameter Parameter::interval(std::string name, std::int64_t min, std::int64_t max,
                              std::int64_t step) {
    return Parameter(std::move(name), ParamClass::Interval, min, max, step, {});
}

Parameter Parameter::ratio(std::string name, std::int64_t min, std::int64_t max,
                           std::int64_t step) {
    if (min < 0)
        throw std::invalid_argument("Parameter::ratio('" + name +
                                    "'): ratio scale has a natural zero; min must be >= 0");
    return Parameter(std::move(name), ParamClass::Ratio, min, max, step, {});
}

std::uint64_t Parameter::cardinality() const noexcept {
    return static_cast<std::uint64_t>((max_ - min_) / step_) + 1;
}

bool Parameter::contains(std::int64_t v) const noexcept {
    return v >= min_ && v <= max_ && (v - min_) % step_ == 0;
}

std::int64_t Parameter::clamp(std::int64_t v) const noexcept {
    if (v <= min_) return min_;
    if (v >= max_) return max_ - (max_ - min_) % step_;
    const std::int64_t offset = v - min_;
    const std::int64_t down = offset / step_ * step_;
    // Round to the nearest lattice point, ties toward the larger value.
    const std::int64_t snapped =
        (offset - down) * 2 >= step_ ? down + step_ : down;
    const std::int64_t result = min_ + snapped;
    return result > max_ ? result - step_ : result;
}

std::string Parameter::label(std::int64_t v) const {
    if (!labels_.empty()) {
        if (v < 0 || v >= static_cast<std::int64_t>(labels_.size()))
            throw std::out_of_range("Parameter::label('" + name_ + "'): bad index");
        return labels_[static_cast<std::size_t>(v)];
    }
    return std::to_string(v);
}

double Parameter::to_unit(std::int64_t v) const {
    if (!has_distance())
        throw std::logic_error("Parameter::to_unit('" + name_ +
                               "'): class " + to_string(cls_) + " has no distance");
    if (min_ == max_) return 0.0;
    return static_cast<double>(v - min_) / static_cast<double>(max_ - min_);
}

std::int64_t Parameter::from_unit(double u) const {
    if (!has_distance())
        throw std::logic_error("Parameter::from_unit('" + name_ +
                               "'): class " + to_string(cls_) + " has no distance");
    if (u < 0.0) u = 0.0;
    if (u > 1.0) u = 1.0;
    const double raw =
        static_cast<double>(min_) + u * static_cast<double>(max_ - min_);
    return clamp(static_cast<std::int64_t>(std::llround(raw)));
}

} // namespace atk

#include "stringmatch/shift_or.hpp"

#include <array>
#include <cstdint>

namespace atk::sm {

std::vector<std::size_t> ShiftOrMatcher::find_all(std::string_view text,
                                                  std::string_view pattern) const {
    std::vector<std::size_t> out;
    const std::size_t m = pattern.size();
    const std::size_t n = text.size();
    if (m == 0 || m > n) return out;

    // Filter on at most 64 leading characters; verify the tail (if any).
    const std::size_t f = m < 64 ? m : 64;
    std::array<std::uint64_t, 256> masks;
    masks.fill(~0ULL);
    for (std::size_t i = 0; i < f; ++i)
        masks[static_cast<unsigned char>(pattern[i])] &= ~(1ULL << i);

    const std::uint64_t accept_bit = 1ULL << (f - 1);
    std::uint64_t state = ~0ULL;
    for (std::size_t j = 0; j < n; ++j) {
        state = (state << 1) | masks[static_cast<unsigned char>(text[j])];
        if ((state & accept_bit) == 0) {
            const std::size_t pos = j + 1 - f;
            if (f == m || matches_at(text, pattern, pos)) {
                if (pos + m <= n) out.push_back(pos);
            }
        }
    }
    return out;
}

} // namespace atk::sm

#include "stringmatch/matcher.hpp"

#include "stringmatch/boyer_moore.hpp"
#include "stringmatch/ebom.hpp"
#include "stringmatch/fsbndm.hpp"
#include "stringmatch/hash3.hpp"
#include "stringmatch/hybrid.hpp"
#include "stringmatch/kmp.hpp"
#include "stringmatch/shift_or.hpp"
#include "stringmatch/ssef.hpp"

namespace atk::sm {

bool matches_at(std::string_view text, std::string_view pattern, std::size_t pos) noexcept {
    if (pattern.empty() || pos + pattern.size() > text.size()) return false;
    return text.compare(pos, pattern.size(), pattern) == 0;
}

std::vector<std::size_t> naive_find_all(std::string_view text, std::string_view pattern) {
    std::vector<std::size_t> out;
    if (pattern.empty() || pattern.size() > text.size()) return out;
    const std::size_t last = text.size() - pattern.size();
    for (std::size_t pos = 0; pos <= last; ++pos)
        if (matches_at(text, pattern, pos)) out.push_back(pos);
    return out;
}

std::vector<std::unique_ptr<Matcher>> make_all_matchers() {
    std::vector<std::unique_ptr<Matcher>> matchers;
    matchers.push_back(std::make_unique<BoyerMooreMatcher>());
    matchers.push_back(std::make_unique<EbomMatcher>());
    matchers.push_back(std::make_unique<FsbndmMatcher>());
    matchers.push_back(std::make_unique<Hash3Matcher>());
    matchers.push_back(std::make_unique<KmpMatcher>());
    matchers.push_back(std::make_unique<ShiftOrMatcher>());
    matchers.push_back(std::make_unique<SsefMatcher>());
    return matchers;
}

std::vector<std::unique_ptr<Matcher>> make_all_matchers_with_hybrid() {
    auto matchers = make_all_matchers();
    matchers.push_back(std::make_unique<HybridMatcher>());
    return matchers;
}

} // namespace atk::sm

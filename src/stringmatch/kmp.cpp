#include "stringmatch/kmp.hpp"

namespace atk::sm {

std::vector<std::size_t> kmp_failure_function(std::string_view pattern) {
    std::vector<std::size_t> fail(pattern.size(), 0);
    std::size_t k = 0;
    for (std::size_t i = 1; i < pattern.size(); ++i) {
        while (k > 0 && pattern[i] != pattern[k]) k = fail[k - 1];
        if (pattern[i] == pattern[k]) ++k;
        fail[i] = k;
    }
    return fail;
}

std::vector<std::size_t> KmpMatcher::find_all(std::string_view text,
                                              std::string_view pattern) const {
    std::vector<std::size_t> out;
    const std::size_t m = pattern.size();
    if (m == 0 || m > text.size()) return out;
    const auto fail = kmp_failure_function(pattern);
    std::size_t k = 0;  // chars of pattern currently matched
    for (std::size_t i = 0; i < text.size(); ++i) {
        while (k > 0 && text[i] != pattern[k]) k = fail[k - 1];
        if (text[i] == pattern[k]) ++k;
        if (k == m) {
            out.push_back(i + 1 - m);
            k = fail[k - 1];
        }
    }
    return out;
}

} // namespace atk::sm

#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

#include "stringmatch/matcher.hpp"
#include "support/thread_pool.hpp"

namespace atk::sm {

/// Parallelization of the matchers, as in the paper: the input text is
/// partitioned into one chunk per thread, each chunk is processed by one
/// thread running the sequential algorithm, and per-chunk results are
/// concatenated.
///
/// Chunks overlap by pattern-length-1 characters so occurrences straddling
/// a boundary are found exactly once: each chunk reports only occurrences
/// *starting* inside its own partition.
///
/// Results are in increasing position order (chunks are ordered and
/// per-chunk results are sorted by construction of the sequential scans;
/// SSEF sorts explicitly).
[[nodiscard]] std::vector<std::size_t> parallel_find_all(const Matcher& matcher,
                                                         std::string_view text,
                                                         std::string_view pattern,
                                                         ThreadPool& pool,
                                                         std::size_t partitions = 0);

/// Count-only variant.
[[nodiscard]] std::size_t parallel_count(const Matcher& matcher, std::string_view text,
                                         std::string_view pattern, ThreadPool& pool,
                                         std::size_t partitions = 0);

} // namespace atk::sm

#pragma once

#include "stringmatch/matcher.hpp"

namespace atk::sm {

/// SSEF — SIMD filter matching for long patterns (Külekci).
///
/// The text is sampled in 16-byte blocks.  For each block, one chosen bit
/// of every byte is gathered into a 16-bit fingerprint with SSE2
/// (`_mm_movemask_epi8` after shifting the filter bit into the sign
/// position).  The precomputation stores the fingerprint of every 16-byte
/// window of the *pattern* in a 65536-bucket table; a block whose
/// fingerprint hits a bucket yields candidate alignments that are verified
/// directly.  Sampling blocks every m-15 positions guarantees every
/// occurrence fully covers at least one sampled block.
///
/// Like the original (which requires m >= 32), this is a long-pattern
/// filter; patterns shorter than 16 characters are delegated to the naive
/// scan.  On non-x86 builds a portable bit-gather replaces the SSE2
/// intrinsic — same filter, scalar gather (documented in DESIGN.md).
class SsefMatcher final : public Matcher {
public:
    /// Auto-selects the filter bit per pattern: the bit whose value is most
    /// balanced across the pattern bytes discriminates best (on ASCII text
    /// that is typically bit 3; on an ACGT alphabet bits 1/2 — a fixed bit
    /// would degenerate the filter there).
    static constexpr unsigned kAutoBit = 8;

    /// Pass a bit index in [0, 7] to force it (as the original allows).
    explicit SsefMatcher(unsigned filter_bit = kAutoBit);

    [[nodiscard]] std::string name() const override { return "SSEF"; }
    [[nodiscard]] std::vector<std::size_t> find_all(std::string_view text,
                                                    std::string_view pattern) const override;

    /// The balance-based bit choice for a pattern (exposed for tests).
    [[nodiscard]] static unsigned choose_filter_bit(std::string_view pattern) noexcept;

private:
    unsigned filter_bit_;
};

} // namespace atk::sm

#pragma once

#include "stringmatch/matcher.hpp"

namespace atk::sm {

/// Knuth-Morris-Pratt.  Precomputes the failure (longest proper
/// prefix-suffix) function of the pattern, then scans the text left to right
/// in O(n + m) with no backtracking.  The classic baseline: its lack of a
/// skip-ahead heuristic makes it the slowest of the seven on natural text,
/// matching the paper's Figure 1.
class KmpMatcher final : public Matcher {
public:
    [[nodiscard]] std::string name() const override { return "Knuth-Morris-Pratt"; }
    [[nodiscard]] std::vector<std::size_t> find_all(std::string_view text,
                                                    std::string_view pattern) const override;
};

/// Failure function: fail[i] = length of the longest proper prefix of
/// pattern[0..i] that is also a suffix of it. Exposed for tests.
[[nodiscard]] std::vector<std::size_t> kmp_failure_function(std::string_view pattern);

} // namespace atk::sm

#include "stringmatch/ssef.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace atk::sm {
namespace {

constexpr std::size_t kBlock = 16;

#if defined(__SSE2__)
/// 16-bit fingerprint: bit k = `bit` of byte s[k]. Unaligned load + shift
/// the filter bit into the sign position + movemask.
inline std::uint16_t fingerprint(const char* s, unsigned bit) noexcept {
    const __m128i chunk = _mm_loadu_si128(reinterpret_cast<const __m128i*>(s));
    // Shifting each 64-bit lane left by (7 - bit) moves bit `bit` of every
    // byte to that byte's bit 7; movemask then gathers the 16 sign bits.
    const __m128i shifted = _mm_slli_epi64(chunk, static_cast<int>(7 - bit));
    return static_cast<std::uint16_t>(_mm_movemask_epi8(shifted));
}
#else
inline std::uint16_t fingerprint(const char* s, unsigned bit) noexcept {
    std::uint16_t fp = 0;
    for (std::size_t k = 0; k < kBlock; ++k)
        fp |= static_cast<std::uint16_t>(
                  (static_cast<unsigned char>(s[k]) >> bit) & 1u)
              << k;
    return fp;
}
#endif

} // namespace

SsefMatcher::SsefMatcher(unsigned filter_bit) : filter_bit_(filter_bit) {
    if (filter_bit > 7 && filter_bit != kAutoBit)
        throw std::invalid_argument("SsefMatcher: filter bit must be in [0, 7] or auto");
}

unsigned SsefMatcher::choose_filter_bit(std::string_view pattern) noexcept {
    // The fingerprint discriminates best when the sampled bit is ~50/50
    // across the data; the pattern is the only sample we have of it.
    unsigned best_bit = 3;
    std::size_t best_balance = pattern.size() + 1;
    for (unsigned bit = 0; bit < 8; ++bit) {
        std::size_t ones = 0;
        for (const char ch : pattern)
            ones += (static_cast<unsigned char>(ch) >> bit) & 1u;
        const std::size_t balance =
            ones * 2 > pattern.size() ? ones * 2 - pattern.size()
                                      : pattern.size() - ones * 2;
        if (balance < best_balance) {
            best_balance = balance;
            best_bit = bit;
        }
    }
    return best_bit;
}

std::vector<std::size_t> SsefMatcher::find_all(std::string_view text,
                                               std::string_view pattern) const {
    const std::size_t m = pattern.size();
    const std::size_t n = text.size();
    if (m < kBlock) return naive_find_all(text, pattern);
    std::vector<std::size_t> out;
    if (m > n) return out;
    const unsigned filter_bit =
        filter_bit_ == kAutoBit ? choose_filter_bit(pattern) : filter_bit_;

    // Bucket table over 16-bit fingerprints: chained lists of pattern
    // offsets whose 16-byte window produces that fingerprint.
    const std::size_t windows = m - kBlock + 1;
    std::vector<std::int32_t> head(1u << 16, -1);
    std::vector<std::int32_t> next(windows, -1);
    for (std::size_t a = 0; a < windows; ++a) {
        const std::uint16_t fp = fingerprint(pattern.data() + a, filter_bit);
        next[a] = head[fp];
        head[fp] = static_cast<std::int32_t>(a);
    }

    // Sample a block every `step` positions: any occurrence (length m)
    // then fully covers at least one sampled block.
    const std::size_t step = m - kBlock + 1;
    for (std::size_t block = 0; block + kBlock <= n; block += step) {
        const std::uint16_t fp = fingerprint(text.data() + block, filter_bit);
        for (std::int32_t a = head[fp]; a >= 0; a = next[a]) {
            // Candidate: pattern window a aligns with this block, so the
            // pattern would start at block - a.
            if (static_cast<std::size_t>(a) > block) continue;
            const std::size_t pos = block - static_cast<std::size_t>(a);
            if (matches_at(text, pattern, pos)) out.push_back(pos);
        }
    }

    // Verification order follows bucket chains, so sort + dedup: distinct
    // sampled blocks can re-discover the same occurrence when step < m-15.
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace atk::sm

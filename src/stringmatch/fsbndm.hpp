#pragma once

#include "stringmatch/matcher.hpp"

namespace atk::sm {

/// FSBNDM — Forward Simplified BNDM (Faro & Lecroq).
///
/// Bit-parallel backward scanning of each window, like BNDM, but simplified
/// (no prefix bookkeeping) and extended with a *forward* character: the
/// window is conceptually the pattern plus one wildcard character after it,
/// so the startup test reads the character just beyond the window together
/// with the window's last character in two AND operations.  On natural
/// text the startup test alone discards most windows with a shift of m.
///
/// The state word needs m+1 bits; patterns longer than 62 characters are
/// filtered on their first 62 characters and verified on filter hits.
class FsbndmMatcher final : public Matcher {
public:
    [[nodiscard]] std::string name() const override { return "FSBNDM"; }
    [[nodiscard]] std::vector<std::size_t> find_all(std::string_view text,
                                                    std::string_view pattern) const override;
};

} // namespace atk::sm

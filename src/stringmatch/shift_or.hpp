#pragma once

#include "stringmatch/matcher.hpp"

namespace atk::sm {

/// Shift-Or (Baeza-Yates & Gonnet): bit-parallel scanning.
///
/// The precomputation builds, for each character c, a complemented mask B[c]
/// whose bit i is 0 iff pattern[i] == c.  The scan keeps a state word D in
/// which bit i is 0 iff the last i+1 text characters match pattern[0..i];
/// each step is one shift and one OR: D = (D << 1) | B[text[j]].
/// Bit m-1 clear signals an occurrence.
///
/// Patterns longer than 64 characters are handled by filtering on the first
/// 64 characters and verifying the remainder on each filter hit.
class ShiftOrMatcher final : public Matcher {
public:
    [[nodiscard]] std::string name() const override { return "ShiftOr"; }
    [[nodiscard]] std::vector<std::size_t> find_all(std::string_view text,
                                                    std::string_view pattern) const override;
};

} // namespace atk::sm

#pragma once

#include "stringmatch/matcher.hpp"

namespace atk::sm {

/// Hash3 (Lecroq's HASHq family with q = 3): a Wu-Manber style q-gram
/// shift matcher.
///
/// The precomputation hashes every 3-gram of the pattern and records, per
/// hash bucket, the distance from the bucket's rightmost occurrence to the
/// pattern end.  The scan jumps through the text by the shift of the 3-gram
/// ending at the current window end; a shift of zero means the window end
/// *may* align with the pattern end and is verified explicitly.
///
/// Patterns shorter than 3 characters fall back to the naive scan.
class Hash3Matcher final : public Matcher {
public:
    [[nodiscard]] std::string name() const override { return "Hash3"; }
    [[nodiscard]] std::vector<std::size_t> find_all(std::string_view text,
                                                    std::string_view pattern) const override;
};

} // namespace atk::sm

#include "stringmatch/parallel.hpp"

#include <algorithm>

namespace atk::sm {

std::vector<std::size_t> parallel_find_all(const Matcher& matcher, std::string_view text,
                                           std::string_view pattern, ThreadPool& pool,
                                           std::size_t partitions) {
    const std::size_t m = pattern.size();
    const std::size_t n = text.size();
    if (m == 0 || m > n) return {};
    if (partitions == 0) partitions = pool.thread_count() + 1;
    // A partition must be able to hold at least one occurrence start.
    partitions = std::min(partitions, std::max<std::size_t>(1, n / m));
    if (partitions <= 1) return matcher.find_all(text, pattern);

    const std::size_t chunk = (n + partitions - 1) / partitions;
    std::vector<std::vector<std::size_t>> results(partitions);
    {
        ThreadPool::TaskGroup group(pool);
        for (std::size_t p = 0; p < partitions; ++p) {
            group.submit([&, p] {
                const std::size_t begin = p * chunk;          // starts owned by p
                const std::size_t end = std::min(n, begin + chunk);
                if (begin >= end) return;
                // Extend by m-1 so straddling occurrences are visible, but
                // only keep those starting before `end`.
                const std::size_t slice_end = std::min(n, end + m - 1);
                auto found =
                    matcher.find_all(text.substr(begin, slice_end - begin), pattern);
                auto& mine = results[p];
                mine.reserve(found.size());
                for (const std::size_t rel : found) {
                    const std::size_t pos = begin + rel;
                    if (pos < end) mine.push_back(pos);
                }
            });
        }
        group.wait_all();
    }

    std::vector<std::size_t> merged;
    for (auto& part : results)
        merged.insert(merged.end(), part.begin(), part.end());
    return merged;
}

std::size_t parallel_count(const Matcher& matcher, std::string_view text,
                           std::string_view pattern, ThreadPool& pool,
                           std::size_t partitions) {
    return parallel_find_all(matcher, text, pattern, pool, partitions).size();
}

} // namespace atk::sm

#include "stringmatch/hash3.hpp"

#include <cstdint>
#include <vector>

namespace atk::sm {
namespace {

constexpr std::size_t kTableBits = 13;  // 8192 buckets, like Lecroq's 2^13
constexpr std::size_t kTableSize = 1u << kTableBits;

/// Hash of the 3-gram ending at `s` (reads s[-2], s[-1], s[0]).
inline std::uint32_t gram_hash(const char* s) noexcept {
    const auto a = static_cast<unsigned char>(s[-2]);
    const auto b = static_cast<unsigned char>(s[-1]);
    const auto c = static_cast<unsigned char>(s[0]);
    return ((a * 131u + b) * 131u + c) & (kTableSize - 1);
}

} // namespace

std::vector<std::size_t> Hash3Matcher::find_all(std::string_view text,
                                                std::string_view pattern) const {
    const std::size_t m = pattern.size();
    const std::size_t n = text.size();
    if (m < 3) return naive_find_all(text, pattern);
    std::vector<std::size_t> out;
    if (m > n) return out;

    // shift[h]: how far the window may jump when the 3-gram at the window
    // end hashes to h.  Default: a full m-2 (the 3-gram does not occur in
    // the pattern at all).
    std::vector<std::uint32_t> shift(kTableSize, static_cast<std::uint32_t>(m - 2));
    for (std::size_t i = 2; i < m; ++i) {
        const std::uint32_t h = gram_hash(pattern.data() + i);
        shift[h] = static_cast<std::uint32_t>(m - 1 - i);
    }

    std::size_t end = m - 1;  // text index aligned with the pattern's last char
    while (end < n) {
        const std::uint32_t jump = shift[gram_hash(text.data() + end)];
        if (jump == 0) {
            const std::size_t pos = end + 1 - m;
            if (matches_at(text, pattern, pos)) out.push_back(pos);
            ++end;
        } else {
            end += jump;
        }
    }
    return out;
}

} // namespace atk::sm

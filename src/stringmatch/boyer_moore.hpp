#pragma once

#include "stringmatch/matcher.hpp"

namespace atk::sm {

/// Boyer-Moore with both classic precomputed heuristics: the bad-character
/// rule (skip by the rightmost occurrence of the mismatching text character
/// in the pattern) and the good-suffix rule (skip by the next re-occurrence
/// of the already-matched suffix).  The scan compares right-to-left within
/// each window and advances by the larger of the two skips.
class BoyerMooreMatcher final : public Matcher {
public:
    [[nodiscard]] std::string name() const override { return "Boyer-Moore"; }
    [[nodiscard]] std::vector<std::size_t> find_all(std::string_view text,
                                                    std::string_view pattern) const override;
};

/// Good-suffix shift table: good_suffix[j] = safe window shift when the
/// mismatch happened at pattern index j (all of pattern[j+1..m-1] matched).
/// Exposed for tests.
[[nodiscard]] std::vector<std::size_t> bm_good_suffix_table(std::string_view pattern);

} // namespace atk::sm

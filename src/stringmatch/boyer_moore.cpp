#include "stringmatch/boyer_moore.hpp"

#include <array>

namespace atk::sm {
namespace {

/// suffixes[i] = length of the longest suffix of pattern ending at i that is
/// also a suffix of the whole pattern (Crochemore & Lecroq's `suff`).
std::vector<std::size_t> suffix_lengths(std::string_view p) {
    const auto m = static_cast<std::ptrdiff_t>(p.size());
    std::vector<std::size_t> suff(p.size(), 0);
    suff[p.size() - 1] = p.size();
    std::ptrdiff_t g = m - 1;
    std::ptrdiff_t f = m - 1;
    for (std::ptrdiff_t i = m - 2; i >= 0; --i) {
        if (i > g && static_cast<std::ptrdiff_t>(suff[i + m - 1 - f]) < i - g) {
            suff[i] = suff[i + m - 1 - f];
        } else {
            if (i < g) g = i;
            f = i;
            while (g >= 0 && p[g] == p[g + m - 1 - f]) --g;
            suff[i] = static_cast<std::size_t>(f - g);
        }
    }
    return suff;
}

} // namespace

std::vector<std::size_t> bm_good_suffix_table(std::string_view pattern) {
    const std::size_t m = pattern.size();
    std::vector<std::size_t> shift(m, m);
    if (m == 0) return shift;
    if (m == 1) {
        shift[0] = 1;
        return shift;
    }
    const auto suff = suffix_lengths(pattern);
    // Case 1: the matched suffix re-occurs as a prefix of the pattern.
    std::size_t j = 0;
    for (std::size_t i = m; i-- > 0;) {
        if (suff[i] == i + 1) {
            for (; j < m - 1 - i; ++j)
                if (shift[j] == m) shift[j] = m - 1 - i;
        }
    }
    // Case 2: the matched suffix re-occurs somewhere inside the pattern.
    for (std::size_t i = 0; i + 1 < m; ++i) shift[m - 1 - suff[i]] = m - 1 - i;
    return shift;
}

std::vector<std::size_t> BoyerMooreMatcher::find_all(std::string_view text,
                                                     std::string_view pattern) const {
    std::vector<std::size_t> out;
    const std::size_t m = pattern.size();
    const std::size_t n = text.size();
    if (m == 0 || m > n) return out;

    // Bad-character rule: distance from the rightmost occurrence of each
    // character (excluding the final position) to the pattern end.
    std::array<std::size_t, 256> bad_char;
    bad_char.fill(m);
    for (std::size_t i = 0; i + 1 < m; ++i)
        bad_char[static_cast<unsigned char>(pattern[i])] = m - 1 - i;

    const auto good_suffix = bm_good_suffix_table(pattern);

    std::size_t pos = 0;
    while (pos <= n - m) {
        std::size_t i = m;
        while (i > 0 && pattern[i - 1] == text[pos + i - 1]) --i;
        if (i == 0) {
            out.push_back(pos);
            pos += good_suffix[0];
        } else {
            const std::size_t mismatch = i - 1;  // pattern index of the mismatch
            const std::size_t bc =
                bad_char[static_cast<unsigned char>(text[pos + mismatch])];
            // The bad-character skip aligns the text char with its rightmost
            // pattern occurrence; it can suggest moving backwards, in which
            // case it contributes the minimal shift of 1.
            const std::size_t bc_shift =
                bc + mismatch + 1 > m ? bc + mismatch + 1 - m : 1;
            pos += std::max(good_suffix[mismatch], bc_shift);
        }
    }
    return out;
}

} // namespace atk::sm

#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace atk::sm {

/// Exact single-pattern string matcher.
///
/// All seven algorithms of the paper's first case study implement this
/// interface.  They follow the same two-phase pattern the paper describes:
/// a precomputation on the pattern, then an iterated skip-ahead scan of the
/// text.  Precomputation happens *inside* find_all — "any precomputation is
/// part of the algorithm's runtime" — so measured times include it.
///
/// find_all returns the start index of every (possibly overlapping)
/// occurrence, in increasing order.
class Matcher {
public:
    virtual ~Matcher() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    [[nodiscard]] virtual std::vector<std::size_t> find_all(std::string_view text,
                                                            std::string_view pattern) const = 0;

    /// Number of occurrences; default counts find_all().
    [[nodiscard]] virtual std::size_t count(std::string_view text,
                                            std::string_view pattern) const {
        return find_all(text, pattern).size();
    }
};

/// Reference implementation: straightforward O(n·m) scan.  Used by the test
/// suite as ground truth and by sophisticated matchers to verify filter hits.
[[nodiscard]] std::vector<std::size_t> naive_find_all(std::string_view text,
                                                      std::string_view pattern);

/// True iff pattern occurs in text at position `pos`.
[[nodiscard]] bool matches_at(std::string_view text, std::string_view pattern,
                              std::size_t pos) noexcept;

/// Factory for the seven parallel string matching algorithms of the paper
/// (Boyer-Moore, EBOM, FSBNDM, Hash3, Knuth-Morris-Pratt, ShiftOr, SSEF),
/// in the deterministic order the paper's plots use.
[[nodiscard]] std::vector<std::unique_ptr<Matcher>> make_all_matchers();

/// Same set plus the pattern-length-based Hybrid matcher appended
/// (the paper's Figures 1 and 4 show all eight).
[[nodiscard]] std::vector<std::unique_ptr<Matcher>> make_all_matchers_with_hybrid();

} // namespace atk::sm

#include "stringmatch/corpus.hpp"

#include <array>
#include <stdexcept>
#include <vector>

#include "support/rng.hpp"

namespace atk::sm {
namespace {

// Scripture-style public-domain English used to train the character model.
// The wording is the well-known King James phrasing of a handful of famous
// verses; a few KB suffices for an order-2 character model of 17th-century
// English prose.
constexpr const char* kSeedText =
    "in the beginning god created the heaven and the earth "
    "and the earth was without form and void and darkness was upon the face "
    "of the deep and the spirit of god moved upon the face of the waters "
    "and god said let there be light and there was light "
    "and god saw the light that it was good and god divided the light from "
    "the darkness and god called the light day and the darkness he called "
    "night and the evening and the morning were the first day "
    "and god said let there be a firmament in the midst of the waters and "
    "let it divide the waters from the waters "
    "the lord is my shepherd i shall not want he maketh me to lie down in "
    "green pastures he leadeth me beside the still waters he restoreth my "
    "soul he leadeth me in the paths of righteousness for his name s sake "
    "yea though i walk through the valley of the shadow of death i will "
    "fear no evil for thou art with me thy rod and thy staff they comfort "
    "me thou preparest a table before me in the presence of mine enemies "
    "thou anointest my head with oil my cup runneth over "
    "surely goodness and mercy shall follow me all the days of my life and "
    "i will dwell in the house of the lord for ever "
    "and he carried me away in the spirit to a great and high mountain and "
    "shewed me that great city the holy jerusalem descending out of heaven "
    "from god having the glory of god and her light was like unto a stone "
    "most precious even like a jasper stone clear as crystal "
    "for god so loved the world that he gave his only begotten son that "
    "whosoever believeth in him should not perish but have everlasting life "
    "blessed are the poor in spirit for theirs is the kingdom of heaven "
    "blessed are they that mourn for they shall be comforted blessed are "
    "the meek for they shall inherit the earth blessed are they which do "
    "hunger and thirst after righteousness for they shall be filled "
    "blessed are the merciful for they shall obtain mercy blessed are the "
    "pure in heart for they shall see god blessed are the peacemakers for "
    "they shall be called the children of god "
    "to every thing there is a season and a time to every purpose under "
    "the heaven a time to be born and a time to die a time to plant and a "
    "time to pluck up that which is planted a time to kill and a time to "
    "heal a time to break down and a time to build up a time to weep and a "
    "time to laugh a time to mourn and a time to dance "
    "vanity of vanities saith the preacher vanity of vanities all is "
    "vanity what profit hath a man of all his labour which he taketh under "
    "the sun one generation passeth away and another generation cometh but "
    "the earth abideth for ever the sun also ariseth and the sun goeth "
    "down and hasteth to his place where he arose ";

} // namespace

std::string_view query_phrase() noexcept {
    return "the spirit to a great and high mountain";
}

std::string_view corpus_seed_text() noexcept {
    return kSeedText;
}

std::string bible_like_corpus(std::size_t bytes, std::uint64_t seed,
                              std::size_t planted_occurrences) {
    const std::string_view train = kSeedText;

    // Order-2 character Markov model: successors[ctx] lists every character
    // following the two-character context ctx in the training text.
    // Sampling uniformly from the successor list reproduces the empirical
    // conditional distribution including duplicates.
    std::vector<std::vector<char>> successors(256 * 256);
    auto context = [](char a, char b) {
        return (static_cast<std::size_t>(static_cast<unsigned char>(a)) << 8) |
               static_cast<unsigned char>(b);
    };
    for (std::size_t i = 2; i < train.size(); ++i)
        successors[context(train[i - 2], train[i - 1])].push_back(train[i]);

    Rng rng(seed);
    std::string text;
    text.reserve(bytes + 64);
    text += "th";
    while (text.size() < bytes) {
        const auto& options = successors[context(text[text.size() - 2], text.back())];
        if (options.empty()) {
            text += ' ';  // dead-end context (cannot happen with ctx from train)
            continue;
        }
        text += options[rng.index(options.size())];
    }
    text.resize(bytes);

    // Plant the query phrase at deterministic, evenly spread positions.
    const std::string_view phrase = query_phrase();
    if (planted_occurrences > 0 && bytes >= phrase.size()) {
        const std::size_t stride = bytes / planted_occurrences;
        for (std::size_t k = 0; k < planted_occurrences; ++k) {
            const std::size_t pos =
                std::min(bytes - phrase.size(), k * stride + stride / 2);
            text.replace(pos, phrase.size(), phrase);
        }
    }
    return text;
}

std::string dna_corpus(std::size_t bytes, std::string_view pattern, std::uint64_t seed,
                       std::size_t planted_occurrences) {
    for (char c : pattern)
        if (c != 'a' && c != 'c' && c != 'g' && c != 't' && c != 'A' && c != 'C' &&
            c != 'G' && c != 'T')
            throw std::invalid_argument("dna_corpus: pattern must be over ACGT");

    // Human-genome-like base composition: ~41 % G+C.
    constexpr std::array<char, 100> kBases = [] {
        std::array<char, 100> bases{};
        std::size_t i = 0;
        while (i < 30) bases[i++] = 'A';  // 30 % A
        while (i < 50) bases[i++] = 'C';  // 20 % C
        while (i < 71) bases[i++] = 'G';  // 21 % G
        while (i < 100) bases[i++] = 'T'; // 29 % T
        return bases;
    }();

    Rng rng(seed);
    std::string text(bytes, 'A');
    for (auto& c : text) c = kBases[rng.index(kBases.size())];

    if (planted_occurrences > 0 && bytes >= pattern.size() && !pattern.empty()) {
        const std::size_t stride = bytes / planted_occurrences;
        for (std::size_t k = 0; k < planted_occurrences; ++k) {
            const std::size_t pos =
                std::min(bytes - pattern.size(), k * stride + stride / 2);
            text.replace(pos, pattern.size(), pattern);
        }
    }
    return text;
}

} // namespace atk::sm

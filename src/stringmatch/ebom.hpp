#pragma once

#include "stringmatch/matcher.hpp"

namespace atk::sm {

/// EBOM — Extended Backward Oracle Matching (Faro & Lecroq).
///
/// The precomputation builds the factor oracle of the *reversed* pattern:
/// an automaton that accepts at least all factors of it, with the key
/// property that the only accepted word of length m is the reversed pattern
/// itself.  Each window is read right to left through the oracle; surviving
/// all m characters therefore proves a match without extra verification,
/// and falling out of the oracle after k characters allows a shift of
/// m - k + 1... specifically past the failed suffix.
///
/// The "Extended" part is a 256×256 first-transition table that consumes
/// the last *two* window characters in a single lookup, which skips most
/// windows of natural-language text immediately — making EBOM one of the
/// four fastest algorithms in the paper's Figure 1.
class EbomMatcher final : public Matcher {
public:
    [[nodiscard]] std::string name() const override { return "EBOM"; }
    [[nodiscard]] std::vector<std::size_t> find_all(std::string_view text,
                                                    std::string_view pattern) const override;
};

/// Factor oracle over bytes.  States are numbered 0..m; state 0 is initial.
/// Exposed for tests of the oracle properties.
class FactorOracle {
public:
    /// Builds the oracle of `word` (not reversed — callers reverse).
    explicit FactorOracle(std::string_view word);

    /// Transition; -1 if undefined.
    [[nodiscard]] std::int32_t step(std::int32_t state, unsigned char c) const {
        return transitions_[static_cast<std::size_t>(state) * 256 + c];
    }

    /// True iff the oracle accepts `word` starting from the initial state
    /// (every prefix path must exist; all states are accepting).
    [[nodiscard]] bool accepts(std::string_view word) const;

    [[nodiscard]] std::size_t state_count() const noexcept { return states_; }

private:
    std::size_t states_;
    std::vector<std::int32_t> transitions_;  // states_ x 256, -1 = undefined
};

} // namespace atk::sm

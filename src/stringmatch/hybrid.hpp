#pragma once

#include <memory>

#include "stringmatch/matcher.hpp"

namespace atk::sm {

/// The heuristic-based Hybrid matcher of the paper: chooses one of the
/// seven algorithms based on the pattern length.  The thresholds encode the
/// usual regime boundaries of exact matching on natural-language text:
///
///   m < 3    — Knuth-Morris-Pratt (q-gram and long filters unavailable)
///   3..7     — Hash3 (3-gram shifts dominate for short patterns)
///   8..15    — FSBNDM (bit-parallel window tests)
///   16..31   — EBOM (oracle skips grow with m)
///   m >= 32  — SSEF (block filtering amortizes over long patterns)
///
/// The Hybrid is itself one of the eight alternatives in the case study —
/// it is a hand-crafted heuristic, exactly the kind of a-priori choice the
/// paper's online tuner is designed to replace.
class HybridMatcher final : public Matcher {
public:
    HybridMatcher();
    ~HybridMatcher() override;

    [[nodiscard]] std::string name() const override { return "Hybrid"; }
    [[nodiscard]] std::vector<std::size_t> find_all(std::string_view text,
                                                    std::string_view pattern) const override;

    /// The algorithm the heuristic picks for a pattern of length m.
    [[nodiscard]] const Matcher& delegate_for(std::size_t pattern_length) const;

private:
    std::unique_ptr<Matcher> kmp_;
    std::unique_ptr<Matcher> hash3_;
    std::unique_ptr<Matcher> fsbndm_;
    std::unique_ptr<Matcher> ebom_;
    std::unique_ptr<Matcher> ssef_;
};

} // namespace atk::sm

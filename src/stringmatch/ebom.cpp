#include "stringmatch/ebom.hpp"

#include <algorithm>
#include <string>

namespace atk::sm {

FactorOracle::FactorOracle(std::string_view word)
    : states_(word.size() + 1),
      transitions_(states_ * 256, -1) {
    // Allauzen, Crochemore & Raffinot's on-line construction: supply links
    // S(i) point to the state reached by the longest repeated suffix.
    std::vector<std::int32_t> supply(states_, -1);
    for (std::size_t i = 1; i < states_; ++i) {
        const auto c = static_cast<unsigned char>(word[i - 1]);
        transitions_[(i - 1) * 256 + c] = static_cast<std::int32_t>(i);
        std::int32_t k = supply[i - 1];
        while (k >= 0 && step(k, c) < 0) {
            transitions_[static_cast<std::size_t>(k) * 256 + c] =
                static_cast<std::int32_t>(i);
            k = supply[k];
        }
        supply[i] = k < 0 ? 0 : step(k, c);
    }
}

bool FactorOracle::accepts(std::string_view word) const {
    std::int32_t state = 0;
    for (char ch : word) {
        state = step(state, static_cast<unsigned char>(ch));
        if (state < 0) return false;
    }
    return true;
}

std::vector<std::size_t> EbomMatcher::find_all(std::string_view text,
                                               std::string_view pattern) const {
    const std::size_t m = pattern.size();
    const std::size_t n = text.size();
    if (m < 2) return naive_find_all(text, pattern);
    std::vector<std::size_t> out;
    if (m > n) return out;

    std::string reversed(pattern.rbegin(), pattern.rend());
    const FactorOracle oracle(reversed);

    // Extended first-transition table: state after consuming the window's
    // last two characters (read backwards), or -1 when that pair cannot end
    // a pattern factor. One lookup replaces the two most-executed steps.
    std::vector<std::int32_t> first_two(256 * 256, -1);
    for (std::size_t a = 0; a < 256; ++a) {
        const std::int32_t s1 = oracle.step(0, static_cast<unsigned char>(a));
        if (s1 < 0) continue;
        for (std::size_t b = 0; b < 256; ++b) {
            first_two[(a << 8) | b] = oracle.step(s1, static_cast<unsigned char>(b));
        }
    }

    std::size_t pos = 0;
    const std::size_t last = n - m;
    while (pos <= last) {
        const auto c_last = static_cast<unsigned char>(text[pos + m - 1]);
        const auto c_prev = static_cast<unsigned char>(text[pos + m - 2]);
        std::int32_t state = first_two[(static_cast<std::size_t>(c_last) << 8) | c_prev];
        std::size_t j = m - 2;  // next window offset to read (backwards)
        while (state >= 0 && j > 0) {
            --j;
            state = oracle.step(state, static_cast<unsigned char>(text[pos + j]));
        }
        if (state >= 0) {
            // All m window characters were accepted by the oracle of the
            // reversed pattern; the only accepted word of length m is the
            // reversed pattern itself, so this is a certain match.
            out.push_back(pos);
            pos += 1;
        } else {
            // The oracle died after reading the window suffix starting at
            // offset j: that suffix is not a factor, so no occurrence can
            // contain it. Jump past it.
            pos += j + 1;
        }
    }
    return out;
}

} // namespace atk::sm
